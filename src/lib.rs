//! DiLOS — paging-based memory disaggregation without trading compatibility
//! for performance.
//!
//! This is the umbrella crate of the DiLOS reproduction (EuroSys '23). It
//! re-exports the workspace crates so examples, integration tests, and
//! downstream users can depend on a single crate:
//!
//! - [`sim`] — the deterministic virtual-time substrate (RDMA fabric, memory
//!   node, calibration constants).
//! - [`core`] — the paper's contribution: the DiLOS paging subsystem
//!   (unified page table, page-fault handler, prefetchers, page manager,
//!   guide API, guided paging).
//! - [`alloc`] — the mimalloc-flavoured user-level allocator whose per-page
//!   liveness bitmaps drive guided paging.
//! - [`baselines`] — the Fastswap and AIFM comparison systems.
//! - [`apps`] — the evaluation workloads, written once against the portable
//!   [`apps::farmem::FarMemory`] interface.
//!
//! # Quickstart
//!
//! ```
//! use dilos::core::{Dilos, DilosConfig};
//!
//! // Boot a DiLOS compute node with 256 KiB of local DRAM backed by a
//! // simulated memory node.
//! let mut node = Dilos::new(DilosConfig {
//!     local_pages: 64,
//!     ..DilosConfig::default()
//! });
//!
//! // Allocate disaggregated memory (the ddc_malloc path) and touch it.
//! let va = node.ddc_alloc(1 << 20);
//! node.write(0, va, b"hello far memory");
//! let mut buf = [0u8; 16];
//! node.read(0, va, &mut buf);
//! assert_eq!(&buf, b"hello far memory");
//!
//! // The working set exceeded local DRAM, so pages were evicted and
//! // fetched back — all accounted in virtual time.
//! assert!(node.stats().major_faults > 0 || node.now(0) > 0);
//! ```

pub use dilos_alloc as alloc;
pub use dilos_apps as apps;
pub use dilos_baselines as baselines;
pub use dilos_core as core;
pub use dilos_sim as sim;
