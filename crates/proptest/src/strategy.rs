//! Value-generation strategies: the `Strategy` trait and its combinators.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of one type from a deterministic RNG.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy is just a pure function of the RNG stream, which is all the
/// deterministic-simulation tests in this workspace need.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!` to mix branch types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the same value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted union over same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    branches: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    pub fn new(branches: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        let total = branches.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
        Self { branches, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (w, s) in &self.branches {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        self.branches.last().expect("non-empty").1.generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )+};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )+};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
