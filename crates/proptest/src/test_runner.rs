//! Deterministic case runner: fixed-seed RNG, pass/reject bookkeeping,
//! input reporting on failure or panic.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// SplitMix64 — the same tiny deterministic generator the simulator uses,
/// reimplemented here so the shim stays dependency-free.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; draw a fresh case.
    Reject,
    /// `prop_assert*!` failed.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Runner configuration (`ProptestConfig::with_cases(n)`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
    /// Global cap on `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// Runs `case` until `config.cases` cases pass, panicking with the offending
/// inputs on the first failure. The seed is a pure function of the test name,
/// so every run of the suite explores the same cases (reproducible by
/// construction; override with `PROPTEST_SEED=<u64>`).
pub fn run_cases<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng, &mut String) -> Result<(), TestCaseError>,
{
    let seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| fnv1a(name.as_bytes()));
    let mut rng = TestRng::new(seed);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        let mut repr = String::new();
        let outcome = catch_unwind(AssertUnwindSafe(|| case(&mut rng, &mut repr)));
        match outcome {
            Ok(Ok(())) => passed += 1,
            Ok(Err(TestCaseError::Reject)) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "{name}: too many prop_assume! rejections ({rejected})"
                );
            }
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!("{name}: case #{passed} failed: {msg}\n  inputs: {repr} (seed {seed})");
            }
            Err(payload) => {
                eprintln!("{name}: case #{passed} panicked\n  inputs: {repr} (seed {seed})");
                resume_unwind(payload);
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}
