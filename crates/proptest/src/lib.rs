//! Minimal, dependency-free property-testing shim.
//!
//! The build container has no access to a crates.io mirror, so the real
//! `proptest` crate cannot be fetched. This in-tree replacement implements
//! exactly the API surface the workspace's property tests use — the
//! `proptest!` macro, `Strategy` with `prop_map`, `prop_oneof!`, `any::<T>()`,
//! `Just`, `prop::collection::vec`, and the `prop_assert*`/`prop_assume!`
//! macros — with deterministic case generation (fixed seed, SplitMix64) so
//! failures reproduce across runs. No shrinking: a failing case reports its
//! inputs verbatim.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector of values from `element`, of length within `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Arbitrary-value generation (`any::<T>()`).
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range generator.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )+};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Uniform in [0, 1): full-range floats are rarely what a
            // simulation test wants, and the workspace only uses ranges.
            rng.unit_f64()
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64() as f32
        }
    }

    /// Strategy wrapper returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The glob-import surface test files rely on.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace re-export so `prop::collection::vec(..)` resolves.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (with
/// inputs reported) rather than panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($l:expr, $r:expr $(,)?) => {{
        let (l, r) = (&$l, &$r);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($l), stringify!($r), l, r
        );
    }};
    ($l:expr, $r:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$l, &$r);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*), l, r
            )));
        }
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($l:expr, $r:expr $(,)?) => {{
        let (l, r) = (&$l, &$r);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($l), stringify!($r), l
        );
    }};
    ($l:expr, $r:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$l, &$r);
        if !(*l != *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)*), l
            )));
        }
    }};
}

/// Discards the current case (it counts as neither pass nor failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Weighted or unweighted choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the same shape as upstream proptest for the patterns used in
/// this workspace: an optional `#![proptest_config(..)]` inner attribute
/// followed by any number of `fn name(pat in strategy, ..) { body }` items
/// carrying their own outer attributes (`#[test]`, doc comments).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let strategies = ($($strat,)+);
            $crate::test_runner::run_cases(
                stringify!($name),
                &config,
                |rng, repr: &mut String| {
                    let values = $crate::strategy::Strategy::generate(&strategies, rng);
                    *repr = format!("{:?}", values);
                    let ($($pat,)+) = values;
                    (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
