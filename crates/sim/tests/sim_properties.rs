//! Property tests for the simulation substrate.
//!
//! The virtual-time model underpins every number in the reproduction, so
//! its primitives get ground-truth checks: histogram quantiles against a
//! sorted reference, timeline conservation laws, memory-node consistency
//! against a flat buffer, and LRU-chain equivalence with a naive list.

use dilos_sim::{
    LatencyHistogram, LruChain, MemoryNode, Observability, RdmaEndpoint, ServiceClass, SimConfig,
    Timeline,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Histogram quantiles are within one log-bucket (≤ ~6.25 %) of exact.
    ///
    /// The estimate interpolates inside the bucket holding the exact order
    /// statistic, so it can land on either side of it — but never further
    /// than one sub-bucket width away, and never outside `[min, max]`.
    #[test]
    fn histogram_quantiles_track_sorted_reference(
        mut samples in prop::collection::vec(1u64..10_000_000, 1..500),
        q in 0.0f64..1.0,
    ) {
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        let exact = samples[rank - 1];
        let approx = h.quantile(q);
        prop_assert!(
            approx as f64 <= exact as f64 * (1.0 + 1.0 / 16.0) + 1.0,
            "within one sub-bucket above: {approx} vs {exact}"
        );
        prop_assert!(
            approx as f64 >= exact as f64 * (1.0 - 1.0 / 16.0) - 1.0,
            "within one sub-bucket below: {approx} vs {exact}"
        );
        prop_assert!(approx >= samples[0] && approx <= *samples.last().expect("non-empty"));
        prop_assert_eq!(h.max(), *samples.last().expect("non-empty"));
        prop_assert_eq!(h.min(), samples[0]);
    }

    /// A timeline serves requests back to back: total busy time equals the
    /// sum of durations, and completions are monotone.
    #[test]
    fn timeline_conserves_busy_time(reqs in prop::collection::vec((0u64..10_000, 1u64..500), 1..100)) {
        let mut t = Timeline::new();
        let mut last_end = 0;
        let mut total = 0;
        for &(now, dur) in &reqs {
            let (start, end) = t.acquire(now, dur);
            prop_assert!(start >= now);
            prop_assert!(start >= last_end, "no overlap");
            prop_assert_eq!(end - start, dur);
            last_end = end;
            total += dur;
        }
        prop_assert_eq!(t.total_busy(), total);
        prop_assert_eq!(t.acquisitions() as usize, reqs.len());
    }

    /// Differential test for the page-store backends: the same verb
    /// sequence driven through a flat-store cluster and a reference
    /// `BTreeStore` cluster produces byte-identical trace digests, the
    /// same read contents, and the same resident-page enumeration.
    #[test]
    fn flat_and_reference_stores_trace_identically(
        ops in prop::collection::vec(
            (0u64..60, 1usize..9_000, any::<u8>(), any::<bool>(), 0usize..4),
            1..80,
        ),
    ) {
        const SIZE: u64 = 1 << 18;
        let mk = |reference: bool| {
            let mut ep = RdmaEndpoint::connect_cluster(SimConfig::default(), SIZE, 3, 2);
            if reference {
                ep.use_reference_stores();
            }
            let obs = Observability::tracing();
            ep.observe(&obs);
            (ep, obs)
        };
        let (mut flat, flat_obs) = mk(false);
        let (mut reference, ref_obs) = mk(true);
        let mut now = 0;
        for &(page, len, stamp, is_write, core) in &ops {
            let at = page * 4096 + u64::from(stamp % 64);
            let len = len.min((SIZE - at) as usize);
            if len == 0 {
                continue;
            }
            if is_write {
                // Trailing zeros exercise the extent-trim path.
                let mut data = vec![stamp; len];
                let keep = len - (len * usize::from(stamp % 4) / 4);
                data[keep..].fill(0);
                flat.write(now, core, ServiceClass::Cleaner, at, &data).expect("in bounds");
                reference.write(now, core, ServiceClass::Cleaner, at, &data).expect("in bounds");
            } else {
                let mut a = vec![0u8; len];
                let mut b = vec![1u8; len];
                flat.read(now, core, ServiceClass::Fault, at, &mut a).expect("in bounds");
                reference.read(now, core, ServiceClass::Fault, at, &mut b).expect("in bounds");
                prop_assert_eq!(a, b, "read contents at {}", at);
            }
            now += 1_000;
        }
        prop_assert_eq!(flat_obs.trace().count(), ref_obs.trace().count());
        prop_assert_eq!(flat_obs.trace().digest(), ref_obs.trace().digest());
        prop_assert_eq!(
            flat.node().resident_page_numbers(),
            reference.node().resident_page_numbers()
        );
    }

    /// The memory node is a flat byte array with protection: any sequence
    /// of in-bounds reads/writes matches a `Vec<u8>` model.
    #[test]
    fn memnode_matches_flat_buffer(
        ops in prop::collection::vec((0u64..60_000, 1usize..5_000, any::<u8>(), any::<bool>()), 1..60),
    ) {
        const SIZE: u64 = 1 << 16;
        let mut node = MemoryNode::new();
        let key = node.register_region(0, SIZE);
        let mut model = vec![0u8; SIZE as usize];
        for &(at, len, stamp, is_write) in &ops {
            let len = len.min((SIZE - at) as usize);
            if len == 0 {
                continue;
            }
            if is_write {
                let data = vec![stamp; len];
                node.write(key, at, &data).expect("in bounds");
                model[at as usize..at as usize + len].copy_from_slice(&data);
            } else {
                let mut buf = vec![0u8; len];
                node.read(key, at, &mut buf).expect("in bounds");
                prop_assert_eq!(&buf[..], &model[at as usize..at as usize + len]);
            }
        }
    }

    /// LruChain behaves exactly like a naive recency list.
    #[test]
    fn lru_chain_matches_naive_list(
        ops in prop::collection::vec((0u64..32, 0u8..3), 1..300),
    ) {
        let mut chain = LruChain::new();
        // Naive model: most recent at the back.
        let mut model: Vec<u64> = Vec::new();
        for &(k, op) in &ops {
            match op {
                0 => {
                    chain.insert(k);
                    model.retain(|&x| x != k);
                    model.push(k);
                }
                1 => {
                    chain.touch(k);
                    if model.contains(&k) {
                        model.retain(|&x| x != k);
                        model.push(k);
                    }
                }
                _ => {
                    chain.remove(k);
                    model.retain(|&x| x != k);
                }
            }
            prop_assert_eq!(chain.len(), model.len());
            prop_assert_eq!(chain.coldest(), model.first().copied());
        }
        let cold_order: Vec<u64> = chain.iter_cold().collect();
        prop_assert_eq!(cold_order, model);
    }

    /// Replication never changes what reads observe, regardless of the
    /// (nodes, replication) geometry.
    #[test]
    fn cluster_geometry_is_transparent(
        nodes in 1usize..5,
        writes in prop::collection::vec((0u64..64, any::<u8>()), 1..40),
        replication in 1usize..5,
    ) {
        let replication = replication.min(nodes);
        let mut e = RdmaEndpoint::connect_cluster(
            SimConfig::default(),
            1 << 20,
            nodes,
            replication,
        );
        let mut model = std::collections::HashMap::new();
        for &(page, stamp) in &writes {
            e.write(0, 0, ServiceClass::App, page * 4096, &[stamp; 32]).expect("write");
            model.insert(page, stamp);
        }
        for (&page, &stamp) in &model {
            let mut buf = [0u8; 32];
            e.read(0, 0, ServiceClass::App, page * 4096, &mut buf).expect("read");
            prop_assert!(buf.iter().all(|&b| b == stamp), "page {}", page);
        }
    }
}
