//! An exact O(1) LRU chain over `u64` keys.
//!
//! All three systems in this reproduction maintain a recency order over
//! their resident pages/chunks — DiLOS's page manager "inserts all newly
//! allocated pages into an LRU list" (§4.4), Linux keeps its two-list LRU,
//! and AIFM's evacuator tracks hot objects. [`LruChain`] is that list:
//! O(1) touch/insert/remove via an intrusive doubly-linked chain whose
//! link slots live in a chunked directory indexed directly by key, with
//! tail-first iteration for victim selection. Key sets are dense in
//! practice (frame indices, or VPNs within a working set), so the
//! directory stays compact; a base offset absorbs high key ranges.
//! Recency order lives in the chain itself — the store is position-blind,
//! so no allocator or hash order can leak into victim selection or the
//! trace.

use crate::metrics::MetricsRegistry;
use crate::obs::Observability;

/// Keys per directory chunk (power of two).
const CHUNK: u64 = 256;
/// Link sentinel: "no neighbor".
const NONE: u64 = u64::MAX;

#[derive(Debug, Clone, Copy)]
struct Slot {
    /// More recently used neighbor ([`NONE`] at the head).
    prev: u64,
    /// Less recently used neighbor ([`NONE`] at the tail).
    next: u64,
    /// Whether the key is currently tracked.
    present: bool,
}

impl Slot {
    const EMPTY: Slot = Slot {
        prev: NONE,
        next: NONE,
        present: false,
    };
}

/// Extents closer than this many chunks coalesce into one; further apart
/// they stay separate, so one far-off key never inflates the directory.
const GROW_CHUNKS: u64 = 4096;

/// A contiguous run of slot chunks starting at chunk index `base`.
#[derive(Debug)]
struct Extent {
    base: u64,
    chunks: Vec<Option<Box<[Slot; CHUNK as usize]>>>,
}

/// An exact LRU chain: head = most recently used, tail = least.
#[derive(Debug)]
pub struct LruChain {
    /// Slot directory: a few sorted, non-overlapping extents (key sets are
    /// dense around one or two address bases, so this stays at 1–2 entries
    /// and lookup is two array indexes).
    dir: Vec<Extent>,
    /// Tracked-key count.
    len: usize,
    /// Most recently used key, [`NONE`] when empty.
    head: u64,
    /// Least recently used key, [`NONE`] when empty.
    tail: u64,
    metrics: MetricsRegistry,
}

impl Default for LruChain {
    fn default() -> Self {
        Self::new()
    }
}

impl LruChain {
    /// Creates an empty chain.
    pub fn new() -> Self {
        Self {
            dir: Vec::new(),
            len: 0,
            head: NONE,
            tail: NONE,
            metrics: MetricsRegistry::default(),
        }
    }

    /// Routes recency-churn counters (`lru_inserts` / `lru_touches` /
    /// `lru_removes`) into the bundle's metrics registry.
    pub fn observe(&mut self, obs: &Observability) {
        self.metrics = obs.metrics().clone();
    }

    /// Number of keys tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `key` is tracked.
    pub fn contains(&self, key: u64) -> bool {
        self.slot(key).is_some_and(|s| s.present)
    }

    /// `(extent, chunk)` indices covering chunk `c`, if any extent does.
    fn locate(&self, c: u64) -> Option<(usize, usize)> {
        for (e, ext) in self.dir.iter().enumerate() {
            if c >= ext.base {
                let i = (c - ext.base) as usize;
                if i < ext.chunks.len() {
                    return Some((e, i));
                }
            }
        }
        None
    }

    fn slot(&self, key: u64) -> Option<&Slot> {
        let (e, i) = self.locate(key / CHUNK)?;
        let chunk = self.dir[e].chunks[i].as_ref()?;
        Some(&chunk[(key % CHUNK) as usize])
    }

    fn slot_mut(&mut self, key: u64) -> Option<&mut Slot> {
        let (e, i) = self.locate(key / CHUNK)?;
        let chunk = self.dir[e].chunks[i].as_mut()?;
        Some(&mut chunk[(key % CHUNK) as usize])
    }

    /// Slot of `key`, materializing its chunk (and extent) as needed.
    fn slot_entry(&mut self, key: u64) -> &mut Slot {
        let c = key / CHUNK;
        let (e, i) = match self.locate(c) {
            Some(at) => at,
            None => self.open_chunk(c),
        };
        let chunk = self.dir[e].chunks[i].get_or_insert_with(|| Box::new([Slot::EMPTY; CHUNK as usize]));
        &mut chunk[(key % CHUNK) as usize]
    }

    /// Grows the directory to cover chunk `c`: inserts a fresh extent in
    /// sorted position, then coalesces with neighbors closer than
    /// [`GROW_CHUNKS`] (the gap fills with unmaterialized chunks). Returns
    /// the `(extent, chunk)` indices of `c`.
    fn open_chunk(&mut self, c: u64) -> (usize, usize) {
        let pos = self
            .dir
            .iter()
            .position(|e| e.base > c)
            .unwrap_or(self.dir.len());
        self.dir.insert(
            pos,
            Extent {
                base: c,
                chunks: vec![None],
            },
        );
        let mut e = pos;
        if e + 1 < self.dir.len() && self.dir[e + 1].base - (c + 1) <= GROW_CHUNKS {
            let right = self.dir.remove(e + 1);
            let ext = &mut self.dir[e];
            ext.chunks.resize_with((right.base - ext.base) as usize, || None);
            ext.chunks.extend(right.chunks);
        }
        if e > 0 {
            let left_end = self.dir[e - 1].base + self.dir[e - 1].chunks.len() as u64;
            if c - left_end <= GROW_CHUNKS {
                let cur = self.dir.remove(e);
                e -= 1;
                let ext = &mut self.dir[e];
                ext.chunks.resize_with((cur.base - ext.base) as usize, || None);
                ext.chunks.extend(cur.chunks);
            }
        }
        (e, (c - self.dir[e].base) as usize)
    }

    /// Detaches a tracked key from the chain (its slot stays present).
    fn unlink(&mut self, key: u64) {
        let Some(&l) = self.slot(key).filter(|s| s.present) else {
            return;
        };
        match if l.prev == NONE {
            None
        } else {
            self.slot_mut(l.prev)
        } {
            Some(p) => p.next = l.next,
            None => self.head = l.next,
        }
        match if l.next == NONE {
            None
        } else {
            self.slot_mut(l.next)
        } {
            Some(n) => n.prev = l.prev,
            None => self.tail = l.prev,
        }
    }

    fn push_head(&mut self, key: u64) {
        let old = self.head;
        let s = self.slot_entry(key);
        s.prev = NONE;
        s.next = old;
        s.present = true;
        if old != NONE {
            if let Some(o) = self.slot_mut(old) {
                o.prev = key;
            }
        }
        self.head = key;
        if self.tail == NONE {
            self.tail = key;
        }
    }

    /// Inserts `key` as most recently used (re-inserting touches it).
    pub fn insert(&mut self, key: u64) {
        if self.contains(key) {
            self.unlink(key);
        } else {
            self.len += 1;
        }
        self.push_head(key);
        self.metrics.inc("lru_inserts", 0);
    }

    /// Marks `key` most recently used; no-op if untracked.
    pub fn touch(&mut self, key: u64) {
        if self.head == key {
            return;
        }
        if self.contains(key) {
            self.unlink(key);
            self.push_head(key);
            self.metrics.inc("lru_touches", 0);
        }
    }

    /// Removes `key`. Returns whether it was tracked.
    pub fn remove(&mut self, key: u64) -> bool {
        if self.contains(key) {
            self.unlink(key);
            if let Some(s) = self.slot_mut(key) {
                *s = Slot::EMPTY;
            }
            self.len -= 1;
            self.metrics.inc("lru_removes", 0);
            true
        } else {
            false
        }
    }

    /// The least recently used key.
    pub fn coldest(&self) -> Option<u64> {
        if self.tail == NONE {
            None
        } else {
            Some(self.tail)
        }
    }

    /// Iterates from coldest to hottest (victim scanning).
    pub fn iter_cold(&self) -> IterCold<'_> {
        IterCold {
            chain: self,
            cur: self.tail,
        }
    }
}

/// Cold-to-hot iterator.
#[derive(Debug)]
pub struct IterCold<'a> {
    chain: &'a LruChain,
    cur: u64,
}

impl Iterator for IterCold<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.cur == NONE {
            return None;
        }
        let k = self.cur;
        self.cur = self.chain.slot(k).map_or(NONE, |l| l.prev);
        Some(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_orders_by_recency() {
        let mut l = LruChain::new();
        l.insert(1);
        l.insert(2);
        l.insert(3);
        assert_eq!(l.coldest(), Some(1));
        assert_eq!(l.iter_cold().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn touch_moves_to_head() {
        let mut l = LruChain::new();
        for k in 1..=4 {
            l.insert(k);
        }
        l.touch(1);
        assert_eq!(l.coldest(), Some(2));
        assert_eq!(l.iter_cold().collect::<Vec<_>>(), vec![2, 3, 4, 1]);
        // Touching the head is a cheap no-op.
        l.touch(1);
        assert_eq!(l.iter_cold().collect::<Vec<_>>(), vec![2, 3, 4, 1]);
    }

    #[test]
    fn remove_relinks() {
        let mut l = LruChain::new();
        for k in 1..=3 {
            l.insert(k);
        }
        assert!(l.remove(2));
        assert!(!l.remove(2));
        assert_eq!(l.iter_cold().collect::<Vec<_>>(), vec![1, 3]);
        assert!(l.remove(1));
        assert!(l.remove(3));
        assert!(l.is_empty());
        assert_eq!(l.coldest(), None);
    }

    #[test]
    fn untracked_touch_is_inert() {
        let mut l = LruChain::new();
        l.touch(9);
        assert!(l.is_empty());
        l.insert(1);
        l.touch(9);
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn keys_far_apart_and_below_the_first_key_work() {
        let mut l = LruChain::new();
        // First key establishes a high directory base…
        l.insert(1 << 40);
        // …a far-higher key extends it, and a lower key re-bases it.
        l.insert((1 << 40) + 5_000_000);
        l.insert(3);
        assert_eq!(l.len(), 3);
        assert_eq!(
            l.iter_cold().collect::<Vec<_>>(),
            vec![1 << 40, (1 << 40) + 5_000_000, 3]
        );
        l.touch(1 << 40);
        assert_eq!(l.coldest(), Some((1 << 40) + 5_000_000));
        assert!(l.remove((1 << 40) + 5_000_000));
        assert_eq!(l.iter_cold().collect::<Vec<_>>(), vec![3, 1 << 40]);
    }

    #[test]
    fn heavy_mixed_usage_stays_consistent() {
        let mut l = LruChain::new();
        let mut rng = crate::rng::SplitMix64::new(1);
        let mut present = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let k = rng.gen_range(64);
            match rng.gen_range(3) {
                0 => {
                    l.insert(k);
                    present.insert(k);
                }
                1 => {
                    l.touch(k);
                }
                _ => {
                    l.remove(k);
                    present.remove(&k);
                }
            }
            assert_eq!(l.len(), present.len());
        }
        let seen: Vec<u64> = l.iter_cold().collect();
        assert_eq!(seen.len(), present.len());
        for k in seen {
            assert!(present.contains(&k));
        }
    }
}
