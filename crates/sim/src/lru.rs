//! An exact O(1) LRU chain over `u64` keys.
//!
//! All three systems in this reproduction maintain a recency order over
//! their resident pages/chunks — DiLOS's page manager "inserts all newly
//! allocated pages into an LRU list" (§4.4), Linux keeps its two-list LRU,
//! and AIFM's evacuator tracks hot objects. [`LruChain`] is that list:
//! O(log n) touch/insert/remove via an intrusive doubly-linked chain
//! stored in an ordered map, with tail-first iteration for victim
//! selection. The map is a `BTreeMap` rather than a `HashMap` so that no
//! future change can leak allocator/seed-dependent hash order into victim
//! selection or the trace — recency order lives in the chain itself.

use std::collections::BTreeMap;

use crate::metrics::MetricsRegistry;
use crate::obs::Observability;

#[derive(Debug, Clone, Copy)]
struct Links {
    prev: Option<u64>,
    next: Option<u64>,
}

/// An exact LRU chain: head = most recently used, tail = least.
#[derive(Debug, Default)]
pub struct LruChain {
    links: BTreeMap<u64, Links>,
    head: Option<u64>,
    tail: Option<u64>,
    metrics: MetricsRegistry,
}

impl LruChain {
    /// Creates an empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Routes recency-churn counters (`lru_inserts` / `lru_touches` /
    /// `lru_removes`) into the bundle's metrics registry.
    pub fn observe(&mut self, obs: &Observability) {
        self.metrics = obs.metrics().clone();
    }

    /// Number of keys tracked.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Whether `key` is tracked.
    pub fn contains(&self, key: u64) -> bool {
        self.links.contains_key(&key)
    }

    fn unlink(&mut self, key: u64) {
        let Some(&l) = self.links.get(&key) else {
            return;
        };
        match l.prev.and_then(|p| self.links.get_mut(&p)) {
            Some(p) => p.next = l.next,
            None => self.head = l.next,
        }
        match l.next.and_then(|n| self.links.get_mut(&n)) {
            Some(n) => n.prev = l.prev,
            None => self.tail = l.prev,
        }
    }

    fn push_head(&mut self, key: u64) {
        let old = self.head;
        self.links.insert(
            key,
            Links {
                prev: None,
                next: old,
            },
        );
        if let Some(o) = old.and_then(|o| self.links.get_mut(&o)) {
            o.prev = Some(key);
        }
        self.head = Some(key);
        if self.tail.is_none() {
            self.tail = Some(key);
        }
    }

    /// Inserts `key` as most recently used (re-inserting touches it).
    pub fn insert(&mut self, key: u64) {
        if self.links.contains_key(&key) {
            self.unlink(key);
        }
        self.push_head(key);
        self.metrics.inc("lru_inserts", 0);
    }

    /// Marks `key` most recently used; no-op if untracked.
    pub fn touch(&mut self, key: u64) {
        if self.head == Some(key) {
            return;
        }
        if self.links.contains_key(&key) {
            self.unlink(key);
            self.push_head(key);
            self.metrics.inc("lru_touches", 0);
        }
    }

    /// Removes `key`. Returns whether it was tracked.
    pub fn remove(&mut self, key: u64) -> bool {
        if self.links.contains_key(&key) {
            self.unlink(key);
            self.links.remove(&key);
            self.metrics.inc("lru_removes", 0);
            true
        } else {
            false
        }
    }

    /// The least recently used key.
    pub fn coldest(&self) -> Option<u64> {
        self.tail
    }

    /// Iterates from coldest to hottest (victim scanning).
    pub fn iter_cold(&self) -> IterCold<'_> {
        IterCold {
            chain: self,
            cur: self.tail,
        }
    }
}

/// Cold-to-hot iterator.
#[derive(Debug)]
pub struct IterCold<'a> {
    chain: &'a LruChain,
    cur: Option<u64>,
}

impl Iterator for IterCold<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let k = self.cur?;
        self.cur = self.chain.links.get(&k).and_then(|l| l.prev);
        Some(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_orders_by_recency() {
        let mut l = LruChain::new();
        l.insert(1);
        l.insert(2);
        l.insert(3);
        assert_eq!(l.coldest(), Some(1));
        assert_eq!(l.iter_cold().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn touch_moves_to_head() {
        let mut l = LruChain::new();
        for k in 1..=4 {
            l.insert(k);
        }
        l.touch(1);
        assert_eq!(l.coldest(), Some(2));
        assert_eq!(l.iter_cold().collect::<Vec<_>>(), vec![2, 3, 4, 1]);
        // Touching the head is a cheap no-op.
        l.touch(1);
        assert_eq!(l.iter_cold().collect::<Vec<_>>(), vec![2, 3, 4, 1]);
    }

    #[test]
    fn remove_relinks() {
        let mut l = LruChain::new();
        for k in 1..=3 {
            l.insert(k);
        }
        assert!(l.remove(2));
        assert!(!l.remove(2));
        assert_eq!(l.iter_cold().collect::<Vec<_>>(), vec![1, 3]);
        assert!(l.remove(1));
        assert!(l.remove(3));
        assert!(l.is_empty());
        assert_eq!(l.coldest(), None);
    }

    #[test]
    fn untracked_touch_is_inert() {
        let mut l = LruChain::new();
        l.touch(9);
        assert!(l.is_empty());
        l.insert(1);
        l.touch(9);
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn heavy_mixed_usage_stays_consistent() {
        let mut l = LruChain::new();
        let mut rng = crate::rng::SplitMix64::new(1);
        let mut present = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let k = rng.gen_range(64);
            match rng.gen_range(3) {
                0 => {
                    l.insert(k);
                    present.insert(k);
                }
                1 => {
                    l.touch(k);
                }
                _ => {
                    l.remove(k);
                    present.remove(&k);
                }
            }
            assert_eq!(l.len(), present.len());
        }
        let seen: Vec<u64> = l.iter_cold().collect();
        assert_eq!(seen.len(), present.len());
        for k in seen {
            assert!(present.contains(&k));
        }
    }
}
