//! Structured virtual-time event tracing.
//!
//! Every observable state change in a simulated run — page faults and their
//! phases, RDMA verbs per service class, prefetch lifecycles, reclaim
//! episodes, frame allocation, PTE transitions, guide invocations — can be
//! emitted as a typed [`TraceEvent`] stamped with its `Ns` virtual time.
//! The stream is the single source of truth for *what happened*: the ad-hoc
//! counters in `stats` modules are cross-checked against it, an online
//! auditor (in `dilos-core`) verifies state-machine invariants over it, and
//! an order-sensitive [digest](TraceSink::digest) lets two runs be compared
//! byte-for-byte.
//!
//! Tracing is opt-in and zero-cost when disabled: a [`TraceSink`] is a
//! cloneable handle that is either dark (`TraceSink::disabled()`, the
//! default — `emit` is a single branch on a `None`) or backed by a shared
//! ring buffer plus a running digest. Components hold their own clone of the
//! sink, so one recorder observes a whole system: node, page table, RDMA
//! endpoint, fabric, and memory node all append to the same ordered stream.

use crate::fabric::ServiceClass;
use crate::time::Ns;
use std::cell::RefCell;
use std::rc::Rc;

/// Stable identity of one causal request (demand fault, prefetch, eviction),
/// assigned at origin by [`TraceSink::begin_request`]. Ids are side-band
/// metadata: they ride alongside the event stream to observers and are
/// **never** folded into the digest, so arming causal tracing cannot change
/// a recorded digest.
pub type ReqId = u64;

/// What kind of page fault a `FaultBegin` opens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Demand fetch from remote memory (the PTE was Remote or Action).
    Major,
    /// The page was already in flight (Fetching PTE); the handler waits.
    Minor,
    /// First touch of an unbacked page; no remote traffic.
    ZeroFill,
}

/// One phase of the fault handler's latency breakdown (paper Figs. 1/6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPhase {
    /// Hardware exception + kernel entry cost.
    Exception,
    /// PTE lookup and state check.
    Check,
    /// Waiting for a free frame (allocation stall).
    Alloc,
    /// The remote read itself.
    Fetch,
    /// Installing the PTE and LRU/ring bookkeeping.
    Map,
    /// Reclaim work charged inside the fault path (baselines only).
    Reclaim,
}

/// Page-table entry state class, as seen by the tracer.
///
/// Mirrors `dilos_core::Pte`'s tags without depending on that crate, so the
/// sim layer can carry transitions for any paging system that wants to emit
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PteClass {
    None,
    Local,
    Remote,
    Fetching,
    Action,
}

/// A single traced occurrence. Everything is `Copy` and numeric so emission
/// never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A fault handler invocation begins.
    FaultBegin { core: u8, vpn: u64, kind: FaultKind },
    /// One phase of the in-progress fault took `dur` virtual ns.
    FaultPhase {
        core: u8,
        phase: FaultPhase,
        dur: Ns,
    },
    /// The fault handler returns; the page is usable.
    FaultEnd { core: u8, vpn: u64 },
    /// An RDMA verb is posted to a queue pair.
    RdmaIssue {
        class: ServiceClass,
        write: bool,
        node: u8,
        core: u8,
        bytes: u32,
    },
    /// The verb completed at virtual time `done`.
    RdmaComplete {
        class: ServiceClass,
        write: bool,
        node: u8,
        core: u8,
        done: Ns,
    },
    /// The shared wire carried `bytes` for `class`, finishing at `done`.
    LinkTransfer {
        class: ServiceClass,
        bytes: u32,
        inbound: bool,
        done: Ns,
    },
    /// The memory node served a region access.
    MemAccess { write: bool, offset: u64, len: u32 },
    /// An asynchronous fetch (prefetch/readahead) was issued for `vpn`.
    PrefetchIssue { vpn: u64 },
    /// The in-flight fetch for `vpn` was consumed: mapped, or promoted by a
    /// minor fault.
    PrefetchLand { vpn: u64 },
    /// The in-flight fetch for `vpn` was abandoned without mapping.
    PrefetchCancel { vpn: u64 },
    /// A physical frame left the free list.
    FrameAlloc { frame: u32 },
    /// A physical frame returned to the free list.
    FrameFree { frame: u32 },
    /// The page table moved `vpn` between state classes.
    PteTransition {
        vpn: u64,
        from: PteClass,
        to: PteClass,
    },
    /// `vpn` entered the LRU chain.
    LruInsert { vpn: u64 },
    /// `vpn` left the LRU chain.
    LruRemove { vpn: u64 },
    /// A background reclaim episode starts with `free` frames available.
    ReclaimBegin { free: u32 },
    /// The episode ends having freed `freed` frames.
    ReclaimEnd { freed: u32 },
    /// A resident page was evicted (written back if `dirty`).
    Evict { vpn: u64, dirty: bool },
    /// An app-aware guide ran for `vpn` (`fetch` = fetch-side guide,
    /// otherwise evict-side).
    GuideInvoke { vpn: u64, fetch: bool },
    /// Memory node `node` sealed a checkpoint covering acknowledged intents
    /// up to sequence number `upto`.
    Checkpoint { node: u8, upto: u64 },
    /// Memory node `node` appended (acknowledged) write-intent `seq` before
    /// copying the payload into its page table.
    IntentAppend { node: u8, seq: u64 },
    /// The fault injector crashed memory node `node`: its volatile state is
    /// gone; only the durable checkpoint + intent log survive.
    NodeCrash { node: u8 },
    /// Recovery replayed intent `seq` onto node `node`'s restored
    /// checkpoint.
    RecoveryReplay { node: u8, seq: u64 },
    /// Node `node` finished recovery: `replayed` intents redone,
    /// `reconciled` pages resynced from surviving replicas/EC stripes.
    RecoveryComplete {
        node: u8,
        replayed: u64,
        reconciled: u64,
    },
}

impl FaultKind {
    fn code(self) -> u64 {
        match self {
            FaultKind::Major => 0,
            FaultKind::Minor => 1,
            FaultKind::ZeroFill => 2,
        }
    }
}

impl FaultPhase {
    fn code(self) -> u64 {
        match self {
            FaultPhase::Exception => 0,
            FaultPhase::Check => 1,
            FaultPhase::Alloc => 2,
            FaultPhase::Fetch => 3,
            FaultPhase::Map => 4,
            FaultPhase::Reclaim => 5,
        }
    }
}

impl PteClass {
    fn code(self) -> u64 {
        match self {
            PteClass::None => 0,
            PteClass::Local => 1,
            PteClass::Remote => 2,
            PteClass::Fetching => 3,
            PteClass::Action => 4,
        }
    }

    /// Stable label for reports and violation messages.
    pub fn label(self) -> &'static str {
        match self {
            PteClass::None => "none",
            PteClass::Local => "local",
            PteClass::Remote => "remote",
            PteClass::Fetching => "fetching",
            PteClass::Action => "action",
        }
    }
}

impl TraceEvent {
    /// Encodes the event as up to six u64 words (discriminant first) for the
    /// order-sensitive digest. The encoding is part of the digest's contract:
    /// change it and recorded digests change.
    fn words(&self, out: &mut [u64; 6]) -> usize {
        use TraceEvent::*;
        match *self {
            FaultBegin { core, vpn, kind } => {
                out[..3].copy_from_slice(&[1, ((core as u64) << 8) | kind.code(), vpn]);
                3
            }
            FaultPhase { core, phase, dur } => {
                out[..3].copy_from_slice(&[2, ((core as u64) << 8) | phase.code(), dur]);
                3
            }
            FaultEnd { core, vpn } => {
                out[..3].copy_from_slice(&[3, core as u64, vpn]);
                3
            }
            RdmaIssue {
                class,
                write,
                node,
                core,
                bytes,
            } => {
                out[..3].copy_from_slice(&[4, pack_verb(class, write, node, core), bytes as u64]);
                3
            }
            RdmaComplete {
                class,
                write,
                node,
                core,
                done,
            } => {
                out[..3].copy_from_slice(&[5, pack_verb(class, write, node, core), done]);
                3
            }
            LinkTransfer {
                class,
                bytes,
                inbound,
                done,
            } => {
                out[..4].copy_from_slice(&[
                    6,
                    ((class.idx() as u64) << 1) | inbound as u64,
                    bytes as u64,
                    done,
                ]);
                4
            }
            MemAccess { write, offset, len } => {
                out[..4].copy_from_slice(&[7, write as u64, offset, len as u64]);
                4
            }
            PrefetchIssue { vpn } => {
                out[..2].copy_from_slice(&[8, vpn]);
                2
            }
            PrefetchLand { vpn } => {
                out[..2].copy_from_slice(&[9, vpn]);
                2
            }
            PrefetchCancel { vpn } => {
                out[..2].copy_from_slice(&[10, vpn]);
                2
            }
            FrameAlloc { frame } => {
                out[..2].copy_from_slice(&[11, frame as u64]);
                2
            }
            FrameFree { frame } => {
                out[..2].copy_from_slice(&[12, frame as u64]);
                2
            }
            PteTransition { vpn, from, to } => {
                out[..3].copy_from_slice(&[13, (from.code() << 8) | to.code(), vpn]);
                3
            }
            LruInsert { vpn } => {
                out[..2].copy_from_slice(&[14, vpn]);
                2
            }
            LruRemove { vpn } => {
                out[..2].copy_from_slice(&[15, vpn]);
                2
            }
            ReclaimBegin { free } => {
                out[..2].copy_from_slice(&[16, free as u64]);
                2
            }
            ReclaimEnd { freed } => {
                out[..2].copy_from_slice(&[17, freed as u64]);
                2
            }
            Evict { vpn, dirty } => {
                out[..3].copy_from_slice(&[18, dirty as u64, vpn]);
                3
            }
            GuideInvoke { vpn, fetch } => {
                out[..3].copy_from_slice(&[19, fetch as u64, vpn]);
                3
            }
            Checkpoint { node, upto } => {
                out[..3].copy_from_slice(&[20, node as u64, upto]);
                3
            }
            IntentAppend { node, seq } => {
                out[..3].copy_from_slice(&[21, node as u64, seq]);
                3
            }
            NodeCrash { node } => {
                out[..2].copy_from_slice(&[22, node as u64]);
                2
            }
            RecoveryReplay { node, seq } => {
                out[..3].copy_from_slice(&[23, node as u64, seq]);
                3
            }
            RecoveryComplete {
                node,
                replayed,
                reconciled,
            } => {
                out[..4].copy_from_slice(&[24, node as u64, replayed, reconciled]);
                4
            }
        }
    }
}

fn pack_verb(class: ServiceClass, write: bool, node: u8, core: u8) -> u64 {
    ((class.idx() as u64) << 24) | ((write as u64) << 16) | ((node as u64) << 8) | core as u64
}

/// Consumes events as they are emitted (the auditor implements this).
///
/// Observers run synchronously inside `emit`, in attach order, *after* the
/// event has been folded into the digest and stored.
pub trait TraceObserver {
    fn on_event(&mut self, t: Ns, ev: &TraceEvent);

    /// Like [`TraceObserver::on_event`] but also carries the request id that
    /// was current when the event was emitted (None for background /
    /// unattributed events). The default forwards to `on_event`, so
    /// observers that do not care about causality (auditor, profiler) need
    /// not change.
    fn on_event_req(&mut self, t: Ns, ev: &TraceEvent, req: Option<ReqId>) {
        let _ = req;
        self.on_event(t, ev);
    }
}

/// Small enough (4 Ki events ≈ 160 KiB) that the ring stays cache-resident
/// on the emit path; the digest and count still cover every event ever
/// emitted, the ring only bounds how much history `events()` can replay.
const DEFAULT_RING_CAP: usize = 1 << 12;

struct TraceCore {
    /// Ring of the most recent events (oldest at `head` once wrapped).
    ring: Vec<(Ns, TraceEvent)>,
    cap: usize,
    head: usize,
    /// Order-sensitive FNV-1a digest over *all* events ever emitted.
    digest: u64,
    /// Total emitted (≥ ring contents when the ring has wrapped).
    count: u64,
    observers: Vec<Rc<RefCell<dyn TraceObserver>>>,
    /// Next request id to hand out (ids start at 1; 0 is never issued).
    next_req: ReqId,
    /// The request currently on the (virtual) CPU: events emitted while it
    /// is set are attributed to it. Side-band only — never digested.
    current_req: Option<ReqId>,
}

impl TraceCore {
    fn push(&mut self, t: Ns, ev: TraceEvent) {
        let mut words = [0u64; 6];
        let n = ev.words(&mut words);
        let mut h = self.digest;
        h = fold_u64(h, t);
        for &w in &words[..n] {
            h = fold_u64(h, w);
        }
        self.digest = h;
        self.count += 1;
        if self.ring.len() < self.cap {
            self.ring.push((t, ev));
        } else {
            self.ring[self.head] = (t, ev);
            self.head += 1;
            if self.head == self.cap {
                self.head = 0;
            }
        }
    }
}

const FNV_PRIME: u64 = 0x1000_0000_01B3;

/// `FNV_POW[i]` = `FNV_PRIME`^`i` (mod 2^64).
const FNV_POW: [u64; 9] = {
    let mut p = [1u64; 9];
    let mut i = 1;
    while i < 9 {
        p[i] = p[i - 1].wrapping_mul(FNV_PRIME);
        i += 1;
    }
    p
};

/// FNV-1a over the word's 8 little-endian bytes.
///
/// Folding a zero byte is exactly `h = h * PRIME` (xor with zero is the
/// identity), so the word's zero *tail* collapses into a single multiply
/// by `PRIME^k` — bit-identical to the byte-at-a-time loop, but most
/// trace words are small and skip the majority of the eight iterations.
/// (Only the tail can be skipped: interior zero bytes still reorder the
/// xor/multiply interleaving and must be folded positionally.)
#[inline]
fn fold_u64(mut h: u64, w: u64) -> u64 {
    let nz = if w == 0 {
        0
    } else {
        8 - (w.leading_zeros() as usize) / 8
    };
    let bytes = w.to_le_bytes();
    for &b in &bytes[..nz] {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h.wrapping_mul(FNV_POW[8 - nz])
}

/// Cloneable handle to a (possibly absent) trace recorder.
///
/// All clones share one buffer; `TraceSink::disabled()` (and `Default`) is
/// the dark handle whose `emit` compiles to a null check.
#[derive(Clone, Default)]
pub struct TraceSink {
    inner: Option<Rc<RefCell<TraceCore>>>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "TraceSink(disabled)"),
            Some(_) => write!(
                f,
                "TraceSink(events={}, digest={:#018x})",
                self.count(),
                self.digest()
            ),
        }
    }
}

impl TraceSink {
    /// The dark handle: nothing is recorded, `emit` is a branch on `None`.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A recording sink with the default ring capacity (4 Ki events).
    pub fn recording() -> Self {
        Self::with_capacity(DEFAULT_RING_CAP)
    }

    /// A recording sink keeping at most `cap` events (digest and count still
    /// cover everything emitted).
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            inner: Some(Rc::new(RefCell::new(TraceCore {
                ring: Vec::new(),
                cap: cap.max(1),
                head: 0,
                digest: 0xCBF2_9CE4_8422_2325,
                count: 0,
                observers: Vec::new(),
                next_req: 1,
                current_req: None,
            }))),
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one event. No-op (one branch) when disabled.
    #[inline]
    pub fn emit(&self, t: Ns, ev: TraceEvent) {
        let Some(core) = &self.inner else { return };
        let mut c = core.borrow_mut();
        c.push(t, ev);
        if c.observers.is_empty() {
            return;
        }
        // Observers run outside the borrow so they may re-enter the sink
        // (e.g. read the digest); the clone is only paid when some are
        // attached.
        let (observers, req): (Vec<_>, Option<ReqId>) = (c.observers.clone(), c.current_req);
        drop(c);
        for obs in observers {
            obs.borrow_mut().on_event_req(t, &ev, req);
        }
    }

    /// Allocates a fresh request id, installs it as current, and returns the
    /// *previous* register value so the caller can restore it when the
    /// request's origin scope ends. Disabled sinks hand out nothing.
    pub fn begin_request(&self) -> Option<ReqId> {
        let Some(core) = &self.inner else { return None };
        let mut c = core.borrow_mut();
        let id = c.next_req;
        c.next_req += 1;
        c.current_req.replace(id)
    }

    /// Installs `req` as the current request, returning the previous value.
    /// Use `set_request(None)` at dispatch boundaries so deferred calendar
    /// work never inherits the interrupted request's identity.
    pub fn set_request(&self, req: Option<ReqId>) -> Option<ReqId> {
        let Some(core) = &self.inner else { return None };
        let mut c = core.borrow_mut();
        std::mem::replace(&mut c.current_req, req)
    }

    /// The request currently on the register, if any.
    pub fn current_request(&self) -> Option<ReqId> {
        self.inner.as_ref().and_then(|c| c.borrow().current_req)
    }

    /// Attaches an observer that sees every subsequent event.
    pub fn attach(&self, obs: Rc<RefCell<dyn TraceObserver>>) {
        if let Some(core) = &self.inner {
            core.borrow_mut().observers.push(obs);
        }
    }

    /// The order-sensitive digest over every event emitted so far.
    /// Disabled sinks report 0.
    pub fn digest(&self) -> u64 {
        self.inner.as_ref().map_or(0, |c| c.borrow().digest)
    }

    /// Total events emitted (including any the ring has since dropped).
    pub fn count(&self) -> u64 {
        self.inner.as_ref().map_or(0, |c| c.borrow().count)
    }

    /// Events still held by the ring, oldest first.
    pub fn events(&self) -> Vec<(Ns, TraceEvent)> {
        match &self.inner {
            None => Vec::new(),
            Some(core) => {
                let c = core.borrow();
                let mut out = Vec::with_capacity(c.ring.len());
                out.extend_from_slice(&c.ring[c.head..]);
                out.extend_from_slice(&c.ring[..c.head]);
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_inert() {
        let s = TraceSink::disabled();
        s.emit(5, TraceEvent::FrameAlloc { frame: 1 });
        assert!(!s.is_enabled());
        assert_eq!(s.digest(), 0);
        assert_eq!(s.count(), 0);
        assert!(s.events().is_empty());
    }

    #[test]
    fn digest_is_order_sensitive() {
        let a = TraceSink::recording();
        a.emit(1, TraceEvent::FrameAlloc { frame: 1 });
        a.emit(2, TraceEvent::FrameFree { frame: 1 });
        let b = TraceSink::recording();
        b.emit(2, TraceEvent::FrameFree { frame: 1 });
        b.emit(1, TraceEvent::FrameAlloc { frame: 1 });
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn zero_tail_fold_matches_the_byte_loop() {
        // The shipped `fold_u64` skips a word's zero tail via one multiply
        // by PRIME^k; it must agree bit-for-bit with the plain FNV-1a
        // byte loop on every word shape (all-zero, interior zeros, full
        // width, single bytes at each position).
        fn reference(mut h: u64, w: u64) -> u64 {
            for b in w.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
            h
        }
        let mut cases = vec![0u64, 1, 0xFF, u64::MAX, 0x0100, 0x00FF_00FF_00FF_00FF];
        for shift in 0..8 {
            cases.push(0xABu64 << (8 * shift));
            cases.push((u64::MAX >> (8 * shift)).wrapping_sub(3));
        }
        // SplitMix64 stream for adversarial coverage.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..10_000 {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            cases.push(z ^ (z >> 31));
            // Bias toward small words (the common trace shape).
            cases.push((z ^ (z >> 31)) & 0xFFFF);
        }
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        let mut r = h;
        for &w in &cases {
            h = fold_u64(h, w);
            r = reference(r, w);
            assert_eq!(h, r, "divergence on word {w:#x}");
        }
    }

    #[test]
    fn identical_streams_agree() {
        let mk = || {
            let s = TraceSink::recording();
            for i in 0..100u64 {
                s.emit(
                    i,
                    TraceEvent::PteTransition {
                        vpn: i,
                        from: PteClass::Remote,
                        to: PteClass::Fetching,
                    },
                );
            }
            s.digest()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn ring_drops_oldest_but_digest_covers_all() {
        let s = TraceSink::with_capacity(4);
        for i in 0..10u64 {
            s.emit(i, TraceEvent::FrameAlloc { frame: i as u32 });
        }
        let evs = s.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].0, 6, "oldest surviving event");
        assert_eq!(evs[3].0, 9);
        assert_eq!(s.count(), 10);
    }

    #[test]
    fn clones_share_the_stream() {
        let s = TraceSink::recording();
        let s2 = s.clone();
        s.emit(1, TraceEvent::FrameAlloc { frame: 7 });
        s2.emit(2, TraceEvent::FrameFree { frame: 7 });
        assert_eq!(s.count(), 2);
        assert_eq!(s.digest(), s2.digest());
    }

    #[test]
    fn request_register_rides_side_band_and_never_digests() {
        struct Tags {
            seen: Vec<(Ns, Option<ReqId>)>,
        }
        impl TraceObserver for Tags {
            fn on_event(&mut self, _t: Ns, _ev: &TraceEvent) {}
            fn on_event_req(&mut self, t: Ns, _ev: &TraceEvent, req: Option<ReqId>) {
                self.seen.push((t, req));
            }
        }
        let bare = TraceSink::recording();
        bare.emit(1, TraceEvent::FrameAlloc { frame: 0 });
        bare.emit(2, TraceEvent::FrameFree { frame: 0 });

        let s = TraceSink::recording();
        let tags = Rc::new(RefCell::new(Tags { seen: Vec::new() }));
        s.attach(tags.clone());
        let prev = s.begin_request();
        assert_eq!(prev, None);
        assert_eq!(s.current_request(), Some(1));
        s.emit(1, TraceEvent::FrameAlloc { frame: 0 });
        let outer = s.set_request(None);
        s.emit(2, TraceEvent::FrameFree { frame: 0 });
        s.set_request(outer);
        assert_eq!(
            tags.borrow().seen,
            vec![(1, Some(1)), (2, None)],
            "ids ride the side band"
        );
        // Identical event stream, with and without request ids: same digest.
        assert_eq!(s.digest(), bare.digest(), "request ids must not digest");
    }

    #[test]
    fn disabled_sink_hands_out_no_requests() {
        let s = TraceSink::disabled();
        assert_eq!(s.begin_request(), None);
        assert_eq!(s.current_request(), None);
        assert_eq!(s.set_request(Some(9)), None);
        assert_eq!(s.current_request(), None);
    }

    #[test]
    fn observers_see_events_in_order() {
        struct Counter {
            seen: Vec<Ns>,
        }
        impl TraceObserver for Counter {
            fn on_event(&mut self, t: Ns, _ev: &TraceEvent) {
                self.seen.push(t);
            }
        }
        let s = TraceSink::recording();
        let c = Rc::new(RefCell::new(Counter { seen: Vec::new() }));
        s.attach(c.clone());
        s.emit(3, TraceEvent::FrameAlloc { frame: 0 });
        s.emit(9, TraceEvent::FrameFree { frame: 0 });
        assert_eq!(c.borrow().seen, vec![3, 9]);
    }
}
