//! Reed–Solomon erasure coding over GF(256).
//!
//! The DiLOS paper points at "erasure-coding-based replication \[Carbink\]"
//! as the candidate fault-tolerance mechanism (§5.1) and cites Hydra and
//! Carbink for using it to cut replication's memory overhead (§7). This
//! module implements the coder those systems rely on: `k` data shards plus
//! `m` parity shards, any `k` of the `k + m` suffice to reconstruct.
//!
//! The code is systematic Cauchy Reed–Solomon: parity row `j` uses the
//! Cauchy coefficients `1 / (x_j ⊕ y_i)` over GF(256). Every square
//! submatrix of a Cauchy matrix is invertible, so the code is MDS for
//! *every* erasure pattern of at most `m` shards — the property the
//! identity-stacked Vandermonde construction famously lacks.
//! Reconstruction solves the surviving rows by Gauss–Jordan elimination.

/// GF(256) arithmetic with the Reed–Solomon polynomial `x⁸+x⁴+x³+x²+1`
/// (0x11D), under which α = 2 is primitive — the field every classic RS
/// deployment (CCSDS, RAID-6, par2) uses.
#[derive(Debug, Clone)]
pub struct Gf256 {
    exp: [u8; 512],
    log: [u8; 256],
}

impl Default for Gf256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Gf256 {
    /// Builds the log/antilog tables.
    #[allow(clippy::needless_range_loop)] // Index-coupled table fills.
    pub fn new() -> Self {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for i in 0..255 {
            exp[i] = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= 0x11D;
            }
        }
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Self { exp, log }
    }

    /// Multiplication in GF(256).
    pub fn mul(&self, a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            return 0;
        }
        self.exp[self.log[a as usize] as usize + self.log[b as usize] as usize]
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics on zero (no inverse exists).
    pub fn inv(&self, a: u8) -> u8 {
        assert!(a != 0, "zero has no inverse in GF(256)");
        self.exp[255 - self.log[a as usize] as usize]
    }

    /// `α^e` for the generator α = 2.
    pub fn pow_alpha(&self, e: usize) -> u8 {
        self.exp[e % 255]
    }
}

/// A systematic Reed–Solomon coder: `k` data shards, `m` parity shards.
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    gf: Gf256,
    k: usize,
    m: usize,
}

/// Erasure-coding errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcError {
    /// Fewer than `k` shards survive: the data is unrecoverable.
    TooFewShards,
    /// Shard lengths disagree.
    ShardSizeMismatch,
}

impl std::fmt::Display for EcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EcError::TooFewShards => write!(f, "fewer than k shards survive"),
            EcError::ShardSizeMismatch => write!(f, "shard sizes disagree"),
        }
    }
}

impl std::error::Error for EcError {}

impl ReedSolomon {
    /// Creates a coder for `k` data + `m` parity shards.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ k`, `1 ≤ m`, and `k + m ≤ 256` (the Cauchy
    /// construction needs `k + m` distinct field elements).
    pub fn new(k: usize, m: usize) -> Self {
        assert!(k >= 1 && m >= 1 && k + m <= 256, "invalid RS geometry");
        Self {
            gf: Gf256::new(),
            k,
            m,
        }
    }

    /// Data shards.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Parity shards.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Cauchy coefficient of data shard `i` in parity row `j`:
    /// `1 / (x_j ⊕ y_i)` with `x_j = k + j` and `y_i = i` (all distinct).
    ///
    /// Public because delta-updates (`new_parity = old_parity ⊕ c·Δdata`)
    /// need the per-lane coefficient — the linearity the `encode_is_linear`
    /// test pins down.
    pub fn coeff(&self, j: usize, i: usize) -> u8 {
        self.gf.inv(((self.k + j) as u8) ^ (i as u8))
    }

    /// Applies a data delta to a parity buffer in place:
    /// `parity ⊕= coeff(j, lane) · delta`.
    pub fn apply_delta(&self, j: usize, lane: usize, delta: &[u8], parity: &mut [u8]) {
        let c = self.coeff(j, lane);
        for (p, &d) in parity.iter_mut().zip(delta) {
            *p ^= self.gf.mul(c, d);
        }
    }

    /// Computes the `m` parity shards for `data` (each shard same length).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != k` or shard lengths differ.
    pub fn encode(&self, data: &[&[u8]]) -> Vec<Vec<u8>> {
        assert_eq!(data.len(), self.k, "expected k data shards");
        let len = data[0].len();
        assert!(data.iter().all(|d| d.len() == len), "shard sizes differ");
        let mut parity = vec![vec![0u8; len]; self.m];
        for (j, p) in parity.iter_mut().enumerate() {
            for (i, d) in data.iter().enumerate() {
                let c = self.coeff(j, i);
                if c == 1 {
                    for (pb, &db) in p.iter_mut().zip(*d) {
                        *pb ^= db;
                    }
                } else {
                    for (pb, &db) in p.iter_mut().zip(*d) {
                        *pb ^= self.gf.mul(c, db);
                    }
                }
            }
        }
        parity
    }

    /// Reconstructs the missing shards in place.
    ///
    /// `shards` holds `k + m` entries (data first, then parity); `None`
    /// marks an erasure. On success every entry is `Some` and the data
    /// shards carry their original contents.
    #[allow(clippy::needless_range_loop)] // Row/column indices are the math.
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), EcError> {
        assert_eq!(shards.len(), self.k + self.m, "expected k+m shards");
        let present: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].is_some()).collect();
        if present.len() < self.k {
            return Err(EcError::TooFewShards);
        }
        let mut present_shards = present.iter().filter_map(|&i| shards[i].as_deref());
        let Some(len) = present_shards.next().map(<[u8]>::len) else {
            return Err(EcError::TooFewShards);
        };
        if present_shards.any(|s| s.len() != len) {
            return Err(EcError::ShardSizeMismatch);
        }
        let missing_data: Vec<usize> = (0..self.k).filter(|&i| shards[i].is_none()).collect();
        if !missing_data.is_empty() {
            // Build the generalized system: each surviving row (identity for
            // data, Vandermonde for parity) gives one equation over the k
            // data shards. Take the first k surviving rows and invert.
            let rows: Vec<usize> = present.iter().take(self.k).copied().collect();
            let mut matrix = vec![vec![0u8; self.k]; self.k];
            let mut rhs: Vec<&[u8]> = Vec::with_capacity(self.k);
            for (r, &row) in rows.iter().enumerate() {
                if row < self.k {
                    matrix[r][row] = 1;
                } else {
                    for i in 0..self.k {
                        matrix[r][i] = self.coeff(row - self.k, i);
                    }
                }
                let Some(s) = shards[row].as_deref() else {
                    return Err(EcError::TooFewShards);
                };
                rhs.push(s);
            }
            let inverse = self.invert(matrix)?;
            // data_i = Σ_r inverse[i][r] · rhs[r].
            let mut rebuilt: Vec<Vec<u8>> = Vec::new();
            for &i in &missing_data {
                let mut out = vec![0u8; len];
                for (r, rv) in rhs.iter().enumerate() {
                    let c = inverse[i][r];
                    if c == 0 {
                        continue;
                    }
                    for (ob, &sb) in out.iter_mut().zip(*rv) {
                        *ob ^= self.gf.mul(c, sb);
                    }
                }
                rebuilt.push(out);
            }
            for (&i, out) in missing_data.iter().zip(rebuilt) {
                shards[i] = Some(out);
            }
        }
        // Recompute any missing parity from the (now complete) data.
        if (self.k..self.k + self.m).any(|i| shards[i].is_none()) {
            // Every data shard is `Some` after the rebuild above; collect
            // fallibly all the same so a logic slip surfaces as an error.
            let data: Vec<&[u8]> = shards[..self.k]
                .iter()
                .filter_map(|s| s.as_deref())
                .collect();
            if data.len() < self.k {
                return Err(EcError::TooFewShards);
            }
            let parity = self.encode(&data);
            for (j, p) in parity.into_iter().enumerate() {
                if shards[self.k + j].is_none() {
                    shards[self.k + j] = Some(p);
                }
            }
        }
        Ok(())
    }

    /// Gauss–Jordan inversion over GF(256).
    fn invert(&self, mut a: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>, EcError> {
        let n = a.len();
        let mut inv: Vec<Vec<u8>> = (0..n)
            .map(|i| (0..n).map(|j| u8::from(i == j)).collect())
            .collect();
        for col in 0..n {
            // Pivot.
            let pivot = (col..n)
                .find(|&r| a[r][col] != 0)
                .ok_or(EcError::TooFewShards)?;
            a.swap(col, pivot);
            inv.swap(col, pivot);
            let d = self.gf.inv(a[col][col]);
            for j in 0..n {
                a[col][j] = self.gf.mul(a[col][j], d);
                inv[col][j] = self.gf.mul(inv[col][j], d);
            }
            for r in 0..n {
                if r == col || a[r][col] == 0 {
                    continue;
                }
                let f = a[r][col];
                for j in 0..n {
                    let av = self.gf.mul(f, a[col][j]);
                    a[r][j] ^= av;
                    let iv = self.gf.mul(f, inv[col][j]);
                    inv[r][j] ^= iv;
                }
            }
        }
        Ok(inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn gf_field_axioms_hold() {
        let gf = Gf256::new();
        let mut rng = SplitMix64::new(1);
        for _ in 0..2_000 {
            let a = rng.next_u64() as u8;
            let b = rng.next_u64() as u8;
            let c = rng.next_u64() as u8;
            assert_eq!(gf.mul(a, b), gf.mul(b, a));
            assert_eq!(gf.mul(a, gf.mul(b, c)), gf.mul(gf.mul(a, b), c));
            assert_eq!(gf.mul(a, 1), a);
            assert_eq!(gf.mul(a, 0), 0);
            if a != 0 {
                assert_eq!(gf.mul(a, gf.inv(a)), 1, "a = {a}");
            }
        }
    }

    fn shards(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = SplitMix64::new(seed);
        (0..k)
            .map(|_| (0..len).map(|_| rng.next_u64() as u8).collect())
            .collect()
    }

    #[test]
    fn xor_parity_recovers_one_loss() {
        let rs = ReedSolomon::new(3, 1);
        let data = shards(3, 64, 7);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = rs.encode(&refs);
        for lost in 0..4 {
            let mut all: Vec<Option<Vec<u8>>> = data
                .iter()
                .cloned()
                .map(Some)
                .chain(parity.iter().cloned().map(Some))
                .collect();
            all[lost] = None;
            rs.reconstruct(&mut all).expect("one loss is recoverable");
            for (i, d) in data.iter().enumerate() {
                assert_eq!(all[i].as_ref().expect("present"), d, "lost {lost}");
            }
        }
    }

    #[test]
    fn rs_recovers_any_m_losses() {
        for (k, m) in [(2usize, 2usize), (4, 2), (5, 3)] {
            let rs = ReedSolomon::new(k, m);
            let data = shards(k, 48, (k * 10 + m) as u64);
            let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            let parity = rs.encode(&refs);
            // Erase every combination of m shards (small spaces only).
            let total = k + m;
            for mask in 0u32..(1 << total) {
                if mask.count_ones() as usize != m {
                    continue;
                }
                let mut all: Vec<Option<Vec<u8>>> = data
                    .iter()
                    .cloned()
                    .map(Some)
                    .chain(parity.iter().cloned().map(Some))
                    .collect();
                for (i, slot) in all.iter_mut().enumerate().take(total) {
                    if mask & (1 << i) != 0 {
                        *slot = None;
                    }
                }
                rs.reconstruct(&mut all)
                    .unwrap_or_else(|e| panic!("k={k} m={m} mask={mask:b}: {e}"));
                for (i, d) in data.iter().enumerate() {
                    assert_eq!(all[i].as_ref().expect("present"), d, "mask {mask:b}");
                }
            }
        }
    }

    #[test]
    fn too_many_losses_are_rejected() {
        let rs = ReedSolomon::new(3, 1);
        let data = shards(3, 16, 3);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = rs.encode(&refs);
        let mut all: Vec<Option<Vec<u8>>> = data
            .into_iter()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        all[0] = None;
        all[2] = None;
        assert_eq!(rs.reconstruct(&mut all), Err(EcError::TooFewShards));
    }

    #[test]
    fn encode_is_linear() {
        // Parity of (A ⊕ B) equals parity(A) ⊕ parity(B): the code is a
        // linear map, which is what lets delta-updates work.
        let rs = ReedSolomon::new(4, 2);
        let a = shards(4, 32, 9);
        let b = shards(4, 32, 10);
        let xor: Vec<Vec<u8>> = a
            .iter()
            .zip(&b)
            .map(|(x, y)| x.iter().zip(y).map(|(p, q)| p ^ q).collect())
            .collect();
        let enc = |d: &[Vec<u8>]| {
            let refs: Vec<&[u8]> = d.iter().map(|v| v.as_slice()).collect();
            rs.encode(&refs)
        };
        let (pa, pb, px) = (enc(&a), enc(&b), enc(&xor));
        for j in 0..2 {
            for i in 0..32 {
                assert_eq!(px[j][i], pa[j][i] ^ pb[j][i]);
            }
        }
    }
}
