//! The discrete-event calendar: background work at true virtual times.
//!
//! Earlier revisions of this simulator modeled background concurrency
//! lazily — a whole reclaim episode executed at one virtual instant, and
//! landed prefetches were only mapped when a reclaim episode happened to
//! run. The [`Calendar`] replaces that with a real discrete-event engine:
//! components *schedule* typed [`SchedEvent`]s at their true completion
//! times and the owning node *drains* everything due before each access, so
//! prefetch landings, incremental reclaim ticks, cleaner writebacks, RDMA
//! completions, and node repairs all interleave with foreground faults on
//! one shared virtual timeline.
//!
//! Determinism is part of the contract: the heap is keyed on `(Ns, seq)`
//! where `seq` is a monotone insertion counter, so two events due at the
//! same instant always pop in the order they were scheduled — no hash-map
//! iteration or allocator-address dependence can leak into the event order.
//!
//! Like [`TraceSink`](crate::trace::TraceSink), a `Calendar` is a cheap
//! cloneable handle over shared state: the paging node, its RDMA endpoint,
//! and any background daemon all hold clones of the same calendar.

use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::rc::Rc;

use crate::fabric::ServiceClass;
use crate::metrics::MetricsRegistry;
use crate::time::Ns;

/// Identifies a scheduled event so it can be cancelled before delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

/// A typed background occurrence scheduled for a future virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedEvent {
    /// An in-flight fetch for `vpn` arrives; `token` names the in-flight
    /// table slot it was issued from so a stale landing (slot reused after
    /// the original fetch was consumed or abandoned) can be recognized.
    PrefetchLand { vpn: u64, token: u32 },
    /// One step of the background reclaimer: scan and evict (at most) one
    /// victim, then reschedule if the pool is still below the high
    /// watermark.
    ReclaimTick,
    /// The cleaner finished writing back the page that occupied `frame`;
    /// the frame returns to the free list now.
    CleanerWriteback { frame: u32 },
    /// An RDMA verb completed on the wire (mirrors
    /// [`TraceEvent::RdmaComplete`](crate::trace::TraceEvent::RdmaComplete),
    /// which is emitted at delivery time).
    RdmaCompletion {
        class: ServiceClass,
        write: bool,
        node: u8,
        core: u8,
    },
    /// A failed memory node comes back and must be resynced.
    NodeRepair { node: usize },
    /// A recurring telemetry tick: snapshot every registered gauge into its
    /// virtual-time series. These live on the metrics registry's *private*
    /// calendar — never on a system's main calendar, where they would
    /// perturb `next_due`-driven wait loops and break the purity guarantee
    /// that trace digests are identical with metrics on or off.
    SampleTick,
}

/// One calendar entry. Ordered by `(at, seq)` — earliest first, insertion
/// order breaking ties.
#[derive(Debug, Clone)]
struct Entry {
    at: Ns,
    seq: u64,
    ev: SchedEvent,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest entry
        // (smallest `(at, seq)`) on top.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

#[derive(Debug, Default)]
struct CalendarCore {
    heap: BinaryHeap<Entry>,
    /// Lazily-cancelled entries, dropped when they surface.
    cancelled: HashSet<u64>,
    next_seq: u64,
    /// Scheduler telemetry (`sched_scheduled` / `sched_delivered` /
    /// `sched_cancelled`). Disabled by default; pure observation either
    /// way — counters never influence ordering or sequence numbers.
    metrics: MetricsRegistry,
}

impl CalendarCore {
    /// Drops cancelled entries off the top of the heap.
    fn skim(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.remove(&top.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

/// A cloneable handle to a shared deterministic event calendar.
#[derive(Clone, Default)]
pub struct Calendar {
    inner: Rc<RefCell<CalendarCore>>,
}

impl std::fmt::Debug for Calendar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Calendar(pending={})", self.len())
    }
}

impl Calendar {
    /// An empty calendar.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a metrics handle for scheduler counters. The registry is
    /// write-only from here: it cannot perturb event order, timing, or
    /// sequence numbers.
    pub fn set_metrics(&self, metrics: MetricsRegistry) {
        self.inner.borrow_mut().metrics = metrics;
    }

    /// Schedules `ev` for delivery at virtual time `at`.
    ///
    /// Events due at the same instant are delivered in scheduling order.
    pub fn schedule(&self, at: Ns, ev: SchedEvent) -> EventId {
        let mut c = self.inner.borrow_mut();
        let seq = c.next_seq;
        c.next_seq += 1;
        c.heap.push(Entry { at, seq, ev });
        c.metrics.inc("sched_scheduled", 0);
        EventId(seq)
    }

    /// Cancels a pending event. Returns false if it was already delivered
    /// or cancelled.
    pub fn cancel(&self, id: EventId) -> bool {
        let mut c = self.inner.borrow_mut();
        let live = c.heap.iter().any(|e| e.seq == id.0);
        if live && c.cancelled.insert(id.0) {
            c.skim();
            c.metrics.inc("sched_cancelled", 0);
            true
        } else {
            false
        }
    }

    /// The delivery time of the next pending event, if any.
    pub fn next_due(&self) -> Option<Ns> {
        let mut c = self.inner.borrow_mut();
        c.skim();
        c.heap.peek().map(|e| e.at)
    }

    /// Pops the next event due at or before `now`, with its delivery time.
    pub fn pop_due(&self, now: Ns) -> Option<(Ns, SchedEvent)> {
        let mut c = self.inner.borrow_mut();
        c.skim();
        if c.heap.peek().is_some_and(|e| e.at <= now) {
            let popped = c.heap.pop().map(|e| (e.at, e.ev));
            if popped.is_some() {
                c.metrics.inc("sched_delivered", 0);
            }
            popped
        } else {
            None
        }
    }

    /// Pops the next event regardless of its due time (used to quiesce the
    /// system at end of run, when no more foreground work will advance the
    /// clocks past pending deliveries).
    pub fn pop_next(&self) -> Option<(Ns, SchedEvent)> {
        let mut c = self.inner.borrow_mut();
        c.skim();
        let popped = c.heap.pop().map(|e| (e.at, e.ev));
        if popped.is_some() {
            c.metrics.inc("sched_delivered", 0);
        }
        popped
    }

    /// Pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        let c = self.inner.borrow();
        c.heap.len() - c.cancelled.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let c = Calendar::new();
        c.schedule(300, SchedEvent::ReclaimTick);
        c.schedule(100, SchedEvent::CleanerWriteback { frame: 1 });
        c.schedule(200, SchedEvent::NodeRepair { node: 0 });
        assert_eq!(c.next_due(), Some(100));
        assert_eq!(
            c.pop_next(),
            Some((100, SchedEvent::CleanerWriteback { frame: 1 }))
        );
        assert_eq!(
            c.pop_next(),
            Some((200, SchedEvent::NodeRepair { node: 0 }))
        );
        assert_eq!(c.pop_next(), Some((300, SchedEvent::ReclaimTick)));
        assert!(c.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let c = Calendar::new();
        for token in 0..16u32 {
            c.schedule(50, SchedEvent::PrefetchLand { vpn: 0, token });
        }
        for expect in 0..16u32 {
            let Some((50, SchedEvent::PrefetchLand { token, .. })) = c.pop_next() else {
                panic!("expected a tie-broken landing");
            };
            assert_eq!(token, expect, "ties must pop in scheduling order");
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let c = Calendar::new();
        c.schedule(100, SchedEvent::ReclaimTick);
        c.schedule(200, SchedEvent::ReclaimTick);
        assert!(c.pop_due(99).is_none());
        assert_eq!(c.pop_due(100), Some((100, SchedEvent::ReclaimTick)));
        assert!(c.pop_due(150).is_none());
        assert_eq!(c.pop_due(250), Some((200, SchedEvent::ReclaimTick)));
        assert!(c.pop_due(u64::MAX).is_none());
    }

    #[test]
    fn cancel_suppresses_delivery() {
        let c = Calendar::new();
        let a = c.schedule(10, SchedEvent::PrefetchLand { vpn: 1, token: 0 });
        let b = c.schedule(20, SchedEvent::PrefetchLand { vpn: 2, token: 1 });
        assert!(c.cancel(a));
        assert!(!c.cancel(a), "double cancel reports false");
        assert_eq!(c.len(), 1);
        assert_eq!(
            c.pop_next(),
            Some((20, SchedEvent::PrefetchLand { vpn: 2, token: 1 }))
        );
        assert!(!c.cancel(b), "cancel after delivery reports false");
    }

    #[test]
    fn clones_share_one_calendar() {
        let c = Calendar::new();
        let c2 = c.clone();
        c.schedule(5, SchedEvent::ReclaimTick);
        assert_eq!(c2.len(), 1);
        assert_eq!(c2.pop_due(5), Some((5, SchedEvent::ReclaimTick)));
        assert!(c.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_is_deterministic() {
        let run = || {
            let c = Calendar::new();
            let mut order = Vec::new();
            c.schedule(10, SchedEvent::CleanerWriteback { frame: 0 });
            c.schedule(30, SchedEvent::CleanerWriteback { frame: 1 });
            while let Some((t, ev)) = c.pop_due(20) {
                order.push((t, ev));
                // Deliveries may reschedule.
                if order.len() == 1 {
                    c.schedule(15, SchedEvent::CleanerWriteback { frame: 2 });
                }
            }
            while let Some(e) = c.pop_next() {
                order.push(e);
            }
            order
        };
        assert_eq!(run(), run());
        assert_eq!(run().len(), 3);
    }
}
