//! The discrete-event calendar: background work at true virtual times.
//!
//! Earlier revisions of this simulator modeled background concurrency
//! lazily — a whole reclaim episode executed at one virtual instant, and
//! landed prefetches were only mapped when a reclaim episode happened to
//! run. The [`Calendar`] replaces that with a real discrete-event engine:
//! components *schedule* typed [`SchedEvent`]s at their true completion
//! times and the owning node *drains* everything due before each access, so
//! prefetch landings, incremental reclaim ticks, cleaner writebacks, RDMA
//! completions, and node repairs all interleave with foreground faults on
//! one shared virtual timeline.
//!
//! Determinism is part of the contract: the heap is keyed on `(Ns, seq)`
//! where `seq` is a monotone insertion counter, so two events due at the
//! same instant always pop in the order they were scheduled — no hash-map
//! iteration or allocator-address dependence can leak into the event order.
//!
//! Storage is a slot+generation arena: each scheduled event owns a slot
//! holding its payload, the heap carries only `(at, seq, slot)` triples,
//! and an [`EventId`] is a typed `(slot, generation)` handle. Cancellation
//! is an O(1) tombstone on the slot (the heap entry is dropped lazily when
//! it surfaces), and the generation counter makes a stale handle — one
//! whose slot has since been delivered and reused — inert instead of
//! cancelling an unrelated event (the ABA guard).
//!
//! Like [`TraceSink`](crate::trace::TraceSink), a `Calendar` is a cheap
//! cloneable handle over shared state: the paging node, its RDMA endpoint,
//! and any background daemon all hold clones of the same calendar. The
//! earliest pending due time is mirrored into a `Cell` outside the
//! `RefCell`, so the hot "anything due yet?" probe on the access path
//! ([`Calendar::has_due`]) is a single load with no borrow traffic.

use std::cell::{Cell, RefCell};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::rc::Rc;

use crate::fabric::ServiceClass;
use crate::metrics::MetricsRegistry;
use crate::obs::Observability;
use crate::time::Ns;

/// Identifies a scheduled event so it can be cancelled before delivery.
///
/// A typed arena handle: `slot` names the event's arena cell and `gen` is
/// the cell's generation at scheduling time. A handle outliving its event
/// (delivered, cancelled, or the slot since reused) simply stops matching —
/// it can never cancel somebody else's event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId {
    slot: u32,
    gen: u32,
}

/// A typed background occurrence scheduled for a future virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedEvent {
    /// An in-flight fetch for `vpn` arrives; `token` names the in-flight
    /// table slot it was issued from so a stale landing (slot reused after
    /// the original fetch was consumed or abandoned) can be recognized.
    PrefetchLand { vpn: u64, token: u32 },
    /// One step of the background reclaimer: scan and evict (at most) one
    /// victim, then reschedule if the pool is still below the high
    /// watermark.
    ReclaimTick,
    /// The cleaner finished writing back the page that occupied `frame`;
    /// the frame returns to the free list now.
    CleanerWriteback { frame: u32 },
    /// An RDMA verb completed on the wire (mirrors
    /// [`TraceEvent::RdmaComplete`](crate::trace::TraceEvent::RdmaComplete),
    /// which is emitted at delivery time).
    RdmaCompletion {
        class: ServiceClass,
        write: bool,
        node: u8,
        core: u8,
    },
    /// A failed memory node comes back and must be resynced.
    NodeRepair { node: usize },
    /// A recurring telemetry tick: snapshot every registered gauge into its
    /// virtual-time series. These live on the metrics registry's *private*
    /// calendar — never on a system's main calendar, where they would
    /// perturb `next_due`-driven wait loops and break the purity guarantee
    /// that trace digests are identical with metrics on or off.
    SampleTick,
}

/// One heap entry. Ordered by `(at, seq)` — earliest first, insertion
/// order breaking ties. The payload lives in the slot arena.
#[derive(Debug, Clone, Copy)]
struct Entry {
    at: Ns,
    seq: u64,
    slot: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest entry
        // (smallest `(at, seq)`) on top.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// One arena cell: the event payload plus the liveness/reuse bookkeeping.
#[derive(Debug, Clone, Copy)]
struct Slot {
    /// Bumped every time the slot is released; stale `EventId`s stop
    /// matching (the ABA rule).
    gen: u32,
    /// False once cancelled (tombstone) — the heap entry is dropped when it
    /// surfaces.
    live: bool,
    ev: SchedEvent,
}

#[derive(Debug, Default)]
struct CalendarCore {
    heap: BinaryHeap<Entry>,
    /// The slot arena; `free` holds released indices for LIFO reuse
    /// (deterministic — reuse order depends only on the event history).
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Live (non-tombstoned) entries, i.e. what `len()` reports.
    live: usize,
    next_seq: u64,
    /// Scheduler telemetry (`sched_scheduled` / `sched_delivered` /
    /// `sched_cancelled`). Disabled by default; pure observation either
    /// way — counters never influence ordering or sequence numbers.
    metrics: MetricsRegistry,
}

impl CalendarCore {
    /// Drops tombstoned entries off the top of the heap, releasing their
    /// slots.
    fn skim(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.slots[top.slot as usize].live {
                break;
            }
            let e = self.heap.pop();
            if let Some(e) = e {
                self.release(e.slot);
            }
        }
    }

    /// Returns `slot` to the free list, bumping its generation so any
    /// outstanding handle to the old occupant goes stale.
    fn release(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.gen = s.gen.wrapping_add(1);
        s.live = false;
        self.free.push(slot);
    }

    /// Pops the top entry (assumed live after a `skim`), releasing its slot
    /// and returning the delivery.
    fn take_top(&mut self) -> Option<(Ns, SchedEvent)> {
        let e = self.heap.pop()?;
        let ev = self.slots[e.slot as usize].ev;
        self.release(e.slot);
        self.live -= 1;
        self.metrics.inc("sched_delivered", 0);
        Some((e.at, ev))
    }

    /// The due time of the earliest entry still in the heap — possibly a
    /// tombstone, so this is a lower bound on the true next due time (the
    /// conservative direction for the `has_due` fast path).
    fn heap_min(&self) -> Ns {
        self.heap.peek().map_or(Ns::MAX, |e| e.at)
    }
}

/// A cloneable handle to a shared deterministic event calendar.
#[derive(Clone)]
pub struct Calendar {
    inner: Rc<CalendarShared>,
}

#[derive(Default)]
struct CalendarShared {
    core: RefCell<CalendarCore>,
    /// Lower bound on the earliest pending due time (`Ns::MAX` when empty;
    /// may be early when the top of the heap is a tombstone). Kept outside
    /// the `RefCell` so [`Calendar::has_due`] is a single load.
    next_at: Cell<Ns>,
}

impl Default for Calendar {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Calendar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Calendar(pending={})", self.len())
    }
}

impl Calendar {
    /// An empty calendar.
    pub fn new() -> Self {
        let c = Self {
            inner: Rc::new(CalendarShared::default()),
        };
        c.inner.next_at.set(Ns::MAX);
        c
    }

    /// Routes scheduler counters into the bundle's metrics registry. The
    /// registry is write-only from here: it cannot perturb event order,
    /// timing, or sequence numbers.
    pub fn observe(&self, obs: &Observability) {
        self.inner.core.borrow_mut().metrics = obs.metrics().clone();
    }

    /// Schedules `ev` for delivery at virtual time `at`.
    ///
    /// Events due at the same instant are delivered in scheduling order.
    pub fn schedule(&self, at: Ns, ev: SchedEvent) -> EventId {
        let mut c = self.inner.core.borrow_mut();
        let seq = c.next_seq;
        c.next_seq += 1;
        let slot = match c.free.pop() {
            Some(i) => {
                let s = &mut c.slots[i as usize];
                s.live = true;
                s.ev = ev;
                i
            }
            None => {
                let i = c.slots.len() as u32;
                c.slots.push(Slot {
                    gen: 0,
                    live: true,
                    ev,
                });
                i
            }
        };
        let gen = c.slots[slot as usize].gen;
        c.heap.push(Entry { at, seq, slot });
        c.live += 1;
        c.metrics.inc("sched_scheduled", 0);
        if at < self.inner.next_at.get() {
            self.inner.next_at.set(at);
        }
        EventId { slot, gen }
    }

    /// Cancels a pending event in O(1): the slot is tombstoned and the heap
    /// entry dropped lazily when it reaches the top. Returns false if the
    /// event was already delivered or cancelled (a stale handle never
    /// matches — generations guard slot reuse).
    pub fn cancel(&self, id: EventId) -> bool {
        let mut c = self.inner.core.borrow_mut();
        match c.slots.get_mut(id.slot as usize) {
            Some(s) if s.gen == id.gen && s.live => {
                s.live = false;
                c.live -= 1;
                c.metrics.inc("sched_cancelled", 0);
                true
            }
            _ => false,
        }
    }

    /// Whether any entry *might* be due at or before `now` — a single load,
    /// no borrow. False is exact ("nothing is due"); true may be a
    /// tombstone about to be skimmed, which the subsequent
    /// [`Calendar::pop_due`] or [`Calendar::drain_due`] resolves.
    #[inline]
    pub fn has_due(&self, now: Ns) -> bool {
        self.inner.next_at.get() <= now
    }

    /// The delivery time of the next pending event, if any.
    pub fn next_due(&self) -> Option<Ns> {
        let mut c = self.inner.core.borrow_mut();
        c.skim();
        let due = c.heap.peek().map(|e| e.at);
        self.inner.next_at.set(due.unwrap_or(Ns::MAX));
        due
    }

    /// Pops the next event due at or before `now`, with its delivery time.
    pub fn pop_due(&self, now: Ns) -> Option<(Ns, SchedEvent)> {
        let mut c = self.inner.core.borrow_mut();
        c.skim();
        let popped = if c.heap.peek().is_some_and(|e| e.at <= now) {
            c.take_top()
        } else {
            None
        };
        self.inner.next_at.set(c.heap_min());
        popped
    }

    /// Pops every event due at the *earliest* pending instant `t ≤ now`
    /// into `out`, returning how many were delivered (0 when nothing is
    /// due). One borrow amortizes the whole same-instant group.
    ///
    /// Only same-instant groups are batched: a delivery handler may
    /// schedule follow-up events, and anything it schedules is at or after
    /// the instant being delivered, so it sorts after the batch — exactly
    /// where a one-at-a-time pop loop would put it. Draining a *range* of
    /// instants in one batch would not have that property.
    pub fn drain_due(&self, now: Ns, out: &mut Vec<(Ns, SchedEvent)>) -> usize {
        let mut c = self.inner.core.borrow_mut();
        c.skim();
        let mut n = 0usize;
        if let Some(first) = c.heap.peek().filter(|e| e.at <= now).map(|e| e.at) {
            while c.heap.peek().is_some_and(|e| e.at == first) {
                if let Some(d) = c.take_top() {
                    out.push(d);
                    n += 1;
                }
                c.skim();
            }
        }
        self.inner.next_at.set(c.heap_min());
        n
    }

    /// Pops the next event regardless of its due time (used to quiesce the
    /// system at end of run, when no more foreground work will advance the
    /// clocks past pending deliveries).
    pub fn pop_next(&self) -> Option<(Ns, SchedEvent)> {
        let mut c = self.inner.core.borrow_mut();
        c.skim();
        let popped = c.take_top();
        self.inner.next_at.set(c.heap_min());
        popped
    }

    /// Pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.inner.core.borrow().live
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let c = Calendar::new();
        c.schedule(300, SchedEvent::ReclaimTick);
        c.schedule(100, SchedEvent::CleanerWriteback { frame: 1 });
        c.schedule(200, SchedEvent::NodeRepair { node: 0 });
        assert_eq!(c.next_due(), Some(100));
        assert_eq!(
            c.pop_next(),
            Some((100, SchedEvent::CleanerWriteback { frame: 1 }))
        );
        assert_eq!(
            c.pop_next(),
            Some((200, SchedEvent::NodeRepair { node: 0 }))
        );
        assert_eq!(c.pop_next(), Some((300, SchedEvent::ReclaimTick)));
        assert!(c.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let c = Calendar::new();
        for token in 0..16u32 {
            c.schedule(50, SchedEvent::PrefetchLand { vpn: 0, token });
        }
        for expect in 0..16u32 {
            let Some((50, SchedEvent::PrefetchLand { token, .. })) = c.pop_next() else {
                panic!("expected a tie-broken landing");
            };
            assert_eq!(token, expect, "ties must pop in scheduling order");
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let c = Calendar::new();
        c.schedule(100, SchedEvent::ReclaimTick);
        c.schedule(200, SchedEvent::ReclaimTick);
        assert!(c.pop_due(99).is_none());
        assert_eq!(c.pop_due(100), Some((100, SchedEvent::ReclaimTick)));
        assert!(c.pop_due(150).is_none());
        assert_eq!(c.pop_due(250), Some((200, SchedEvent::ReclaimTick)));
        assert!(c.pop_due(u64::MAX).is_none());
    }

    #[test]
    fn cancel_suppresses_delivery() {
        let c = Calendar::new();
        let a = c.schedule(10, SchedEvent::PrefetchLand { vpn: 1, token: 0 });
        let b = c.schedule(20, SchedEvent::PrefetchLand { vpn: 2, token: 1 });
        assert!(c.cancel(a));
        assert!(!c.cancel(a), "double cancel reports false");
        assert_eq!(c.len(), 1);
        assert_eq!(
            c.pop_next(),
            Some((20, SchedEvent::PrefetchLand { vpn: 2, token: 1 }))
        );
        assert!(!c.cancel(b), "cancel after delivery reports false");
    }

    #[test]
    fn stale_handle_never_cancels_a_reused_slot() {
        let c = Calendar::new();
        let a = c.schedule(10, SchedEvent::ReclaimTick);
        assert_eq!(c.pop_due(10), Some((10, SchedEvent::ReclaimTick)));
        // The slot is recycled for an unrelated event; the old handle must
        // be inert against it.
        let b = c.schedule(20, SchedEvent::PrefetchLand { vpn: 9, token: 3 });
        assert!(!c.cancel(a), "stale handle must not cancel the new tenant");
        assert_eq!(c.len(), 1);
        assert!(c.cancel(b));
        assert!(c.pop_next().is_none());
    }

    #[test]
    fn has_due_is_borrow_free_and_conservative() {
        // `has_due` answers against a finite horizon; `Ns::MAX` itself is
        // the "empty" sentinel, so probe just below it.
        let horizon = u64::MAX - 1;
        let c = Calendar::new();
        assert!(!c.has_due(horizon), "empty calendar has nothing due");
        let a = c.schedule(100, SchedEvent::ReclaimTick);
        assert!(!c.has_due(99));
        assert!(c.has_due(100));
        // After a cancel the cached bound may still answer "maybe" — the
        // pop resolves it to nothing and tightens the bound.
        assert!(c.cancel(a));
        assert!(c.pop_due(100).is_none());
        assert!(!c.has_due(horizon));
    }

    #[test]
    fn drain_due_delivers_same_instant_groups_in_order() {
        let c = Calendar::new();
        c.schedule(50, SchedEvent::PrefetchLand { vpn: 1, token: 0 });
        c.schedule(50, SchedEvent::PrefetchLand { vpn: 2, token: 1 });
        c.schedule(60, SchedEvent::ReclaimTick);
        let mut out = Vec::new();
        assert_eq!(c.drain_due(49, &mut out), 0);
        assert_eq!(c.drain_due(100, &mut out), 2, "only the t=50 group");
        assert_eq!(
            out,
            vec![
                (50, SchedEvent::PrefetchLand { vpn: 1, token: 0 }),
                (50, SchedEvent::PrefetchLand { vpn: 2, token: 1 }),
            ]
        );
        out.clear();
        assert_eq!(c.drain_due(100, &mut out), 1);
        assert_eq!(out, vec![(60, SchedEvent::ReclaimTick)]);
        assert!(c.is_empty());
    }

    #[test]
    fn drain_due_skips_tombstones_inside_the_group() {
        let c = Calendar::new();
        c.schedule(10, SchedEvent::PrefetchLand { vpn: 1, token: 0 });
        let b = c.schedule(10, SchedEvent::PrefetchLand { vpn: 2, token: 1 });
        c.schedule(10, SchedEvent::PrefetchLand { vpn: 3, token: 2 });
        assert!(c.cancel(b));
        let mut out = Vec::new();
        assert_eq!(c.drain_due(10, &mut out), 2);
        assert_eq!(
            out,
            vec![
                (10, SchedEvent::PrefetchLand { vpn: 1, token: 0 }),
                (10, SchedEvent::PrefetchLand { vpn: 3, token: 2 }),
            ]
        );
    }

    #[test]
    fn clones_share_one_calendar() {
        let c = Calendar::new();
        let c2 = c.clone();
        c.schedule(5, SchedEvent::ReclaimTick);
        assert_eq!(c2.len(), 1);
        assert_eq!(c2.pop_due(5), Some((5, SchedEvent::ReclaimTick)));
        assert!(c.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_is_deterministic() {
        let run = || {
            let c = Calendar::new();
            let mut order = Vec::new();
            c.schedule(10, SchedEvent::CleanerWriteback { frame: 0 });
            c.schedule(30, SchedEvent::CleanerWriteback { frame: 1 });
            while let Some((t, ev)) = c.pop_due(20) {
                order.push((t, ev));
                // Deliveries may reschedule.
                if order.len() == 1 {
                    c.schedule(15, SchedEvent::CleanerWriteback { frame: 2 });
                }
            }
            while let Some(e) = c.pop_next() {
                order.push(e);
            }
            order
        };
        assert_eq!(run(), run());
        assert_eq!(run().len(), 3);
    }

    #[test]
    fn heavy_cancel_churn_reuses_slots_safely() {
        let c = Calendar::new();
        let mut ids = Vec::new();
        for round in 0..100u64 {
            for i in 0..16u64 {
                ids.push(c.schedule(round * 100 + i, SchedEvent::ReclaimTick));
            }
            // Cancel every other one, then deliver the round.
            for id in ids.drain(..).step_by(2) {
                assert!(c.cancel(id));
            }
            let mut n = 0;
            while c.pop_due(round * 100 + 99).is_some() {
                n += 1;
            }
            assert_eq!(n, 8, "round {round}");
            assert!(c.is_empty());
        }
    }
}
