//! Memnode crash–recovery: persistent state, write-intent logging, and
//! detectable replay.
//!
//! The paper's §5.1 future work (and the ROADMAP's crash-recovery item)
//! asks what happens when a memory node *crashes and rejoins* rather than
//! merely failing over. This module supplies the three pieces:
//!
//! 1. **A persistent-state model** (`DurableState`): each armed memory
//!    node keeps a periodic checkpoint of its page and region tables plus a
//!    write-intent log. An intent record is appended — durably — *before*
//!    the write's page copy is acknowledged, so every acknowledged write is
//!    either inside the checkpoint or inside the log.
//! 2. **A calendar-driven fault injector** ([`RecoverConfig`]): the RDMA
//!    endpoint counts completed data-path verbs and kills the victim node
//!    at the configured event index, then schedules the repair through the
//!    existing [`SchedEvent::NodeRepair`] path at its virtual time.
//! 3. **A recovery protocol**: on repair, the node restores the last
//!    checkpoint, replays the intent log record by record (each replay is
//!    *detectable* — it emits [`TraceEvent::RecoveryReplay`], which the
//!    auditor cross-checks against the acknowledged intents), reconciles
//!    with surviving replicas or EC stripes, and rejoins the replica set.
//!
//! The cost model is explicit rather than charged to the calendar: recovery
//! runs on the control path (like resync), and [`RecoveryStats::recovery_ns`]
//! reports `replayed × replay_ns_per_record + reconciled × resync_ns_per_page`
//! so benchmarks can plot recovery latency against intent-log depth without
//! perturbing data-path timings.
//!
//! [`SchedEvent::NodeRepair`]: crate::sched::SchedEvent::NodeRepair
//! [`TraceEvent::RecoveryReplay`]: crate::trace::TraceEvent::RecoveryReplay

use std::collections::BTreeMap;

use crate::time::{Ns, PAGE_SIZE};

/// Configuration of the crash injector and the recovery cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoverConfig {
    /// Completed-verb index (1-based) at which the victim crashes. `None`
    /// arms persistence and logging without ever firing the injector — the
    /// disarmed mode pinned by the tab01 digests.
    pub crash_at_event: Option<u64>,
    /// Index of the memory node the injector kills.
    pub victim: usize,
    /// Seal a checkpoint once the intent log holds this many records.
    pub checkpoint_every: u64,
    /// Virtual delay between the crash and its scheduled repair.
    pub repair_delay_ns: Ns,
    /// Modeled replay cost per intent-log record.
    pub replay_ns_per_record: Ns,
    /// Modeled reconciliation cost per page resynced from survivors.
    pub resync_ns_per_page: Ns,
}

impl Default for RecoverConfig {
    fn default() -> Self {
        Self {
            crash_at_event: None,
            victim: 0,
            checkpoint_every: 64,
            repair_delay_ns: 2_000_000,
            replay_ns_per_record: 500,
            resync_ns_per_page: 2_000,
        }
    }
}

/// Counters describing the most recent crash/recovery cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Data-path verb completions observed by the injector — the event
    /// index space `RecoverConfig::crash_at_event` addresses. A sweep
    /// takes this from a crash-free run to know the valid crash points.
    pub completions: u64,
    /// Crashes the injector has fired.
    pub crashes: u64,
    /// Recoveries completed through the repair path.
    pub recoveries: u64,
    /// Intent-log depth on the victim at the instant of the crash.
    pub log_depth_at_crash: u64,
    /// Intent records replayed during the last recovery.
    pub replayed: u64,
    /// Pages reconciled from surviving replicas/EC stripes.
    pub reconciled: u64,
    /// Modeled recovery latency (replay + reconciliation).
    pub recovery_ns: Ns,
}

/// One write-intent record: the full payload of an acknowledged write,
/// appended before the page copy so replay can redo it verbatim.
#[derive(Debug, Clone)]
pub(crate) struct IntentRecord {
    /// Monotone, 1-based acknowledgement sequence number.
    pub seq: u64,
    /// Remote address the write targeted.
    pub addr: u64,
    /// The written bytes.
    pub data: Vec<u8>,
}

/// A memory node's durable image: the last sealed checkpoint plus the
/// intent log of every write acknowledged since.
///
/// Volatile state (the live page/region tables) dies with the node; this
/// struct is what survives a [`MemoryNode::crash`].
///
/// [`MemoryNode::crash`]: crate::memnode::MemoryNode::crash
#[derive(Debug)]
pub(crate) struct DurableState {
    /// Page table as of the last checkpoint.
    pub checkpoint_pages: BTreeMap<u64, Box<[u8; PAGE_SIZE]>>,
    /// Region table as of the last checkpoint: `key → (base, len)`.
    pub checkpoint_regions: BTreeMap<u32, (u64, u64)>,
    /// Highest sequence number the checkpoint covers (0 = none).
    pub checkpoint_upto: u64,
    /// Intents acknowledged after the checkpoint, in ack order.
    pub log: Vec<IntentRecord>,
    /// Next sequence number to hand out (1-based).
    pub next_seq: u64,
    /// Seal a checkpoint once the log reaches this depth.
    pub checkpoint_every: u64,
    /// Checkpoints sealed so far.
    pub checkpoints: u64,
}

impl DurableState {
    pub fn new(checkpoint_every: u64) -> Self {
        Self {
            checkpoint_pages: BTreeMap::new(),
            checkpoint_regions: BTreeMap::new(),
            checkpoint_upto: 0,
            log: Vec::new(),
            next_seq: 1,
            checkpoint_every: checkpoint_every.max(1),
            checkpoints: 0,
        }
    }

    /// Appends (and thereby acknowledges) one write intent, returning its
    /// sequence number.
    pub fn append(&mut self, addr: u64, data: &[u8]) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.log.push(IntentRecord {
            seq,
            addr,
            data: data.to_vec(),
        });
        seq
    }

    /// Whether the log is deep enough to seal a checkpoint.
    pub fn should_checkpoint(&self) -> bool {
        self.log.len() as u64 >= self.checkpoint_every
    }

    /// Seals a checkpoint over the given live tables: the checkpoint now
    /// covers every acknowledged intent, and the log is truncated. Returns
    /// the sequence number the checkpoint covers up to.
    pub fn seal(
        &mut self,
        pages: BTreeMap<u64, Box<[u8; PAGE_SIZE]>>,
        regions: BTreeMap<u32, (u64, u64)>,
    ) -> u64 {
        self.checkpoint_pages = pages;
        self.checkpoint_regions = regions;
        self.checkpoint_upto = self.next_seq - 1;
        self.log.clear();
        self.checkpoints += 1;
        self.checkpoint_upto
    }

    /// Acknowledged intents not yet covered by a checkpoint.
    pub fn log_depth(&self) -> u64 {
        self.log.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_numbers_are_one_based_and_monotone() {
        let mut d = DurableState::new(4);
        assert_eq!(d.append(0, &[1]), 1);
        assert_eq!(d.append(8, &[2]), 2);
        assert_eq!(d.log_depth(), 2);
        assert!(!d.should_checkpoint());
    }

    #[test]
    fn sealing_covers_the_log_and_truncates_it() {
        let mut d = DurableState::new(2);
        d.append(0, &[1]);
        d.append(8, &[2]);
        assert!(d.should_checkpoint());
        let upto = d.seal(BTreeMap::new(), BTreeMap::new());
        assert_eq!(upto, 2);
        assert_eq!(d.checkpoint_upto, 2);
        assert_eq!(d.log_depth(), 0);
        assert_eq!(d.checkpoints, 1);
        // The next ack continues the sequence past the checkpoint.
        assert_eq!(d.append(16, &[3]), 3);
    }

    #[test]
    fn checkpoint_every_is_clamped_to_at_least_one() {
        let d = DurableState::new(0);
        assert_eq!(d.checkpoint_every, 1);
    }

    #[test]
    fn default_config_is_disarmed() {
        let cfg = RecoverConfig::default();
        assert_eq!(cfg.crash_at_event, None);
        assert!(cfg.checkpoint_every > 0);
        assert!(cfg.repair_delay_ns > 0);
    }
}
