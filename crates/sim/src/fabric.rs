//! The network fabric: shared link occupancy and per-class accounting.
//!
//! DiLOS's communication module (§4.5) is shared-nothing: every paging module
//! gets its own per-core RDMA queue so that "the page fault handler's
//! requests must not be blocked by other low prioritized requests from a
//! prefetcher or a manager (head-of-line blocking)". The fabric models the
//! part all queues *do* share — the 100 GbE wire — and records per-class
//! byte counts so Figure 12 (bandwidth over time) can be regenerated.

use crate::config::SimConfig;
use crate::metrics::MetricsRegistry;
use crate::stats::BandwidthRecorder;
use crate::time::Ns;
use crate::timeline::Timeline;
use crate::trace::{TraceEvent, TraceSink};

/// The originating module of a verb, mapping onto DiLOS's per-module queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceClass {
    /// Demand fetches issued by the page fault handler (highest urgency).
    Fault,
    /// Asynchronous prefetches issued by the page prefetcher.
    Prefetch,
    /// Subpage fetches issued by app-aware guides (their own queues, §4.5).
    Guide,
    /// Writebacks and evictions issued by the cleaner/reclaimer.
    Cleaner,
    /// Direct application traffic (used by the AIFM baseline's object
    /// fetches and by raw-verb microbenchmarks).
    App,
}

impl ServiceClass {
    /// All classes, for iteration in reports.
    pub const ALL: [ServiceClass; 5] = [
        ServiceClass::Fault,
        ServiceClass::Prefetch,
        ServiceClass::Guide,
        ServiceClass::Cleaner,
        ServiceClass::App,
    ];

    /// Index into per-class arrays.
    pub fn idx(self) -> usize {
        match self {
            ServiceClass::Fault => 0,
            ServiceClass::Prefetch => 1,
            ServiceClass::Guide => 2,
            ServiceClass::Cleaner => 3,
            ServiceClass::App => 4,
        }
    }

    /// Human-readable label for tables.
    pub fn label(self) -> &'static str {
        match self {
            ServiceClass::Fault => "fault",
            ServiceClass::Prefetch => "prefetch",
            ServiceClass::Guide => "guide",
            ServiceClass::Cleaner => "cleaner",
            ServiceClass::App => "app",
        }
    }
}

/// The shared wire plus bandwidth accounting.
#[derive(Debug)]
pub struct Fabric {
    cfg: SimConfig,
    /// Compute-node → memory-node direction (evictions/writebacks).
    link_up: Timeline,
    /// Memory-node → compute-node direction (fetches). RoCE links are full
    /// duplex, so the two directions do not contend.
    link_down: Timeline,
    bw: BandwidthRecorder,
    class_tx: [u64; 5],
    class_rx: [u64; 5],
    trace: TraceSink,
    metrics: MetricsRegistry,
}

impl Fabric {
    /// Creates a fabric with the given calibration; bandwidth is bucketed at
    /// `bw_bucket_ns` for the Figure 12 time series.
    pub fn new(cfg: SimConfig, bw_bucket_ns: Ns) -> Self {
        Self {
            cfg,
            link_up: Timeline::new(),
            link_down: Timeline::new(),
            bw: BandwidthRecorder::new(bw_bucket_ns),
            class_tx: [0; 5],
            class_rx: [0; 5],
            trace: TraceSink::disabled(),
            metrics: MetricsRegistry::disabled(),
        }
    }

    /// Routes this fabric's wire-occupancy events into `sink`.
    pub fn set_trace(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// Registers a metrics handle for per-class byte counters
    /// (`fabric_tx_bytes` / `fabric_rx_bytes`, lane = service-class index).
    pub fn set_metrics(&mut self, metrics: MetricsRegistry) {
        self.metrics = metrics;
    }

    /// The calibration constants in force.
    pub fn cfg(&self) -> &SimConfig {
        &self.cfg
    }

    /// Occupies the wire for `bytes` starting no earlier than `t`, returning
    /// the wire-completion time, and accounts the bytes to `class`.
    ///
    /// `inbound` is memory-node → compute-node (fetch) traffic.
    pub fn transfer(&mut self, t: Ns, class: ServiceClass, bytes: usize, inbound: bool) -> Ns {
        let wire = self.cfg.wire_ns(bytes);
        let link = if inbound {
            &mut self.link_down
        } else {
            &mut self.link_up
        };
        let (_, end) = link.acquire(t, wire);
        if inbound {
            self.bw.record_rx(end, bytes as u64);
            self.class_rx[class.idx()] += bytes as u64;
            self.metrics
                .add("fabric_rx_bytes", class.idx(), bytes as u64);
        } else {
            self.bw.record_tx(end, bytes as u64);
            self.class_tx[class.idx()] += bytes as u64;
            self.metrics
                .add("fabric_tx_bytes", class.idx(), bytes as u64);
        }
        self.trace.emit(
            t,
            TraceEvent::LinkTransfer {
                class,
                bytes: bytes as u32,
                inbound,
                done: end,
            },
        );
        end
    }

    /// The bandwidth time series recorder.
    pub fn bandwidth(&self) -> &BandwidthRecorder {
        &self.bw
    }

    /// Outbound (eviction) bytes attributed to `class`.
    pub fn class_tx(&self, class: ServiceClass) -> u64 {
        self.class_tx[class.idx()]
    }

    /// Inbound (fetch) bytes attributed to `class`.
    pub fn class_rx(&self, class: ServiceClass) -> u64 {
        self.class_rx[class.idx()]
    }

    /// Total link busy time across both directions (utilization reports).
    pub fn link_busy(&self) -> Ns {
        self.link_up.total_busy() + self.link_down.total_busy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfers_serialize_on_the_wire() {
        let mut f = Fabric::new(SimConfig::default(), 1_000_000);
        let w = f.cfg().wire_ns(4096);
        let a = f.transfer(0, ServiceClass::Fault, 4096, true);
        let b = f.transfer(0, ServiceClass::Prefetch, 4096, true);
        assert_eq!(a, w);
        assert_eq!(b, 2 * w, "second transfer queues behind the first");
        // The opposite direction is independent (full duplex).
        let c = f.transfer(0, ServiceClass::Cleaner, 4096, false);
        assert_eq!(c, w);
    }

    #[test]
    fn per_class_accounting() {
        let mut f = Fabric::new(SimConfig::default(), 1_000_000);
        f.transfer(0, ServiceClass::Cleaner, 100, false);
        f.transfer(0, ServiceClass::Fault, 200, true);
        assert_eq!(f.class_tx(ServiceClass::Cleaner), 100);
        assert_eq!(f.class_rx(ServiceClass::Fault), 200);
        assert_eq!(f.bandwidth().total_tx(), 100);
        assert_eq!(f.bandwidth().total_rx(), 200);
    }
}
