//! The network fabric: shared link occupancy and per-class accounting.
//!
//! DiLOS's communication module (§4.5) is shared-nothing: every paging module
//! gets its own per-core RDMA queue so that "the page fault handler's
//! requests must not be blocked by other low prioritized requests from a
//! prefetcher or a manager (head-of-line blocking)". The fabric models the
//! part all queues *do* share — the 100 GbE wire — and records per-class
//! byte counts so Figure 12 (bandwidth over time) can be regenerated.

use std::collections::BTreeMap;

use crate::config::SimConfig;
use crate::metrics::MetricsRegistry;
use crate::obs::Observability;
use crate::stats::BandwidthRecorder;
use crate::time::Ns;
use crate::timeline::Timeline;
use crate::trace::{TraceEvent, TraceSink};

/// The originating module of a verb, mapping onto DiLOS's per-module queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceClass {
    /// Demand fetches issued by the page fault handler (highest urgency).
    Fault,
    /// Asynchronous prefetches issued by the page prefetcher.
    Prefetch,
    /// Subpage fetches issued by app-aware guides (their own queues, §4.5).
    Guide,
    /// Writebacks and evictions issued by the cleaner/reclaimer.
    Cleaner,
    /// Direct application traffic (used by the AIFM baseline's object
    /// fetches and by raw-verb microbenchmarks).
    App,
}

impl ServiceClass {
    /// All classes, for iteration in reports.
    pub const ALL: [ServiceClass; 5] = [
        ServiceClass::Fault,
        ServiceClass::Prefetch,
        ServiceClass::Guide,
        ServiceClass::Cleaner,
        ServiceClass::App,
    ];

    /// Index into per-class arrays.
    pub fn idx(self) -> usize {
        match self {
            ServiceClass::Fault => 0,
            ServiceClass::Prefetch => 1,
            ServiceClass::Guide => 2,
            ServiceClass::Cleaner => 3,
            ServiceClass::App => 4,
        }
    }

    /// Human-readable label for tables.
    pub fn label(self) -> &'static str {
        match self {
            ServiceClass::Fault => "fault",
            ServiceClass::Prefetch => "prefetch",
            ServiceClass::Guide => "guide",
            ServiceClass::Cleaner => "cleaner",
            ServiceClass::App => "app",
        }
    }
}

/// Deterministic per-tenant bandwidth shaping.
///
/// Each tenant owns a weighted, *dedicated* slice of the link. A transfer
/// by tenant `i` with weight `w_i` runs at full wire speed but advances
/// that tenant's per-direction release horizon by `wire_ns · W / w_i`
/// (where `W` is the total weight); the tenant's next transfer may not
/// start before the horizon. Over any window a tenant therefore consumes
/// at most `w_i / W` of the wire. Shaped transfers never queue on the
/// shared FCFS wire — isolation holds by construction, like per-tenant
/// RNIC rate limiters — so admission assumes the weights together fit the
/// link. The shaper is not work-conserving: an idle tenant's slice is not
/// redistributed. That keeps the model state a handful of release times,
/// so it stays exactly deterministic and auditable.
#[derive(Debug, Clone, Default)]
struct QosShaper {
    /// Per-tenant link weight, indexed by tenant id (missing tenants
    /// default to weight 1).
    shares: Vec<u32>,
    /// Sum of all registered weights.
    total: u64,
    /// Earliest next start, indexed `tenant * 2 + inbound` (grown on
    /// demand; tenant ids are small and dense).
    release: Vec<Ns>,
    /// True wire time consumed by shaped transfers (occupancy reports).
    shaped_busy: Ns,
}

/// The shared wire plus bandwidth accounting.
#[derive(Debug)]
pub struct Fabric {
    cfg: SimConfig,
    /// Compute-node → memory-node direction (evictions/writebacks).
    link_up: Timeline,
    /// Memory-node → compute-node direction (fetches). RoCE links are full
    /// duplex, so the two directions do not contend.
    link_down: Timeline,
    bw: BandwidthRecorder,
    class_tx: [u64; 5],
    class_rx: [u64; 5],
    /// Tenant whose traffic is currently on the wire (single-tenant boots
    /// never change this from 0). Set by the cluster layer around each verb.
    active_tenant: u8,
    /// Per-(tenant, class) byte counts, outbound, indexed
    /// `tenant * 5 + class.idx()` (grown on demand).
    tenant_tx: Vec<u64>,
    /// Per-(tenant, class) byte counts, inbound, same layout.
    tenant_rx: Vec<u64>,
    /// QoS bandwidth arbitration; `None` (the default) is free-for-all.
    qos: Option<QosShaper>,
    trace: TraceSink,
    metrics: MetricsRegistry,
}

impl Fabric {
    /// Creates a fabric with the given calibration; bandwidth is bucketed at
    /// `bw_bucket_ns` for the Figure 12 time series.
    pub fn new(cfg: SimConfig, bw_bucket_ns: Ns) -> Self {
        Self {
            cfg,
            link_up: Timeline::new(),
            link_down: Timeline::new(),
            bw: BandwidthRecorder::new(bw_bucket_ns),
            class_tx: [0; 5],
            class_rx: [0; 5],
            active_tenant: 0,
            tenant_tx: Vec::new(),
            tenant_rx: Vec::new(),
            qos: None,
            trace: TraceSink::disabled(),
            metrics: MetricsRegistry::disabled(),
        }
    }

    /// Routes this fabric's wire-occupancy events into the bundle's trace
    /// sink and its per-class byte counters (`fabric_tx_bytes` /
    /// `fabric_rx_bytes`, lane = service-class index) into the bundle's
    /// metrics registry.
    pub fn observe(&mut self, obs: &Observability) {
        self.trace = obs.trace().clone();
        self.metrics = obs.metrics().clone();
    }

    /// Attributes subsequent transfers to `tenant` (accounting and, when
    /// QoS is on, shaping). Single-tenant boots leave this at 0.
    pub fn set_active_tenant(&mut self, tenant: u8) {
        self.active_tenant = tenant;
    }

    /// Enables QoS bandwidth arbitration with the given per-tenant weights.
    /// Tenants absent from the map get weight 1.
    pub fn set_qos(&mut self, shares: BTreeMap<u8, u32>) {
        let total: u64 = shares.values().map(|&w| u64::from(w.max(1))).sum();
        let mut dense = Vec::new();
        for (&tenant, &w) in &shares {
            let i = tenant as usize;
            if dense.len() <= i {
                dense.resize(i + 1, 1);
            }
            dense[i] = w;
        }
        self.qos = Some(QosShaper {
            shares: dense,
            total: total.max(1),
            release: Vec::new(),
            shaped_busy: 0,
        });
    }

    /// The calibration constants in force.
    pub fn cfg(&self) -> &SimConfig {
        &self.cfg
    }

    /// Occupies the wire for `bytes` starting no earlier than `t`, returning
    /// the wire-completion time, and accounts the bytes to `class`.
    ///
    /// `inbound` is memory-node → compute-node (fetch) traffic.
    pub fn transfer(&mut self, t: Ns, class: ServiceClass, bytes: usize, inbound: bool) -> Ns {
        let wire = self.cfg.wire_ns(bytes);
        let tenant = self.active_tenant;
        // QoS shaping: hold the transfer until the tenant's release horizon,
        // advance the horizon by the share-scaled wire cost, and run on the
        // tenant's dedicated slice (never the shared FCFS wire, where a
        // saturating tenant's future-booked transfers would block everyone
        // who calls after it).
        let end = match &mut self.qos {
            Some(q) => {
                let share =
                    u64::from(q.shares.get(tenant as usize).copied().unwrap_or(1).max(1));
                let ri = tenant as usize * 2 + usize::from(inbound);
                if q.release.len() <= ri {
                    q.release.resize(ri + 1, 0);
                }
                let start = t.max(q.release[ri]);
                q.release[ri] = start + wire * q.total / share;
                q.shaped_busy = q.shaped_busy.saturating_add(wire);
                start + wire
            }
            None => {
                let link = if inbound {
                    &mut self.link_down
                } else {
                    &mut self.link_up
                };
                // The trace event below is stamped with the *request* time
                // `t`, not the queued start: queueing delay is visible as
                // `done - t - wire_ns`.
                link.acquire(t, wire).1
            }
        };
        let ti = tenant as usize * 5 + class.idx();
        if inbound {
            self.bw.record_rx(end, bytes as u64);
            self.class_rx[class.idx()] += bytes as u64;
            Self::bump(&mut self.tenant_rx, ti, bytes as u64);
            self.metrics
                .add("fabric_rx_bytes", class.idx(), bytes as u64);
        } else {
            self.bw.record_tx(end, bytes as u64);
            self.class_tx[class.idx()] += bytes as u64;
            Self::bump(&mut self.tenant_tx, ti, bytes as u64);
            self.metrics
                .add("fabric_tx_bytes", class.idx(), bytes as u64);
        }
        self.trace.emit(
            t,
            TraceEvent::LinkTransfer {
                class,
                bytes: bytes as u32,
                inbound,
                done: end,
            },
        );
        end
    }

    /// The bandwidth time series recorder.
    pub fn bandwidth(&self) -> &BandwidthRecorder {
        &self.bw
    }

    /// Outbound (eviction) bytes attributed to `class`.
    pub fn class_tx(&self, class: ServiceClass) -> u64 {
        self.class_tx[class.idx()]
    }

    /// Inbound (fetch) bytes attributed to `class`.
    pub fn class_rx(&self, class: ServiceClass) -> u64 {
        self.class_rx[class.idx()]
    }

    fn bump(v: &mut Vec<u64>, i: usize, by: u64) {
        if v.len() <= i {
            v.resize(i + 1, 0);
        }
        v[i] += by;
    }

    /// Outbound bytes attributed to `(tenant, class)`.
    pub fn tenant_tx(&self, tenant: u8, class: ServiceClass) -> u64 {
        self.tenant_tx
            .get(tenant as usize * 5 + class.idx())
            .copied()
            .unwrap_or(0)
    }

    /// Inbound bytes attributed to `(tenant, class)`.
    pub fn tenant_rx(&self, tenant: u8, class: ServiceClass) -> u64 {
        self.tenant_rx
            .get(tenant as usize * 5 + class.idx())
            .copied()
            .unwrap_or(0)
    }

    /// Total link busy time across both directions (utilization reports),
    /// including true wire time consumed on shaped per-tenant slices.
    pub fn link_busy(&self) -> Ns {
        self.link_up
            .total_busy()
            .saturating_add(self.link_down.total_busy())
            .saturating_add(self.qos.as_ref().map_or(0, |q| q.shaped_busy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfers_serialize_on_the_wire() {
        let mut f = Fabric::new(SimConfig::default(), 1_000_000);
        let w = f.cfg().wire_ns(4096);
        let a = f.transfer(0, ServiceClass::Fault, 4096, true);
        let b = f.transfer(0, ServiceClass::Prefetch, 4096, true);
        assert_eq!(a, w);
        assert_eq!(b, 2 * w, "second transfer queues behind the first");
        // The opposite direction is independent (full duplex).
        let c = f.transfer(0, ServiceClass::Cleaner, 4096, false);
        assert_eq!(c, w);
    }

    #[test]
    fn per_class_accounting() {
        let mut f = Fabric::new(SimConfig::default(), 1_000_000);
        f.transfer(0, ServiceClass::Cleaner, 100, false);
        f.transfer(0, ServiceClass::Fault, 200, true);
        assert_eq!(f.class_tx(ServiceClass::Cleaner), 100);
        assert_eq!(f.class_rx(ServiceClass::Fault), 200);
        assert_eq!(f.bandwidth().total_tx(), 100);
        assert_eq!(f.bandwidth().total_rx(), 200);
        // Single-tenant traffic lands on tenant 0's ledger.
        assert_eq!(f.tenant_rx(0, ServiceClass::Fault), 200);
        assert_eq!(f.tenant_tx(0, ServiceClass::Cleaner), 100);
        assert_eq!(f.tenant_rx(1, ServiceClass::Fault), 0);
    }

    #[test]
    fn per_tenant_accounting_follows_the_active_tenant() {
        let mut f = Fabric::new(SimConfig::default(), 1_000_000);
        f.set_active_tenant(1);
        f.transfer(0, ServiceClass::Fault, 4096, true);
        f.set_active_tenant(2);
        f.transfer(0, ServiceClass::Fault, 8192, true);
        assert_eq!(f.tenant_rx(1, ServiceClass::Fault), 4096);
        assert_eq!(f.tenant_rx(2, ServiceClass::Fault), 8192);
        assert_eq!(f.class_rx(ServiceClass::Fault), 4096 + 8192);
    }

    #[test]
    fn qos_shaper_throttles_a_tenant_to_its_share() {
        let mut f = Fabric::new(SimConfig::default(), 1_000_000);
        let w = f.cfg().wire_ns(4096);
        let mut shares = BTreeMap::new();
        shares.insert(1u8, 1u32);
        shares.insert(2u8, 3u32);
        f.set_qos(shares);
        // Tenant 1 holds 1/4 of the link: back-to-back transfers are spaced
        // 4 wire-times apart even though the wire itself is idle.
        f.set_active_tenant(1);
        let a = f.transfer(0, ServiceClass::Fault, 4096, true);
        let b = f.transfer(0, ServiceClass::Fault, 4096, true);
        assert_eq!(a, w);
        assert_eq!(b, 4 * w + w, "second start held to release = 4 wire-times");
        // Tenant 2 (3/4 share) is spaced only 4/3 wire-times.
        f.set_active_tenant(2);
        let c = f.transfer(2 * 4 * w, ServiceClass::Fault, 4096, true);
        let d = f.transfer(2 * 4 * w, ServiceClass::Fault, 4096, true);
        assert_eq!(d - c, w * 4 / 3);
    }

    #[test]
    fn qos_off_is_unshaped() {
        let mut f = Fabric::new(SimConfig::default(), 1_000_000);
        let w = f.cfg().wire_ns(4096);
        f.set_active_tenant(1);
        let a = f.transfer(0, ServiceClass::Fault, 4096, true);
        let b = f.transfer(0, ServiceClass::Fault, 4096, true);
        assert_eq!(a, w);
        assert_eq!(b, 2 * w, "without QoS only wire occupancy serializes");
    }
}
