//! Causal request tracing: per-request span trees over the event stream.
//!
//! PR 4's profiler answers "how much time did faults spend in each phase in
//! aggregate"; this module answers "*which* phase dominated *this* fault".
//! Every demand fault, prefetch, and eviction is assigned a stable
//! [`ReqId`] at origin (see
//! [`TraceSink::begin_request`](crate::trace::TraceSink::begin_request)) and
//! the id rides the side band to observers: it is never folded into the
//! digest, never schedules calendar work, and never perturbs data-path
//! timing — arming a [`CausalTracer`] leaves a run's digest byte-identical
//! to an unarmed run, exactly like the PR 4 sampler.
//!
//! The tracer is a passive [`TraceObserver`]: it groups events by their
//! request id into [`RequestTrace`] records (span trees), tracks background
//! reclaim episodes separately, and [`critical_path`] attributes each
//! request's latency to queueing / transfer / service / replay so the tail
//! report in `dilos-bench` can name the dominant phase of the p99.9
//! exemplars instead of an aggregate mean.

use crate::time::Ns;
use crate::trace::{FaultKind, FaultPhase, ReqId, TraceEvent, TraceObserver, TraceSink};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// What kind of causal request a span tree describes, inferred from the
/// first kind-bearing event emitted under its id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// Demand fetch from remote memory.
    MajorFault,
    /// Handler waited on a page already in flight.
    MinorFault,
    /// First touch of an unbacked page.
    ZeroFill,
    /// Asynchronous fetch issued by readahead / the trend prefetcher.
    Prefetch,
    /// A resident page was evicted (background or direct reclaim).
    Evict,
    /// No kind-bearing event was seen (e.g. a bare verb).
    Other,
}

impl ReqKind {
    /// Stable label used by exporters and reports.
    pub fn label(self) -> &'static str {
        match self {
            ReqKind::MajorFault => "major-fault",
            ReqKind::MinorFault => "minor-fault",
            ReqKind::ZeroFill => "zero-fill",
            ReqKind::Prefetch => "prefetch",
            ReqKind::Evict => "evict",
            ReqKind::Other => "other",
        }
    }
}

/// The assembled span tree of one request: every event emitted under its
/// id, in emission order, plus the derived envelope.
#[derive(Debug, Clone)]
pub struct RequestTrace {
    pub id: ReqId,
    pub kind: ReqKind,
    /// Origin core (first event that carries one), 0 if none did.
    pub core: u8,
    /// Subject page (first event that carries one), u64::MAX if none did.
    pub vpn: u64,
    /// Virtual time of the first event.
    pub begin: Ns,
    /// Latest virtual time covered: event stamps and `done` horizons of
    /// deferred completions / link transfers extend it.
    pub end: Ns,
    /// Every event attributed to this request, in emission order.
    pub events: Vec<(Ns, TraceEvent)>,
}

impl RequestTrace {
    /// End-to-end latency of the request on the virtual clock.
    pub fn total(&self) -> Ns {
        self.end.saturating_sub(self.begin)
    }
}

/// Where one request's latency went. Components are disjoint and
/// `queueing + transfer + service + replay + other == total`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    pub total: Ns,
    /// Waiting for resources: frame-allocation stall of a major fault, or
    /// the whole wait of a minor fault riding an in-flight fetch.
    pub queueing: Ns,
    /// Time on the wire / in remote service (fetch phase, verb spans).
    pub transfer: Ns,
    /// Handler CPU work: exception entry, PTE checks, map/bookkeeping, and
    /// reclaim work charged inside the fault path.
    pub service: Ns,
    /// Portion overlapping a memnode crash-recovery replay window.
    pub replay: Ns,
    /// Residual not explained by the above (clock gaps).
    pub other: Ns,
}

impl PhaseBreakdown {
    /// The dominant component's name (ties broken in field order).
    pub fn dominant(&self) -> &'static str {
        let parts = [
            (self.queueing, "queueing"),
            (self.transfer, "transfer"),
            (self.service, "service"),
            (self.replay, "replay"),
            (self.other, "other"),
        ];
        let mut best = (0, "none");
        for (v, name) in parts {
            if v > best.0 {
                best = (v, name);
            }
        }
        best.1
    }
}

/// Attributes `r`'s end-to-end latency to phases.
///
/// Major faults use their `FaultPhase` durations (alloc → queueing, fetch →
/// transfer, exception/check/map/reclaim → service). Minor faults are pure
/// queueing (the handler waits on an in-flight fetch). Zero fills are pure
/// service. Prefetches split into wire time (issue → completion `done`) and
/// queueing (landing deferral). Evictions split into writeback wire time
/// and service. Any window that overlaps recovery-replay events moves its
/// transfer share to `replay`.
pub fn critical_path(r: &RequestTrace) -> PhaseBreakdown {
    let total = r.total();
    let mut b = PhaseBreakdown {
        total,
        ..PhaseBreakdown::default()
    };
    let mut saw_phase = false;
    for (_, ev) in &r.events {
        if let TraceEvent::FaultPhase { phase, dur, .. } = ev {
            saw_phase = true;
            match phase {
                FaultPhase::Alloc => b.queueing = b.queueing.saturating_add(*dur),
                FaultPhase::Fetch => b.transfer = b.transfer.saturating_add(*dur),
                FaultPhase::Exception
                | FaultPhase::Check
                | FaultPhase::Map
                | FaultPhase::Reclaim => b.service = b.service.saturating_add(*dur),
            }
        }
    }
    if !saw_phase {
        match r.kind {
            ReqKind::MinorFault => b.queueing = total,
            ReqKind::ZeroFill | ReqKind::Other => b.service = total,
            ReqKind::Prefetch | ReqKind::Evict => {
                b.transfer = wire_time(r).min(total);
                if r.kind == ReqKind::Prefetch {
                    b.queueing = total.saturating_sub(b.transfer);
                } else {
                    b.service = total.saturating_sub(b.transfer);
                }
            }
            // A phase-less major fault (a baseline that does not emit
            // phases): charge wire time to transfer, the rest to service.
            ReqKind::MajorFault => {
                b.transfer = wire_time(r).min(total);
                b.service = total.saturating_sub(b.transfer);
            }
        }
    }
    // A crash-recovery replay observed inside the window converts the
    // transfer share into replay stall: the fetch was not moving bytes, it
    // was waiting for the memnode to redo its intent log.
    if r.events.iter().any(|(_, ev)| {
        matches!(
            ev,
            TraceEvent::NodeCrash { .. }
                | TraceEvent::RecoveryReplay { .. }
                | TraceEvent::RecoveryComplete { .. }
        )
    }) {
        b.replay = b.transfer;
        b.transfer = 0;
    }
    let explained = b
        .queueing
        .saturating_add(b.transfer)
        .saturating_add(b.service)
        .saturating_add(b.replay);
    b.other = total.saturating_sub(explained);
    b
}

/// Total wire time of the request: per-QP FIFO pairing of `RdmaIssue` with
/// the matching `RdmaComplete` `done` horizon.
fn wire_time(r: &RequestTrace) -> Ns {
    let mut open: BTreeMap<(u8, bool, u8, u8), Vec<Ns>> = BTreeMap::new();
    let mut sum: Ns = 0;
    for (t, ev) in &r.events {
        match *ev {
            TraceEvent::RdmaIssue {
                class,
                write,
                node,
                core,
                ..
            } => {
                open.entry((class.idx() as u8, write, node, core))
                    .or_default()
                    .push(*t);
            }
            TraceEvent::RdmaComplete {
                class,
                write,
                node,
                core,
                done,
            } => {
                let key = (class.idx() as u8, write, node, core);
                if let Some(q) = open.get_mut(&key) {
                    if !q.is_empty() {
                        let issued = q.remove(0);
                        sum = sum.saturating_add(done.saturating_sub(issued));
                    }
                }
            }
            _ => {}
        }
    }
    sum
}

#[derive(Debug, Default)]
struct CausalCore {
    reqs: BTreeMap<ReqId, RequestTrace>,
    open_reclaim: Option<(Ns, u32)>,
    /// Background reclaim episodes: (begin, end, frames freed).
    reclaim_episodes: Vec<(Ns, Ns, u32)>,
}

impl CausalCore {
    fn record(&mut self, t: Ns, ev: &TraceEvent, req: Option<ReqId>) {
        let Some(id) = req else {
            // Unattributed stream: only the background reclaim envelope is
            // interesting (per-request reclaim shows up via FaultPhase).
            match *ev {
                TraceEvent::ReclaimBegin { free } => self.open_reclaim = Some((t, free)),
                TraceEvent::ReclaimEnd { freed } => {
                    if let Some((begin, _)) = self.open_reclaim.take() {
                        self.reclaim_episodes.push((begin, t, freed));
                    }
                }
                _ => {}
            }
            return;
        };
        let r = self.reqs.entry(id).or_insert_with(|| RequestTrace {
            id,
            kind: ReqKind::Other,
            core: 0,
            vpn: u64::MAX,
            begin: t,
            end: t,
            events: Vec::new(),
        });
        r.end = r.end.max(t);
        match *ev {
            TraceEvent::FaultBegin { core, vpn, kind } => {
                if r.kind == ReqKind::Other {
                    r.kind = match kind {
                        FaultKind::Major => ReqKind::MajorFault,
                        FaultKind::Minor => ReqKind::MinorFault,
                        FaultKind::ZeroFill => ReqKind::ZeroFill,
                    };
                }
                r.core = core;
                if r.vpn == u64::MAX {
                    r.vpn = vpn;
                }
            }
            TraceEvent::PrefetchIssue { vpn } => {
                if r.kind == ReqKind::Other {
                    r.kind = ReqKind::Prefetch;
                }
                if r.vpn == u64::MAX {
                    r.vpn = vpn;
                }
            }
            TraceEvent::Evict { vpn, .. } => {
                if r.kind == ReqKind::Other {
                    r.kind = ReqKind::Evict;
                }
                if r.vpn == u64::MAX {
                    r.vpn = vpn;
                }
            }
            TraceEvent::RdmaComplete { done, .. } => r.end = r.end.max(done),
            TraceEvent::LinkTransfer { done, .. } => r.end = r.end.max(done),
            _ => {}
        }
        r.events.push((t, *ev));
    }
}

impl TraceObserver for CausalCore {
    fn on_event(&mut self, t: Ns, ev: &TraceEvent) {
        self.record(t, ev, None);
    }

    fn on_event_req(&mut self, t: Ns, ev: &TraceEvent, req: Option<ReqId>) {
        self.record(t, ev, req);
    }
}

/// Cloneable handle to a (possibly absent) causal recorder, following the
/// same dark-handle pattern as [`TraceSink`] and `SpanProfiler`: the
/// default / `disabled()` handle observes nothing and costs nothing.
#[derive(Debug, Clone, Default)]
pub struct CausalTracer {
    inner: Option<Rc<RefCell<CausalCore>>>,
}

impl CausalTracer {
    /// The dark handle: records nothing.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A live recorder (attach it to a sink with [`CausalTracer::attach_to`]).
    pub fn recording() -> Self {
        Self {
            inner: Some(Rc::new(RefCell::new(CausalCore::default()))),
        }
    }

    /// Whether span trees are being assembled.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers this tracer as an observer of `trace`. Call once per sink;
    /// `Observability::with_timeline` does this for bundles.
    pub fn attach_to(&self, trace: &TraceSink) {
        if let Some(core) = &self.inner {
            trace.attach(core.clone());
        }
    }

    /// Number of requests with at least one attributed event.
    pub fn request_count(&self) -> usize {
        self.inner.as_ref().map_or(0, |c| c.borrow().reqs.len())
    }

    /// All assembled span trees, in request-id (origin) order.
    pub fn requests(&self) -> Vec<RequestTrace> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |c| c.borrow().reqs.values().cloned().collect())
    }

    /// Background reclaim episodes as (begin, end, frames freed).
    pub fn reclaim_episodes(&self) -> Vec<(Ns, Ns, u32)> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |c| c.borrow().reclaim_episodes.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::ServiceClass;

    fn armed() -> (TraceSink, CausalTracer) {
        let sink = TraceSink::recording();
        let tracer = CausalTracer::recording();
        tracer.attach_to(&sink);
        (sink, tracer)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let sink = TraceSink::recording();
        let tracer = CausalTracer::disabled();
        tracer.attach_to(&sink);
        sink.begin_request();
        sink.emit(1, TraceEvent::FrameAlloc { frame: 0 });
        assert!(!tracer.is_enabled());
        assert_eq!(tracer.request_count(), 0);
        assert!(tracer.requests().is_empty());
    }

    #[test]
    fn groups_events_by_request_and_extends_end_by_done() {
        let (sink, tracer) = armed();
        let prev = sink.begin_request();
        sink.emit(
            100,
            TraceEvent::FaultBegin {
                core: 2,
                vpn: 7,
                kind: FaultKind::Major,
            },
        );
        sink.emit(
            110,
            TraceEvent::RdmaComplete {
                class: ServiceClass::Fault,
                write: false,
                node: 0,
                core: 2,
                done: 900,
            },
        );
        sink.emit(120, TraceEvent::FaultEnd { core: 2, vpn: 7 });
        sink.set_request(prev);
        sink.emit(130, TraceEvent::FrameFree { frame: 3 });

        let reqs = tracer.requests();
        assert_eq!(reqs.len(), 1);
        let r = &reqs[0];
        assert_eq!(r.kind, ReqKind::MajorFault);
        assert_eq!(r.core, 2);
        assert_eq!(r.vpn, 7);
        assert_eq!(r.begin, 100);
        assert_eq!(r.end, 900, "done horizon extends the envelope");
        assert_eq!(r.events.len(), 3, "unattributed events stay out");
    }

    #[test]
    fn critical_path_uses_fault_phases() {
        let (sink, tracer) = armed();
        sink.begin_request();
        sink.emit(
            0,
            TraceEvent::FaultBegin {
                core: 0,
                vpn: 1,
                kind: FaultKind::Major,
            },
        );
        for (phase, dur) in [
            (FaultPhase::Exception, 2),
            (FaultPhase::Check, 3),
            (FaultPhase::Alloc, 10),
            (FaultPhase::Fetch, 80),
            (FaultPhase::Map, 5),
        ] {
            sink.emit(
                100,
                TraceEvent::FaultPhase {
                    core: 0,
                    phase,
                    dur,
                },
            );
        }
        sink.emit(100, TraceEvent::FaultEnd { core: 0, vpn: 1 });
        let reqs = tracer.requests();
        let b = critical_path(&reqs[0]);
        assert_eq!(b.total, 100);
        assert_eq!(b.queueing, 10);
        assert_eq!(b.transfer, 80);
        assert_eq!(b.service, 10);
        assert_eq!(b.replay, 0);
        assert_eq!(b.other, 0);
        assert_eq!(b.dominant(), "transfer");
    }

    #[test]
    fn minor_fault_is_pure_queueing_and_prefetch_splits_wire() {
        let (sink, tracer) = armed();
        // Minor fault: begin/land/end, no phases.
        sink.begin_request();
        sink.emit(
            10,
            TraceEvent::FaultBegin {
                core: 1,
                vpn: 9,
                kind: FaultKind::Minor,
            },
        );
        sink.emit(70, TraceEvent::FaultEnd { core: 1, vpn: 9 });
        // Prefetch: issue + verb, landing later.
        sink.begin_request();
        sink.emit(20, TraceEvent::PrefetchIssue { vpn: 11 });
        sink.emit(
            20,
            TraceEvent::RdmaIssue {
                class: ServiceClass::Prefetch,
                write: false,
                node: 0,
                core: 1,
                bytes: 4096,
            },
        );
        sink.emit(
            21,
            TraceEvent::RdmaComplete {
                class: ServiceClass::Prefetch,
                write: false,
                node: 0,
                core: 1,
                done: 60,
            },
        );
        sink.emit(80, TraceEvent::PrefetchLand { vpn: 11 });
        sink.set_request(None);

        let reqs = tracer.requests();
        assert_eq!(reqs.len(), 2);
        let minor = critical_path(&reqs[0]);
        assert_eq!(minor.queueing, 60);
        assert_eq!(minor.transfer, 0);
        let pf = critical_path(&reqs[1]);
        assert_eq!(pf.total, 60);
        assert_eq!(pf.transfer, 40, "issue@20 -> done@60");
        assert_eq!(pf.queueing, 20, "landing deferral");
    }

    #[test]
    fn background_reclaim_becomes_episodes_not_requests() {
        let (sink, tracer) = armed();
        sink.emit(5, TraceEvent::ReclaimBegin { free: 2 });
        sink.emit(
            9,
            TraceEvent::Evict {
                vpn: 1,
                dirty: false,
            },
        );
        sink.emit(15, TraceEvent::ReclaimEnd { freed: 4 });
        assert_eq!(tracer.request_count(), 0);
        assert_eq!(tracer.reclaim_episodes(), vec![(5, 15, 4)]);
    }

    #[test]
    fn replay_overlap_moves_transfer_to_replay() {
        let (sink, tracer) = armed();
        sink.begin_request();
        sink.emit(
            0,
            TraceEvent::FaultBegin {
                core: 0,
                vpn: 3,
                kind: FaultKind::Major,
            },
        );
        sink.emit(1, TraceEvent::NodeCrash { node: 0 });
        sink.emit(
            50,
            TraceEvent::FaultPhase {
                core: 0,
                phase: FaultPhase::Fetch,
                dur: 40,
            },
        );
        sink.emit(50, TraceEvent::FaultEnd { core: 0, vpn: 3 });
        let reqs = tracer.requests();
        let b = critical_path(&reqs[0]);
        assert_eq!(b.replay, 40);
        assert_eq!(b.transfer, 0);
    }
}
