//! Virtual-time telemetry: a metrics registry, a calendar-driven gauge
//! sampler, and a span profiler over the trace stream.
//!
//! The paper's headline evidence is observability output — fault-latency
//! breakdowns (Figs. 1/6), RDMA curves (Fig. 2), bandwidth and occupancy
//! behaviour under eager reclaim — and this module unifies the repo's
//! fragmented instrumentation behind three deterministic surfaces:
//!
//! 1. [`MetricsRegistry`] — shared-nothing per-core counters and named
//!    gauges, all `BTreeMap`-keyed so no enumeration can leak hash order.
//!    The node, RDMA endpoint, memory node, LRU chain, scheduler, and the
//!    baselines all register into the same handle.
//! 2. The **calendar-driven sampler** — the registry owns a *private*
//!    [`Calendar`] of recurring [`SchedEvent::SampleTick`] events. Hosts
//!    poll it at their existing event-drain points and snapshot every gauge
//!    into a virtual-time series. Keeping the ticks off the systems' main
//!    calendars is a purity requirement, not a convenience: wait loops
//!    (e.g. Fastswap's frame-allocation spin) consult `Calendar::next_due`,
//!    so a foreign tick in the main calendar would change how many spins —
//!    and therefore how many reclaim batches — a run executes. With a
//!    private calendar the main calendars' contents (including sequence
//!    numbers) are bit-identical with metrics on or off.
//! 3. [`SpanProfiler`] — a [`TraceObserver`] that folds the existing
//!    [`TraceEvent`] stream (fault begin/phase/end, RDMA verbs, reclaim
//!    episodes) into per-core hierarchical spans, emitting a
//!    flamegraph.pl/inferno-compatible folded-stack file plus end-to-end
//!    fault-latency histograms per fault kind.
//!
//! Like [`TraceSink`], both handles follow the `Option`-branch pattern:
//! `disabled()` (the default) is a `None` that makes every operation a
//! single branch, and telemetry is a pure observer either way — it never
//! emits trace events, never schedules on a shared calendar, and never
//! feeds back into simulation decisions, so trace digests are byte-stable
//! under it.
//!
//! All JSON emitted here is hand-rolled (the workspace deliberately has no
//! serialization dependency) and byte-stable: map iteration order is the
//! `BTreeMap` key order. Metric names are `&'static str` ASCII identifiers,
//! so no string escaping is needed.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::rc::Rc;

use crate::sched::{Calendar, SchedEvent};
use crate::stats::LatencyHistogram;
use crate::time::Ns;
use crate::trace::{FaultKind, FaultPhase, TraceEvent, TraceObserver, TraceSink};

/// Default gauge-sampling interval: 50 µs of virtual time — fine enough to
/// see reclaim episodes, coarse enough that bench-scale runs keep their
/// series small.
pub const DEFAULT_SAMPLE_INTERVAL_NS: Ns = 50_000;

/// Stable label for a fault kind (histogram keys, folded-stack frames).
pub fn kind_label(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::Major => "major",
        FaultKind::Minor => "minor",
        FaultKind::ZeroFill => "zero_fill",
    }
}

/// Stable label for a fault phase (folded-stack frames, cross-checks
/// against the hand-maintained `FaultBreakdown` fields).
pub fn phase_label(phase: FaultPhase) -> &'static str {
    match phase {
        FaultPhase::Exception => "exception",
        FaultPhase::Check => "check",
        FaultPhase::Alloc => "alloc",
        FaultPhase::Fetch => "fetch",
        FaultPhase::Map => "map",
        FaultPhase::Reclaim => "reclaim",
    }
}

#[derive(Debug)]
struct RegistryCore {
    /// Counter name → per-core lanes (lane 0 for global/background work).
    /// Lanes grow on demand so components need no core-count plumbing.
    counters: BTreeMap<&'static str, Vec<u64>>,
    /// Latest value of each registered gauge.
    gauges: BTreeMap<&'static str, u64>,
    /// Gauge name → sampled `(virtual time, value)` series.
    series: BTreeMap<&'static str, Vec<(Ns, u64)>>,
    interval: Ns,
    /// The sampler's own calendar of recurring `SampleTick`s — deliberately
    /// never shared with a system's main calendar (see module docs).
    sampler: Calendar,
    samples: u64,
}

/// Cloneable handle to a (possibly absent) metrics registry.
///
/// All clones share one store; [`MetricsRegistry::disabled`] (and
/// `Default`) is the dark handle whose every method is a branch on `None`.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Option<Rc<RefCell<RegistryCore>>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "MetricsRegistry(disabled)"),
            Some(core) => {
                let c = core.borrow();
                write!(
                    f,
                    "MetricsRegistry(counters={}, gauges={}, samples={})",
                    c.counters.len(),
                    c.gauges.len(),
                    c.samples
                )
            }
        }
    }
}

impl MetricsRegistry {
    /// The dark handle: nothing is recorded, every call is a `None` branch.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A recording registry sampling gauges every
    /// [`DEFAULT_SAMPLE_INTERVAL_NS`].
    pub fn recording() -> Self {
        Self::with_interval(DEFAULT_SAMPLE_INTERVAL_NS)
    }

    /// A recording registry with a custom sampling interval (clamped to at
    /// least 1 ns). The first tick is due at `interval`.
    pub fn with_interval(interval: Ns) -> Self {
        let interval = interval.max(1);
        let sampler = Calendar::new();
        sampler.schedule(interval, SchedEvent::SampleTick);
        Self {
            inner: Some(Rc::new(RefCell::new(RegistryCore {
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                series: BTreeMap::new(),
                interval,
                sampler,
                samples: 0,
            }))),
        }
    }

    /// Whether metrics are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `delta` to counter `name` on per-core `lane`. No-op (one
    /// branch) when disabled.
    #[inline]
    pub fn add(&self, name: &'static str, lane: usize, delta: u64) {
        let Some(core) = &self.inner else { return };
        let mut c = core.borrow_mut();
        let lanes = c.counters.entry(name).or_default();
        if lanes.len() <= lane {
            lanes.resize(lane + 1, 0);
        }
        lanes[lane] += delta;
    }

    /// Increments counter `name` on `lane` by one.
    #[inline]
    pub fn inc(&self, name: &'static str, lane: usize) {
        self.add(name, lane, 1);
    }

    /// Sum of counter `name` across all lanes (zero if never touched).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.inner.as_ref().map_or(0, |core| {
            core.borrow()
                .counters
                .get(name)
                .map_or(0, |lanes| lanes.iter().sum())
        })
    }

    /// The per-lane values of counter `name` (empty if never touched).
    pub fn counter_lanes(&self, name: &str) -> Vec<u64> {
        self.inner.as_ref().map_or_else(Vec::new, |core| {
            core.borrow()
                .counters
                .get(name)
                .cloned()
                .unwrap_or_default()
        })
    }

    /// Sets gauge `name` to `value` (registering it on first use).
    #[inline]
    pub fn set_gauge(&self, name: &'static str, value: u64) {
        let Some(core) = &self.inner else { return };
        core.borrow_mut().gauges.insert(name, value);
    }

    /// The latest value of gauge `name`, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.inner
            .as_ref()
            .and_then(|core| core.borrow().gauges.get(name).copied())
    }

    /// The gauge-sampling interval (zero when disabled).
    pub fn sample_interval_ns(&self) -> Ns {
        self.inner.as_ref().map_or(0, |core| core.borrow().interval)
    }

    /// Number of samples taken so far.
    pub fn samples(&self) -> u64 {
        self.inner.as_ref().map_or(0, |core| core.borrow().samples)
    }

    /// Pops the next sample tick due at or before `now` from the private
    /// sampler calendar, rescheduling the recurring tick, and returns the
    /// tick's virtual time. Hosts call this in a `while let` at their
    /// event-drain points and record a gauge snapshot per returned tick:
    ///
    /// ```text
    /// while let Some(t) = self.metrics.next_sample_due(now) {
    ///     self.record_gauges(t);
    /// }
    /// ```
    ///
    /// Sampling is drain-point semantics, deterministically: a tick due at
    /// virtual time `T` is observed at the host's first drain at or after
    /// `T`, and the snapshot is timestamped `T`.
    pub fn next_sample_due(&self, now: Ns) -> Option<Ns> {
        let core = self.inner.as_ref()?;
        let c = core.borrow();
        if !c.sampler.has_due(now) {
            return None;
        }
        let (t, _) = c.sampler.pop_due(now)?;
        let next = t + c.interval;
        c.sampler.schedule(next, SchedEvent::SampleTick);
        Some(t)
    }

    /// Appends the current value of every gauge to its time series,
    /// stamped `t`.
    pub fn record_sample(&self, t: Ns) {
        let Some(core) = &self.inner else { return };
        let mut c = core.borrow_mut();
        let RegistryCore {
            gauges,
            series,
            samples,
            ..
        } = &mut *c;
        *samples += 1;
        for (&name, &value) in gauges.iter() {
            series.entry(name).or_default().push((t, value));
        }
    }

    /// The sampled series for gauge `name` (empty if never sampled).
    pub fn series(&self, name: &str) -> Vec<(Ns, u64)> {
        self.inner.as_ref().map_or_else(Vec::new, |core| {
            core.borrow().series.get(name).cloned().unwrap_or_default()
        })
    }

    /// Counters as a byte-stable JSON object: `{"name": [lane0, …], …}`.
    /// Disabled registries emit `{}`.
    pub fn counters_json(&self) -> String {
        let Some(core) = &self.inner else {
            return "{}".to_string();
        };
        let c = core.borrow();
        let mut out = String::from("{");
        for (i, (name, lanes)) in c.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{name}\": [");
            for (j, v) in lanes.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{v}");
            }
            out.push(']');
        }
        out.push('}');
        out
    }

    /// Latest gauge values as a byte-stable JSON object:
    /// `{"name": value, …}`. Disabled registries emit `{}`.
    pub fn gauges_json(&self) -> String {
        let Some(core) = &self.inner else {
            return "{}".to_string();
        };
        let c = core.borrow();
        let mut out = String::from("{");
        for (i, (name, value)) in c.gauges.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{name}\": {value}");
        }
        out.push('}');
        out
    }

    /// Sampled time series as a byte-stable JSON object:
    /// `{"name": [[t_ns, value], …], …}`. Disabled registries emit `{}`.
    pub fn series_json(&self) -> String {
        let Some(core) = &self.inner else {
            return "{}".to_string();
        };
        let c = core.borrow();
        let mut out = String::from("{");
        for (i, (name, points)) in c.series.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{name}\": [");
            for (j, (t, v)) in points.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{t}, {v}]");
            }
            out.push(']');
        }
        out.push('}');
        out
    }
}

/// A fault span opened by `FaultBegin` and not yet closed.
#[derive(Debug, Clone, Copy)]
struct OpenFault {
    kind: FaultKind,
    begin: Ns,
    /// Virtual time already attributed to named phases: the `FaultEnd`
    /// residual (if any) is charged to the bare fault frame so the folded
    /// stacks sum to wall (virtual) time per fault.
    charged: Ns,
}

#[derive(Debug, Default)]
struct ProfilerCore {
    /// Per-core open fault span (the handler is synchronous per core).
    open: BTreeMap<u8, OpenFault>,
    /// Folded stack → accumulated virtual ns. `String` keys in a `BTreeMap`
    /// give byte-stable output order.
    folded: BTreeMap<String, u128>,
    /// End-to-end fault latency per fault kind.
    hist: BTreeMap<&'static str, LatencyHistogram>,
    /// Completed fault spans per kind (cross-checked against the systems'
    /// hand-maintained counters).
    counts: BTreeMap<&'static str, u64>,
    /// Total virtual ns per fault phase across all spans.
    phase_sums: BTreeMap<&'static str, Ns>,
    /// Per-phase duration distribution across all spans (one sample per
    /// `FaultPhase` event), backing the per-phase latency quantiles.
    phase_hist: BTreeMap<&'static str, LatencyHistogram>,
    /// In-flight verbs per `(class, write, node, core)` queue-pair key.
    /// Same-key verbs complete FIFO, so issue times pop front-first.
    rdma_open: BTreeMap<(u8, bool, u8, u8), VecDeque<Ns>>,
    /// The open background reclaim episode, if any.
    reclaim_open: Option<Ns>,
}

impl TraceObserver for ProfilerCore {
    fn on_event(&mut self, t: Ns, ev: &TraceEvent) {
        match *ev {
            TraceEvent::FaultBegin { core, kind, .. } => {
                self.open.insert(
                    core,
                    OpenFault {
                        kind,
                        begin: t,
                        charged: 0,
                    },
                );
            }
            TraceEvent::FaultPhase { core, phase, dur } => {
                if let Some(f) = self.open.get_mut(&core) {
                    f.charged += dur;
                    let kind = kind_label(f.kind);
                    let key = format!("core{core};fault:{kind};{}", phase_label(phase));
                    *self.folded.entry(key).or_default() += dur as u128;
                    *self.phase_sums.entry(phase_label(phase)).or_default() += dur;
                    self.phase_hist
                        .entry(phase_label(phase))
                        .or_default()
                        .record(dur);
                }
            }
            TraceEvent::FaultEnd { core, .. } => {
                if let Some(f) = self.open.remove(&core) {
                    let total = t.saturating_sub(f.begin);
                    let kind = kind_label(f.kind);
                    self.hist.entry(kind).or_default().record(total);
                    *self.counts.entry(kind).or_default() += 1;
                    // Phases may double-charge overlapped work (reclaim
                    // hidden inside the fetch window), so the residual is
                    // saturating.
                    let residual = total.saturating_sub(f.charged);
                    if residual > 0 {
                        let key = format!("core{core};fault:{kind}");
                        *self.folded.entry(key).or_default() += residual as u128;
                    }
                }
            }
            TraceEvent::RdmaIssue {
                class,
                write,
                node,
                core,
                ..
            } => {
                self.rdma_open
                    .entry((class.idx() as u8, write, node, core))
                    .or_default()
                    .push_back(t);
            }
            TraceEvent::RdmaComplete {
                class,
                write,
                node,
                core,
                done,
            } => {
                let key = (class.idx() as u8, write, node, core);
                if let Some(t0) = self.rdma_open.get_mut(&key).and_then(VecDeque::pop_front) {
                    let rw = if write { "write" } else { "read" };
                    let stack = format!("core{core};rdma:{}:{rw}", class.label());
                    *self.folded.entry(stack).or_default() += done.saturating_sub(t0) as u128;
                }
            }
            TraceEvent::ReclaimBegin { .. } => {
                self.reclaim_open = Some(t);
            }
            TraceEvent::ReclaimEnd { .. } => {
                if let Some(t0) = self.reclaim_open.take() {
                    *self.folded.entry("bg;reclaim".to_string()).or_default() +=
                        t.saturating_sub(t0) as u128;
                }
            }
            _ => {}
        }
    }
}

/// Cloneable handle to a (possibly absent) span profiler.
///
/// Attach it to a [`TraceSink`] with [`SpanProfiler::attach_to`]; it then
/// consumes every event synchronously, like the auditor, without emitting
/// anything back — a pure observer.
#[derive(Clone, Default)]
pub struct SpanProfiler {
    inner: Option<Rc<RefCell<ProfilerCore>>>,
}

impl std::fmt::Debug for SpanProfiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "SpanProfiler(disabled)"),
            Some(core) => {
                let c = core.borrow();
                write!(
                    f,
                    "SpanProfiler(stacks={}, open={})",
                    c.folded.len(),
                    c.open.len()
                )
            }
        }
    }
}

impl SpanProfiler {
    /// The dark handle: nothing is recorded.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A recording profiler (attach it to a sink to feed it).
    pub fn recording() -> Self {
        Self {
            inner: Some(Rc::new(RefCell::new(ProfilerCore::default()))),
        }
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Subscribes this profiler to every subsequent event of `sink`. A
    /// no-op when either side is disabled.
    pub fn attach_to(&self, sink: &TraceSink) {
        if let Some(core) = &self.inner {
            sink.attach(core.clone());
        }
    }

    /// Completed fault spans of `kind` (`"major"`, `"minor"`,
    /// `"zero_fill"`).
    pub fn fault_count(&self, kind: &str) -> u64 {
        self.inner.as_ref().map_or(0, |core| {
            core.borrow().counts.get(kind).copied().unwrap_or(0)
        })
    }

    /// Total virtual ns attributed to `phase` (`"exception"`, `"check"`,
    /// `"alloc"`, `"fetch"`, `"map"`, `"reclaim"`) across all spans.
    pub fn phase_sum(&self, phase: &str) -> Ns {
        self.inner.as_ref().map_or(0, |core| {
            core.borrow().phase_sums.get(phase).copied().unwrap_or(0)
        })
    }

    /// The end-to-end latency histogram for fault `kind`, if any span of
    /// that kind completed.
    pub fn histogram(&self, kind: &str) -> Option<LatencyHistogram> {
        self.inner
            .as_ref()
            .and_then(|core| core.borrow().hist.get(kind).cloned())
    }

    /// The per-phase duration histogram for `phase` (`"exception"`,
    /// `"check"`, `"alloc"`, `"fetch"`, `"map"`, `"reclaim"`), if any span
    /// charged it.
    pub fn phase_histogram(&self, phase: &str) -> Option<LatencyHistogram> {
        self.inner
            .as_ref()
            .and_then(|core| core.borrow().phase_hist.get(phase).cloned())
    }

    /// The folded-stack output, one `stack value` line per stack in
    /// byte-stable (sorted) order — the format flamegraph.pl and inferno
    /// consume directly. Disabled profilers emit the empty string.
    pub fn folded(&self) -> String {
        let Some(core) = &self.inner else {
            return String::new();
        };
        let c = core.borrow();
        let mut out = String::new();
        for (stack, value) in &c.folded {
            let _ = writeln!(out, "{stack} {value}");
        }
        out
    }

    /// Fault-latency histograms as a byte-stable JSON object keyed by fault
    /// kind. Each entry carries summary statistics plus the occupied bucket
    /// boundaries (`[low_ns, high_ns, count]`, bounds inclusive) so
    /// consumers can re-plot the distribution without the binary. Disabled
    /// profilers emit `{}`.
    pub fn histograms_json(&self) -> String {
        let Some(core) = &self.inner else {
            return "{}".to_string();
        };
        let c = core.borrow();
        let mut out = String::from("{");
        for (i, (kind, h)) in c.hist.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "\"{kind}\": {{\"count\": {}, \"sum\": {}, \"mean\": {}, \"min\": {}, \
                 \"max\": {}, \"p50\": {}, \"p99\": {}, \"p999\": {}, \"buckets\": [",
                h.count(),
                h.sum(),
                h.mean(),
                h.min(),
                h.max(),
                h.quantile(0.50),
                h.quantile(0.99),
                h.quantile(0.999),
            );
            for (j, (lo, hi, n)) in h.nonzero_buckets().iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{lo}, {hi}, {n}]");
            }
            out.push_str("]}");
        }
        out.push('}');
        out
    }

    /// Per-phase latency quantiles as a byte-stable JSON object keyed by
    /// phase label: count plus p50/p90/p99/p999 of the per-span phase
    /// durations. Complements [`SpanProfiler::phase_sum`] (aggregate) with
    /// tail shape — the question the causal tail report asks in bulk.
    /// Disabled profilers emit `{}`.
    pub fn phase_quantiles_json(&self) -> String {
        let Some(core) = &self.inner else {
            return "{}".to_string();
        };
        let c = core.borrow();
        let mut out = String::from("{");
        for (i, (phase, h)) in c.phase_hist.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "\"{phase}\": {{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \
                 \"p999\": {}}}",
                h.count(),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
                h.quantile(0.999),
            );
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::ServiceClass;

    #[test]
    fn disabled_registry_is_inert_and_emits_nothing() {
        let m = MetricsRegistry::disabled();
        m.inc("faults", 0);
        m.set_gauge("free", 7);
        m.record_sample(100);
        assert!(!m.is_enabled());
        assert_eq!(m.counter_total("faults"), 0);
        assert_eq!(m.gauge("free"), None);
        assert_eq!(m.samples(), 0);
        assert_eq!(m.next_sample_due(u64::MAX), None);
        assert_eq!(m.counters_json(), "{}");
        assert_eq!(m.gauges_json(), "{}");
        assert_eq!(m.series_json(), "{}");
    }

    #[test]
    fn counters_have_independent_lanes() {
        let m = MetricsRegistry::recording();
        m.inc("faults", 0);
        m.inc("faults", 2);
        m.add("faults", 2, 4);
        assert_eq!(m.counter_total("faults"), 6);
        assert_eq!(m.counter_lanes("faults"), vec![1, 0, 5]);
        assert_eq!(m.counter_total("absent"), 0);
        assert_eq!(m.counters_json(), "{\"faults\": [1, 0, 5]}");
    }

    #[test]
    fn sampler_ticks_at_the_interval_and_catches_up() {
        let m = MetricsRegistry::with_interval(100);
        m.set_gauge("free", 10);
        assert_eq!(m.next_sample_due(99), None, "first tick is due at 100");
        // The host drains at t=350: three ticks (100, 200, 300) are due.
        let mut ticks = Vec::new();
        while let Some(t) = m.next_sample_due(350) {
            m.record_sample(t);
            ticks.push(t);
        }
        assert_eq!(ticks, vec![100, 200, 300]);
        assert_eq!(m.samples(), 3);
        assert_eq!(m.series("free"), vec![(100, 10), (200, 10), (300, 10)]);
        assert_eq!(
            m.series_json(),
            "{\"free\": [[100, 10], [200, 10], [300, 10]]}"
        );
    }

    #[test]
    fn gauges_json_tracks_latest_values() {
        let m = MetricsRegistry::recording();
        m.set_gauge("lru", 3);
        m.set_gauge("free", 12);
        m.set_gauge("lru", 4);
        assert_eq!(m.gauge("lru"), Some(4));
        assert_eq!(m.gauges_json(), "{\"free\": 12, \"lru\": 4}");
    }

    #[test]
    fn clones_share_one_store() {
        let m = MetricsRegistry::recording();
        let m2 = m.clone();
        m.inc("evictions", 0);
        m2.inc("evictions", 0);
        assert_eq!(m.counter_total("evictions"), 2);
    }

    #[test]
    fn profiler_folds_fault_spans_with_residual() {
        let p = SpanProfiler::recording();
        let sink = TraceSink::recording();
        p.attach_to(&sink);
        sink.emit(
            1_000,
            TraceEvent::FaultBegin {
                core: 1,
                vpn: 7,
                kind: FaultKind::Major,
            },
        );
        sink.emit(
            3_000,
            TraceEvent::FaultPhase {
                core: 1,
                phase: FaultPhase::Exception,
                dur: 500,
            },
        );
        sink.emit(
            3_000,
            TraceEvent::FaultPhase {
                core: 1,
                phase: FaultPhase::Fetch,
                dur: 1_200,
            },
        );
        sink.emit(3_000, TraceEvent::FaultEnd { core: 1, vpn: 7 });
        assert_eq!(p.fault_count("major"), 1);
        assert_eq!(p.phase_sum("exception"), 500);
        assert_eq!(p.phase_sum("fetch"), 1_200);
        let folded = p.folded();
        assert!(folded.contains("core1;fault:major;exception 500\n"));
        assert!(folded.contains("core1;fault:major;fetch 1200\n"));
        // Total span = 2000, phases charged 1700 → 300 ns residual.
        assert!(folded.contains("core1;fault:major 300\n"));
        let h = p.histogram("major").expect("major histogram");
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), 2_000);
    }

    #[test]
    fn phase_quantiles_json_carries_tail_shape() {
        assert_eq!(SpanProfiler::disabled().phase_quantiles_json(), "{}");
        let p = SpanProfiler::recording();
        let sink = TraceSink::recording();
        p.attach_to(&sink);
        for (i, dur) in [100u64, 100, 900].iter().enumerate() {
            let core = i as u8;
            sink.emit(
                0,
                TraceEvent::FaultBegin {
                    core,
                    vpn: i as u64,
                    kind: FaultKind::Major,
                },
            );
            sink.emit(
                1_000,
                TraceEvent::FaultPhase {
                    core,
                    phase: FaultPhase::Fetch,
                    dur: *dur,
                },
            );
            sink.emit(
                1_000,
                TraceEvent::FaultEnd {
                    core,
                    vpn: i as u64,
                },
            );
        }
        let json = p.phase_quantiles_json();
        assert!(json.starts_with("{\"fetch\": {\"count\": 3, \"p50\": "));
        assert!(json.contains("\"p90\": "));
        assert!(json.contains("\"p999\": "));
        assert_eq!(json, p.phase_quantiles_json(), "byte-stable");
        let h = p.phase_histogram("fetch").expect("fetch phase histogram");
        assert_eq!(h.count(), 3);
        assert!(h.quantile(0.999) >= h.quantile(0.50));
    }

    #[test]
    fn profiler_matches_rdma_verbs_fifo_per_qp() {
        let p = SpanProfiler::recording();
        let sink = TraceSink::recording();
        p.attach_to(&sink);
        for t in [100, 150] {
            sink.emit(
                t,
                TraceEvent::RdmaIssue {
                    class: ServiceClass::Fault,
                    write: false,
                    node: 0,
                    core: 2,
                    bytes: 4096,
                },
            );
        }
        for done in [400, 900] {
            sink.emit(
                done,
                TraceEvent::RdmaComplete {
                    class: ServiceClass::Fault,
                    write: false,
                    node: 0,
                    core: 2,
                    done,
                },
            );
        }
        // FIFO: (400-100) + (900-150) = 1050.
        assert!(p.folded().contains("core2;rdma:fault:read 1050\n"));
    }

    #[test]
    fn profiler_folds_reclaim_episodes() {
        let p = SpanProfiler::recording();
        let sink = TraceSink::recording();
        p.attach_to(&sink);
        sink.emit(10, TraceEvent::ReclaimBegin { free: 2 });
        sink.emit(60, TraceEvent::ReclaimEnd { freed: 4 });
        sink.emit(100, TraceEvent::ReclaimBegin { free: 6 });
        sink.emit(130, TraceEvent::ReclaimEnd { freed: 1 });
        assert_eq!(p.folded(), "bg;reclaim 80\n");
    }

    #[test]
    fn disabled_profiler_emits_nothing() {
        let p = SpanProfiler::disabled();
        let sink = TraceSink::recording();
        p.attach_to(&sink);
        sink.emit(
            5,
            TraceEvent::FaultBegin {
                core: 0,
                vpn: 1,
                kind: FaultKind::Minor,
            },
        );
        sink.emit(9, TraceEvent::FaultEnd { core: 0, vpn: 1 });
        assert!(!p.is_enabled());
        assert_eq!(p.folded(), "");
        assert_eq!(p.histograms_json(), "{}");
        assert_eq!(p.fault_count("minor"), 0);
    }

    #[test]
    fn histograms_json_is_byte_stable_and_carries_buckets() {
        let run = || {
            let p = SpanProfiler::recording();
            let sink = TraceSink::recording();
            p.attach_to(&sink);
            for (i, dur) in [2_000u64, 3_000, 2_500].iter().enumerate() {
                let t0 = i as Ns * 10_000;
                sink.emit(
                    t0,
                    TraceEvent::FaultBegin {
                        core: 0,
                        vpn: i as u64,
                        kind: FaultKind::Major,
                    },
                );
                sink.emit(
                    t0 + dur,
                    TraceEvent::FaultEnd {
                        core: 0,
                        vpn: i as u64,
                    },
                );
            }
            p.histograms_json()
        };
        let a = run();
        assert_eq!(a, run(), "histogram JSON must be byte-stable");
        assert!(a.contains("\"major\": {\"count\": 3"));
        assert!(a.contains("\"buckets\": [["));
    }
}
