//! Page-store backends for the memory node.
//!
//! The memory node's pool is sparse — pages that were never written read
//! back as zeros — and its enumeration order feeds the repair path and
//! therefore the trace, so any backend must enumerate pages in ascending
//! page-number order. [`MemStore`] captures exactly that contract; the
//! node itself does not care how pages are laid out.
//!
//! Two backends implement it:
//!
//! - [`FlatStore`] (the default): a chunked page directory mapping page
//!   numbers to dense slots, with a per-slot *extent* — the byte length of
//!   the non-zero prefix. Lookups are two array indexes instead of a
//!   `BTreeMap` walk, and reads/writes touch only the live prefix of each
//!   page (workloads that write a few bytes per page never pay 4 KB copies).
//! - [`BTreeStore`]: the original ordered-map layout, kept as the reference
//!   implementation for differential tests.
//!
//! The extent invariant: every byte of a slot at offset `>= extent` is zero.
//! Writes maintain it by trimming trailing zeros off the incoming data and
//! explicitly zeroing any stale bytes the trimmed write would have covered.

use std::collections::BTreeMap;

use crate::time::PAGE_SIZE;

/// Pages per directory chunk in [`FlatStore`] (must be a power of two).
const CHUNK_PAGES: usize = 512;
const CHUNK_SHIFT: u32 = CHUNK_PAGES.trailing_zeros();
/// Directory entry meaning "page not materialized".
const NO_SLOT: u32 = u32::MAX;

/// Storage contract for the memory node's sparse page pool.
///
/// `page` is an absolute page number (`addr / PAGE_SIZE`); `in_page` offsets
/// within it. Callers never hand a range that crosses a page boundary.
pub trait MemStore: std::fmt::Debug {
    /// Copies `out.len()` bytes of `page` starting at `in_page` into `out`.
    /// Bytes that were never written read as zero.
    ///
    /// Returns an upper bound on the non-zero prefix of `out`: every byte of
    /// `out` at or past the returned index is zero. Backends without extent
    /// metadata may return `out.len()` — the bound is a performance hint for
    /// the caller's own extent bookkeeping, never a semantic contract.
    fn read_into(&self, page: u64, in_page: usize, out: &mut [u8]) -> usize;

    /// Copies `data` into `page` at `in_page`, materializing the page if
    /// absent (even for all-zero data — materialization is observable via
    /// [`page_numbers`](Self::page_numbers)).
    ///
    /// `live` is the caller's promise that `data[live..]` is all zero (pass
    /// `data.len()` when unknown). It lets extent-tracking backends bound
    /// their trailing-zero scan to the prefix the writer actually touched
    /// instead of re-reading a page of cold zeros; it never changes the
    /// stored bytes.
    fn write_at(&mut self, page: u64, in_page: usize, data: &[u8], live: usize);

    /// Number of materialized pages.
    fn len(&self) -> usize;

    /// Whether no page is materialized.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialized page numbers, ascending. Repair walks this, and the walk
    /// order feeds the trace — ascending order is part of the contract.
    fn page_numbers(&self) -> Vec<u64>;

    /// Borrow of one materialized page's full content, `None` if absent.
    fn snapshot(&self, page: u64) -> Option<&[u8; PAGE_SIZE]>;

    /// Installs a full page verbatim (control path: repair/recovery).
    fn install(&mut self, page: u64, data: &[u8; PAGE_SIZE]);

    /// Drops every page (node crash).
    fn clear(&mut self);

    /// Full image of the pool, for checkpoint sealing.
    fn snapshot_all(&self) -> BTreeMap<u64, Box<[u8; PAGE_SIZE]>>;
}

/// Length of `data` with trailing zeros trimmed: the index one past the
/// last non-zero byte, 0 for all-zero input.
fn content_len(data: &[u8]) -> usize {
    let mut n = data.len();
    // Wide scan first: drop 64-byte all-zero blocks with eight u64 loads
    // (a mostly-zero 4 KiB page costs ~64 iterations instead of ~512).
    while n >= 64 {
        let mut acc = 0u64;
        for w in data[n - 64..n].chunks_exact(8) {
            acc |= u64::from_le_bytes(w.try_into().unwrap_or([0u8; 8]));
        }
        if acc != 0 {
            break;
        }
        n -= 64;
    }
    while n >= 8 && data[n - 8..n] == [0u8; 8] {
        n -= 8;
    }
    while n > 0 && data[n - 1] == 0 {
        n -= 1;
    }
    n
}

/// Chunked-directory page store with per-page live extents (default).
#[derive(Debug, Default)]
pub struct FlatStore {
    /// `page >> CHUNK_SHIFT` indexes a chunk; each chunk maps the low bits
    /// to a slot index, [`NO_SLOT`] marking absent pages.
    dir: Vec<Option<Box<[u32; CHUNK_PAGES]>>>,
    /// Page contents. Invariant: bytes at offset `>= extents[i]` are zero.
    slots: Vec<Box<[u8; PAGE_SIZE]>>,
    /// Non-zero prefix length of each slot.
    extents: Vec<u32>,
}

impl FlatStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot_of(&self, page: u64) -> Option<usize> {
        let chunk = self.dir.get((page >> CHUNK_SHIFT) as usize)?.as_ref()?;
        match chunk[(page & (CHUNK_PAGES as u64 - 1)) as usize] {
            NO_SLOT => None,
            s => Some(s as usize),
        }
    }

    fn slot_or_insert(&mut self, page: u64) -> usize {
        let c = (page >> CHUNK_SHIFT) as usize;
        if c >= self.dir.len() {
            self.dir.resize_with(c + 1, || None);
        }
        let next = self.slots.len() as u32;
        let chunk = self.dir[c].get_or_insert_with(|| Box::new([NO_SLOT; CHUNK_PAGES]));
        let entry = &mut chunk[(page & (CHUNK_PAGES as u64 - 1)) as usize];
        if *entry == NO_SLOT {
            *entry = next;
            self.slots.push(Box::new([0u8; PAGE_SIZE]));
            self.extents.push(0);
        }
        *entry as usize
    }
}

impl MemStore for FlatStore {
    fn read_into(&self, page: u64, in_page: usize, out: &mut [u8]) -> usize {
        match self.slot_of(page) {
            Some(s) => {
                let live = (self.extents[s] as usize)
                    .saturating_sub(in_page)
                    .min(out.len());
                out[..live].copy_from_slice(&self.slots[s][in_page..in_page + live]);
                out[live..].fill(0);
                live
            }
            None => {
                out.fill(0);
                0
            }
        }
    }

    fn write_at(&mut self, page: u64, in_page: usize, data: &[u8], live: usize) {
        let s = self.slot_or_insert(page);
        let eff = content_len(&data[..live.min(data.len())]);
        let slot = &mut self.slots[s];
        slot[in_page..in_page + eff].copy_from_slice(&data[..eff]);
        // The trimmed tail of the write may cover stale bytes below the old
        // extent; zero them to restore the extent invariant. At or above the
        // old extent the slot is already zero.
        let old_ext = self.extents[s] as usize;
        let zero_end = (in_page + data.len()).min(old_ext);
        let zero_start = (in_page + eff).min(zero_end);
        slot[zero_start..zero_end].fill(0);
        self.extents[s] = old_ext.max(in_page + eff) as u32;
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    fn page_numbers(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.slots.len());
        for (c, chunk) in self.dir.iter().enumerate() {
            let Some(chunk) = chunk else { continue };
            for (i, &slot) in chunk.iter().enumerate() {
                if slot != NO_SLOT {
                    out.push(((c << CHUNK_SHIFT) | i) as u64);
                }
            }
        }
        out
    }

    fn snapshot(&self, page: u64) -> Option<&[u8; PAGE_SIZE]> {
        self.slot_of(page).map(|s| &*self.slots[s])
    }

    fn install(&mut self, page: u64, data: &[u8; PAGE_SIZE]) {
        let s = self.slot_or_insert(page);
        *self.slots[s] = *data;
        self.extents[s] = content_len(data) as u32;
    }

    fn clear(&mut self) {
        self.dir.clear();
        self.slots.clear();
        self.extents.clear();
    }

    fn snapshot_all(&self) -> BTreeMap<u64, Box<[u8; PAGE_SIZE]>> {
        let mut out = BTreeMap::new();
        for p in self.page_numbers() {
            if let Some(s) = self.slot_of(p) {
                out.insert(p, self.slots[s].clone());
            }
        }
        out
    }
}

/// Ordered-map page store: the original layout, kept as the reference
/// backend for differential tests against [`FlatStore`].
#[derive(Debug, Default)]
pub struct BTreeStore {
    pages: BTreeMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl BTreeStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl From<BTreeMap<u64, Box<[u8; PAGE_SIZE]>>> for BTreeStore {
    fn from(pages: BTreeMap<u64, Box<[u8; PAGE_SIZE]>>) -> Self {
        Self { pages }
    }
}

impl MemStore for BTreeStore {
    fn read_into(&self, page: u64, in_page: usize, out: &mut [u8]) -> usize {
        match self.pages.get(&page) {
            Some(p) => {
                out.copy_from_slice(&p[in_page..in_page + out.len()]);
                out.len()
            }
            None => {
                out.fill(0);
                0
            }
        }
    }

    fn write_at(&mut self, page: u64, in_page: usize, data: &[u8], _live: usize) {
        let p = self
            .pages
            .entry(page)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        p[in_page..in_page + data.len()].copy_from_slice(data);
    }

    fn len(&self) -> usize {
        self.pages.len()
    }

    fn page_numbers(&self) -> Vec<u64> {
        self.pages.keys().copied().collect()
    }

    fn snapshot(&self, page: u64) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&page).map(|b| &**b)
    }

    fn install(&mut self, page: u64, data: &[u8; PAGE_SIZE]) {
        self.pages.insert(page, Box::new(*data));
    }

    fn clear(&mut self) {
        self.pages.clear();
    }

    fn snapshot_all(&self) -> BTreeMap<u64, Box<[u8; PAGE_SIZE]>> {
        self.pages.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_len_trims_trailing_zeros_only() {
        assert_eq!(content_len(&[]), 0);
        assert_eq!(content_len(&[0; 64]), 0);
        assert_eq!(content_len(&[1, 0, 0]), 1);
        assert_eq!(content_len(&[0, 0, 7]), 3);
        let mut page = [0u8; PAGE_SIZE];
        page[100] = 5;
        assert_eq!(content_len(&page), 101);
        page[PAGE_SIZE - 1] = 9;
        assert_eq!(content_len(&page), PAGE_SIZE);
    }

    /// Drives both backends through the same mixed op sequence and checks
    /// they agree byte-for-byte at every step.
    #[test]
    fn flat_and_btree_stores_agree() {
        let mut flat = FlatStore::new();
        let mut btree = BTreeStore::new();
        // Deterministic mix of aligned/misaligned, zero/non-zero writes,
        // overwrites that shrink the live prefix, and far-apart pages.
        // `(page, off, data, live)`: `live` is the caller hint — sometimes
        // exact, sometimes the loose `data.len()` bound.
        let writes: &[(u64, usize, &[u8], usize)] = &[
            (0, 0, &[1, 2, 3, 4, 5, 6, 7, 8], 8),
            (0, 4, &[0, 0, 0, 0], 0), // zeros stale bytes mid-prefix
            (3, 4090, &[9; 6], 6),    // tail of a page
            (700, 128, &[0xAB; 256], 256),
            (700, 128, &[0; 256], 256), // overwrite content with zeros
            (u64::from(u32::MAX) + 5, 0, &[42], 1), // far chunk
            (1, 0, &[0; 16], 16),     // all-zero write still materializes
        ];
        for &(page, off, data, live) in writes {
            flat.write_at(page, off, data, live);
            btree.write_at(page, off, data, live);
            assert_eq!(flat.len(), btree.len());
            assert_eq!(flat.page_numbers(), btree.page_numbers());
            for &p in &btree.page_numbers() {
                assert_eq!(flat.snapshot(p), btree.snapshot(p), "page {p}");
                let (mut a, mut b) = ([0u8; 100], [0u8; 100]);
                flat.read_into(p, 37, &mut a);
                btree.read_into(p, 37, &mut b);
                assert_eq!(a, b, "partial read of page {p}");
            }
        }
        // Absent pages read zero from both.
        let (mut a, mut b) = ([7u8; 64], [7u8; 64]);
        flat.read_into(999_999, 0, &mut a);
        btree.read_into(999_999, 0, &mut b);
        assert_eq!(a, [0; 64]);
        assert_eq!(b, [0; 64]);
        // Full images agree, and survive a clear.
        assert_eq!(flat.snapshot_all(), btree.snapshot_all());
        flat.clear();
        btree.clear();
        assert_eq!(flat.len(), 0);
        assert_eq!(btree.len(), 0);
        assert!(flat.page_numbers().is_empty());
    }

    #[test]
    fn extent_invariant_holds_after_shrinking_overwrites() {
        let mut s = FlatStore::new();
        s.write_at(5, 0, &[0xFF; 1024], 1024);
        // Overwrite most of the prefix with zeros: the trimmed write must
        // still zero the stale 0xFF bytes it covers — even when the caller's
        // live hint says the payload has no non-zero content at all.
        s.write_at(5, 8, &[0; 1016], 0);
        let snap = s.snapshot(5).unwrap();
        assert!(snap[..8].iter().all(|&b| b == 0xFF));
        assert!(snap[8..].iter().all(|&b| b == 0));
        let mut out = [9u8; 2048];
        s.read_into(5, 0, &mut out);
        assert_eq!(&out[..8], &[0xFF; 8]);
        assert!(out[8..].iter().all(|&b| b == 0));
    }
}
