//! Calibration constants for the virtual-time model.
//!
//! Every constant here is sourced from a measurement in the DiLOS paper:
//! Figure 1 (Fastswap page-fault latency breakdown), Figure 2 (RDMA latency
//! vs object size), Figure 6 (DiLOS vs Fastswap breakdown), and the §6.2
//! testbed description. DESIGN.md carries the full derivation table.

use crate::time::{cycles_to_ns, Ns};

/// Calibrated latency and bandwidth model for the simulated testbed.
///
/// The defaults reproduce the paper's two-node ConnectX-5 100 GbE setup with
/// 2.3 GHz Xeon cores. Experiments that sweep a parameter (e.g. the ablation
/// benches) clone and mutate a config.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// CPU clock rate in GHz (testbed: Intel E5-2670 v3, 2.3 GHz).
    pub cpu_ghz: f64,
    /// Network link bandwidth in bytes per second (100 Gb/s RoCE).
    pub link_bytes_per_sec: f64,
    /// Fixed component of a one-sided RDMA read (Figure 2: ~1.5 µs at 128 B).
    pub rdma_read_base_ns: Ns,
    /// Fixed component of a one-sided RDMA write (slightly cheaper: no
    /// response payload on the wire).
    pub rdma_write_base_ns: Ns,
    /// Per-byte latency of a one-sided verb (Figure 2: a 4 KB read costs
    /// ~0.6 µs more than a 128 B read, i.e. ~0.146 ns/B end to end).
    pub rdma_per_byte_ns: f64,
    /// Doorbell/WQE processing time per posted verb on a queue pair.
    ///
    /// With BlueFlame (WQE-by-MMIO) enabled — which DiLOS's driver supports
    /// via the write-combining buffer it adds to OSv — this is small.
    pub qp_doorbell_ns: Ns,
    /// Extra per-segment cost of a vectored (scatter/gather) verb.
    pub sg_per_segment_ns: Ns,
    /// Additional per-segment penalty once a vector exceeds
    /// [`sg_fast_segments`](Self::sg_fast_segments) entries. §6.3 reports "a
    /// significant slowdown when its vector is longer than three", which is
    /// why the guided-paging guide caps vectors at three segments.
    pub sg_slow_per_segment_ns: Ns,
    /// Number of scatter/gather segments served at full speed.
    pub sg_fast_segments: usize,
    /// Latency reduction on the memory node when its region is backed by
    /// 2 MB huge pages (the RNIC page table fits in NIC cache; §5).
    pub memnode_hugepage_saving_ns: Ns,
    /// Hardware page-fault exception delivery plus OS exception entry
    /// (Figure 1: 0.57 µs, 9 % of the average Fastswap fault).
    pub hw_exception_ns: Ns,
    /// Cost of a local DRAM access once a page is mapped (charged per
    /// workload-level access; approximates cache-hierarchy behaviour).
    pub local_access_ns: Ns,
    /// Emulated per-completion TCP delay used for the AIFM comparison
    /// (§6.2 footnote 2: 14,000 cycles).
    pub tcp_extra_cycles: u64,
    /// RNIC transport-retry timeout observed on the first access to a dead
    /// memory node (multi-node pools only).
    pub failover_detect_ns: Ns,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            cpu_ghz: 2.3,
            // 100 Gb/s = 12.5 GB/s.
            link_bytes_per_sec: 12.5e9,
            rdma_read_base_ns: 1_450,
            rdma_write_base_ns: 1_350,
            rdma_per_byte_ns: 0.146,
            qp_doorbell_ns: 20,
            sg_per_segment_ns: 100,
            sg_slow_per_segment_ns: 700,
            sg_fast_segments: 3,
            memnode_hugepage_saving_ns: 50,
            hw_exception_ns: 570,
            local_access_ns: 4,
            tcp_extra_cycles: 14_000,
            // A few retransmission rounds at RoCE timeouts: ~1 ms.
            failover_detect_ns: 1_000_000,
        }
    }
}

impl SimConfig {
    /// A far-memory profile over a modern NVMe drive instead of RDMA
    /// (§5.1: "Modern NVMe drives provide enough performance to be used
    /// for far memory; thereby, DiLOS' design would be valid for NVMe
    /// drives"). Calibrated to a fast PCIe 4.0 drive: ~10 µs random-read
    /// latency, ~6.5 GB/s sequential bandwidth.
    pub fn nvme() -> Self {
        Self {
            link_bytes_per_sec: 6.5e9,
            rdma_read_base_ns: 10_000,
            rdma_write_base_ns: 11_000,
            rdma_per_byte_ns: 0.15,
            // NVMe submission/completion queues instead of RDMA doorbells.
            qp_doorbell_ns: 150,
            memnode_hugepage_saving_ns: 0,
            ..Self::default()
        }
    }

    /// Latency of a one-sided read of `bytes`, excluding queueing.
    pub fn rdma_read_ns(&self, bytes: usize) -> Ns {
        self.rdma_read_base_ns + (bytes as f64 * self.rdma_per_byte_ns) as Ns
    }

    /// Latency of a one-sided write of `bytes`, excluding queueing.
    pub fn rdma_write_ns(&self, bytes: usize) -> Ns {
        self.rdma_write_base_ns + (bytes as f64 * self.rdma_per_byte_ns) as Ns
    }

    /// Wire occupancy of `bytes` on the link.
    pub fn wire_ns(&self, bytes: usize) -> Ns {
        (bytes as f64 / self.link_bytes_per_sec * 1e9) as Ns
    }

    /// Extra latency charged for a vectored verb with `segments` entries.
    pub fn sg_extra_ns(&self, segments: usize) -> Ns {
        if segments <= 1 {
            return 0;
        }
        let extra = segments - 1;
        let fast = extra.min(self.sg_fast_segments.saturating_sub(1));
        let slow = extra - fast;
        fast as Ns * self.sg_per_segment_ns + slow as Ns * self.sg_slow_per_segment_ns
    }

    /// The emulated TCP delay in nanoseconds.
    pub fn tcp_extra_ns(&self) -> Ns {
        cycles_to_ns(self.tcp_extra_cycles, self.cpu_ghz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdma_latency_matches_figure2_shape() {
        let c = SimConfig::default();
        let small = c.rdma_read_ns(128);
        let page = c.rdma_read_ns(4096);
        // Figure 2: a 4 KB fetch imposes only ~0.6 µs extra over 128 B.
        let delta = page - small;
        assert!((500..700).contains(&delta), "delta {delta}");
        // A 4 KB read lands in the 2–3 µs window Figure 1 reports.
        assert!((1_900..3_100).contains(&page), "page {page}");
    }

    #[test]
    fn writes_cheaper_than_reads() {
        let c = SimConfig::default();
        assert!(c.rdma_write_ns(4096) < c.rdma_read_ns(4096));
    }

    #[test]
    fn sg_penalty_kicks_in_past_three_segments() {
        let c = SimConfig::default();
        assert_eq!(c.sg_extra_ns(1), 0);
        let three = c.sg_extra_ns(3);
        let four = c.sg_extra_ns(4);
        let step_fast = three - c.sg_extra_ns(2);
        let step_slow = four - three;
        assert!(
            step_slow > 3 * step_fast,
            "segment 4 must be disproportionately expensive"
        );
    }

    #[test]
    fn nvme_profile_is_an_order_slower_than_rdma() {
        let rdma = SimConfig::default();
        let nvme = SimConfig::nvme();
        assert!(nvme.rdma_read_ns(4096) > 4 * rdma.rdma_read_ns(4096));
        // But still fast enough that software costs matter (< 20 µs).
        assert!(nvme.rdma_read_ns(4096) < 20_000);
    }

    #[test]
    fn wire_time_is_bandwidth_bound() {
        let c = SimConfig::default();
        // 12.5 GB/s: a 4 KB page occupies the wire ~328 ns.
        let w = c.wire_ns(4096);
        assert!((300..360).contains(&w), "wire {w}");
    }
}
