//! The unified observability bundle.
//!
//! Before this module, every component (rdma, fabric, memnode, lru) grew a
//! parallel pair of `set_trace`/`set_metrics` setters and every boot path
//! threaded three booleans (`trace`/`audit`/`metrics`) through its config.
//! An [`Observability`] value bundles the trace sink, metrics registry,
//! span profiler, and the audit flag into one handle that is built once,
//! handed to the boot path once, and threaded down via a single
//! `observe(&Observability)` call per component.
//!
//! The bundle is a set of `Rc` handles (the same "dark when disabled"
//! pattern the sink and registry already use): cloning it shares the
//! underlying buffers, so one bundle describes one booted system. Boot two
//! systems from two bundles — sharing a bundle would interleave their
//! event streams and change both digests.

use crate::causal::CausalTracer;
use crate::metrics::{MetricsRegistry, SpanProfiler};
use crate::trace::TraceSink;

/// One system's observability configuration: trace sink, metrics registry,
/// span profiler, and whether an auditor should be attached at boot.
///
/// Invariants maintained by the constructors:
/// - `audit` or metered implies a recording trace sink (the auditor and the
///   profiler are both trace observers).
/// - a recording profiler is already attached to the sink; boot paths must
///   not attach it again.
#[derive(Debug, Clone)]
pub struct Observability {
    trace: TraceSink,
    metrics: MetricsRegistry,
    profiler: SpanProfiler,
    causal: CausalTracer,
    audit: bool,
}

impl Default for Observability {
    fn default() -> Self {
        Self::none()
    }
}

impl Observability {
    /// Fully dark: no tracing, no metrics, no audit. Zero overhead.
    pub fn none() -> Self {
        Self {
            trace: TraceSink::disabled(),
            metrics: MetricsRegistry::disabled(),
            profiler: SpanProfiler::disabled(),
            causal: CausalTracer::disabled(),
            audit: false,
        }
    }

    /// Event tracing only (digests available, no auditor, no metrics).
    pub fn tracing() -> Self {
        Self {
            trace: TraceSink::recording(),
            ..Self::none()
        }
    }

    /// Event tracing with an event ring of at least `events` entries
    /// (rounded up to a power of two). The default ring is deliberately
    /// small — big enough for digests, small enough to stay cache-resident —
    /// so consumers that replay [`TraceSink::events`] over a long run (tests,
    /// trace exporters) must size the ring to the run.
    pub fn tracing_with_ring(events: usize) -> Self {
        Self {
            trace: TraceSink::with_capacity(events.next_power_of_two()),
            ..Self::none()
        }
    }

    /// Tracing plus an online auditor attached at boot.
    pub fn audited() -> Self {
        Self {
            audit: true,
            ..Self::tracing()
        }
    }

    /// Tracing plus the metrics registry and span profiler. The profiler is
    /// attached to the sink here, once.
    pub fn metered() -> Self {
        let trace = TraceSink::recording();
        let profiler = SpanProfiler::recording();
        profiler.attach_to(&trace);
        Self {
            trace,
            metrics: MetricsRegistry::recording(),
            profiler,
            causal: CausalTracer::disabled(),
            audit: false,
        }
    }

    /// Everything on: tracing, auditor, metrics, profiler.
    pub fn full() -> Self {
        Self {
            audit: true,
            ..Self::metered()
        }
    }

    /// Arms causal request tracing on an existing bundle: attaches a
    /// recording [`CausalTracer`] to the trace sink (once). The tracer is a
    /// pure observer riding the side-band request ids, so arming it leaves
    /// the run's digest byte-identical — see `crates/sim/src/causal.rs`.
    pub fn with_timeline(mut self) -> Self {
        debug_assert!(
            self.trace.is_enabled(),
            "timeline requires a recording trace sink"
        );
        if !self.causal.is_enabled() {
            let causal = CausalTracer::recording();
            causal.attach_to(&self.trace);
            self.causal = causal;
        }
        self
    }

    /// Adds the auditor flag to an existing bundle (the sink must already
    /// be recording, which every non-`none` constructor guarantees).
    pub fn with_audit(mut self) -> Self {
        debug_assert!(
            self.trace.is_enabled(),
            "audit requires a recording trace sink"
        );
        self.audit = true;
        self
    }

    /// The shared trace sink handle.
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// The shared metrics registry handle.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The shared span profiler handle.
    pub fn profiler(&self) -> &SpanProfiler {
        &self.profiler
    }

    /// The shared causal tracer handle (dark unless
    /// [`Observability::with_timeline`] armed it).
    pub fn causal(&self) -> &CausalTracer {
        &self.causal
    }

    /// Whether the boot path should attach an online auditor.
    pub fn audit(&self) -> bool {
        self.audit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_hold_their_invariants() {
        let none = Observability::none();
        assert!(!none.trace().is_enabled());
        assert!(!none.metrics().is_enabled());
        assert!(!none.profiler().is_enabled());
        assert!(!none.audit());

        let tracing = Observability::tracing();
        assert!(tracing.trace().is_enabled());
        assert!(!tracing.metrics().is_enabled());
        assert!(!tracing.audit());

        let audited = Observability::audited();
        assert!(audited.trace().is_enabled());
        assert!(audited.audit());

        let metered = Observability::metered();
        assert!(metered.trace().is_enabled());
        assert!(metered.metrics().is_enabled());
        assert!(metered.profiler().is_enabled());
        assert!(!metered.audit());

        let full = Observability::full();
        assert!(full.metrics().is_enabled());
        assert!(full.audit());
    }

    #[test]
    fn with_timeline_arms_the_causal_tracer_once() {
        let obs = Observability::tracing();
        assert!(!obs.causal().is_enabled());
        let armed = obs.with_timeline();
        assert!(armed.causal().is_enabled());
        // Idempotent: re-arming must not attach a second observer.
        let again = armed.clone().with_timeline();
        again.trace().begin_request();
        again
            .trace()
            .emit(1, crate::trace::TraceEvent::PrefetchIssue { vpn: 4 });
        assert_eq!(again.causal().request_count(), 1);
        let reqs = again.causal().requests();
        assert_eq!(reqs[0].events.len(), 1, "one observer, one record");
    }

    #[test]
    fn clones_share_the_sink() {
        let obs = Observability::tracing();
        let other = obs.clone();
        obs.trace()
            .emit(0, crate::trace::TraceEvent::ReclaimBegin { free: 1 });
        assert_eq!(obs.trace().digest(), other.trace().digest());
    }
}
