//! Deterministic random streams and workload distributions.
//!
//! Every experiment in the reproduction is seeded, so two runs of the same
//! bench produce identical tables. [`SplitMix64`] is the base generator;
//! [`Zipf`] and [`MixedSizes`] provide the popularity and object-size
//! distributions the Redis evaluation (§6.2) uses.

/// SplitMix64: a tiny, high-quality, splittable PRNG.
///
/// Used instead of `rand`'s thread-local generators wherever the simulation
/// itself needs randomness, so that determinism never depends on ambient
/// state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection-free approximation is fine here;
        // the tiny modulo bias is irrelevant for workload generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Derives an independent child stream (split).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }

    /// Fisher–Yates shuffles a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

/// Zipf-distributed ranks over `n` items with exponent `s`.
///
/// Uses a precomputed CDF with binary search; `n` in the evaluation is at
/// most a few hundred thousand keys, so the table is small.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a Zipf sampler over `n` items (`rank 0` most popular).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "n must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let norm = acc;
        for v in &mut cdf {
            *v /= norm;
        }
        Self { cdf }
    }

    /// Samples a rank in `[0, n)`.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.gen_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// The mixed object-size distribution from the Redis GET evaluation.
///
/// §6.2: "six equally distributed data sizes — 4 KB, 8 KB, 16 KB, 32 KB,
/// 64 KB, and 128 KB — which represent data sizes of more than 80 % of
/// objects in the Facebook photo server."
#[derive(Debug, Clone, Default)]
pub struct MixedSizes;

impl MixedSizes {
    /// The six sizes, in bytes.
    pub const SIZES: [usize; 6] = [4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10];

    /// Samples one object size.
    pub fn sample(rng: &mut SplitMix64) -> usize {
        Self::SIZES[rng.gen_range(Self::SIZES.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.gen_range(13) < 13);
        }
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let z = Zipf::new(1_000, 0.99);
        let mut r = SplitMix64::new(1);
        let mut head = 0;
        let n = 50_000;
        for _ in 0..n {
            if z.sample(&mut r) < 10 {
                head += 1;
            }
        }
        // The top 1 % of ranks should draw far more than 1 % of samples.
        assert!(head > n / 10, "head {head}");
    }

    #[test]
    fn zipf_covers_all_ranks_in_bounds() {
        let z = Zipf::new(16, 1.0);
        let mut r = SplitMix64::new(3);
        for _ in 0..5_000 {
            assert!(z.sample(&mut r) < 16);
        }
    }

    #[test]
    fn mixed_sizes_only_returns_listed_sizes() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1_000 {
            let s = MixedSizes::sample(&mut r);
            assert!(MixedSizes::SIZES.contains(&s));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(11);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
