//! Measurement machinery: latency histograms and bandwidth time series.
//!
//! Table 4 reports 99th/99.9th percentile request latencies and Figure 12
//! plots network bandwidth over time; this module provides the recorders the
//! benches use to regenerate both.

use crate::time::Ns;

/// A log-bucketed latency histogram (HdrHistogram-style).
///
/// Buckets are `(exponent, 16 linear sub-buckets)`, giving ≤ ~6 % relative
/// error per recorded value — plenty for reproducing the paper's tail-latency
/// table.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max: Ns,
    min: Ns,
    sum: u128,
}

const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;
/// 64 exponents × 16 sub-buckets covers the full `u64` range.
const BUCKETS: usize = 64 * SUB;

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            total: 0,
            max: 0,
            min: Ns::MAX,
            sum: 0,
        }
    }

    fn index(v: Ns) -> usize {
        if v < SUB as Ns {
            return v as usize;
        }
        let exp = 63 - v.leading_zeros();
        let sub = (v >> (exp - SUB_BITS)) as usize & (SUB - 1);
        ((exp - SUB_BITS + 1) as usize) * SUB + sub
    }

    fn bucket_low(idx: usize) -> Ns {
        if idx < SUB {
            return idx as Ns;
        }
        let exp = (idx / SUB) as u32 + SUB_BITS - 1;
        let sub = (idx % SUB) as Ns;
        (1 << exp) | (sub << (exp - SUB_BITS))
    }

    fn bucket_high(idx: usize) -> Ns {
        // The last addressable bucket starts at exponent 63; its successor's
        // low bound would need `1 << 64`, so it tops out at `Ns::MAX`.
        const TOP: usize = (64 - SUB_BITS as usize + 1) * SUB;
        if idx + 1 >= TOP {
            Ns::MAX
        } else {
            Self::bucket_low(idx + 1) - 1
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: Ns) {
        self.counts[Self::index(v)] += 1;
        self.total += 1;
        self.max = self.max.max(v);
        self.min = self.min.min(v);
        self.sum += v as u128;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all recorded samples (`u128`: 2⁶⁴ samples of `Ns::MAX` each
    /// cannot overflow it).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of recorded samples (zero when empty).
    pub fn mean(&self) -> Ns {
        if self.total == 0 {
            0
        } else {
            (self.sum / self.total as u128) as Ns
        }
    }

    /// Largest recorded sample (zero when empty).
    pub fn max(&self) -> Ns {
        self.max
    }

    /// Smallest recorded sample (zero when empty).
    pub fn min(&self) -> Ns {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Returns the value at quantile `q` in `[0, 1]` (zero when empty).
    ///
    /// The estimate interpolates linearly within the bucket containing the
    /// quantile rank: a bucket `[lo, hi]` holding `c` samples of which the
    /// rank is the `k`-th (1-based) yields `lo + (hi - lo) * (k - 1) / c`.
    /// The result is clamped to the recorded `[min, max]`, so `quantile(0)`
    /// is exactly the smallest sample and `quantile(1)` is within one
    /// intra-bucket step of the largest.
    pub fn quantile(&self, q: f64) -> Ns {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                let lo = Self::bucket_low(i);
                let hi = Self::bucket_high(i).min(self.max);
                // 1-based position of the rank within this bucket.
                let k = rank - (seen - c);
                // u128 keeps `span * (k - 1)` exact for any Ns span and
                // bucket population.
                let span = (hi.saturating_sub(lo)) as u128;
                let est = lo + (span * (k - 1) as u128 / c as u128) as Ns;
                return est.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (p50) estimate.
    pub fn p50(&self) -> Ns {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> Ns {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Ns {
        self.quantile(0.99)
    }

    /// 99.9th-percentile estimate.
    pub fn p999(&self) -> Ns {
        self.quantile(0.999)
    }

    /// Returns `(low, high, count)` for every occupied bucket, in value
    /// order, with inclusive bounds. This is the full distribution — the
    /// snapshot a JSON consumer needs to re-plot percentiles without the
    /// binary.
    pub fn nonzero_buckets(&self) -> Vec<(Ns, Ns, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_low(i), Self::bucket_high(i), c))
            .collect()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
        self.sum += other.sum;
    }
}

/// Byte counts bucketed by virtual time, per direction.
///
/// `record_tx` is compute-node → memory-node traffic (evictions/writebacks);
/// `record_rx` is fetch traffic. Figure 12 plots the sum as MB/s over time.
#[derive(Debug, Clone)]
pub struct BandwidthRecorder {
    bucket_ns: Ns,
    tx: Vec<u64>,
    rx: Vec<u64>,
}

impl BandwidthRecorder {
    /// Creates a recorder with the given time-bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_ns` is zero.
    pub fn new(bucket_ns: Ns) -> Self {
        assert!(bucket_ns > 0, "bucket width must be positive");
        Self {
            bucket_ns,
            tx: Vec::new(),
            rx: Vec::new(),
        }
    }

    fn slot(buf: &mut Vec<u64>, idx: usize) -> &mut u64 {
        if buf.len() <= idx {
            buf.resize(idx + 1, 0);
        }
        &mut buf[idx]
    }

    /// Records `bytes` of outbound (eviction) traffic at time `t`.
    pub fn record_tx(&mut self, t: Ns, bytes: u64) {
        *Self::slot(&mut self.tx, (t / self.bucket_ns) as usize) += bytes;
    }

    /// Records `bytes` of inbound (fetch) traffic at time `t`.
    pub fn record_rx(&mut self, t: Ns, bytes: u64) {
        *Self::slot(&mut self.rx, (t / self.bucket_ns) as usize) += bytes;
    }

    /// Total outbound bytes.
    pub fn total_tx(&self) -> u64 {
        self.tx.iter().sum()
    }

    /// Total inbound bytes.
    pub fn total_rx(&self) -> u64 {
        self.rx.iter().sum()
    }

    /// Returns `(bucket_start_ns, tx_bytes, rx_bytes)` rows for plotting.
    pub fn series(&self) -> Vec<(Ns, u64, u64)> {
        let n = self.tx.len().max(self.rx.len());
        (0..n)
            .map(|i| {
                (
                    i as Ns * self.bucket_ns,
                    self.tx.get(i).copied().unwrap_or(0),
                    self.rx.get(i).copied().unwrap_or(0),
                )
            })
            .collect()
    }

    /// Bucket width.
    pub fn bucket_ns(&self) -> Ns {
        self.bucket_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_monotone_and_bounded() {
        let mut h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        let p999 = h.quantile(0.999);
        assert!(p50 <= p99 && p99 <= p999);
        // ≤ ~6 % relative bucket error.
        assert!((4_600..=5_100).contains(&p50), "p50 {p50}");
        assert!((9_200..=10_000).contains(&p99), "p99 {p99}");
        assert_eq!(h.max(), 10_000);
        assert_eq!(h.min(), 1);
    }

    #[test]
    fn histogram_handles_small_and_huge_values() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(3);
        h.record(u64::MAX / 2);
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(0.0), 0);
        assert!(h.quantile(1.0) <= u64::MAX / 2);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(100);
        b.record(200);
        b.record(300);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 300);
        assert_eq!(a.min(), 100);
    }

    #[test]
    fn histogram_merge_empty_and_self() {
        // empty ⊕ nonempty, both directions.
        let mut filled = LatencyHistogram::new();
        filled.record(100);
        filled.record(300);
        let mut a = LatencyHistogram::new();
        a.merge(&filled);
        assert_eq!(
            (a.count(), a.sum(), a.mean(), a.min(), a.max()),
            (2, 400, 200, 100, 300)
        );
        let mut b = filled.clone();
        b.merge(&LatencyHistogram::new());
        assert_eq!(
            (b.count(), b.sum(), b.mean(), b.min(), b.max()),
            (2, 400, 200, 100, 300)
        );
        // Self-merge doubles count and sum, keeps min/max/mean.
        let twin = filled.clone();
        filled.merge(&twin);
        assert_eq!(
            (
                filled.count(),
                filled.sum(),
                filled.mean(),
                filled.min(),
                filled.max()
            ),
            (4, 800, 200, 100, 300)
        );
        // Empty ⊕ empty stays safe.
        let mut e = LatencyHistogram::new();
        e.merge(&LatencyHistogram::new());
        assert_eq!((e.count(), e.sum(), e.mean(), e.min()), (0, 0, 0, 0));
    }

    #[test]
    fn nonzero_buckets_cover_every_sample() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 3, 17, 1_000, 1_001, u64::MAX] {
            h.record(v);
        }
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.iter().map(|&(_, _, c)| c).sum::<u64>(), h.count());
        for w in buckets.windows(2) {
            assert!(w[0].1 < w[1].0, "buckets must be disjoint and ordered");
        }
        for &(lo, hi, _) in &buckets {
            assert!(lo <= hi);
        }
        // Every recorded value falls inside some reported bucket.
        for v in [0u64, 3, 17, 1_000, 1_001, u64::MAX] {
            assert!(
                buckets.iter().any(|&(lo, hi, _)| lo <= v && v <= hi),
                "value {v} not covered"
            );
        }
        // The top bucket's high bound saturates instead of overflowing.
        assert_eq!(buckets.last().map(|&(_, hi, _)| hi), Some(u64::MAX));
    }

    #[test]
    fn quantile_interpolates_within_a_bucket() {
        // 256 samples spanning exactly one bucket: [4864, 5119] (exponent
        // 12, sub-bucket 3). Interpolation should walk the bucket linearly
        // instead of pinning every quantile to the bucket's low bound.
        let mut h = LatencyHistogram::new();
        for v in 4_864..=5_119u64 {
            h.record(v);
        }
        // rank k maps to lo + span * (k - 1) / count.
        assert_eq!(h.quantile(0.0), 4_864);
        assert_eq!(h.p50(), 4_864 + 255 * 127 / 256); // k = 128
        assert_eq!(h.quantile(1.0), 4_864 + 255 * 255 / 256);
        assert!(h.p50() > h.quantile(0.25));
        assert!(h.p90() > h.p50());
    }

    #[test]
    fn quantile_accessors_are_ordered_and_clamped() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1_000u64 {
            h.record(v);
        }
        let (p50, p90, p99, p999) = (h.p50(), h.p90(), h.p99(), h.p999());
        assert!(p50 <= p90 && p90 <= p99 && p99 <= p999);
        assert!(p999 <= h.max());
        assert!(p50 >= h.min());
        // Interpolated estimates sit within ~7 % of the exact order
        // statistics for a uniform ramp.
        assert!((470..=530).contains(&p50), "p50 {p50}");
        assert!((850..=950).contains(&p90), "p90 {p90}");
        assert!((940..=1_000).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn quantile_single_sample_is_exact() {
        let mut h = LatencyHistogram::new();
        h.record(7_777);
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 7_777);
        }
    }

    #[test]
    fn bandwidth_buckets_accumulate() {
        let mut bw = BandwidthRecorder::new(1_000);
        bw.record_tx(0, 10);
        bw.record_tx(999, 5);
        bw.record_rx(1_500, 7);
        let s = bw.series();
        assert_eq!(s[0], (0, 15, 0));
        assert_eq!(s[1], (1_000, 0, 7));
        assert_eq!(bw.total_tx(), 15);
        assert_eq!(bw.total_rx(), 7);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.min(), 0);
    }
}
