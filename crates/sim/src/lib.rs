//! Deterministic virtual-time substrate for the DiLOS reproduction.
//!
//! The DiLOS paper ([EuroSys '23]) evaluates a paging-based memory
//! disaggregation system on a two-node RDMA testbed. This crate replaces that
//! testbed with a calibrated, deterministic simulation: every latency the
//! paper measures (one-sided RDMA verbs, link occupancy, hardware page-fault
//! exception cost) is charged in *virtual nanoseconds* against resource
//! timelines, so experiments are reproducible on any machine and still
//! exercise the same code paths a real deployment would.
//!
//! The crate provides:
//!
//! - [`time`]: virtual-time primitives ([`Ns`], per-core [`CoreClock`]s).
//! - [`timeline`]: serially-occupied resources ([`Timeline`]).
//! - [`sched`]: the deterministic discrete-event calendar ([`Calendar`])
//!   that delivers background work — prefetch landings, reclaim ticks,
//!   cleaner writebacks, RDMA completions, node repairs — at its true
//!   virtual time.
//! - [`config`]: the calibration constants ([`SimConfig`]), sourced from the
//!   paper's Figures 1, 2, and 6 and §6.2.
//! - [`memnode`]: the memory node — a registered remote memory region served
//!   by a simulated RNIC ([`MemoryNode`]).
//! - [`fabric`]: the network link model with per-class bandwidth accounting
//!   ([`Fabric`], [`ServiceClass`]).
//! - [`rdma`]: one-sided verbs over per-core, per-module queue pairs
//!   ([`RdmaEndpoint`]), including the scatter/gather verbs guided paging
//!   uses.
//! - [`stats`]: latency histograms and bandwidth time series used to
//!   regenerate the paper's tables and figures.
//! - [`metrics`]: the virtual-time telemetry layer — a deterministic
//!   [`MetricsRegistry`] of per-core counters and sampled gauges, plus the
//!   [`SpanProfiler`] that folds the trace stream into flamegraph stacks
//!   and fault-latency histograms.
//! - [`rng`]: deterministic random streams and the size/popularity
//!   distributions the evaluation workloads need.
//! - [`obs`]: the unified [`Observability`] bundle (trace + metrics +
//!   profiler + causal tracer + audit flag) handed to boot paths once and
//!   threaded down.
//! - [`causal`]: per-request span trees ([`CausalTracer`]) assembled from
//!   side-band request ids, plus the [`critical_path`] analyzer that
//!   attributes each request's latency to queueing / transfer / service /
//!   replay.
//! - [`cluster`]: multi-tenant sharing of one endpoint ([`SharedPool`],
//!   [`RdmaPort`]) with per-tenant protection keys, QP lanes, and QoS
//!   bandwidth arbitration.
//! - [`recover`]: memnode crash–recovery — durable checkpoints, a
//!   write-intent log acknowledged ahead of every remote write, a
//!   calendar-driven crash injector ([`RecoverConfig`]), and detectable
//!   replay on rejoin.
//!
//! [EuroSys '23]: https://doi.org/10.1145/3552326.3567488

#![forbid(unsafe_code)]

pub mod causal;
pub mod cluster;
pub mod config;
pub mod ec;
pub mod fabric;
pub mod lru;
pub mod memnode;
pub mod metrics;
pub mod obs;
pub mod rdma;
pub mod recover;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod store;
pub mod time;
pub mod timeline;
pub mod trace;

pub use causal::{critical_path, CausalTracer, PhaseBreakdown, ReqKind, RequestTrace};
pub use cluster::{RdmaPort, SharedPool};
pub use config::SimConfig;
pub use ec::{EcError, Gf256, ReedSolomon};
pub use fabric::{Fabric, ServiceClass};
pub use lru::LruChain;
pub use memnode::{MemoryNode, RegionHandle};
pub use metrics::{MetricsRegistry, SpanProfiler, DEFAULT_SAMPLE_INTERVAL_NS};
pub use obs::Observability;
pub use rdma::{RdmaEndpoint, RdmaError, Segment};
pub use recover::{RecoverConfig, RecoveryStats};
pub use rng::{MixedSizes, SplitMix64, Zipf};
pub use sched::{Calendar, EventId, SchedEvent};
pub use stats::{BandwidthRecorder, LatencyHistogram};
pub use store::{BTreeStore, FlatStore, MemStore};
pub use time::{CoreClock, Ns, PAGE_SIZE};
pub use timeline::Timeline;
pub use trace::{FaultKind, FaultPhase, PteClass, ReqId, TraceEvent, TraceObserver, TraceSink};
