//! One-sided RDMA verbs over per-core, per-module queue pairs.
//!
//! This is the data path DiLOS's low-latency driver exposes (§5): the LibOS
//! writes a WQE to its queue pair via BlueFlame MMIO, the NIC streams the
//! payload, and a completion arrives `base + bytes/bandwidth` later. The
//! model captures the three behaviours the paper's evaluation depends on:
//!
//! 1. **Queue-pair FIFO ordering** — verbs posted to the same QP complete in
//!    order, so a demand fetch posted behind a large writeback suffers
//!    head-of-line blocking. DiLOS's per-core, per-module queues (§4.5)
//!    avoid this; the `shared_queue` ablation mode re-introduces it.
//! 2. **Shared-wire bandwidth** — all QPs contend for the 100 GbE link.
//! 3. **Vectored (scatter/gather) verbs** — used by guided paging (§4.4),
//!    with the measured penalty past three segments (§6.3).
//!
//! The optional TCP mode adds the paper's 14,000-cycle handicap per
//! completion (§6.2) for the AIFM-comparable configuration.

use std::collections::BTreeMap;

use crate::config::SimConfig;
use crate::ec::ReedSolomon;
use crate::fabric::{Fabric, ServiceClass};
use crate::memnode::{MemNodeError, MemoryNode, RegionHandle};
use crate::metrics::MetricsRegistry;
use crate::obs::Observability;
use crate::recover::{RecoverConfig, RecoveryStats};
use crate::sched::{Calendar, SchedEvent};
use crate::time::{Ns, PAGE_SIZE};
use crate::timeline::Timeline;
use crate::trace::{ReqId, TraceEvent, TraceSink};

/// One entry of a scatter/gather vector: `len` bytes at remote address
/// `remote`, landing at `offset` within the local page buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Remote (memory-node) address of the segment.
    pub remote: u64,
    /// Byte offset within the local buffer.
    pub offset: usize,
    /// Segment length in bytes.
    pub len: usize,
}

/// Errors surfaced by the verb layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RdmaError {
    /// The memory node rejected the access.
    Remote(MemNodeError),
    /// A scatter/gather segment falls outside the local buffer.
    BadSegment,
    /// An empty scatter/gather vector was posted.
    EmptyVector,
    /// Every replica holding the address is down: the data is lost.
    AllReplicasDown,
}

impl std::fmt::Display for RdmaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RdmaError::Remote(e) => write!(f, "memory node rejected access: {e}"),
            RdmaError::BadSegment => write!(f, "segment outside local buffer"),
            RdmaError::EmptyVector => write!(f, "empty scatter/gather vector"),
            RdmaError::AllReplicasDown => {
                write!(f, "all replicas of the address are unreachable")
            }
        }
    }
}

impl std::error::Error for RdmaError {}

impl From<MemNodeError> for RdmaError {
    fn from(e: MemNodeError) -> Self {
        RdmaError::Remote(e)
    }
}

/// Per-class operation counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpCounts {
    /// One-sided reads posted.
    pub reads: u64,
    /// One-sided writes posted.
    pub writes: u64,
}

/// One memory node of the pool: its storage, its link, its liveness.
#[derive(Debug)]
struct RemoteNode {
    node: MemoryNode,
    region: RegionHandle,
    fabric: Fabric,
    alive: bool,
    /// Whether the compute node has already observed this node's death
    /// (the first access after a failure pays the RNIC retry timeout).
    death_detected: bool,
}

/// The compute node's RDMA endpoint: QPs, per-node fabrics, and the memory
/// node pool.
///
/// The default is the paper's configuration — one memory node (§5.1: "a
/// computing node only supports one memory node, just as in Fastswap and
/// AIFM"). [`connect_cluster`](Self::connect_cluster) implements the §5.1
/// future-work extension: pages are striped across `n` nodes and optionally
/// replicated `r` ways; reads fail over to surviving replicas when a node
/// dies.
/// Erasure-coding state for the Carbink-style redundancy mode.
#[derive(Debug)]
struct EcState {
    rs: ReedSolomon,
    /// Parity shards live above the data address space.
    parity_base: u64,
}

/// Crash-injector state: the completed-verb counter the injector watches,
/// and the stats of the most recent crash/recovery cycle.
#[derive(Debug)]
struct RecoverState {
    cfg: RecoverConfig,
    /// Data-path verbs completed since arming (the injector's event index).
    completed: u64,
    /// The injector fires at most once per arming.
    fired: bool,
    stats: RecoveryStats,
}

#[derive(Debug)]
pub struct RdmaEndpoint {
    nodes: Vec<RemoteNode>,
    replication: usize,
    ec: Option<EcState>,
    /// Degraded reads served by erasure-decode.
    reconstructions: u64,
    /// Queue-pair timelines in a dense core-major layout:
    /// `(core * nodes + node) * 5 + class`. Growing the core dimension
    /// appends whole blocks, so existing indices never move, and iteration
    /// order is structural — no hash order can leak into completion times.
    qps: Vec<Timeline>,
    /// Cores the `qps` table currently covers.
    qp_cores: usize,
    ops: [OpCounts; 5],
    /// Ablation: collapse all per-core, per-module queues into one QP.
    shared_queue: bool,
    /// Add the emulated TCP delay to every completion (AIFM comparison).
    tcp_mode: bool,
    failovers: u64,
    trace: TraceSink,
    metrics: MetricsRegistry,
    /// When attached, traced verb completions are delivered through the
    /// event calendar at their true virtual time instead of being emitted
    /// inline at issue time.
    calendar: Option<Calendar>,
    /// Per-tenant protection keys, one region handle per memory node.
    /// Ordered by tenant id so enumeration can never leak hash order.
    tenants: BTreeMap<u8, Vec<RegionHandle>>,
    /// Tenant whose observability/calendar context is currently installed.
    /// `None` until the first [`activate_tenant`](Self::activate_tenant):
    /// single-tenant (exclusive) endpoints never activate, so their wiring
    /// is untouched by the multi-tenant machinery.
    active: Option<u8>,
    /// Crash injector + recovery bookkeeping; `None` keeps every data-path
    /// completion free of the event-counting branch's bookkeeping.
    recover: Option<RecoverState>,
    /// Causal request ids of calendar-deferred completions, FIFO per queue
    /// pair. `SchedEvent::RdmaCompletion` carries no id (the calendar is
    /// not part of the digest contract but its events are shared with
    /// baselines), so the id rides here: pushed at issue time, popped at
    /// delivery. Side-band only — never digested. Dense core-major layout
    /// like `qps`, with a write/read split per class:
    /// `((core * nodes + node) * 5 + class) * 2 + write`.
    pending_req: Vec<std::collections::VecDeque<Option<ReqId>>>,
    /// Cores the `pending_req` table currently covers.
    pending_cores: usize,
}

impl RdmaEndpoint {
    /// Connects to a fresh memory node exposing `remote_bytes` of memory.
    ///
    /// This performs the one-time control path: region registration and
    /// protection-key exchange.
    pub fn connect(cfg: SimConfig, remote_bytes: u64) -> Self {
        Self::connect_cluster(cfg, remote_bytes, 1, 1)
    }

    /// Connects to a pool of `nodes` memory nodes with `replication`-way
    /// page-granular replication (§5.1 future work).
    ///
    /// Pages are striped by page number; each page's replicas live on the
    /// `replication` nodes following its shard. Writes go to every live
    /// replica (synchronous — erasure coding à la Carbink is out of scope);
    /// reads prefer the primary and fail over on node death.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or `replication` is zero or exceeds `nodes`.
    pub fn connect_cluster(
        cfg: SimConfig,
        remote_bytes: u64,
        nodes: usize,
        replication: usize,
    ) -> Self {
        assert!(nodes > 0, "at least one memory node");
        assert!(
            (1..=nodes).contains(&replication),
            "replication must be in 1..=nodes"
        );
        let mut ep = Self::connect_cluster_inner(cfg, remote_bytes, nodes);
        ep.replication = replication;
        ep
    }

    fn connect_cluster_inner(cfg: SimConfig, remote_bytes: u64, nodes: usize) -> Self {
        // Figure 12 plots bandwidth in ~minutes; a 10 ms virtual bucket gives
        // smooth series at bench scale.
        let nodes = (0..nodes)
            .map(|i| {
                let mut node = MemoryNode::new();
                node.set_huge_pages(true);
                node.set_node_id(i as u8);
                let region = node.register_region(0, remote_bytes);
                RemoteNode {
                    node,
                    region,
                    fabric: Fabric::new(cfg.clone(), 10_000_000),
                    alive: true,
                    death_detected: false,
                }
            })
            .collect();
        Self {
            nodes,
            replication: 1,
            ec: None,
            reconstructions: 0,
            qps: Vec::new(),
            qp_cores: 0,
            ops: [OpCounts::default(); 5],
            shared_queue: false,
            tcp_mode: false,
            failovers: 0,
            trace: TraceSink::disabled(),
            metrics: MetricsRegistry::disabled(),
            calendar: None,
            tenants: BTreeMap::new(),
            active: None,
            recover: None,
            pending_req: Vec::new(),
            pending_cores: 0,
        }
    }

    /// Routes verb events into the bundle's trace sink and verb counters
    /// (`rdma_reads` / `rdma_writes`, lane = issuing core) into its metrics
    /// registry, and fans the bundle out to every node's fabric and memory
    /// node — all components of one endpoint share one stream.
    pub fn observe(&mut self, obs: &Observability) {
        for n in &mut self.nodes {
            n.fabric.observe(obs);
            n.node.observe(obs);
        }
        self.trace = obs.trace().clone();
        self.metrics = obs.metrics().clone();
    }

    /// Registers tenant `tenant`'s slice `[base, base + bytes)` on every
    /// memory node, returning nothing: the per-node protection keys are kept
    /// inside the endpoint and selected by
    /// [`activate_tenant`](Self::activate_tenant). This is the control-path
    /// setup a cluster performs once per tenant at boot.
    pub fn register_tenant(&mut self, tenant: u8, base: u64, bytes: u64) {
        let regions = self
            .nodes
            .iter_mut()
            .map(|n| n.node.register_region(base, bytes))
            .collect();
        self.tenants.insert(tenant, regions);
    }

    /// Installs tenant `tenant`'s observability bundle, calendar, and
    /// protection keys as the endpoint's active context. Cheap when the
    /// tenant is already active (the common case between interleaved verbs).
    pub fn activate_tenant(&mut self, tenant: u8, obs: &Observability, cal: &Calendar) {
        if self.active == Some(tenant) {
            return;
        }
        self.active = Some(tenant);
        for n in &mut self.nodes {
            n.fabric.observe(obs);
            n.fabric.set_active_tenant(tenant);
            n.node.observe(obs);
        }
        self.trace = obs.trace().clone();
        self.metrics = obs.metrics().clone();
        self.calendar = Some(cal.clone());
    }

    /// Enables QoS bandwidth arbitration on every node's fabric with the
    /// given per-tenant link weights.
    pub fn set_qos(&mut self, shares: BTreeMap<u8, u32>) {
        for n in &mut self.nodes {
            n.fabric.set_qos(shares.clone());
        }
    }

    /// The protection key for node `ni` under the active tenant (the node's
    /// full-pool key when no tenant is active).
    fn region_of(&self, ni: usize) -> RegionHandle {
        match self.active.and_then(|t| self.tenants.get(&t)) {
            Some(regions) => regions[ni],
            None => self.nodes[ni].region,
        }
    }

    /// Bytes attributed to `(tenant, class)` across every node's link:
    /// `(tx, rx)`. The per-tenant analogue of
    /// [`class_bytes`](Self::class_bytes).
    pub fn tenant_class_bytes(&self, tenant: u8, class: ServiceClass) -> (u64, u64) {
        self.nodes.iter().fold((0, 0), |(tx, rx), n| {
            (
                tx + n.fabric.tenant_tx(tenant, class),
                rx + n.fabric.tenant_rx(tenant, class),
            )
        })
    }

    /// Queue pairs whose timeline is still occupied at `now` — the per-QP
    /// depth gauge the sampler snapshots.
    pub fn busy_qps(&self, now: Ns) -> usize {
        self.qps.iter().filter(|q| q.busy_until() > now).count()
    }

    /// The primary shard index for `remote` (event labelling).
    fn shard_of(&self, remote: u64) -> u8 {
        (((remote >> 12) as usize) % self.nodes.len()) as u8
    }

    /// Emits the issue-side event for a verb and stamps every node's access
    /// clock so memory-node accesses carry the right virtual time.
    fn trace_issue(
        &self,
        now: Ns,
        core: usize,
        class: ServiceClass,
        write: bool,
        node: u8,
        bytes: usize,
    ) {
        if !self.trace.is_enabled() {
            return;
        }
        for n in &self.nodes {
            n.node.stamp_access(now);
        }
        self.trace.emit(
            now,
            TraceEvent::RdmaIssue {
                class,
                write,
                node,
                core: core as u8,
                bytes: bytes as u32,
            },
        );
    }

    /// Attaches the shared event calendar. Traced completions are then
    /// posted as [`SchedEvent::RdmaCompletion`] entries and surface in the
    /// trace when the owner drains the calendar (via
    /// [`deliver_completion`](Self::deliver_completion)), so the
    /// `RdmaComplete` event appears at its delivery time rather than
    /// wherever in the issue sequence the verb happened to be posted.
    pub fn set_calendar(&mut self, cal: Calendar) {
        self.calendar = Some(cal);
    }

    fn trace_complete(
        &mut self,
        core: usize,
        class: ServiceClass,
        write: bool,
        node: u8,
        done: Ns,
    ) {
        if !self.trace.is_enabled() {
            return;
        }
        if let Some(cal) = &self.calendar {
            cal.schedule(
                done,
                SchedEvent::RdmaCompletion {
                    class,
                    write,
                    node,
                    core: core as u8,
                },
            );
            // Remember which request issued this verb so the deferred
            // `RdmaComplete` re-attributes to it at delivery time.
            let idx = self.pending_idx(node as usize, core, class, write);
            self.pending_req[idx].push_back(self.trace.current_request());
            return;
        }
        self.trace.emit(
            done,
            TraceEvent::RdmaComplete {
                class,
                write,
                node,
                core: core as u8,
                done,
            },
        );
    }

    /// Emits the deferred `RdmaComplete` trace event for a calendar-delivered
    /// [`SchedEvent::RdmaCompletion`] (the dispatch half of the pair created
    /// by [`set_calendar`](Self::set_calendar)).
    pub fn deliver_completion(
        &mut self,
        t: Ns,
        class: ServiceClass,
        write: bool,
        node: u8,
        core: u8,
    ) {
        let idx = self.pending_idx(node as usize, core as usize, class, write);
        let req = self.pending_req[idx].pop_front().flatten();
        let prev_req = self.trace.set_request(req);
        self.trace.emit(
            t,
            TraceEvent::RdmaComplete {
                class,
                write,
                node,
                core,
                done: t,
            },
        );
        self.trace.set_request(prev_req);
    }

    /// Connects with Carbink-style erasure coding: pages are grouped into
    /// spans of `k` across the pool, protected by `m` Reed–Solomon parity
    /// shards on further nodes. Any `m` node failures are survivable at a
    /// storage overhead of `m/k` (vs `r−1` for replication).
    ///
    /// Writes cost one old-data read plus `m` parity-delta writes on top of
    /// the data write; reads are direct until a node dies, after which the
    /// lost page is rebuilt from `k` surviving shards per access.
    ///
    /// # Panics
    ///
    /// Panics unless `nodes ≥ k + m` (each shard of a span must live on a
    /// distinct node).
    pub fn connect_ec(cfg: SimConfig, remote_bytes: u64, nodes: usize, k: usize, m: usize) -> Self {
        assert!(nodes >= k + m, "erasure coding needs nodes >= k + m");
        // Each node's region also hosts parity shards above the data space.
        let parity_base = remote_bytes.next_multiple_of(4096);
        let mut ep = Self::connect_cluster_inner(cfg, parity_base * 2, nodes);
        ep.ec = Some(EcState {
            rs: ReedSolomon::new(k, m),
            parity_base,
        });
        ep
    }

    /// Number of memory nodes in the pool.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Kills memory node `i`: its contents become unreachable. Reads fail
    /// over to replicas (or return [`RdmaError::AllReplicasDown`]).
    pub fn fail_node(&mut self, i: usize) {
        self.nodes[i].alive = false;
    }

    /// Whether memory node `i` is currently online.
    pub fn node_alive(&self, i: usize) -> bool {
        self.nodes[i].alive
    }

    /// Brings memory node `i` back online and resynchronizes its contents
    /// from the surviving redundancy: replica copies in replication mode,
    /// Reed–Solomon reconstruction in erasure-coding mode. A no-op if the
    /// node is already alive.
    ///
    /// This is the dispatch target of a [`SchedEvent::NodeRepair`] calendar
    /// event, so an operator can schedule the repair at a future virtual
    /// time; it is also safe to call directly. Resync is a control-path
    /// operation: it moves bytes without charging verb latency or emitting
    /// data-path trace events.
    pub fn repair_node(&mut self, i: usize) {
        self.repair_node_at(0, i);
    }

    /// [`repair_node`](Self::repair_node) with the repair's virtual time,
    /// so the crash-recovery protocol can stamp its trace events. With
    /// recovery armed on the node, the repair runs the full protocol:
    ///
    /// 1. restore the last durable checkpoint,
    /// 2. replay the write-intent log (each replay emits
    ///    [`TraceEvent::RecoveryReplay`] — detectable replay),
    /// 3. reconcile with surviving replicas/EC stripes (the existing
    ///    resync),
    /// 4. emit [`TraceEvent::RecoveryComplete`] and seal a fresh
    ///    checkpoint.
    ///
    /// `RecoveryComplete` is deliberately emitted *before* the fresh
    /// checkpoint: the auditor closes its no-acknowledged-write-lost window
    /// on `RecoveryComplete`, so a checkpoint sealed first would mask a
    /// dropped intent.
    pub fn repair_node_at(&mut self, now: Ns, i: usize) {
        if self.nodes[i].alive {
            return;
        }
        self.nodes[i].alive = true;
        self.nodes[i].death_detected = false;
        let armed = self.recover.is_some() && self.nodes[i].node.persistence_armed();
        let replayed = if armed {
            self.nodes[i].node.recover_from_durable(now)
        } else {
            0
        };
        let reconciled = if self.ec.is_some() {
            self.ec_resync(i)
        } else if self.replication > 1 {
            self.replica_resync(i)
        } else {
            0
        };
        if !armed {
            return;
        }
        self.trace.emit(
            now,
            TraceEvent::RecoveryComplete {
                node: i as u8,
                replayed,
                reconciled,
            },
        );
        self.nodes[i].node.checkpoint_now(now);
        if let Some(rec) = self.recover.as_mut() {
            rec.stats.recoveries += 1;
            rec.stats.replayed = replayed;
            rec.stats.reconciled = reconciled;
            rec.stats.recovery_ns = replayed
                .saturating_mul(rec.cfg.replay_ns_per_record)
                .saturating_add(reconciled.saturating_mul(rec.cfg.resync_ns_per_page));
        }
    }

    /// Replication-mode resync: every page whose replica set includes `i`
    /// is copied from its first other live replica. Pages written during
    /// the outage only reached the survivors, so the full copy restores
    /// them; pages `i` alone replicated are unrecoverable and left as-is.
    /// Returns the number of pages installed.
    fn replica_resync(&mut self, i: usize) -> u64 {
        let mut installed = 0u64;
        let mut todo: Vec<u64> = Vec::new();
        for (j, n) in self.nodes.iter().enumerate() {
            if j == i || !n.alive {
                continue;
            }
            for p in n.node.resident_page_numbers() {
                if self.replicas(p << 12).any(|r| r == i) {
                    todo.push(p);
                }
            }
        }
        todo.sort_unstable();
        todo.dedup();
        for p in todo {
            let src = self
                .replicas(p << 12)
                .find(|&r| r != i && self.nodes[r].alive);
            let Some(src) = src else { continue };
            let Some(page) = self.nodes[src].node.page_snapshot(p).copied() else {
                continue;
            };
            self.nodes[i].node.install_page(p, &page);
            installed += 1;
        }
        installed
    }

    /// Erasure-coding resync: for every span group with any materialized
    /// shard, node `i`'s shard (one data lane or one parity, by placement)
    /// is rebuilt from the surviving shards. Dead nodes' shards are treated
    /// as unknowns — their volatile copies are stale for anything written
    /// during their outage — so a group decodes only while at least `k`
    /// *live* shards remain. Returns the number of shards installed.
    fn ec_resync(&mut self, i: usize) -> u64 {
        let mut installed = 0u64;
        let (ec_k, ec_m, parity_base) = {
            let ec = self.ec_state();
            (ec.rs.k(), ec.rs.m(), ec.parity_base)
        };
        let parity_page0 = parity_base >> 12;
        let mut groups: Vec<u64> = Vec::new();
        for n in &self.nodes {
            for p in n.node.resident_page_numbers() {
                groups.push(if p >= parity_page0 {
                    (p - parity_page0) / ec_m as u64
                } else {
                    p / ec_k as u64
                });
            }
        }
        groups.sort_unstable();
        groups.dedup();
        for g in groups {
            // Node i hosts at most one shard of each group (all k + m shard
            // nodes are distinct). Gather the others; leave i's slot as the
            // unknown for reconstruction.
            let mut mine: Option<(usize, u64)> = None;
            let mut shards: Vec<Option<Vec<u8>>> = (0..ec_k + ec_m)
                .map(|slot| {
                    let (n, page) = if slot < ec_k {
                        (self.ec_data_node(g, slot), g * ec_k as u64 + slot as u64)
                    } else {
                        let (n, pbase) = self.ec_parity_loc(g, slot - ec_k);
                        (n, pbase >> 12)
                    };
                    if n == i {
                        mine = Some((slot, page));
                        return None;
                    }
                    if !self.nodes[n].alive {
                        return None;
                    }
                    Some(
                        self.nodes[n]
                            .node
                            .page_snapshot(page)
                            .map_or_else(|| vec![0u8; PAGE_SIZE], |p| p.to_vec()),
                    )
                })
                .collect();
            let Some((slot, page)) = mine else { continue };
            if self.ec_state().rs.reconstruct(&mut shards).is_err() {
                continue;
            }
            let Some(data) = shards[slot]
                .as_deref()
                .and_then(|s| <&[u8; PAGE_SIZE]>::try_from(s).ok())
            else {
                continue;
            };
            self.nodes[i].node.install_page(page, data);
            installed += 1;
        }
        installed
    }

    // ------------------------------------------------------------------
    // Crash injection + recovery (dilos_sim::recover).
    // ------------------------------------------------------------------

    /// Arms the crash-recovery machinery: every memory node gets the
    /// persistent-state model (checkpoints + write-intent log), and — when
    /// `cfg.crash_at_event` is set — the injector kills `cfg.victim` after
    /// that many completed data-path verbs, scheduling its repair
    /// `cfg.repair_delay_ns` later through [`SchedEvent::NodeRepair`].
    ///
    /// # Panics
    ///
    /// Panics if `cfg.victim` is not a valid node index.
    pub fn arm_recovery(&mut self, cfg: RecoverConfig) {
        assert!(cfg.victim < self.nodes.len(), "victim out of range");
        for n in &mut self.nodes {
            n.node.arm_persistence(cfg.checkpoint_every);
        }
        self.recover = Some(RecoverState {
            cfg,
            completed: 0,
            fired: false,
            stats: RecoveryStats::default(),
        });
    }

    /// Whether [`arm_recovery`](Self::arm_recovery) has been called.
    pub fn recovery_armed(&self) -> bool {
        self.recover.is_some()
    }

    /// Counters of the most recent crash/recovery cycle (zeroes when the
    /// machinery is disarmed or the injector has not fired).
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recover
            .as_ref()
            .map_or_else(RecoveryStats::default, |r| RecoveryStats {
                completions: r.completed,
                ..r.stats
            })
    }

    /// Fault injection for negative tests: drops node `i`'s most recent
    /// acknowledged intent record, returning its sequence number.
    pub fn corrupt_drop_intent(&mut self, i: usize) -> Option<u64> {
        self.nodes[i].node.corrupt_drop_last_intent()
    }

    /// The injector's completion hook, called after every successful
    /// data-path verb: counts the completion and, at the configured event
    /// index, crashes the victim (volatile state lost, liveness down,
    /// [`TraceEvent::NodeCrash`] emitted) and schedules its repair on the
    /// calendar. Without a calendar the node stays down until repaired
    /// directly — the injector never repairs eagerly.
    fn maybe_crash(&mut self, done: Ns) {
        let fire = match self.recover.as_mut() {
            None => return,
            Some(rec) => {
                rec.completed += 1;
                let hit = !rec.fired && rec.cfg.crash_at_event == Some(rec.completed);
                if hit {
                    rec.fired = true;
                }
                hit
            }
        };
        if !fire {
            return;
        }
        let Some(rec) = self.recover.as_ref() else {
            return;
        };
        let victim = rec.cfg.victim;
        let delay = rec.cfg.repair_delay_ns;
        let depth = self.nodes[victim].node.intent_log_depth();
        if let Some(rec) = self.recover.as_mut() {
            rec.stats.crashes += 1;
            rec.stats.log_depth_at_crash = depth;
        }
        self.nodes[victim].alive = false;
        self.nodes[victim].node.crash();
        self.trace
            .emit(done, TraceEvent::NodeCrash { node: victim as u8 });
        if let Some(cal) = &self.calendar {
            cal.schedule(
                done.saturating_add(delay),
                SchedEvent::NodeRepair { node: victim },
            );
        }
    }

    /// How many reads had to fail over to a non-primary replica.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// How many degraded reads were served by erasure-decode.
    pub fn reconstructions(&self) -> u64 {
        self.reconstructions
    }

    /// Pages materialized across the whole pool (storage-overhead metric:
    /// replication stores `r` copies, erasure coding `(k + m) / k`).
    pub fn total_resident_pages(&self) -> usize {
        self.nodes.iter().map(|n| n.node.resident_pages()).sum()
    }

    /// The replica node indices for the page containing `remote`.
    fn replicas(&self, remote: u64) -> impl Iterator<Item = usize> + '_ {
        let n = self.nodes.len();
        let shard = ((remote >> 12) as usize) % n;
        (0..self.replication).map(move |i| (shard + i) % n)
    }

    /// Picks the serving node for a read: the first live replica. Charges
    /// the retry-timeout penalty the first time a death is observed.
    fn pick_read_node(&mut self, remote: u64) -> Result<(usize, Ns), RdmaError> {
        let n = self.nodes.len();
        let shard = ((remote >> 12) as usize) % n;
        let mut penalty = 0;
        for rank in 0..self.replication {
            let ni = (shard + rank) % n;
            if self.nodes[ni].alive {
                if rank > 0 {
                    self.failovers += 1;
                }
                return Ok((ni, penalty));
            }
            if !self.nodes[ni].death_detected {
                // First contact after the failure: the RNIC retries until
                // its transport timeout fires.
                self.nodes[ni].death_detected = true;
                penalty = penalty.saturating_add(self.nodes[ni].fabric.cfg().failover_detect_ns);
            }
        }
        Err(RdmaError::AllReplicasDown)
    }

    /// Enables the shared-queue ablation (head-of-line blocking returns).
    pub fn set_shared_queue(&mut self, on: bool) {
        self.shared_queue = on;
    }

    /// Enables the emulated TCP delay per completion.
    pub fn set_tcp_mode(&mut self, on: bool) {
        self.tcp_mode = on;
    }

    /// Whether TCP emulation is active.
    pub fn tcp_mode(&self) -> bool {
        self.tcp_mode
    }

    /// The calibration constants in force.
    pub fn cfg(&self) -> &SimConfig {
        self.nodes[0].fabric.cfg()
    }

    /// The primary node's fabric (bandwidth accounting, link utilization).
    pub fn fabric(&self) -> &Fabric {
        &self.nodes[0].fabric
    }

    /// Total bytes on the wire across every node's link: `(tx, rx)`.
    pub fn total_bytes(&self) -> (u64, u64) {
        self.nodes.iter().fold((0, 0), |(tx, rx), n| {
            let bw = n.fabric.bandwidth();
            (tx + bw.total_tx(), rx + bw.total_rx())
        })
    }

    /// Bytes attributed to `class` across every node's link: `(tx, rx)`.
    /// The auditor cross-checks these against trace-accumulated totals.
    pub fn class_bytes(&self, class: ServiceClass) -> (u64, u64) {
        self.nodes.iter().fold((0, 0), |(tx, rx), n| {
            (tx + n.fabric.class_tx(class), rx + n.fabric.class_rx(class))
        })
    }

    /// Direct access to a remote node (tests and verification only; real
    /// data-path traffic must go through the verbs).
    pub fn node(&self) -> &MemoryNode {
        &self.nodes[0].node
    }

    /// Swaps every node's page store for the `BTreeStore` reference backend
    /// (differential tests only — see [`MemoryNode::use_reference_store`]).
    pub fn use_reference_stores(&mut self) {
        for n in &mut self.nodes {
            n.node.use_reference_store();
        }
    }

    /// Per-class op counters.
    pub fn ops(&self, class: ServiceClass) -> OpCounts {
        self.ops[class.idx()]
    }

    fn qp(&mut self, node: usize, core: usize, class: ServiceClass) -> &mut Timeline {
        let (core, cls) = if self.shared_queue {
            (0, 0)
        } else {
            (core, class.idx())
        };
        if core >= self.qp_cores {
            self.qp_cores = core + 1;
            self.qps
                .resize_with(self.qp_cores * self.nodes.len() * 5, Timeline::default);
        }
        &mut self.qps[(core * self.nodes.len() + node) * 5 + cls]
    }

    /// Index into `pending_req`, growing the table's core dimension on
    /// first use (append-only, so existing indices never move).
    fn pending_idx(&mut self, node: usize, core: usize, class: ServiceClass, write: bool) -> usize {
        if core >= self.pending_cores {
            self.pending_cores = core + 1;
            self.pending_req.resize_with(
                self.pending_cores * self.nodes.len() * 5 * 2,
                std::collections::VecDeque::new,
            );
        }
        ((core * self.nodes.len() + node) * 5 + class.idx()) * 2 + usize::from(write)
    }

    /// Models one verb's timing: QP FIFO + shared wire + fixed latency.
    ///
    /// Returns the completion time. The QP is occupied for the doorbell plus
    /// the wire time (FIFO ordering of same-QP verbs); the wire is shared
    /// across QPs; the remaining fixed latency (NIC processing, PCIe DMA,
    /// propagation) rides on top.
    #[allow(clippy::too_many_arguments)] // A verb's timing genuinely has this many inputs.
    fn verb_timing(
        &mut self,
        node: usize,
        now: Ns,
        core: usize,
        class: ServiceClass,
        bytes: usize,
        segments: usize,
        is_read: bool,
    ) -> Ns {
        // Fold the config into scalars up front so the mutable QP/fabric
        // borrows below don't force a per-verb SimConfig clone.
        let cfg = self.nodes[node].fabric.cfg();
        let wire = cfg.wire_ns(bytes);
        let doorbell = cfg.qp_doorbell_ns;
        let total = if is_read {
            cfg.rdma_read_ns(bytes)
        } else {
            cfg.rdma_write_ns(bytes)
        };
        let mut rest = total.saturating_sub(wire + doorbell);
        rest = rest.saturating_add(cfg.sg_extra_ns(segments));
        if self.nodes[node].node.huge_pages() {
            rest = rest.saturating_sub(cfg.memnode_hugepage_saving_ns);
        }
        let tcp_extra = if self.tcp_mode { cfg.tcp_extra_ns() } else { 0 };
        let (_, qp_end) = self
            .qp(node, core, class)
            .acquire(now, doorbell.saturating_add(wire));
        let wire_end = self.nodes[node]
            .fabric
            .transfer(qp_end - wire, class, bytes, is_read);
        qp_end
            .max(wire_end)
            .saturating_add(rest)
            .saturating_add(tcp_extra)
    }

    /// Posts a one-sided read of `buf.len()` bytes from `remote`.
    ///
    /// Returns the virtual completion time; the caller decides whether to
    /// block on it (demand fetch) or continue (asynchronous prefetch).
    pub fn read(
        &mut self,
        now: Ns,
        core: usize,
        class: ServiceClass,
        remote: u64,
        buf: &mut [u8],
    ) -> Result<Ns, RdmaError> {
        self.read_live(now, core, class, remote, buf).map(|(t, _)| t)
    }

    /// [`read`](Self::read), additionally returning an upper bound on the
    /// non-zero prefix of `buf` (bytes at or past it are zero). Callers that
    /// cache the payload — the compute node filling a frame — use the bound
    /// to track the frame's live extent without scanning it.
    pub fn read_live(
        &mut self,
        now: Ns,
        core: usize,
        class: ServiceClass,
        remote: u64,
        buf: &mut [u8],
    ) -> Result<(Ns, usize), RdmaError> {
        self.ops[class.idx()].reads += 1;
        self.metrics.inc("rdma_reads", core);
        let shard = self.shard_of(remote);
        self.trace_issue(now, core, class, false, shard, buf.len());
        if self.ec.is_some() {
            let done = self.ec_read(now, core, class, remote, buf)?;
            self.trace_complete(core, class, false, shard, done);
            self.maybe_crash(done);
            return Ok((done, buf.len()));
        }
        let (ni, penalty) = self.pick_read_node(remote)?;
        let done = self.verb_timing(
            ni,
            now.saturating_add(penalty),
            core,
            class,
            buf.len(),
            1,
            true,
        );
        let live = self.nodes[ni].node.read(self.region_of(ni), remote, buf)?;
        self.trace_complete(core, class, false, ni as u8, done);
        self.maybe_crash(done);
        Ok((done, live))
    }

    /// Posts a one-sided write of `buf` to `remote`.
    pub fn write(
        &mut self,
        now: Ns,
        core: usize,
        class: ServiceClass,
        remote: u64,
        buf: &[u8],
    ) -> Result<Ns, RdmaError> {
        self.write_live(now, core, class, remote, buf, buf.len())
    }

    /// [`write`](Self::write) with a caller promise that `buf[live..]` is
    /// all zero. Wire traffic, timing, and tracing are byte-identical — the
    /// hint only spares the memory node's store a trailing-zero scan over
    /// the cold tail of a mostly-zero page.
    pub fn write_live(
        &mut self,
        now: Ns,
        core: usize,
        class: ServiceClass,
        remote: u64,
        buf: &[u8],
        live: usize,
    ) -> Result<Ns, RdmaError> {
        self.ops[class.idx()].writes += 1;
        self.metrics.inc("rdma_writes", core);
        let shard = self.shard_of(remote);
        self.trace_issue(now, core, class, true, shard, buf.len());
        if self.ec.is_some() {
            let done = self.ec_write(now, core, class, remote, buf)?;
            self.trace_complete(core, class, true, shard, done);
            self.maybe_crash(done);
            return Ok(done);
        }
        // Synchronous replication: every live replica is written; the
        // completion is the slowest (the writes ride distinct links, so
        // with symmetric nodes the cost is one write plus doorbells).
        let n = self.nodes.len();
        let shard_base = ((remote >> 12) as usize) % n;
        let mut done = None;
        for rank in 0..self.replication {
            let ni = (shard_base + rank) % n;
            if !self.nodes[ni].alive {
                continue;
            }
            let d = self.verb_timing(ni, now, core, class, buf.len(), 1, false);
            let region = self.region_of(ni);
            self.nodes[ni].node.write_live(region, remote, buf, live)?;
            done = Some(done.map_or(d, |x: Ns| x.max(d)));
        }
        let done = done.ok_or(RdmaError::AllReplicasDown)?;
        self.trace_complete(core, class, true, shard, done);
        self.maybe_crash(done);
        Ok(done)
    }

    // ------------------------------------------------------------------
    // Erasure-coded data path (Carbink-style, §5.1/§7).
    // ------------------------------------------------------------------

    /// The erasure-coding state. Every `ec_*` data-path function is only
    /// dispatched when [`connect_ec`](Self::connect_ec) configured EC mode;
    /// reaching one without it is a mode-dispatch bug in `read`/`write`,
    /// and a deterministic panic here beats silently mis-routing a verb.
    #[allow(clippy::expect_used)]
    fn ec_state(&self) -> &EcState {
        // dilos-lint: allow(no-unwrap-in-hot-path, "mode invariant: ec_* is only entered from EC dispatch in connect_ec endpoints")
        self.ec.as_ref().expect("ec mode")
    }

    /// `(group, lane)` of the data page holding `addr`.
    fn ec_span(&self, addr: u64) -> (u64, usize) {
        let k = self.ec_state().rs.k() as u64;
        let page = addr >> 12;
        ((page / k), (page % k) as usize)
    }

    /// Node hosting data lane `lane` of group `group`.
    fn ec_data_node(&self, group: u64, lane: usize) -> usize {
        ((group as usize) + lane) % self.nodes.len()
    }

    /// `(node, shard_base_addr)` of parity shard `j` of `group`.
    fn ec_parity_loc(&self, group: u64, j: usize) -> (usize, u64) {
        let ec = self.ec_state();
        let k = ec.rs.k();
        let m = ec.rs.m() as u64;
        let node = ((group as usize) + k + j) % self.nodes.len();
        (node, ec.parity_base + (group * m + j as u64) * 4096)
    }

    /// Erasure-coded write: data write + old-data read + parity deltas.
    fn ec_write(
        &mut self,
        now: Ns,
        core: usize,
        class: ServiceClass,
        addr: u64,
        data: &[u8],
    ) -> Result<Ns, RdmaError> {
        debug_assert!(
            (addr >> 12) == ((addr + data.len() as u64 - 1) >> 12),
            "EC writes must not cross pages"
        );
        let (group, lane) = self.ec_span(addr);
        let dn = self.ec_data_node(group, lane);
        let mut old = vec![0u8; data.len()];
        let (read_done, mut done);
        if self.nodes[dn].alive {
            // Old data (for the parity delta): one read verb.
            let region = self.region_of(dn);
            self.nodes[dn].node.read(region, addr, &mut old)?;
            read_done = self.verb_timing(dn, now, core, class, data.len(), 1, true);
            // The data write itself.
            self.nodes[dn].node.write(region, addr, data)?;
            done = self.verb_timing(dn, read_done, core, class, data.len(), 1, false);
        } else {
            // Degraded write: the data lane is gone, so the old value comes
            // from a reconstruction and only the parities are updated —
            // future reads of this lane reconstruct through them.
            read_done = self.ec_read(now, core, class, addr, &mut old)?;
            done = read_done;
        }
        // Parity deltas, one write per live parity node.
        let delta: Vec<u8> = old.iter().zip(data).map(|(o, n)| o ^ n).collect();
        let m = self.ec_state().rs.m();
        let in_page = addr & 0xFFF;
        for j in 0..m {
            let (pn, pbase) = self.ec_parity_loc(group, j);
            if !self.nodes[pn].alive {
                continue;
            }
            let paddr = pbase + in_page;
            let mut parity = vec![0u8; delta.len()];
            let pregion = self.region_of(pn);
            self.nodes[pn].node.read(pregion, paddr, &mut parity)?;
            self.ec_state().rs.apply_delta(j, lane, &delta, &mut parity);
            self.nodes[pn].node.write(pregion, paddr, &parity)?;
            let d = self.verb_timing(pn, read_done, core, class, delta.len(), 1, false);
            done = done.max(d);
        }
        Ok(done)
    }

    /// Erasure-coded read: direct when the data node lives, otherwise a
    /// degraded read rebuilding the range from `k` surviving shards.
    #[allow(clippy::needless_range_loop)] // Lane indices drive shard slots.
    fn ec_read(
        &mut self,
        now: Ns,
        core: usize,
        class: ServiceClass,
        addr: u64,
        buf: &mut [u8],
    ) -> Result<Ns, RdmaError> {
        debug_assert!(
            (addr >> 12) == ((addr + buf.len() as u64 - 1) >> 12),
            "EC reads must not cross pages"
        );
        let (group, lane) = self.ec_span(addr);
        let dn = self.ec_data_node(group, lane);
        if self.nodes[dn].alive {
            let region = self.region_of(dn);
            self.nodes[dn].node.read(region, addr, buf)?;
            return Ok(self.verb_timing(dn, now, core, class, buf.len(), 1, true));
        }
        // Degraded read. First observation of the death pays the timeout.
        let mut t = now;
        if !self.nodes[dn].death_detected {
            self.nodes[dn].death_detected = true;
            t = t.saturating_add(self.nodes[dn].fabric.cfg().failover_detect_ns);
        }
        self.failovers += 1;
        self.reconstructions += 1;
        let (ec_k, ec_m) = {
            let rs = &self.ec_state().rs;
            (rs.k(), rs.m())
        };
        let in_page = addr & 0xFFF;
        let len = buf.len();
        let mut shards: Vec<Option<Vec<u8>>> = vec![None; ec_k + ec_m];
        let mut fetched = 0usize;
        let mut done = t;
        // Data shards of the span (same in-page range on each lane's page).
        for l in 0..ec_k {
            if l == lane || fetched >= ec_k {
                continue;
            }
            let n = self.ec_data_node(group, l);
            if !self.nodes[n].alive {
                continue;
            }
            let saddr = ((group * ec_k as u64 + l as u64) << 12) + in_page;
            let mut s = vec![0u8; len];
            let region = self.region_of(n);
            self.nodes[n].node.read(region, saddr, &mut s)?;
            done = done.max(self.verb_timing(n, t, core, class, len, 1, true));
            shards[l] = Some(s);
            fetched += 1;
        }
        // Parity shards as needed.
        for j in 0..ec_m {
            if fetched >= ec_k {
                break;
            }
            let (n, pbase) = self.ec_parity_loc(group, j);
            if !self.nodes[n].alive {
                continue;
            }
            let mut s = vec![0u8; len];
            let region = self.region_of(n);
            self.nodes[n].node.read(region, pbase + in_page, &mut s)?;
            done = done.max(self.verb_timing(n, t, core, class, len, 1, true));
            shards[ec_k + j] = Some(s);
            fetched += 1;
        }
        if fetched < ec_k {
            return Err(RdmaError::AllReplicasDown);
        }
        self.ec_state()
            .rs
            .reconstruct(&mut shards)
            .map_err(|_| RdmaError::AllReplicasDown)?;
        let shard = shards[lane].as_deref().ok_or(RdmaError::AllReplicasDown)?;
        buf.copy_from_slice(shard);
        // Decode cost: a GF multiply-accumulate per byte per source shard.
        let decode_ns = (len as Ns).saturating_mul(ec_k as Ns) / 2;
        Ok(done.saturating_add(decode_ns))
    }

    fn check_segments(segments: &[Segment], buf_len: usize) -> Result<usize, RdmaError> {
        if segments.is_empty() {
            return Err(RdmaError::EmptyVector);
        }
        let mut bytes = 0usize;
        for s in segments {
            let end = s.offset.checked_add(s.len).ok_or(RdmaError::BadSegment)?;
            if end > buf_len {
                return Err(RdmaError::BadSegment);
            }
            bytes += s.len;
        }
        Ok(bytes)
    }

    /// Posts a vectored (scatter) read: each segment lands at its offset in
    /// `buf`. Guided paging uses this to fetch only the live chunks of a
    /// page (§4.4).
    pub fn read_v(
        &mut self,
        now: Ns,
        core: usize,
        class: ServiceClass,
        segments: &[Segment],
        buf: &mut [u8],
    ) -> Result<Ns, RdmaError> {
        let bytes = Self::check_segments(segments, buf.len())?;
        self.ops[class.idx()].reads += 1;
        self.metrics.inc("rdma_reads", core);
        let shard = self.shard_of(segments[0].remote);
        self.trace_issue(now, core, class, false, shard, bytes);
        if self.ec.is_some() {
            // Per-segment degraded-capable reads (slight overcharge vs a
            // true vectored verb; documented in DESIGN.md).
            let mut done = now;
            for s in segments {
                let mut tmp = vec![0u8; s.len];
                let d = self.ec_read(now, core, class, s.remote, &mut tmp)?;
                buf[s.offset..s.offset + s.len].copy_from_slice(&tmp);
                done = done.max(d);
            }
            self.trace_complete(core, class, false, shard, done);
            self.maybe_crash(done);
            return Ok(done);
        }
        // Vectored verbs address one page, so every segment shares a shard.
        let (ni, penalty) = self.pick_read_node(segments[0].remote)?;
        let done = self.verb_timing(
            ni,
            now.saturating_add(penalty),
            core,
            class,
            bytes,
            segments.len(),
            true,
        );
        for s in segments {
            let region = self.region_of(ni);
            self.nodes[ni]
                .node
                .read(region, s.remote, &mut buf[s.offset..s.offset + s.len])?;
        }
        self.trace_complete(core, class, false, ni as u8, done);
        self.maybe_crash(done);
        Ok(done)
    }

    /// Posts a vectored (gather) write: each segment is taken from its
    /// offset in `buf`.
    pub fn write_v(
        &mut self,
        now: Ns,
        core: usize,
        class: ServiceClass,
        segments: &[Segment],
        buf: &[u8],
    ) -> Result<Ns, RdmaError> {
        let bytes = Self::check_segments(segments, buf.len())?;
        self.ops[class.idx()].writes += 1;
        self.metrics.inc("rdma_writes", core);
        let shard = self.shard_of(segments[0].remote);
        self.trace_issue(now, core, class, true, shard, bytes);
        if self.ec.is_some() {
            let mut done = now;
            for s in segments {
                let seg = &buf[s.offset..s.offset + s.len];
                let d = self.ec_write(now, core, class, s.remote, seg)?;
                done = done.max(d);
            }
            self.trace_complete(core, class, true, shard, done);
            self.maybe_crash(done);
            return Ok(done);
        }
        let n = self.nodes.len();
        let shard_base = ((segments[0].remote >> 12) as usize) % n;
        let mut done = None;
        for rank in 0..self.replication {
            let ni = (shard_base + rank) % n;
            if !self.nodes[ni].alive {
                continue;
            }
            let d = self.verb_timing(ni, now, core, class, bytes, segments.len(), false);
            for s in segments {
                let region = self.region_of(ni);
                self.nodes[ni]
                    .node
                    .write(region, s.remote, &buf[s.offset..s.offset + s.len])?;
            }
            done = Some(done.map_or(d, |x: Ns| x.max(d)));
        }
        let done = done.ok_or(RdmaError::AllReplicasDown)?;
        self.trace_complete(core, class, true, shard, done);
        self.maybe_crash(done);
        Ok(done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::PAGE_SIZE;

    fn ep() -> RdmaEndpoint {
        RdmaEndpoint::connect(SimConfig::default(), 1 << 30)
    }

    #[test]
    fn isolated_read_latency_matches_calibration() {
        let mut e = ep();
        let cfg = e.fabric().cfg().clone();
        let mut buf = [0u8; PAGE_SIZE];
        let done = e.read(1_000, 0, ServiceClass::Fault, 0, &mut buf).unwrap();
        let expected = 1_000 + cfg.rdma_read_ns(PAGE_SIZE) - cfg.memnode_hugepage_saving_ns;
        assert_eq!(done, expected);
    }

    #[test]
    fn write_then_read_roundtrips_payload() {
        let mut e = ep();
        let data: Vec<u8> = (0..PAGE_SIZE).map(|i| (i % 255) as u8).collect();
        e.write(0, 0, ServiceClass::Cleaner, 8192, &data).unwrap();
        let mut out = vec![0u8; PAGE_SIZE];
        e.read(0, 0, ServiceClass::Fault, 8192, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn same_qp_verbs_suffer_head_of_line_blocking() {
        let mut e = ep();
        let mut buf = [0u8; PAGE_SIZE];
        let first = e.read(0, 0, ServiceClass::Fault, 0, &mut buf).unwrap();
        let second = e.read(0, 0, ServiceClass::Fault, 4096, &mut buf).unwrap();
        assert!(second > first, "FIFO ordering on one QP");
    }

    #[test]
    fn separate_classes_avoid_qp_blocking() {
        // Post a big cleaner write, then a fault read at the same instant.
        // With per-module queues the fault read's QP is idle.
        let mut e = ep();
        let big = vec![0u8; PAGE_SIZE];
        let mut buf = [0u8; PAGE_SIZE];
        e.write(0, 0, ServiceClass::Cleaner, 0, &big).unwrap();
        let isolated = e.cfg().rdma_read_ns(PAGE_SIZE);
        let done = e.read(0, 0, ServiceClass::Fault, 4096, &mut buf).unwrap();
        // Only wire sharing (one page of occupancy) may delay it, not the
        // full preceding verb.
        let wire = e.cfg().wire_ns(PAGE_SIZE);
        assert!(done <= isolated + 2 * wire, "done {done}");

        // With the shared-queue ablation, the read queues behind the write.
        let mut e2 = ep();
        e2.set_shared_queue(true);
        e2.write(0, 0, ServiceClass::Cleaner, 0, &big).unwrap();
        let done2 = e2.read(0, 0, ServiceClass::Fault, 4096, &mut buf).unwrap();
        assert!(
            done2 > done,
            "shared queue must be slower: {done2} vs {done}"
        );
    }

    #[test]
    fn vectored_read_lands_segments_at_offsets() {
        let mut e = ep();
        e.write(0, 0, ServiceClass::App, 0, &[0xAA; 64]).unwrap();
        e.write(0, 0, ServiceClass::App, 512, &[0xBB; 64]).unwrap();
        let mut page = vec![0u8; PAGE_SIZE];
        let segs = [
            Segment {
                remote: 0,
                offset: 0,
                len: 64,
            },
            Segment {
                remote: 512,
                offset: 512,
                len: 64,
            },
        ];
        e.read_v(0, 0, ServiceClass::Guide, &segs, &mut page)
            .unwrap();
        assert!(page[..64].iter().all(|&b| b == 0xAA));
        assert!(page[512..576].iter().all(|&b| b == 0xBB));
        assert!(page[64..512].iter().all(|&b| b == 0));
    }

    #[test]
    fn vectored_read_fetches_fewer_bytes() {
        let mut e = ep();
        let mut page = vec![0u8; PAGE_SIZE];
        let segs = [Segment {
            remote: 0,
            offset: 0,
            len: 128,
        }];
        e.read_v(0, 0, ServiceClass::Guide, &segs, &mut page)
            .unwrap();
        assert_eq!(e.fabric().class_rx(ServiceClass::Guide), 128);
    }

    #[test]
    fn long_vectors_are_penalized() {
        let mut e = ep();
        let mut page = vec![0u8; PAGE_SIZE];
        let seg = |i: usize| Segment {
            remote: i as u64 * 64,
            offset: i * 64,
            len: 64,
        };
        let three: Vec<_> = (0..3).map(seg).collect();
        let six: Vec<_> = (0..6).map(seg).collect();
        let t3 = e
            .read_v(0, 0, ServiceClass::Guide, &three, &mut page)
            .unwrap();
        let base = t3; // Next op starts after; compare marginal latencies.
        let t6 = e
            .read_v(base, 0, ServiceClass::Guide, &six, &mut page)
            .unwrap()
            - base;
        let t3_lat = t3;
        assert!(
            t6 > t3_lat,
            "six segments slower than three: {t6} vs {t3_lat}"
        );
    }

    #[test]
    fn bad_vectors_are_rejected() {
        let mut e = ep();
        let mut page = vec![0u8; 128];
        assert_eq!(
            e.read_v(0, 0, ServiceClass::Guide, &[], &mut page),
            Err(RdmaError::EmptyVector)
        );
        let bad = [Segment {
            remote: 0,
            offset: 100,
            len: 100,
        }];
        assert_eq!(
            e.read_v(0, 0, ServiceClass::Guide, &bad, &mut page),
            Err(RdmaError::BadSegment)
        );
    }

    #[test]
    fn tcp_mode_adds_the_paper_handicap() {
        let mut e = ep();
        let mut buf = [0u8; PAGE_SIZE];
        let rdma = e.read(0, 0, ServiceClass::App, 0, &mut buf).unwrap();
        let mut t = ep();
        t.set_tcp_mode(true);
        let tcp = t.read(0, 0, ServiceClass::App, 0, &mut buf).unwrap();
        let extra = tcp - rdma;
        let expected = t.cfg().tcp_extra_ns();
        assert_eq!(extra, expected);
        assert!((6_000..6_200).contains(&extra), "extra {extra}");
    }

    #[test]
    fn cluster_stripes_pages_across_nodes() {
        let mut e = RdmaEndpoint::connect_cluster(SimConfig::default(), 1 << 24, 4, 1);
        assert_eq!(e.node_count(), 4);
        // Write one page to each shard and read them back.
        for p in 0..8u64 {
            let data = [p as u8 + 1; 64];
            e.write(0, 0, ServiceClass::App, p * 4096, &data).unwrap();
        }
        for p in 0..8u64 {
            let mut buf = [0u8; 64];
            e.read(0, 0, ServiceClass::App, p * 4096, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == p as u8 + 1), "page {p}");
        }
    }

    #[test]
    fn replicated_reads_survive_a_node_failure() {
        let mut e = RdmaEndpoint::connect_cluster(SimConfig::default(), 1 << 24, 3, 2);
        for p in 0..6u64 {
            e.write(0, 0, ServiceClass::App, p * 4096, &[0xAB; 32])
                .unwrap();
        }
        e.fail_node(0);
        let mut buf = [0u8; 32];
        let mut first_hit_penalized = false;
        for p in 0..6u64 {
            let t = e.read(0, 0, ServiceClass::App, p * 4096, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == 0xAB), "page {p}");
            // The very first access to the dead node pays the retry timeout.
            if t > 1_000_000 && !first_hit_penalized {
                first_hit_penalized = true;
            }
        }
        assert!(first_hit_penalized, "failure detection must cost a timeout");
        assert!(e.failovers() > 0, "reads must have failed over");
    }

    #[test]
    fn unreplicated_data_is_lost_with_its_node() {
        let mut e = RdmaEndpoint::connect_cluster(SimConfig::default(), 1 << 24, 2, 1);
        e.write(0, 0, ServiceClass::App, 0, &[1; 16]).unwrap();
        e.write(0, 0, ServiceClass::App, 4096, &[2; 16]).unwrap();
        e.fail_node(0);
        let mut buf = [0u8; 16];
        // Page 0 lives on node 0 (shard 0): lost.
        assert_eq!(
            e.read(0, 0, ServiceClass::App, 0, &mut buf),
            Err(RdmaError::AllReplicasDown)
        );
        // Page 1 lives on node 1: still readable.
        e.read(0, 0, ServiceClass::App, 4096, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 2));
    }

    #[test]
    fn replicated_writes_reach_every_live_replica() {
        let mut e = RdmaEndpoint::connect_cluster(SimConfig::default(), 1 << 24, 2, 2);
        e.write(0, 0, ServiceClass::App, 0, &[7; 16]).unwrap();
        // Kill the primary; the replica must serve the data.
        e.fail_node(0);
        let mut buf = [0u8; 16];
        e.read(0, 0, ServiceClass::App, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 7));
        // Writes keep working against the surviving replica.
        e.write(0, 0, ServiceClass::App, 0, &[8; 16]).unwrap();
        e.read(0, 0, ServiceClass::App, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 8));
    }

    #[test]
    fn degenerate_cluster_configs_are_rejected() {
        let r = std::panic::catch_unwind(|| {
            RdmaEndpoint::connect_cluster(SimConfig::default(), 1 << 20, 2, 3)
        });
        assert!(r.is_err(), "replication > nodes must panic");
        let r = std::panic::catch_unwind(|| {
            RdmaEndpoint::connect_cluster(SimConfig::default(), 1 << 20, 0, 0)
        });
        assert!(r.is_err(), "zero nodes must panic");
    }

    #[test]
    fn erasure_coding_roundtrips_and_survives_m_failures() {
        // 5 nodes, k=3 data + m=2 parity: any two node deaths survivable.
        let mut e = RdmaEndpoint::connect_ec(SimConfig::default(), 1 << 22, 5, 3, 2);
        let pages = 24u64;
        for p in 0..pages {
            let stamp = (p as u8).wrapping_mul(7).wrapping_add(1);
            e.write(0, 0, ServiceClass::App, p * 4096 + 16, &[stamp; 64])
                .unwrap();
        }
        e.fail_node(0);
        e.fail_node(3);
        let mut buf = [0u8; 64];
        for p in 0..pages {
            let stamp = (p as u8).wrapping_mul(7).wrapping_add(1);
            e.read(0, 0, ServiceClass::App, p * 4096 + 16, &mut buf)
                .unwrap();
            assert!(buf.iter().all(|&b| b == stamp), "page {p}");
        }
        assert!(
            e.reconstructions() > 0,
            "some reads must have been degraded"
        );
    }

    #[test]
    fn erasure_coding_rejects_k_plus_one_failures() {
        let mut e = RdmaEndpoint::connect_ec(SimConfig::default(), 1 << 22, 4, 2, 1);
        for p in 0..8u64 {
            e.write(0, 0, ServiceClass::App, p * 4096, &[9; 32])
                .unwrap();
        }
        e.fail_node(0);
        e.fail_node(1);
        // With m = 1 parity, two dead nodes lose some spans.
        let mut lost = 0;
        let mut buf = [0u8; 32];
        for p in 0..8u64 {
            if e.read(0, 0, ServiceClass::App, p * 4096, &mut buf).is_err() {
                lost += 1;
            }
        }
        assert!(lost > 0, "double failure beyond m must lose data");
    }

    #[test]
    fn erasure_writes_update_parity_incrementally() {
        let mut e = RdmaEndpoint::connect_ec(SimConfig::default(), 1 << 22, 4, 2, 2);
        // Write, overwrite, then fail the data node: the reconstruction
        // must return the *latest* contents (parity deltas applied).
        e.write(0, 0, ServiceClass::App, 0, &[1; 128]).unwrap();
        e.write(0, 0, ServiceClass::App, 0, &[2; 128]).unwrap();
        e.write(0, 0, ServiceClass::App, 64, &[3; 32]).unwrap();
        e.fail_node(0);
        let mut buf = [0u8; 128];
        e.read(0, 0, ServiceClass::App, 0, &mut buf).unwrap();
        assert!(buf[..64].iter().all(|&b| b == 2));
        assert!(buf[64..96].iter().all(|&b| b == 3));
        assert!(buf[96..].iter().all(|&b| b == 2));
    }

    #[test]
    fn degraded_reads_cost_more_than_direct_reads() {
        let mut e = RdmaEndpoint::connect_ec(SimConfig::default(), 1 << 22, 5, 3, 1);
        e.write(0, 0, ServiceClass::App, 0, &[5; 4096]).unwrap();
        let mut buf = [0u8; 4096];
        let t0 = 10_000_000u64;
        let direct = e.read(t0, 0, ServiceClass::App, 0, &mut buf).unwrap() - t0;
        e.fail_node(0);
        // Skip past the one-time detection penalty with a first probe.
        let t1 = 2 * t0;
        let _ = e.read(t1, 0, ServiceClass::App, 0, &mut buf).unwrap();
        let t2 = 4 * t0;
        let degraded = e.read(t2, 0, ServiceClass::App, 0, &mut buf).unwrap() - t2;
        assert!(
            degraded > direct,
            "degraded read must cost more: {degraded} vs {direct}"
        );
    }

    #[test]
    fn repaired_replica_node_catches_up_on_downtime_writes() {
        let mut e = RdmaEndpoint::connect_cluster(SimConfig::default(), 1 << 24, 3, 2);
        for p in 0..6u64 {
            e.write(0, 0, ServiceClass::App, p * 4096, &[0x11; 32])
                .unwrap();
        }
        e.fail_node(0);
        // Writes during the outage reach only the survivors.
        for p in 0..6u64 {
            e.write(0, 0, ServiceClass::App, p * 4096, &[0x22; 32])
                .unwrap();
        }
        e.repair_node(0);
        let failovers_before = e.failovers();
        let mut buf = [0u8; 32];
        for p in 0..6u64 {
            e.read(0, 0, ServiceClass::App, p * 4096, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == 0x22), "page {p} must be fresh");
        }
        assert_eq!(
            e.failovers(),
            failovers_before,
            "a repaired primary serves its shards directly"
        );
    }

    #[test]
    fn repair_is_a_noop_on_a_live_node() {
        let mut e = RdmaEndpoint::connect_cluster(SimConfig::default(), 1 << 24, 3, 2);
        e.write(0, 0, ServiceClass::App, 0, &[5; 16]).unwrap();
        e.repair_node(1);
        let mut buf = [0u8; 16];
        e.read(0, 0, ServiceClass::App, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 5));
    }

    #[test]
    fn repaired_ec_node_is_rebuilt_from_survivors() {
        // 5 nodes, k=3, m=2. Fail one node, mutate during the outage,
        // repair — then fail two *other* nodes: correct reads now depend on
        // the repaired node's reconstructed shards.
        let mut e = RdmaEndpoint::connect_ec(SimConfig::default(), 1 << 22, 5, 3, 2);
        let pages = 24u64;
        for p in 0..pages {
            e.write(0, 0, ServiceClass::App, p * 4096, &[0x31; 96])
                .unwrap();
        }
        e.fail_node(0);
        for p in 0..pages {
            e.write(0, 0, ServiceClass::App, p * 4096, &[0x32; 96])
                .unwrap();
        }
        e.repair_node(0);
        e.fail_node(1);
        e.fail_node(2);
        let mut buf = [0u8; 96];
        for p in 0..pages {
            e.read(0, 0, ServiceClass::App, p * 4096, &mut buf).unwrap();
            assert!(
                buf.iter().all(|&b| b == 0x32),
                "page {p} must reflect downtime writes after repair"
            );
        }
    }

    #[test]
    fn calendar_defers_traced_completions_to_delivery_time() {
        use crate::sched::{Calendar, SchedEvent};

        let mut e = ep();
        let obs = Observability::tracing();
        let trace = obs.trace().clone();
        let cal = Calendar::new();
        e.observe(&obs);
        e.set_calendar(cal.clone());
        let mut buf = [0u8; PAGE_SIZE];
        let done = e.read(1_000, 0, ServiceClass::Fault, 0, &mut buf).unwrap();
        assert!(
            !trace
                .events()
                .iter()
                .any(|(_, ev)| matches!(ev, TraceEvent::RdmaComplete { .. })),
            "completion must not be emitted at issue time"
        );
        let Some((
            t,
            SchedEvent::RdmaCompletion {
                class,
                write,
                node,
                core,
            },
        )) = cal.pop_due(done)
        else {
            panic!("expected a scheduled completion");
        };
        assert_eq!(t, done);
        e.deliver_completion(t, class, write, node, core);
        assert!(trace.events().iter().any(|&(at, ev)| at == done
            && matches!(ev, TraceEvent::RdmaComplete { done: d, .. } if d == done)));
    }
}
