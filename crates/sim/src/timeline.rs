//! Serially-occupied resource timelines.
//!
//! A [`Timeline`] models a resource that serves one request at a time — a
//! queue pair's doorbell processing, the network link's wire time, the
//! cleaner thread's CPU. Requests acquire the resource for a duration; if it
//! is busy, they queue behind the current occupancy. This is the backbone of
//! the virtual-time model: contention and head-of-line blocking fall out of
//! the `busy_until` bookkeeping with no event calendar needed.

use crate::time::Ns;

/// A resource that serves requests one at a time, in arrival order.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    busy_until: Ns,
    total_busy: Ns,
    acquisitions: u64,
}

impl Timeline {
    /// Creates an idle timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires the resource at `now` for `dur`, returning `(start, end)`.
    ///
    /// If the resource is busy, `start` is delayed to when it frees up. The
    /// resource is then busy until `end`.
    pub fn acquire(&mut self, now: Ns, dur: Ns) -> (Ns, Ns) {
        let start = now.max(self.busy_until);
        let end = start.saturating_add(dur);
        self.busy_until = end;
        self.total_busy = self.total_busy.saturating_add(dur);
        self.acquisitions += 1;
        (start, end)
    }

    /// Returns when the resource next becomes free.
    pub fn busy_until(&self) -> Ns {
        self.busy_until
    }

    /// The earliest instant, no earlier than `now`, at which the resource
    /// can start new work. This is the scheduling hook the event calendar
    /// uses: background daemons (the reclaimer, the offload core) schedule
    /// their next tick at `next_free(now)` instead of pretending the
    /// resource was idle.
    pub fn next_free(&self, now: Ns) -> Ns {
        self.busy_until.max(now)
    }

    /// Total busy time accumulated (for utilization reporting).
    pub fn total_busy(&self) -> Ns {
        self.total_busy
    }

    /// Number of acquisitions served.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Pushes the free time forward to at least `t` without accounting busy
    /// time (used to model a resource parked until an external event).
    pub fn delay_until(&mut self, t: Ns) {
        self.busy_until = self.busy_until.max(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_starts_immediately() {
        let mut t = Timeline::new();
        let (s, e) = t.acquire(100, 50);
        assert_eq!((s, e), (100, 150));
        assert_eq!(t.busy_until(), 150);
    }

    #[test]
    fn busy_resource_queues() {
        let mut t = Timeline::new();
        t.acquire(0, 100);
        // A request arriving at t=10 waits for the first to finish.
        let (s, e) = t.acquire(10, 20);
        assert_eq!((s, e), (100, 120));
        assert_eq!(t.total_busy(), 120);
        assert_eq!(t.acquisitions(), 2);
    }

    #[test]
    fn gaps_are_idle_time() {
        let mut t = Timeline::new();
        t.acquire(0, 10);
        let (s, _) = t.acquire(1000, 10);
        assert_eq!(s, 1000, "resource idles between requests");
        assert_eq!(t.total_busy(), 20);
    }

    #[test]
    fn next_free_is_now_when_idle_and_busy_until_when_not() {
        let mut t = Timeline::new();
        assert_eq!(t.next_free(40), 40, "idle resource is free immediately");
        t.acquire(0, 100);
        assert_eq!(t.next_free(40), 100);
        assert_eq!(t.next_free(250), 250);
    }

    #[test]
    fn delay_until_parks_without_busy_time() {
        let mut t = Timeline::new();
        t.delay_until(500);
        assert_eq!(t.total_busy(), 0);
        let (s, _) = t.acquire(0, 10);
        assert_eq!(s, 500);
    }
}
