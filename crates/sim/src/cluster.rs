//! Multi-tenant sharing of one RDMA endpoint / memory-node pool.
//!
//! The paper's evaluation boots exactly one compute node against the
//! fabric. A serving rack does not: N app nodes contend for the same wire
//! and the same memory pool (Clio, DRackSim). This module provides the
//! sharing primitive: a [`SharedPool`] wraps one [`RdmaEndpoint`] —
//! one link-occupancy model and one memory-node calendar — and hands each
//! tenant an [`RdmaPort`], a capability carrying the tenant's protection
//! keys (a registered sub-region per memory node), its remote-address
//! base, and its own queue-pair lane range.
//!
//! Determinism: a port *activates* its tenant on the endpoint before every
//! verb — installing that tenant's trace/metrics/calendar and protection
//! keys — so interleaved verbs from different tenants each observe into
//! their own streams while contending on the shared wire timelines. All
//! tenant state is keyed by tenant id in `BTreeMap`s; nothing iterates in
//! hash order. A single-tenant boot uses an *exclusive* port, which never
//! activates and therefore leaves the endpoint byte-for-byte identical to
//! the pre-cluster wiring (the tab01 digests pin this).

use std::cell::{Ref, RefCell, RefMut};
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::fabric::ServiceClass;
use crate::obs::Observability;
use crate::rdma::{RdmaEndpoint, RdmaError, Segment};
use crate::sched::Calendar;
use crate::time::Ns;

/// A shared memory-node pool: one endpoint, many tenants.
#[derive(Debug, Clone)]
pub struct SharedPool {
    ep: Rc<RefCell<RdmaEndpoint>>,
}

impl SharedPool {
    /// Wraps a connected endpoint for sharing.
    pub fn new(ep: RdmaEndpoint) -> Self {
        Self {
            ep: Rc::new(RefCell::new(ep)),
        }
    }

    /// Registers tenant `tenant`'s remote slice `[base, base + bytes)` on
    /// every memory node (per-tenant protection keys).
    pub fn register_tenant(&self, tenant: u8, base: u64, bytes: u64) {
        self.ep.borrow_mut().register_tenant(tenant, base, bytes);
    }

    /// Enables QoS bandwidth arbitration with per-tenant link weights.
    pub fn set_qos(&self, shares: BTreeMap<u8, u32>) {
        self.ep.borrow_mut().set_qos(shares);
    }

    /// Creates tenant `tenant`'s port. `base` is the tenant's remote-address
    /// base (all verb addresses are offset by it) and `lane_base` the first
    /// queue-pair lane of the tenant's core range — give each tenant a
    /// disjoint range so tenants never share a QP, only the wire.
    pub fn port(&self, tenant: u8, base: u64, lane_base: usize) -> RdmaPort {
        RdmaPort {
            ep: Rc::clone(&self.ep),
            tenant,
            base,
            lane_base,
            exclusive: false,
            obs: Observability::none(),
            cal: Calendar::new(),
            seg_scratch: Vec::new(),
        }
    }

    /// Immutable view of the shared endpoint (reports and tests).
    pub fn endpoint(&self) -> Ref<'_, RdmaEndpoint> {
        self.ep.borrow()
    }
}

/// A tenant's capability to the shared endpoint.
///
/// The port mirrors the endpoint's verb surface; each call activates the
/// owning tenant (observability, calendar, protection keys) and forwards
/// with the tenant's address base and lane base applied. An *exclusive*
/// port (single-tenant boot) skips activation entirely and forwards
/// verbatim — zero behavioural delta against the pre-cluster endpoint.
#[derive(Debug, Clone)]
pub struct RdmaPort {
    ep: Rc<RefCell<RdmaEndpoint>>,
    tenant: u8,
    base: u64,
    lane_base: usize,
    exclusive: bool,
    obs: Observability,
    cal: Calendar,
    /// Reusable buffer for tenant-base-shifted segments (vectored verbs).
    seg_scratch: Vec<Segment>,
}

impl RdmaPort {
    /// Wraps `ep` as a single-tenant port owning the whole endpoint.
    pub fn exclusive(ep: RdmaEndpoint) -> Self {
        Self {
            ep: Rc::new(RefCell::new(ep)),
            tenant: 0,
            base: 0,
            lane_base: 0,
            exclusive: true,
            obs: Observability::none(),
            cal: Calendar::new(),
            seg_scratch: Vec::new(),
        }
    }

    /// Binds the owner's observability bundle and calendar. Called once at
    /// node boot; an exclusive port installs both on the endpoint directly
    /// (there is no activation to do it later).
    pub fn bind(&mut self, obs: Observability, cal: Calendar) {
        if self.exclusive {
            let mut ep = self.ep.borrow_mut();
            ep.observe(&obs);
            ep.set_calendar(cal.clone());
        }
        self.obs = obs;
        self.cal = cal;
    }

    /// The owning tenant's id.
    pub fn tenant(&self) -> u8 {
        self.tenant
    }

    /// Immutable view of the underlying endpoint.
    pub fn endpoint(&self) -> Ref<'_, RdmaEndpoint> {
        self.ep.borrow()
    }

    /// Mutable handle on the endpoint with this port's tenant activated.
    /// Activation happens inside the same `RefCell` borrow as the verb
    /// that follows, so every port call costs exactly one borrow.
    fn ep_mut(&self) -> RefMut<'_, RdmaEndpoint> {
        let mut ep = self.ep.borrow_mut();
        if !self.exclusive {
            ep.activate_tenant(self.tenant, &self.obs, &self.cal);
        }
        ep
    }

    /// Posts a one-sided read (tenant-relative `remote`).
    pub fn read(
        &mut self,
        now: Ns,
        core: usize,
        class: ServiceClass,
        remote: u64,
        buf: &mut [u8],
    ) -> Result<Ns, RdmaError> {
        self.ep_mut()
            .read(now, self.lane_base + core, class, self.base + remote, buf)
    }

    /// [`read`](Self::read), also returning the payload's non-zero bound
    /// (see [`RdmaEndpoint::read_live`]).
    pub fn read_live(
        &mut self,
        now: Ns,
        core: usize,
        class: ServiceClass,
        remote: u64,
        buf: &mut [u8],
    ) -> Result<(Ns, usize), RdmaError> {
        self.ep_mut()
            .read_live(now, self.lane_base + core, class, self.base + remote, buf)
    }

    /// Posts a one-sided write (tenant-relative `remote`).
    pub fn write(
        &mut self,
        now: Ns,
        core: usize,
        class: ServiceClass,
        remote: u64,
        buf: &[u8],
    ) -> Result<Ns, RdmaError> {
        self.ep_mut()
            .write(now, self.lane_base + core, class, self.base + remote, buf)
    }

    /// [`write`](Self::write) with the caller's promise that `buf[live..]`
    /// is all zero (see [`RdmaEndpoint::write_live`]).
    pub fn write_live(
        &mut self,
        now: Ns,
        core: usize,
        class: ServiceClass,
        remote: u64,
        buf: &[u8],
        live: usize,
    ) -> Result<Ns, RdmaError> {
        self.ep_mut().write_live(
            now,
            self.lane_base + core,
            class,
            self.base + remote,
            buf,
            live,
        )
    }

    /// Posts a vectored read; segment addresses are tenant-relative.
    pub fn read_v(
        &mut self,
        now: Ns,
        core: usize,
        class: ServiceClass,
        segments: &[Segment],
        buf: &mut [u8],
    ) -> Result<Ns, RdmaError> {
        let core = self.lane_base + core;
        if self.base == 0 {
            return self.ep_mut().read_v(now, core, class, segments, buf);
        }
        let shifted = self.shift(segments);
        let r = self.ep_mut().read_v(now, core, class, &shifted, buf);
        self.seg_scratch = shifted;
        r
    }

    /// Posts a vectored write; segment addresses are tenant-relative.
    pub fn write_v(
        &mut self,
        now: Ns,
        core: usize,
        class: ServiceClass,
        segments: &[Segment],
        buf: &[u8],
    ) -> Result<Ns, RdmaError> {
        let core = self.lane_base + core;
        if self.base == 0 {
            return self.ep_mut().write_v(now, core, class, segments, buf);
        }
        let shifted = self.shift(segments);
        let r = self.ep_mut().write_v(now, core, class, &shifted, buf);
        self.seg_scratch = shifted;
        r
    }

    /// Rebases segment addresses by the tenant base into the reusable
    /// scratch buffer (returned to `seg_scratch` by the caller).
    fn shift(&mut self, segments: &[Segment]) -> Vec<Segment> {
        let mut shifted = std::mem::take(&mut self.seg_scratch);
        shifted.clear();
        shifted.extend(segments.iter().map(|s| Segment {
            remote: self.base + s.remote,
            ..*s
        }));
        shifted
    }

    /// Emits the deferred completion for a calendar-delivered
    /// [`SchedEvent::RdmaCompletion`](crate::sched::SchedEvent::RdmaCompletion).
    pub fn deliver_completion(&self, t: Ns, class: ServiceClass, write: bool, node: u8, core: u8) {
        self.ep_mut().deliver_completion(t, class, write, node, core);
    }

    /// Wire bytes attributed to this port's tenant and `class`: `(tx, rx)`.
    /// An exclusive port owns all traffic, so it reports the endpoint-wide
    /// per-class totals.
    pub fn class_bytes(&self, class: ServiceClass) -> (u64, u64) {
        let ep = self.ep.borrow();
        if self.exclusive {
            ep.class_bytes(class)
        } else {
            ep.tenant_class_bytes(self.tenant, class)
        }
    }

    /// Queue pairs still occupied at `now` (endpoint-wide gauge).
    pub fn busy_qps(&self, now: Ns) -> usize {
        self.ep.borrow().busy_qps(now)
    }

    /// Total link busy time of the primary node's fabric (endpoint-wide
    /// gauge; the wire is shared).
    pub fn link_busy(&self) -> Ns {
        self.ep.borrow().fabric().link_busy()
    }

    /// Kills memory node `i` on the shared pool.
    pub fn fail_node(&mut self, i: usize) {
        self.ep.borrow_mut().fail_node(i);
    }

    /// Brings memory node `i` back online.
    pub fn repair_node(&mut self, i: usize) {
        self.ep.borrow_mut().repair_node(i);
    }

    /// Brings memory node `i` back online at virtual time `now`, running
    /// the full recovery protocol (checkpoint restore + intent replay +
    /// reconciliation) when crash recovery is armed.
    pub fn repair_node_at(&mut self, now: Ns, i: usize) {
        self.ep.borrow_mut().repair_node_at(now, i);
    }

    /// Arms the crash-recovery machinery on the shared pool.
    pub fn arm_recovery(&mut self, cfg: crate::recover::RecoverConfig) {
        self.ep.borrow_mut().arm_recovery(cfg);
    }

    /// Counters of the most recent crash/recovery cycle.
    pub fn recovery_stats(&self) -> crate::recover::RecoveryStats {
        self.ep.borrow().recovery_stats()
    }

    /// Fault injection for negative tests: drops node `i`'s most recent
    /// acknowledged intent record, returning its sequence number.
    pub fn corrupt_drop_intent(&mut self, i: usize) -> Option<u64> {
        self.ep.borrow_mut().corrupt_drop_intent(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::time::PAGE_SIZE;

    #[test]
    fn exclusive_port_forwards_verbatim() {
        let mut direct = RdmaEndpoint::connect(SimConfig::default(), 1 << 24);
        let mut port = RdmaPort::exclusive(RdmaEndpoint::connect(SimConfig::default(), 1 << 24));
        let data = [0xABu8; PAGE_SIZE];
        let mut buf = [0u8; PAGE_SIZE];
        let d1 = direct.write(0, 1, ServiceClass::Cleaner, 4096, &data).ok();
        let d2 = port.write(0, 1, ServiceClass::Cleaner, 4096, &data).ok();
        assert_eq!(d1, d2);
        let r1 = direct
            .read(5_000, 1, ServiceClass::Fault, 4096, &mut buf)
            .ok();
        let r2 = port
            .read(5_000, 1, ServiceClass::Fault, 4096, &mut buf)
            .ok();
        assert_eq!(r1, r2);
        assert_eq!(buf, data);
    }

    #[test]
    fn tenant_ports_isolate_address_spaces() {
        let pool = SharedPool::new(RdmaEndpoint::connect(SimConfig::default(), 1 << 24));
        pool.register_tenant(0, 0, 1 << 23);
        pool.register_tenant(1, 1 << 23, 1 << 23);
        let mut a = pool.port(0, 0, 0);
        let mut b = pool.port(1, 1 << 23, 8);
        let pa = [0x0Au8; PAGE_SIZE];
        let pb = [0x0Bu8; PAGE_SIZE];
        a.write(0, 0, ServiceClass::Cleaner, 0, &pa).unwrap();
        b.write(0, 0, ServiceClass::Cleaner, 0, &pb).unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        a.read(10_000, 0, ServiceClass::Fault, 0, &mut buf).unwrap();
        assert_eq!(buf, pa, "tenant 0 reads its own page at offset 0");
        b.read(10_000, 0, ServiceClass::Fault, 0, &mut buf).unwrap();
        assert_eq!(buf, pb, "tenant 1's offset 0 is a different page");
    }

    #[test]
    fn tenant_port_cannot_reach_past_its_slice() {
        let pool = SharedPool::new(RdmaEndpoint::connect(SimConfig::default(), 1 << 24));
        pool.register_tenant(0, 0, 1 << 23);
        let mut a = pool.port(0, 0, 0);
        let mut buf = [0u8; PAGE_SIZE];
        // Offset 1 << 23 is the first byte past tenant 0's slice: the
        // protection key must reject it even though the pool has it.
        let err = a.read(0, 0, ServiceClass::Fault, 1 << 23, &mut buf);
        assert!(err.is_err(), "out-of-slice access must be rejected");
    }

    #[test]
    fn tenants_contend_on_the_shared_wire() {
        let pool = SharedPool::new(RdmaEndpoint::connect(SimConfig::default(), 1 << 24));
        pool.register_tenant(0, 0, 1 << 23);
        pool.register_tenant(1, 1 << 23, 1 << 23);
        let mut a = pool.port(0, 0, 0);
        let mut b = pool.port(1, 1 << 23, 8);
        let mut buf = [0u8; PAGE_SIZE];
        let w = pool.endpoint().fabric().cfg().wire_ns(PAGE_SIZE);
        let da = a.read(0, 0, ServiceClass::Fault, 0, &mut buf).unwrap();
        let db = b.read(0, 0, ServiceClass::Fault, 0, &mut buf).unwrap();
        // Distinct QPs (disjoint lanes), one wire: the second read queues
        // exactly one wire-time behind the first.
        assert_eq!(db - da, w);
    }
}
