//! Virtual-time primitives.
//!
//! All durations and instants in the simulation are expressed in virtual
//! nanoseconds ([`Ns`]). Each simulated CPU core owns a [`CoreClock`]; the
//! clock only moves forward, and every cost the paper measures (exception
//! delivery, handler software, RDMA completion waits) is charged by advancing
//! it.

/// A virtual-time instant or duration, in nanoseconds.
pub type Ns = u64;

/// The page size used throughout DiLOS, matching the x86-64 base page.
pub const PAGE_SIZE: usize = 4096;

/// Base-2 logarithm of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;

/// Converts a CPU cycle count to nanoseconds at the given clock rate.
///
/// The paper's testbed runs at 2.3 GHz; §6.2 expresses the AIFM TCP handicap
/// as "14,000 cycles", which this helper converts.
pub fn cycles_to_ns(cycles: u64, ghz: f64) -> Ns {
    (cycles as f64 / ghz) as Ns
}

/// One simulated CPU core's monotonically increasing clock.
///
/// The simulation is logically single-threaded: workload drivers interleave
/// per-core work explicitly and the shared resources ([`Timeline`]s) resolve
/// contention. A `CoreClock` never moves backwards.
///
/// [`Timeline`]: crate::timeline::Timeline
#[derive(Debug, Clone, Default)]
pub struct CoreClock {
    now: Ns,
}

impl CoreClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self { now: 0 }
    }

    /// Returns the current virtual time.
    pub fn now(&self) -> Ns {
        self.now
    }

    /// Charges `dur` nanoseconds of work to this core.
    pub fn advance(&mut self, dur: Ns) {
        self.now += dur;
    }

    /// Blocks this core until `deadline` (no-op if already past it).
    pub fn wait_until(&mut self, deadline: Ns) {
        self.now = self.now.max(deadline);
    }
}

/// A small set of per-core clocks plus helpers for barrier-style joins.
///
/// Multi-threaded workloads (GAPBS runs with four threads in §6.2) are
/// simulated by advancing each core's clock independently and synchronizing
/// at algorithmic barriers.
#[derive(Debug, Clone)]
pub struct Cores {
    clocks: Vec<CoreClock>,
}

impl Cores {
    /// Creates `n` cores, all at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "at least one core is required");
        Self {
            clocks: vec![CoreClock::new(); n],
        }
    }

    /// Number of cores.
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// Returns true when there are no cores. The constructor rejects
    /// `n == 0`, so this is always false today — but it is derived from the
    /// actual length so the API cannot lie if the invariant ever changes.
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }

    /// Returns core `id`'s current time.
    pub fn now(&self, id: usize) -> Ns {
        self.clocks[id].now()
    }

    /// Charges `dur` to core `id`.
    pub fn advance(&mut self, id: usize, dur: Ns) {
        self.clocks[id].advance(dur);
    }

    /// Blocks core `id` until `deadline`.
    pub fn wait_until(&mut self, id: usize, deadline: Ns) {
        self.clocks[id].wait_until(deadline);
    }

    /// Synchronizes all cores to the latest clock (a barrier).
    ///
    /// Returns the barrier time.
    pub fn barrier(&mut self) -> Ns {
        let t = self.max_now();
        for c in &mut self.clocks {
            c.wait_until(t);
        }
        t
    }

    /// Returns the maximum clock across cores (completion time of a
    /// fork/join region).
    pub fn max_now(&self) -> Ns {
        self.clocks.iter().map(CoreClock::now).max().unwrap_or(0)
    }

    /// Returns the id of the core with the smallest clock.
    ///
    /// Workload drivers use this to interleave per-core work in virtual-time
    /// order, which keeps contention on shared timelines causally sensible.
    pub fn earliest(&self) -> usize {
        let mut best = 0;
        for (i, c) in self.clocks.iter().enumerate() {
            if c.now() < self.clocks[best].now() {
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_and_waits() {
        let mut c = CoreClock::new();
        assert_eq!(c.now(), 0);
        c.advance(100);
        assert_eq!(c.now(), 100);
        c.wait_until(50);
        assert_eq!(c.now(), 100, "waiting for the past is a no-op");
        c.wait_until(250);
        assert_eq!(c.now(), 250);
    }

    #[test]
    fn cores_barrier_syncs_to_max() {
        let mut cores = Cores::new(3);
        cores.advance(0, 10);
        cores.advance(1, 30);
        cores.advance(2, 20);
        assert_eq!(cores.earliest(), 0);
        assert!(!cores.is_empty());
        assert_eq!(cores.len(), 3);
        let t = cores.barrier();
        assert_eq!(t, 30);
        for i in 0..3 {
            assert_eq!(cores.now(i), 30);
        }
    }

    #[test]
    fn cycles_conversion_matches_paper_handicap() {
        // 14,000 cycles at 2.3 GHz is roughly 6.09 µs (§6.2 footnote 2).
        let ns = cycles_to_ns(14_000, 2.3);
        assert!((6_000..6_200).contains(&ns), "got {ns}");
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = Cores::new(0);
    }
}
