//! The memory node: a passive, RNIC-served remote memory pool.
//!
//! §5 of the paper: "A server process in the memory node handles setup
//! requests from the computing node and registers its memory region to its
//! RDMA NIC. After that, the RNIC serves all read and write RDMA requests
//! from the computing node." The node is entirely passive on the data path —
//! one-sided verbs — which this module mirrors: registration is the only
//! control-path operation, and all data-path access goes through
//! [`MemoryNode::read`]/[`MemoryNode::write`] after an rkey + bounds check.
//!
//! Backing storage is sparse: pages that were never written read back as
//! zeros, exactly like freshly-registered (zeroed) host memory.

use std::cell::Cell;
use std::collections::BTreeMap;

use crate::metrics::MetricsRegistry;
use crate::obs::Observability;
use crate::recover::DurableState;
use crate::store::{BTreeStore, FlatStore, MemStore};
use crate::time::{Ns, PAGE_SIZE};
use crate::trace::{TraceEvent, TraceSink};

/// A registered memory region's access handle (rkey analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionHandle(u32);

#[derive(Debug, Clone)]
struct Region {
    base: u64,
    len: u64,
}

/// Errors returned by memory-node accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemNodeError {
    /// The rkey does not name a registered region (protection-key check).
    BadKey,
    /// The access falls outside the region the rkey protects.
    OutOfBounds,
}

impl std::fmt::Display for MemNodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemNodeError::BadKey => write!(f, "rkey does not match a registered region"),
            MemNodeError::OutOfBounds => write!(f, "access outside registered region"),
        }
    }
}

impl std::error::Error for MemNodeError {}

/// The memory node's registered memory pool.
#[derive(Debug)]
pub struct MemoryNode {
    // The store contract guarantees ascending page enumeration: repair
    // walks it, and walk order feeds the trace — hash order must never
    // leak into it.
    pages: Box<dyn MemStore>,
    /// Region table indexed by protection key (keys are handed out
    /// sequentially, so the table is dense).
    regions: Vec<Option<Region>>,
    next_key: u32,
    huge_pages: bool,
    trace: TraceSink,
    metrics: MetricsRegistry,
    /// Virtual time of the in-flight verb, stamped by the endpoint before
    /// each data-path access (the passive node has no clock of its own).
    access_time: Cell<Ns>,
    /// Pool index, used to label crash/recovery trace events.
    node_id: u8,
    /// Durable image (checkpoint + intent log) when persistence is armed;
    /// `None` keeps the write path free of any recovery overhead.
    durable: Option<DurableState>,
}

impl Default for MemoryNode {
    fn default() -> Self {
        Self {
            pages: Box::new(FlatStore::new()),
            regions: Vec::new(),
            next_key: 0,
            huge_pages: false,
            trace: TraceSink::default(),
            metrics: MetricsRegistry::default(),
            access_time: Cell::new(0),
            node_id: 0,
            durable: None,
        }
    }
}

impl MemoryNode {
    /// Creates an empty memory node.
    pub fn new() -> Self {
        Self::default()
    }

    /// Swaps the page store for the [`BTreeStore`] reference backend,
    /// migrating any resident pages. Differential tests use this to prove
    /// the flat backend is observationally identical to the original map.
    pub fn use_reference_store(&mut self) {
        self.pages = Box::new(BTreeStore::from(self.pages.snapshot_all()));
    }

    /// Enables 2 MB huge-page backing for registered regions.
    ///
    /// §5: huge pages let the whole RNIC page table fit in NIC cache; the
    /// fabric model shaves [`memnode_hugepage_saving_ns`] off each verb when
    /// this is set.
    ///
    /// [`memnode_hugepage_saving_ns`]: crate::config::SimConfig::memnode_hugepage_saving_ns
    pub fn set_huge_pages(&mut self, on: bool) {
        self.huge_pages = on;
    }

    /// Whether huge-page backing is enabled.
    pub fn huge_pages(&self) -> bool {
        self.huge_pages
    }

    /// Routes this node's served accesses into the bundle's trace sink and
    /// its served-access counters (`memnode_reads` / `memnode_writes` plus
    /// byte totals) into the bundle's metrics registry.
    pub fn observe(&mut self, obs: &Observability) {
        self.trace = obs.trace().clone();
        self.metrics = obs.metrics().clone();
    }

    /// Stamps the virtual time of the next served access (set by the RDMA
    /// endpoint when it posts a verb).
    pub fn stamp_access(&self, t: Ns) {
        self.access_time.set(t);
    }

    /// Registers `[base, base + len)` and returns its protection key.
    ///
    /// This is the control-path operation a compute node performs once at
    /// connection setup (§5: "the control-path only once at the
    /// initialization stage").
    pub fn register_region(&mut self, base: u64, len: u64) -> RegionHandle {
        let key = self.next_key;
        self.next_key += 1;
        self.set_region(key, Region { base, len });
        RegionHandle(key)
    }

    fn set_region(&mut self, key: u32, region: Region) {
        let idx = key as usize;
        if idx >= self.regions.len() {
            self.regions.resize_with(idx + 1, || None);
        }
        self.regions[idx] = Some(region);
    }

    fn check(&self, key: RegionHandle, addr: u64, len: usize) -> Result<(), MemNodeError> {
        let region = self
            .regions
            .get(key.0 as usize)
            .and_then(Option::as_ref)
            .ok_or(MemNodeError::BadKey)?;
        let end = addr
            .checked_add(len as u64)
            .ok_or(MemNodeError::OutOfBounds)?;
        if addr < region.base || end > region.base + region.len {
            return Err(MemNodeError::OutOfBounds);
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes starting at `addr` (may span pages).
    ///
    /// Returns an upper bound on the non-zero prefix of `buf` (every byte at
    /// or past the bound is zero), so callers that cache the payload can
    /// track its live extent without re-scanning it.
    pub fn read(&self, key: RegionHandle, addr: u64, buf: &mut [u8]) -> Result<usize, MemNodeError> {
        self.check(key, addr, buf.len())?;
        self.trace.emit(
            self.access_time.get(),
            TraceEvent::MemAccess {
                write: false,
                offset: addr,
                len: buf.len() as u32,
            },
        );
        self.metrics.inc("memnode_reads", 0);
        self.metrics.add("memnode_read_bytes", 0, buf.len() as u64);
        let mut off = 0usize;
        let mut bound = 0usize;
        while off < buf.len() {
            let a = addr + off as u64;
            let page = a / PAGE_SIZE as u64;
            let in_page = (a % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - in_page).min(buf.len() - off);
            let live = self.pages.read_into(page, in_page, &mut buf[off..off + n]);
            if live > 0 {
                bound = off + live;
            }
            off += n;
        }
        Ok(bound)
    }

    /// Writes `buf` starting at `addr` (may span pages).
    ///
    /// With persistence armed, a write-intent record is appended to the
    /// durable log *before* the page copy — the write-ahead ack rule: once
    /// the intent is logged the write counts as acknowledged, and a crash
    /// at any later instant must not lose it. The log seals into a fresh
    /// checkpoint once it reaches the configured depth.
    pub fn write(&mut self, key: RegionHandle, addr: u64, buf: &[u8]) -> Result<(), MemNodeError> {
        self.write_live(key, addr, buf, buf.len())
    }

    /// [`write`](Self::write) with a caller promise that `buf[live..]` is all
    /// zero. Timing, tracing, and stored bytes are identical; the hint only
    /// bounds the store's trailing-zero scan (page write-backs of
    /// mostly-zero frames skip re-reading cold zeros).
    pub fn write_live(
        &mut self,
        key: RegionHandle,
        addr: u64,
        buf: &[u8],
        live: usize,
    ) -> Result<(), MemNodeError> {
        self.check(key, addr, buf.len())?;
        let t = self.access_time.get();
        if let Some(d) = self.durable.as_mut() {
            let seq = d.append(addr, buf);
            self.trace.emit(
                t,
                TraceEvent::IntentAppend {
                    node: self.node_id,
                    seq,
                },
            );
        }
        self.trace.emit(
            t,
            TraceEvent::MemAccess {
                write: true,
                offset: addr,
                len: buf.len() as u32,
            },
        );
        self.metrics.inc("memnode_writes", 0);
        self.metrics.add("memnode_write_bytes", 0, buf.len() as u64);
        self.copy_in(addr, buf, live);
        if self.durable.as_ref().is_some_and(|d| d.should_checkpoint()) {
            self.checkpoint_now(t);
        }
        Ok(())
    }

    /// The page-copy loop shared by the data-path write and intent replay.
    /// `live` bounds the non-zero prefix of `buf` (`buf.len()` if unknown).
    fn copy_in(&mut self, addr: u64, buf: &[u8], live: usize) {
        let mut off = 0usize;
        while off < buf.len() {
            let a = addr + off as u64;
            let page = a / PAGE_SIZE as u64;
            let in_page = (a % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - in_page).min(buf.len() - off);
            let chunk_live = live.saturating_sub(off).min(n);
            self.pages
                .write_at(page, in_page, &buf[off..off + n], chunk_live);
            off += n;
        }
    }

    /// Number of pages materialized on the node (for capacity reporting).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Page numbers materialized on the node, sorted ascending.
    ///
    /// Control-path enumeration for node repair: the endpoint walks the
    /// survivors' resident sets to decide which pages a returning node must
    /// resynchronize. The backing map is ordered, so the repair order is
    /// deterministic by construction.
    pub fn resident_page_numbers(&self) -> Vec<u64> {
        self.pages.page_numbers()
    }

    /// Control-path snapshot of one materialized page (no rkey check, no
    /// trace) — `None` if the page was never written.
    pub fn page_snapshot(&self, page: u64) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.snapshot(page)
    }

    /// Control-path page install (no rkey check, no trace): resync writes
    /// reconstructed content directly into a repaired node's pool.
    pub fn install_page(&mut self, page: u64, data: &[u8; PAGE_SIZE]) {
        self.pages.install(page, data);
    }

    // ------------------------------------------------------------------
    // Crash–recovery: durable checkpoints + write-intent log.
    // ------------------------------------------------------------------

    /// Labels this node with its pool index (used on crash/recovery trace
    /// events; control path, never traced itself).
    pub fn set_node_id(&mut self, id: u8) {
        self.node_id = id;
    }

    /// Arms the persistent-state model: from now on every acknowledged
    /// write appends a durable intent record, and the log seals into a
    /// checkpoint every `checkpoint_every` records. The arming checkpoint
    /// covers everything already resident (boot-time registrations and any
    /// pre-existing pages), so recovery never depends on pre-arm history.
    pub fn arm_persistence(&mut self, checkpoint_every: u64) {
        let mut d = DurableState::new(checkpoint_every);
        d.seal(self.pages.snapshot_all(), self.region_table());
        self.durable = Some(d);
    }

    /// Whether the persistent-state model is armed.
    pub fn persistence_armed(&self) -> bool {
        self.durable.is_some()
    }

    /// Acknowledged intents not yet covered by a checkpoint (0 when
    /// persistence is off).
    pub fn intent_log_depth(&self) -> u64 {
        self.durable.as_ref().map_or(0, |d| d.log_depth())
    }

    /// Checkpoints sealed since persistence was armed.
    pub fn checkpoints_sealed(&self) -> u64 {
        self.durable.as_ref().map_or(0, |d| d.checkpoints)
    }

    /// The region table as plain `(key, (base, len))` rows, for the
    /// checkpoint image.
    fn region_table(&self) -> BTreeMap<u32, (u64, u64)> {
        self.regions
            .iter()
            .enumerate()
            .filter_map(|(k, r)| r.as_ref().map(|r| (k as u32, (r.base, r.len))))
            .collect()
    }

    /// Kills the node: all volatile state (page and region tables) is
    /// gone. The durable image and the key counter survive — exactly what
    /// a restarted server process would find on its persistent store.
    pub fn crash(&mut self) {
        self.pages.clear();
        self.regions.clear();
    }

    /// Seals a checkpoint over the live tables now, emitting
    /// [`TraceEvent::Checkpoint`]. No-op when persistence is off.
    pub fn checkpoint_now(&mut self, t: Ns) {
        let regions = self.region_table();
        let pages = if self.durable.is_some() {
            self.pages.snapshot_all()
        } else {
            BTreeMap::new()
        };
        if let Some(d) = self.durable.as_mut() {
            let upto = d.seal(pages, regions);
            self.trace.emit(
                t,
                TraceEvent::Checkpoint {
                    node: self.node_id,
                    upto,
                },
            );
        }
    }

    /// Recovery step 1 + 2: restores the last checkpoint into the live
    /// tables, then replays the intent log record by record. Each replay
    /// emits [`TraceEvent::RecoveryReplay`] — the detectability hook the
    /// auditor uses to prove no acknowledged write was lost. Returns the
    /// number of records replayed. The log is left intact; the caller
    /// seals a fresh checkpoint (via [`checkpoint_now`](Self::checkpoint_now))
    /// once reconciliation is done.
    pub fn recover_from_durable(&mut self, t: Ns) -> u64 {
        let Some(mut d) = self.durable.take() else {
            return 0;
        };
        self.pages.clear();
        for (&page, data) in &d.checkpoint_pages {
            self.pages.install(page, data);
        }
        self.regions.clear();
        for (&k, &(base, len)) in &d.checkpoint_regions {
            self.set_region(k, Region { base, len });
        }
        let log = std::mem::take(&mut d.log);
        let replayed = log.len() as u64;
        for rec in &log {
            self.trace.emit(
                t,
                TraceEvent::RecoveryReplay {
                    node: self.node_id,
                    seq: rec.seq,
                },
            );
            self.copy_in(rec.addr, &rec.data, rec.data.len());
        }
        d.log = log;
        self.durable = Some(d);
        replayed
    }

    /// Fault injection for the auditor's negative tests: silently drops the
    /// most recent acknowledged intent record, returning its sequence
    /// number. The next recovery then *cannot* replay it — the auditor must
    /// flag exactly that sequence as an acknowledged write lost.
    pub fn corrupt_drop_last_intent(&mut self) -> Option<u64> {
        self.durable
            .as_mut()
            .and_then(|d| d.log.pop())
            .map(|rec| rec.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node_with_region() -> (MemoryNode, RegionHandle) {
        let mut n = MemoryNode::new();
        let k = n.register_region(0, 1 << 20);
        (n, k)
    }

    #[test]
    fn unwritten_memory_reads_zero() {
        let (n, k) = node_with_region();
        let mut buf = [0xFFu8; 64];
        n.read(k, 4096, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn write_then_read_roundtrips_across_pages() {
        let (mut n, k) = node_with_region();
        let data: Vec<u8> = (0..8192).map(|i| (i % 251) as u8).collect();
        // Deliberately misaligned so the access spans three pages.
        n.write(k, 100, &data).unwrap();
        let mut out = vec![0u8; 8192];
        n.read(k, 100, &mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(n.resident_pages(), 3);
    }

    #[test]
    fn bad_key_is_rejected() {
        let (mut n, _) = node_with_region();
        let forged = RegionHandle(99);
        let mut buf = [0u8; 8];
        assert_eq!(n.read(forged, 0, &mut buf), Err(MemNodeError::BadKey));
        assert_eq!(n.write(forged, 0, &buf), Err(MemNodeError::BadKey));
    }

    #[test]
    fn out_of_bounds_is_rejected() {
        let (mut n, k) = node_with_region();
        let mut buf = [0u8; 16];
        assert_eq!(
            n.read(k, (1 << 20) - 8, &mut buf),
            Err(MemNodeError::OutOfBounds)
        );
        assert_eq!(
            n.write(k, u64::MAX - 4, &buf),
            Err(MemNodeError::OutOfBounds)
        );
    }

    #[test]
    fn crash_then_recover_replays_acknowledged_writes() {
        let (mut n, k) = node_with_region();
        n.arm_persistence(4);
        // Three writes: fewer than checkpoint_every, so all live in the log.
        for i in 0..3u64 {
            n.write(k, i * 4096, &[i as u8 + 1; 64]).unwrap();
        }
        assert_eq!(n.intent_log_depth(), 3);
        n.crash();
        assert_eq!(n.resident_pages(), 0);
        let mut buf = [0u8; 64];
        assert_eq!(n.read(k, 0, &mut buf), Err(MemNodeError::BadKey));
        assert_eq!(n.recover_from_durable(0), 3);
        for i in 0..3u64 {
            n.read(k, i * 4096, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == i as u8 + 1), "page {i}");
        }
    }

    #[test]
    fn checkpoint_seals_at_the_configured_depth() {
        let (mut n, k) = node_with_region();
        n.arm_persistence(2);
        n.write(k, 0, &[1; 8]).unwrap();
        assert_eq!(n.intent_log_depth(), 1);
        n.write(k, 4096, &[2; 8]).unwrap();
        // The second ack reached the depth: the log sealed into checkpoint 2
        // (the arming checkpoint was the first).
        assert_eq!(n.intent_log_depth(), 0);
        assert_eq!(n.checkpoints_sealed(), 2);
        // A crash now recovers everything from the checkpoint alone.
        n.crash();
        assert_eq!(n.recover_from_durable(0), 0);
        let mut buf = [0u8; 8];
        n.read(k, 4096, &mut buf).unwrap();
        assert_eq!(buf, [2; 8]);
    }

    #[test]
    fn dropping_an_intent_loses_exactly_that_write() {
        let (mut n, k) = node_with_region();
        n.arm_persistence(100);
        n.write(k, 0, &[0xAA; 8]).unwrap();
        n.write(k, 4096, &[0xBB; 8]).unwrap();
        assert_eq!(n.corrupt_drop_last_intent(), Some(2));
        n.crash();
        assert_eq!(n.recover_from_durable(0), 1);
        let mut buf = [0u8; 8];
        n.read(k, 0, &mut buf).unwrap();
        assert_eq!(buf, [0xAA; 8], "surviving intent must replay");
        n.read(k, 4096, &mut buf).unwrap();
        assert_eq!(buf, [0; 8], "dropped intent must be lost");
    }

    #[test]
    fn unarmed_node_has_no_recovery_surface() {
        let (mut n, k) = node_with_region();
        n.write(k, 0, &[1; 8]).unwrap();
        assert!(!n.persistence_armed());
        assert_eq!(n.intent_log_depth(), 0);
        assert_eq!(n.recover_from_durable(0), 0);
        assert_eq!(n.corrupt_drop_last_intent(), None);
    }

    #[test]
    fn regions_isolate_each_other() {
        let mut n = MemoryNode::new();
        let a = n.register_region(0, 4096);
        let b = n.register_region(1 << 30, 4096);
        let mut buf = [0u8; 8];
        // Key `a` cannot touch region `b` (protection-key isolation, §5).
        assert_eq!(n.read(a, 1 << 30, &mut buf), Err(MemNodeError::OutOfBounds));
        assert!(n.read(b, 1 << 30, &mut buf).is_ok());
    }
}
