//! SARIF 2.1.0 output for CI code-scanning upload.
//!
//! Hand-rolled like the JSON writer: one run, the full ten-rule table in
//! `tool.driver.rules`, one `result` per violation with the physical
//! location, and a `codeFlow` carrying the interprocedural call chain
//! when the finding has one (R6/R7). The report is sorted before
//! rendering, so two scans of the same tree emit byte-identical SARIF.

use crate::report::Report;
use crate::rules::RULES;

/// Short description per rule, indexed like [`RULES`].
const RULE_HELP: [&str; 10] = [
    "Virtual time only: Instant/SystemTime are banned outside host-timing crates.",
    "No HashMap/HashSet iteration on digest, trace, audit, or stats paths.",
    "No unwrap/expect/panic! in crates/core or crates/sim non-test code.",
    "TraceSink::emit must be passed the live clock, not a stored timestamp.",
    "Randomness only via dilos_sim::rng seeded streams.",
    "Hot-path functions must not reach a panic site through any call chain.",
    "A live borrow_mut() guard must not span a call that re-borrows the same RefCell.",
    "Ns addition/multiplication in sched/fabric/rdma/timeline must be saturating_ or checked_.",
    "Every TraceEvent/SchedEvent variant must be both emitted and consumed.",
    "Calendar schedule times must derive from now/config, never literals or host clocks.",
];

/// Renders the report as a SARIF 2.1.0 log with a single run.
pub fn to_sarif(report: &Report) -> String {
    let mut sorted = report.clone();
    sorted.sort();
    let mut s = String::new();
    s.push_str("{\n  \"version\": \"2.1.0\",\n");
    s.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    s.push_str("  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n");
    s.push_str("          \"name\": \"dilos-lint\",\n");
    s.push_str("          \"version\": \"2.0.0\",\n");
    s.push_str("          \"informationUri\": \"https://example.invalid/dilos-lint\",\n");
    s.push_str("          \"rules\": [\n");
    for (i, (code, slug)) in RULES.iter().enumerate() {
        if i > 0 {
            s.push_str(",\n");
        }
        s.push_str("            {\"id\": ");
        json_str(&mut s, slug);
        s.push_str(", \"name\": ");
        json_str(&mut s, code);
        s.push_str(", \"shortDescription\": {\"text\": ");
        json_str(&mut s, RULE_HELP[i]);
        s.push_str("}}");
    }
    s.push_str("\n          ]\n        }\n      },\n");
    s.push_str("      \"results\": [");
    for (i, v) in sorted.violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let rule_index = RULES
            .iter()
            .position(|(code, _)| *code == v.rule)
            .unwrap_or(0);
        s.push_str("\n        {\"ruleId\": ");
        json_str(&mut s, v.id);
        s.push_str(&format!(", \"ruleIndex\": {rule_index}"));
        s.push_str(", \"level\": \"error\", \"message\": {\"text\": ");
        json_str(&mut s, &v.message);
        s.push_str("}, \"locations\": [");
        push_location(&mut s, &v.file, v.line);
        s.push(']');
        if !v.path.is_empty() {
            s.push_str(", \"codeFlows\": [{\"threadFlows\": [{\"locations\": [");
            for (k, p) in v.path.iter().enumerate() {
                if k > 0 {
                    s.push_str(", ");
                }
                s.push_str("{\"location\": ");
                push_flow_location(&mut s, &p.label, &p.file, p.line);
                s.push('}');
            }
            s.push_str("]}]}]");
        }
        s.push('}');
    }
    if !sorted.violations.is_empty() {
        s.push_str("\n      ");
    }
    s.push_str("]\n    }\n  ]\n}\n");
    s
}

fn push_location(s: &mut String, file: &str, line: u32) {
    s.push_str("{\"physicalLocation\": {\"artifactLocation\": {\"uri\": ");
    json_str(s, file);
    s.push_str(&format!("}}, \"region\": {{\"startLine\": {line}}}}}}}"));
}

fn push_flow_location(s: &mut String, label: &str, file: &str, line: u32) {
    s.push_str("{\"message\": {\"text\": ");
    json_str(s, label);
    s.push_str("}, \"physicalLocation\": {\"artifactLocation\": {\"uri\": ");
    json_str(s, file);
    s.push_str(&format!("}}, \"region\": {{\"startLine\": {line}}}}}}}"));
}

/// Appends `v` as a JSON string literal (same escaping as the report
/// writer).
fn json_str(out: &mut String, v: &str) {
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{PathStep, Violation};

    #[test]
    fn sarif_lists_all_rules_and_carries_code_flows() {
        let mut r = Report {
            files_scanned: 1,
            ..Default::default()
        };
        r.violations.push(Violation {
            file: "crates/sim/src/x.rs".into(),
            line: 7,
            rule: "R6",
            id: "transitive-panic-freedom",
            message: "reaches unwrap".into(),
            path: vec![PathStep {
                label: "Node::fault".into(),
                file: "crates/core/src/node.rs".into(),
                line: 3,
            }],
        });
        let s = to_sarif(&r);
        assert!(s.contains("\"version\": \"2.1.0\""));
        for (_, slug) in RULES.iter() {
            assert!(s.contains(&format!("\"id\": \"{slug}\"")), "missing {slug}");
        }
        assert!(s.contains("\"ruleIndex\": 5"));
        assert!(s.contains("codeFlows"));
        assert!(s.contains("Node::fault"));
        assert!(s.contains("\"startLine\": 7"));
    }

    #[test]
    fn empty_report_has_empty_results() {
        let s = to_sarif(&Report::default());
        assert!(s.contains("\"results\": []"));
    }
}
