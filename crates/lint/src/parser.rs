//! A lightweight item-level Rust parser on top of the token stream.
//!
//! `dilos-lint` v1 saw only tokens; the interprocedural rules (R6–R10)
//! need *items*: which function a token belongs to, what type an `impl`
//! block targets, what a struct's fields are typed as, and what variants
//! an enum declares. This module extracts exactly that — no expressions,
//! no generics unification, no trait solving. It is a structural pass in
//! the same hand-rolled spirit as the lexer: deterministic, registry-free,
//! and pinned by fixtures rather than by a grammar.
//!
//! What it understands:
//!
//! - `impl Type { ... }` and `impl Trait for Type { ... }` blocks (the
//!   *target* type names methods; generic arguments are peeled).
//! - `fn name(params) -> Ret { body }` items, free or associated, with
//!   parameter names/base types, a `self` receiver flag, and the token
//!   range of the body.
//! - `struct Name { field: Type, ... }` field declarations (tuple structs
//!   are skipped — nothing in the rules needs positional fields).
//! - `enum Name { Variant, Variant { .. }, Variant(T) }` variant names
//!   with their declaration lines.
//!
//! Smart-pointer noise is peeled eagerly: a field declared
//! `Rc<RefCell<CalendarCore>>` resolves to base type `CalendarCore`, and
//! the fact that a `RefCell` layer was crossed is recorded separately
//! (that is what rule R7 keys its borrow-overlap cells on).

use crate::lexer::{TokKind, Token};

/// A function's parameter: simple-identifier pattern plus base type.
#[derive(Debug, Clone)]
pub struct Param {
    pub name: String,
    /// Peeled base type name (`Ns`, `Calendar`, ...); empty when the type
    /// is not a plain path (closures, trait objects, tuples).
    pub ty: String,
    /// Whether a `RefCell<...>` layer was peeled to reach `ty`.
    pub ref_cell: bool,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// The `impl` target type (or trait, for default methods) owning this
    /// function; `None` for free functions.
    pub impl_type: Option<String>,
    /// 1-indexed line of the `fn` keyword.
    pub line: u32,
    /// Whether the parameter list starts with a `self` receiver.
    pub has_self: bool,
    pub params: Vec<Param>,
    /// Peeled base type of the declared return type (empty for `()` or
    /// non-path returns).
    pub ret: String,
    /// Token index range of the body block, *excluding* the outer braces.
    /// Empty for bodiless trait signatures.
    pub body: std::ops::Range<usize>,
    /// True when the `fn` token sits in `#[cfg(test)]`/`#[test]` scope.
    pub in_test: bool,
}

/// One struct field: `name: Type`.
#[derive(Debug, Clone)]
pub struct FieldItem {
    /// Owning struct name.
    pub owner: String,
    pub name: String,
    /// Peeled base type.
    pub ty: String,
    /// Whether a `RefCell<...>` layer was peeled to reach `ty` — such a
    /// field is a *borrow cell* for rule R7.
    pub ref_cell: bool,
}

/// One enum variant.
#[derive(Debug, Clone)]
pub struct VariantItem {
    /// Owning enum name.
    pub owner: String,
    pub name: String,
    /// 1-indexed line the variant name sits on.
    pub line: u32,
    /// True when the enum is declared in test scope.
    pub in_test: bool,
}

/// All items extracted from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    pub fns: Vec<FnItem>,
    pub fields: Vec<FieldItem>,
    pub variants: Vec<VariantItem>,
    /// Enum names with a `use <Enum>::*;` glob in this file (bare variant
    /// names then count as variant usages).
    pub glob_enums: Vec<String>,
}

/// Wrapper type names peeled when resolving a base type. `RefCell` is
/// peeled too, but its crossing is reported to the caller.
const WRAPPERS: [&str; 9] = [
    "Rc", "Arc", "Box", "Option", "Cell", "Ref", "RefMut", "Vec", "rc",
];

/// Peels `Rc<RefCell<T>>`-style wrappers from the type starting at `i`
/// (just past any `&`/`mut`). Returns `(base, crossed_ref_cell)`; `base`
/// is empty when no plain path type is found.
pub fn peel_type(tokens: &[Token], mut i: usize, end: usize) -> (String, bool) {
    let mut ref_cell = false;
    loop {
        // Skip references and mutability.
        while i < end {
            match &tokens[i].kind {
                TokKind::Punct('&') | TokKind::Lifetime => i += 1,
                TokKind::Ident(s) if s == "mut" || s == "dyn" => i += 1,
                _ => break,
            }
        }
        // Walk a `seg::seg::Name` path, keeping the last segment.
        let mut name = String::new();
        while i < end {
            if let TokKind::Ident(s) = &tokens[i].kind {
                name = s.clone();
                i += 1;
                if i + 1 < end
                    && matches!(&tokens[i].kind, TokKind::Punct(':'))
                    && matches!(&tokens[i + 1].kind, TokKind::Punct(':'))
                {
                    i += 2;
                    continue;
                }
            }
            break;
        }
        if name.is_empty() {
            return (String::new(), ref_cell);
        }
        if name == "RefCell" {
            ref_cell = true;
        }
        let is_wrapper = name == "RefCell" || WRAPPERS.contains(&name.as_str());
        // Descend into `<...>` generic arguments of a wrapper.
        if is_wrapper && i < end && matches!(&tokens[i].kind, TokKind::Punct('<')) {
            i += 1;
            continue;
        }
        return (name, ref_cell);
    }
}

/// Extracts items from a lexed file.
pub fn parse_items(tokens: &[Token]) -> FileItems {
    let mut out = FileItems::default();
    // Stack of (brace_depth_at_open, impl_target) for impl/trait blocks.
    let mut impl_stack: Vec<(i32, String)> = Vec::new();
    let mut depth: i32 = 0;
    let mut i = 0usize;
    while i < tokens.len() {
        match &tokens[i].kind {
            TokKind::Punct('{') => {
                depth += 1;
                i += 1;
            }
            TokKind::Punct('}') => {
                if impl_stack.last().is_some_and(|(d, _)| *d == depth) {
                    impl_stack.pop();
                }
                depth -= 1;
                i += 1;
            }
            TokKind::Ident(kw) if kw == "impl" || kw == "trait" => {
                if let Some((target, open)) = parse_impl_header(tokens, i, kw == "trait") {
                    impl_stack.push((depth + 1, target));
                    depth += 1;
                    i = open + 1;
                } else {
                    i += 1;
                }
            }
            TokKind::Ident(kw) if kw == "fn" => {
                let impl_type = impl_stack.last().map(|(_, t)| t.clone());
                if let Some((f, next)) = parse_fn(tokens, i, impl_type) {
                    i = next;
                    out.fns.push(f);
                } else {
                    i += 1;
                }
            }
            TokKind::Ident(kw) if kw == "struct" => {
                i = parse_struct(tokens, i, &mut out);
            }
            TokKind::Ident(kw) if kw == "enum" => {
                i = parse_enum(tokens, i, &mut out);
            }
            TokKind::Ident(kw) if kw == "use" => {
                // `use Path::To::Enum::*;` — record the glob's last named
                // segment.
                let mut j = i + 1;
                let mut last = String::new();
                while j < tokens.len() {
                    match &tokens[j].kind {
                        TokKind::Ident(s) => last = s.clone(),
                        TokKind::Punct(':') => {}
                        TokKind::Punct('*') => {
                            if !last.is_empty() {
                                out.glob_enums.push(last.clone());
                            }
                            break;
                        }
                        _ => break,
                    }
                    j += 1;
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    out
}

/// Parses an `impl`/`trait` header starting at the keyword. Returns the
/// target type name and the index of the opening `{`.
fn parse_impl_header(tokens: &[Token], kw: usize, is_trait: bool) -> Option<(String, usize)> {
    let mut i = kw + 1;
    // Skip `<...>` generic parameters on the impl itself.
    if matches!(tokens.get(i).map(|t| &t.kind), Some(TokKind::Punct('<'))) {
        i = skip_angle(tokens, i)?;
    }
    let mut names: Vec<String> = Vec::new();
    let mut after_for = false;
    let mut target = String::new();
    while i < tokens.len() {
        match &tokens[i].kind {
            TokKind::Punct('{') => {
                let name = if after_for || names.len() == 1 || is_trait {
                    names.last().cloned().unwrap_or_default()
                } else {
                    // `impl Trait for Type` without seeing `for` means a
                    // malformed header; fall back to the last name.
                    names.last().cloned().unwrap_or_default()
                };
                let name = if target.is_empty() { name } else { target };
                if name.is_empty() {
                    return None;
                }
                return Some((name, i));
            }
            TokKind::Punct(';') => return None, // `impl Trait for Type;` — nothing to do
            TokKind::Ident(s) if s == "for" => {
                after_for = true;
                names.clear();
                i += 1;
            }
            TokKind::Ident(s) if s == "where" => {
                // The target is settled before `where`.
                target = names.last().cloned().unwrap_or_default();
                i += 1;
            }
            TokKind::Punct('<') => {
                i = skip_angle(tokens, i)?;
            }
            TokKind::Ident(s) => {
                names.push(s.clone());
                i += 1;
            }
            _ => i += 1,
        }
    }
    None
}

/// Skips a balanced `<...>` group starting at the `<`. Returns the index
/// just past the matching `>`.
fn skip_angle(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = open;
    while i < tokens.len() {
        match &tokens[i].kind {
            TokKind::Punct('<') => depth += 1,
            TokKind::Punct('>') => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            // `(`/`{` inside generics would be a fn pointer or const
            // generic block; skip them balanced too.
            TokKind::Punct('(') | TokKind::Punct('{') | TokKind::Punct('[') => {
                i = skip_group(tokens, i)?;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Skips a balanced `(...)`, `[...]`, or `{...}` group starting at the
/// opener. Returns the index just past the closer.
pub fn skip_group(tokens: &[Token], open: usize) -> Option<usize> {
    let (o, c) = match tokens.get(open).map(|t| &t.kind) {
        Some(TokKind::Punct('(')) => ('(', ')'),
        Some(TokKind::Punct('[')) => ('[', ']'),
        Some(TokKind::Punct('{')) => ('{', '}'),
        _ => return None,
    };
    let mut depth = 0i32;
    let mut i = open;
    while i < tokens.len() {
        match &tokens[i].kind {
            TokKind::Punct(p) if *p == o => depth += 1,
            TokKind::Punct(p) if *p == c => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Parses `fn name(params) [-> Ret] { body }` starting at the `fn`
/// keyword. Returns the item and the index to continue from (just past
/// the parameter list — the body is walked by the caller's main loop so
/// nested items inside bodies are still discovered).
fn parse_fn(tokens: &[Token], kw: usize, impl_type: Option<String>) -> Option<(FnItem, usize)> {
    let name_idx = kw + 1;
    let TokKind::Ident(name) = &tokens.get(name_idx)?.kind else {
        return None;
    };
    let mut i = name_idx + 1;
    if matches!(tokens.get(i).map(|t| &t.kind), Some(TokKind::Punct('<'))) {
        i = skip_angle(tokens, i)?;
    }
    let paren_open = i;
    if !matches!(tokens.get(i).map(|t| &t.kind), Some(TokKind::Punct('('))) {
        return None;
    }
    let paren_close = skip_group(tokens, paren_open)?; // index past `)`
    let (has_self, params) = parse_params(tokens, paren_open + 1, paren_close - 1);
    // Return type: `-> Ret` immediately after the parameter list.
    let mut ret = String::new();
    if matches!(
        tokens.get(paren_close).map(|t| &t.kind),
        Some(TokKind::Punct('-'))
    ) && matches!(
        tokens.get(paren_close + 1).map(|t| &t.kind),
        Some(TokKind::Punct('>'))
    ) {
        let mut end = paren_close + 2;
        while end < tokens.len()
            && !matches!(&tokens[end].kind, TokKind::Punct('{') | TokKind::Punct(';'))
        {
            if let TokKind::Ident(w) = &tokens[end].kind {
                if w == "where" {
                    break;
                }
            }
            end += 1;
        }
        ret = peel_type(tokens, paren_close + 2, end).0;
    }
    // Find the body `{` (skipping `-> Ret` and `where` clauses) or a `;`.
    let mut j = paren_close;
    let mut body = 0..0;
    while j < tokens.len() {
        match &tokens[j].kind {
            TokKind::Punct('{') => {
                let past = skip_group(tokens, j)?;
                body = (j + 1)..(past - 1);
                break;
            }
            TokKind::Punct(';') => break,
            TokKind::Punct('<') => {
                j = skip_angle(tokens, j)?;
            }
            TokKind::Punct('(') | TokKind::Punct('[') => {
                j = skip_group(tokens, j)?;
            }
            _ => j += 1,
        }
    }
    Some((
        FnItem {
            name: name.clone(),
            impl_type,
            line: tokens[kw].line,
            has_self,
            params,
            ret,
            body,
            in_test: tokens[kw].in_test,
        },
        paren_close,
    ))
}

/// Parses a parameter list between `start..end` (exclusive of parens).
fn parse_params(tokens: &[Token], start: usize, end: usize) -> (bool, Vec<Param>) {
    let mut params = Vec::new();
    let mut has_self = false;
    let mut i = start;
    // Split on top-level commas.
    let mut seg_start = i;
    let mut depth = 0i32;
    let mut segs: Vec<(usize, usize)> = Vec::new();
    while i < end {
        match &tokens[i].kind {
            TokKind::Punct('(')
            | TokKind::Punct('[')
            | TokKind::Punct('{')
            | TokKind::Punct('<') => depth += 1,
            TokKind::Punct(')')
            | TokKind::Punct(']')
            | TokKind::Punct('}')
            | TokKind::Punct('>') => depth -= 1,
            TokKind::Punct(',') if depth == 0 => {
                segs.push((seg_start, i));
                seg_start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    if seg_start < end {
        segs.push((seg_start, end));
    }
    for (s, e) in segs {
        let mut j = s;
        // Receiver?
        let mut k = j;
        while k < e {
            match &tokens[k].kind {
                TokKind::Punct('&') | TokKind::Lifetime => k += 1,
                TokKind::Ident(m) if m == "mut" => k += 1,
                TokKind::Ident(m) if m == "self" => {
                    has_self = true;
                    k = e;
                }
                _ => break,
            }
        }
        if k >= e && has_self {
            continue;
        }
        // `[mut] name : Type`
        if let Some(TokKind::Ident(m)) = tokens.get(j).map(|t| &t.kind) {
            if m == "mut" {
                j += 1;
            }
        }
        let Some(TokKind::Ident(pname)) = tokens.get(j).map(|t| &t.kind) else {
            continue;
        };
        if !matches!(
            tokens.get(j + 1).map(|t| &t.kind),
            Some(TokKind::Punct(':'))
        ) {
            continue;
        }
        let (ty, ref_cell) = peel_type(tokens, j + 2, e);
        params.push(Param {
            name: pname.clone(),
            ty,
            ref_cell,
        });
    }
    (has_self, params)
}

/// Parses `struct Name { fields }`; returns the index to continue from.
fn parse_struct(tokens: &[Token], kw: usize, out: &mut FileItems) -> usize {
    let Some(TokKind::Ident(name)) = tokens.get(kw + 1).map(|t| &t.kind) else {
        return kw + 1;
    };
    let name = name.clone();
    let mut i = kw + 2;
    if matches!(tokens.get(i).map(|t| &t.kind), Some(TokKind::Punct('<'))) {
        match skip_angle(tokens, i) {
            Some(p) => i = p,
            None => return kw + 1,
        }
    }
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokKind::Punct('{')) => {}
        // Tuple struct or unit struct: skip.
        _ => return kw + 1,
    }
    let Some(close) = skip_group(tokens, i) else {
        return kw + 1;
    };
    // Fields: top-level `name : Type ,` sequences.
    let mut j = i + 1;
    while j < close - 1 {
        match &tokens[j].kind {
            TokKind::Ident(f)
                if matches!(
                    tokens.get(j + 1).map(|t| &t.kind),
                    Some(TokKind::Punct(':'))
                ) && !matches!(
                    tokens.get(j + 2).map(|t| &t.kind),
                    Some(TokKind::Punct(':'))
                ) =>
            {
                if f == "pub" {
                    j += 1;
                    continue;
                }
                let fname = f.clone();
                // Type runs to the next top-level comma.
                let mut k = j + 2;
                let mut depth = 0i32;
                while k < close - 1 {
                    match &tokens[k].kind {
                        TokKind::Punct('<')
                        | TokKind::Punct('(')
                        | TokKind::Punct('[')
                        | TokKind::Punct('{') => depth += 1,
                        TokKind::Punct('>')
                        | TokKind::Punct(')')
                        | TokKind::Punct(']')
                        | TokKind::Punct('}') => depth -= 1,
                        TokKind::Punct(',') if depth == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                let (ty, ref_cell) = peel_type(tokens, j + 2, k);
                out.fields.push(FieldItem {
                    owner: name.clone(),
                    name: fname,
                    ty,
                    ref_cell,
                });
                j = k + 1;
            }
            _ => j += 1,
        }
    }
    close
}

/// Parses `enum Name { Variant, ... }`; returns the index to continue
/// from.
fn parse_enum(tokens: &[Token], kw: usize, out: &mut FileItems) -> usize {
    let Some(TokKind::Ident(name)) = tokens.get(kw + 1).map(|t| &t.kind) else {
        return kw + 1;
    };
    let name = name.clone();
    let in_test = tokens[kw].in_test;
    let mut i = kw + 2;
    if matches!(tokens.get(i).map(|t| &t.kind), Some(TokKind::Punct('<'))) {
        match skip_angle(tokens, i) {
            Some(p) => i = p,
            None => return kw + 1,
        }
    }
    if !matches!(tokens.get(i).map(|t| &t.kind), Some(TokKind::Punct('{'))) {
        return kw + 1;
    }
    let Some(close) = skip_group(tokens, i) else {
        return kw + 1;
    };
    // Variants sit at top level inside the braces: an identifier followed
    // by `,`, `(`, `{`, `=`, or the closing brace.
    let mut j = i + 1;
    while j < close - 1 {
        match &tokens[j].kind {
            TokKind::Punct('#') => {
                // Attribute: `#[...]`.
                let mut k = j + 1;
                if matches!(tokens.get(k).map(|t| &t.kind), Some(TokKind::Punct('['))) {
                    if let Some(p) = skip_group(tokens, k) {
                        k = p;
                    }
                }
                j = k;
            }
            TokKind::Ident(v) => {
                out.variants.push(VariantItem {
                    owner: name.clone(),
                    name: v.clone(),
                    line: tokens[j].line,
                    in_test,
                });
                // Skip the payload and trailing discriminant to the comma.
                let mut k = j + 1;
                while k < close - 1 {
                    match &tokens[k].kind {
                        TokKind::Punct('(') | TokKind::Punct('{') | TokKind::Punct('[') => {
                            match skip_group(tokens, k) {
                                Some(p) => k = p,
                                None => break,
                            }
                        }
                        TokKind::Punct(',') => {
                            k += 1;
                            break;
                        }
                        _ => k += 1,
                    }
                }
                j = k;
            }
            _ => j += 1,
        }
    }
    close
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn extracts_fns_with_impl_targets() {
        let src = r#"
            fn free(a: Ns, b: usize) -> Ns { a }
            impl Calendar {
                pub fn schedule(&self, at: Ns, ev: SchedEvent) -> EventId { todo() }
                fn skim(&mut self) {}
            }
            impl TraceObserver for Auditor {
                fn on_event(&mut self, t: Ns, ev: &TraceEvent) {}
            }
        "#;
        let items = parse_items(&lex(src).tokens);
        let names: Vec<(Option<&str>, &str, bool)> = items
            .fns
            .iter()
            .map(|f| (f.impl_type.as_deref(), f.name.as_str(), f.has_self))
            .collect();
        assert_eq!(
            names,
            vec![
                (None, "free", false),
                (Some("Calendar"), "schedule", true),
                (Some("Calendar"), "skim", true),
                (Some("Auditor"), "on_event", true),
            ]
        );
        assert_eq!(items.fns[0].params.len(), 2);
        assert_eq!(items.fns[0].params[0].ty, "Ns");
        assert_eq!(items.fns[1].params[0].name, "at");
        assert_eq!(items.fns[1].params[0].ty, "Ns");
    }

    #[test]
    fn peels_wrappers_and_marks_ref_cells() {
        let src = r#"
            struct SharedPool {
                ep: Rc<RefCell<RdmaEndpoint>>,
                tenant: u8,
                cal: Calendar,
            }
        "#;
        let items = parse_items(&lex(src).tokens);
        assert_eq!(items.fields.len(), 3);
        assert_eq!(items.fields[0].ty, "RdmaEndpoint");
        assert!(items.fields[0].ref_cell);
        assert_eq!(items.fields[1].ty, "u8");
        assert!(!items.fields[1].ref_cell);
        assert_eq!(items.fields[2].ty, "Calendar");
    }

    #[test]
    fn extracts_enum_variants_with_lines() {
        let src = "enum SchedEvent {\n    ReclaimTick,\n    PrefetchLand { vpn: u64, token: u32 },\n    Wrapped(u64),\n}\n";
        let items = parse_items(&lex(src).tokens);
        let vs: Vec<(&str, u32)> = items
            .variants
            .iter()
            .map(|v| (v.name.as_str(), v.line))
            .collect();
        assert_eq!(
            vs,
            vec![("ReclaimTick", 2), ("PrefetchLand", 3), ("Wrapped", 4)]
        );
        assert_eq!(items.variants[0].owner, "SchedEvent");
    }

    #[test]
    fn variant_payload_fields_are_not_variants() {
        let src = "enum E { A { x: u64, y: Vec<u8> }, B(Foo, Bar), C = 3, D }";
        let items = parse_items(&lex(src).tokens);
        let vs: Vec<&str> = items.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(vs, vec!["A", "B", "C", "D"]);
    }

    #[test]
    fn glob_imports_are_recorded() {
        let src = "use TraceEvent::*;\nuse crate::sched::SchedEvent::*;\nuse std::fmt::Debug;\n";
        let items = parse_items(&lex(src).tokens);
        assert_eq!(items.glob_enums, vec!["TraceEvent", "SchedEvent"]);
    }

    #[test]
    fn nested_fns_inside_bodies_are_found() {
        let src = "fn outer() { fn inner(x: Ns) {} }";
        let items = parse_items(&lex(src).tokens);
        let names: Vec<&str> = items.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }

    #[test]
    fn test_scope_is_carried() {
        let src = "#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn live() {}\n";
        let items = parse_items(&lex(src).tokens);
        assert!(items.fns[0].in_test, "helper is test code");
        assert!(!items.fns[1].in_test);
    }
}
