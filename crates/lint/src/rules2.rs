//! dilos-lint v2: the interprocedural rule families (R6–R10).
//!
//! R8 and R10 are per-file passes (they need only one file's tokens) and
//! run from the same phase as R1–R5. R6, R7, and R9 need the whole
//! workspace: the call graph for R6/R7, and every file's token stream for
//! R9's emit/match coverage census. Scope:
//!
//! | rule | slug | scope |
//! |------|------|-------|
//! | R6 | `transitive-panic-freedom` | roots: non-test fns in `crates/core`/`crates/sim`; sinks: panic sites in non-test fns *outside* those crates (inside them, R3 already governs direct sites) |
//! | R7 | `refcell-borrow-overlap` | every non-test fn with a live `borrow_mut()` span |
//! | R8 | `ns-arithmetic-safety` | `crates/sim` files named `sched`/`fabric`/`rdma`/`timeline` |
//! | R9 | `trace-event-coverage` | `TraceEvent`/`SchedEvent` enums declared in `crates/sim`/`crates/core` |
//! | R10 | `schedule-time-monotonicity` | `.schedule*(...)` call sites in `crates/core`/`crates/sim`/`crates/baselines` |
//!
//! All five anchor their violations at file-local lines, so the existing
//! `// dilos-lint: allow(<rule>, "<reason>")` mechanism shields them with
//! no extension: an R6 finding is suppressed at its *sink* line, an R9
//! finding at the variant declaration line.

use crate::graph::{is_hot_crate, is_test_target, FileAnalysis, Model};
use crate::lexer::{TokKind, Token};
use crate::parser::skip_group;
use crate::report::Violation;
use crate::rules::{violation, STALE_TIME_PREFIXES};
use std::collections::{BTreeMap, BTreeSet};

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(tokens: &[Token], i: usize, c: char) -> bool {
    matches!(tokens.get(i).map(|t| &t.kind), Some(TokKind::Punct(p)) if *p == c)
}

// ---------------------------------------------------------------------
// R8: Ns-arithmetic safety (per file)
// ---------------------------------------------------------------------

/// File stems whose arithmetic is dominated by virtual-time math.
const R8_STEMS: [&str; 4] = ["sched", "fabric", "rdma", "timeline"];

/// Whether R8 applies to this path.
pub fn r8_in_scope(path: &str) -> bool {
    if !path.starts_with("crates/sim/") || is_test_target(path) {
        return false;
    }
    let stem = path
        .rsplit('/')
        .next()
        .unwrap_or(path)
        .trim_end_matches(".rs");
    R8_STEMS.contains(&stem)
}

/// R8: `+`/`*` on `Ns` values must be `saturating_`/`checked_`.
///
/// Taint is statement-granular: a statement mentions virtual time when it
/// uses a name ascribed `: Ns` anywhere in the file, an identifier
/// containing `_ns`, or the conventional `now`. Every *binary* `+`/`*`
/// (including `+=`/`*=`) in such a statement is flagged.
pub fn rule_ns_arithmetic(file: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    // Pass 1: names ascribed `: Ns` (params, lets, fields).
    let mut tainted: BTreeSet<&str> = BTreeSet::new();
    for i in 0..tokens.len() {
        if ident_at(tokens, i) == Some("Ns")
            && i >= 2
            && punct_at(tokens, i - 1, ':')
            && !punct_at(tokens, i - 2, ':')
        {
            if let Some(name) = ident_at(tokens, i - 2) {
                tainted.insert(name);
            }
        }
    }
    // Pass 2: statement segmentation and op flagging.
    let mut stmt_start = 0usize;
    let mut i = 0usize;
    let mut flagged_lines: BTreeSet<u32> = BTreeSet::new();
    while i <= tokens.len() {
        let boundary = i == tokens.len()
            || matches!(
                &tokens[i].kind,
                TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}')
            );
        if boundary {
            let stmt = &tokens[stmt_start..i];
            let live = stmt.iter().any(|t| !t.in_test);
            let has_time = stmt.iter().any(|t| match &t.kind {
                TokKind::Ident(s) => {
                    tainted.contains(s.as_str()) || s.contains("_ns") || s == "now"
                }
                _ => false,
            });
            if live && has_time {
                for (k, t) in stmt.iter().enumerate() {
                    let op = match &t.kind {
                        TokKind::Punct('+') => "+",
                        TokKind::Punct('*') => "*",
                        _ => continue,
                    };
                    // Binary position: preceded by a value.
                    let binary = k > 0
                        && match &stmt[k - 1].kind {
                            TokKind::Ident(s) => s != "as" && s != "return" && s != "in",
                            TokKind::Number | TokKind::Punct(')') | TokKind::Punct(']') => true,
                            _ => false,
                        };
                    if binary && flagged_lines.insert(t.line) {
                        out.push(violation(file, t.line, 7, vec![], format!(
                            "unchecked `{op}` in virtual-time (`Ns`) arithmetic; use saturating_add/saturating_mul (or checked_) so a pathological time sum cannot wrap the timeline"
                        )));
                    }
                }
            }
            stmt_start = i + 1;
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------
// R10: schedule-time monotonicity (per file)
// ---------------------------------------------------------------------

/// Whether R10 applies to this path.
pub fn r10_in_scope(path: &str) -> bool {
    (is_hot_crate(path) || path.starts_with("crates/baselines/")) && !is_test_target(path)
}

/// Identifier prefixes that mark a foreign (host/wall) clock.
const HOST_CLOCK_PREFIXES: [&str; 2] = ["host_", "wall_"];

/// R10: the first argument of every `.schedule*(...)` call must derive
/// from a live virtual-time expression — never a bare literal, never a
/// cached/stale value, never a host clock.
pub fn rule_schedule_time(file: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    for i in 0..tokens.len() {
        if tokens[i].in_test {
            continue;
        }
        let Some(name) = ident_at(tokens, i) else {
            continue;
        };
        if !name.starts_with("schedule")
            || i == 0
            || !punct_at(tokens, i - 1, '.')
            || !punct_at(tokens, i + 1, '(')
        {
            continue;
        }
        // First argument: tokens to the first top-level comma.
        let mut depth = 0i32;
        let mut arg: Vec<&Token> = Vec::new();
        let mut j = i + 2;
        while j < tokens.len() {
            match &tokens[j].kind {
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') if depth == 0 => {
                    break
                }
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => depth -= 1,
                TokKind::Punct(',') if depth == 0 => break,
                _ => {}
            }
            arg.push(&tokens[j]);
            j += 1;
        }
        if arg.is_empty() {
            continue;
        }
        let has_ident = arg.iter().any(|t| matches!(&t.kind, TokKind::Ident(_)));
        if !has_ident {
            out.push(violation(file, tokens[i].line, 9, vec![], format!(
                "`.{name}()` given a raw literal delivery time; schedule times must derive from `now`/config so the calendar stays monotone with the causing access"
            )));
            continue;
        }
        for t in &arg {
            if let TokKind::Ident(s) = &t.kind {
                if STALE_TIME_PREFIXES.iter().any(|p| s.starts_with(p))
                    || HOST_CLOCK_PREFIXES.iter().any(|p| s.starts_with(p))
                {
                    out.push(violation(file, tokens[i].line, 9, vec![], format!(
                        "`.{name}()` delivery time derives from `{s}`, a cached/foreign clock; recompute from the live virtual `now` at the schedule site"
                    )));
                    break;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// R6 + R7: call-graph rules
// ---------------------------------------------------------------------

/// R6: no non-test fn in `crates/core`/`crates/sim` may transitively
/// reach a panic site in a helper crate. Direct sites inside core/sim are
/// R3's jurisdiction (and carry its allows); R6 closes the loophole where
/// a "clean" hot-path function calls an `unwrap`-ing helper elsewhere.
pub fn rule_transitive_panic(model: &Model, out: &mut Vec<Violation>) {
    let roots: Vec<usize> = (0..model.fns.len())
        .filter(|&i| {
            is_hot_crate(&model.fns[i].file)
                && model.is_live(i)
                && !model.fns[i].item.body.is_empty()
        })
        .collect();
    let parent = model.reach_parents(&roots);
    let mut seen: BTreeSet<(String, u32)> = BTreeSet::new();
    for i in 0..model.fns.len() {
        if parent[i] == usize::MAX || is_hot_crate(&model.fns[i].file) || !model.is_live(i) {
            continue;
        }
        let node = &model.fns[i];
        for p in &node.summary.panics {
            if !seen.insert((node.file.clone(), p.line)) {
                continue;
            }
            let chain = model.chain_to(&parent, i);
            let root = chain.first().map(|s| s.label.clone()).unwrap_or_default();
            let sink_desc = if p.what == "index" {
                "unchecked dynamic indexing".to_string()
            } else {
                format!("`{}`", p.what)
            };
            out.push(violation(&node.file, p.line, 5, chain, format!(
                "{sink_desc} in `{}` is reachable from hot-path `{root}`; a panic here takes down the simulated machine — return an Err, use .get(), or add a documented dilos-lint allow at this sink",
                node.qual_name()
            )));
        }
    }
}

/// R7: a live `borrow_mut()` guard may not span a call whose transitive
/// callees borrow the same cell, and may not overlap a direct same-cell
/// borrow — either is a guaranteed `BorrowMutError` panic at runtime.
pub fn rule_borrow_overlap(model: &Model, out: &mut Vec<Violation>) {
    let trans = model.transitive_borrows();
    let mut seen: BTreeSet<(String, u32, String)> = BTreeSet::new();
    for i in 0..model.fns.len() {
        if !model.is_live(i) {
            continue;
        }
        let node = &model.fns[i];
        for span in &node.summary.spans {
            // Direct same-cell borrow while the guard is live.
            for &b in &span.overlaps {
                let site = &node.summary.borrows[b];
                if seen.insert((node.file.clone(), site.line, span.cell.clone())) {
                    out.push(violation(&node.file, site.line, 6, vec![], format!(
                        "`{}` re-borrows `{}` while the borrow_mut guard taken at line {} is still live; this panics with BorrowMutError at runtime",
                        if site.mutable { ".borrow_mut()" } else { ".borrow()" },
                        span.cell, span.line
                    )));
                }
            }
            // Calls whose transitive callees borrow the same cell.
            for &c in &span.calls {
                let Some(callee) = node.resolved[c] else {
                    continue;
                };
                if !trans[callee].contains(&span.cell) {
                    continue;
                }
                let line = node.summary.calls[c].line;
                if !seen.insert((node.file.clone(), line, span.cell.clone())) {
                    continue;
                }
                let mut chain = vec![node.path_step()];
                chain.extend(model.borrow_chain(callee, &span.cell));
                out.push(violation(&node.file, line, 6, chain, format!(
                    "call into `{}` while the borrow_mut guard on `{}` (taken at line {}) is live; the callee transitively borrows the same cell, which panics with BorrowMutError",
                    model.fns[callee].qual_name(), span.cell, span.line
                )));
            }
        }
    }
}

// ---------------------------------------------------------------------
// R9: trace-event coverage
// ---------------------------------------------------------------------

/// Enum names whose variants must be fully emitted and consumed.
const R9_ENUMS: [&str; 2] = ["TraceEvent", "SchedEvent"];

#[derive(Default, Debug, Clone, Copy)]
struct Usage {
    emitted: bool,
    matched: bool,
}

/// Whether `path` hosts live emit sites for R9 purposes.
fn r9_emit_scope(path: &str) -> bool {
    (is_hot_crate(path) || path.starts_with("crates/baselines/")) && !is_test_target(path)
}

/// Whether `path` is an audit/digest consumer (TraceEvent matches only
/// count here — the encoder in `trace.rs` itself does not absolve a
/// variant of audit coverage).
fn r9_audit_scope(path: &str) -> bool {
    let stem = path.rsplit('/').next().unwrap_or(path);
    (stem.contains("audit") || stem.contains("digest")) && !is_test_target(path)
}

/// R9: every `TraceEvent`/`SchedEvent` variant must be constructed in
/// live sim/core/baselines code AND matched by a consumer — an auditor or
/// digest for `TraceEvent`, any live dispatch for `SchedEvent`. Catches
/// the "new event, forgot the auditor" regression class.
pub fn rule_event_coverage(files: &[FileAnalysis], model: &Model, out: &mut Vec<Violation>) {
    // Variants of interest, keyed (enum, variant).
    let mut usage: BTreeMap<(String, String), Usage> = BTreeMap::new();
    let mut decl: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
    for (file, v) in &model.variants {
        if R9_ENUMS.contains(&v.owner.as_str())
            && !v.in_test
            && is_hot_crate(file)
            && !is_test_target(file)
        {
            usage.insert((v.owner.clone(), v.name.clone()), Usage::default());
            decl.insert((v.owner.clone(), v.name.clone()), (file.clone(), v.line));
        }
    }
    if usage.is_empty() {
        return;
    }
    // Bare-name lookup for files with `use Enum::*;` (owned strings so
    // the usage map stays mutably borrowable during classification).
    let variant_owner: BTreeMap<String, String> =
        usage.keys().map(|(e, v)| (v.clone(), e.clone())).collect();

    for f in files {
        let toks = &f.lexed.tokens;
        let globs: Vec<&str> = f
            .items
            .glob_enums
            .iter()
            .map(String::as_str)
            .filter(|g| R9_ENUMS.contains(g))
            .collect();
        // Ranges to skip: enum declaration bodies (a variant's own
        // declaration is neither an emit nor a match). Ranges where a
        // usage is a pattern regardless of trailing token: the second
        // argument of `matches!`.
        let mut skip: Vec<(usize, usize)> = Vec::new();
        let mut pattern_ctx: Vec<(usize, usize)> = Vec::new();
        let mut i = 0usize;
        while i < toks.len() {
            if ident_at(toks, i) == Some("enum") {
                let mut j = i + 1;
                while j < toks.len() && !punct_at(toks, j, '{') {
                    if punct_at(toks, j, ';') {
                        break;
                    }
                    j += 1;
                }
                if punct_at(toks, j, '{') {
                    if let Some(close) = skip_group(toks, j) {
                        skip.push((j, close));
                        i = close;
                        continue;
                    }
                }
            }
            if ident_at(toks, i) == Some("matches")
                && punct_at(toks, i + 1, '!')
                && punct_at(toks, i + 2, '(')
            {
                if let Some(close) = skip_group(toks, i + 2) {
                    // Pattern context: after the first top-level comma.
                    let mut d = 0i32;
                    let mut k = i + 3;
                    while k < close {
                        match &toks[k].kind {
                            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => {
                                d += 1
                            }
                            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                                d -= 1
                            }
                            TokKind::Punct(',') if d == 0 => {
                                pattern_ctx.push((k, close));
                                break;
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
            }
            i += 1;
        }

        // Pass 1: collect variant mention sites; pass 2 classifies them
        // (two passes so the usage map is not borrowed during the scan).
        let mut sites: Vec<(String, String, usize)> = Vec::new();
        let mut i = 0usize;
        while i < toks.len() {
            if skip.iter().any(|&(a, b)| i >= a && i < b) {
                i += 1;
                continue;
            }
            if let Some(e) = ident_at(toks, i) {
                if R9_ENUMS.contains(&e) && punct_at(toks, i + 1, ':') && punct_at(toks, i + 2, ':')
                {
                    if let Some(v) = ident_at(toks, i + 3) {
                        if usage.contains_key(&(e.to_string(), v.to_string())) {
                            sites.push((e.to_string(), v.to_string(), i + 3));
                            i += 4;
                            continue;
                        }
                    }
                }
                // Bare variant names, only under `use Enum::*;`.
                if !globs.is_empty() {
                    if let Some(owner) = variant_owner.get(e) {
                        let qualified =
                            (i >= 2 && punct_at(toks, i - 1, ':') && punct_at(toks, i - 2, ':'))
                                || (i >= 1 && punct_at(toks, i - 1, '.'));
                        if globs.contains(&owner.as_str()) && !qualified {
                            sites.push((owner.clone(), e.to_string(), i));
                        }
                    }
                }
            }
            i += 1;
        }

        for (enum_name, var_name, at) in sites {
            let key = (enum_name.clone(), var_name);
            let Some(u) = usage.get_mut(&key) else {
                continue;
            };
            if toks[at].in_test {
                continue;
            }
            // Classify: pattern or construction.
            let mut j = at + 1;
            if punct_at(toks, j, '{') || punct_at(toks, j, '(') {
                if let Some(p) = skip_group(toks, j) {
                    j = p;
                }
            }
            let in_matches = pattern_ctx.iter().any(|&(a, b)| at > a && at < b);
            let is_pattern = in_matches
                || punct_at(toks, j, '=')
                || punct_at(toks, j, '|')
                || ident_at(toks, j) == Some("if");
            if is_pattern {
                let consumer_ok = if enum_name == "TraceEvent" {
                    r9_audit_scope(&f.path)
                } else {
                    r9_emit_scope(&f.path)
                };
                if consumer_ok {
                    u.matched = true;
                }
            } else if r9_emit_scope(&f.path) {
                u.emitted = true;
            }
        }
    }

    for ((enum_name, var_name), u) in &usage {
        let (file, line) = &decl[&(enum_name.clone(), var_name.clone())];
        if !u.emitted {
            out.push(violation(file, *line, 8, vec![], format!(
                "variant `{enum_name}::{var_name}` is never constructed in live sim/core/baselines code; dead events rot — emit it or remove it"
            )));
        }
        if !u.matched {
            let consumer = if enum_name == "TraceEvent" {
                "an audit/digest consumer"
            } else {
                "any live dispatch"
            };
            out.push(violation(file, *line, 8, vec![], format!(
                "variant `{enum_name}::{var_name}` is never matched by {consumer}; the auditor cannot see it — extend the consumer or remove the variant"
            )));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::FileAnalysis;

    fn run_all(files: &[(&str, &str)]) -> Vec<Violation> {
        let fas: Vec<FileAnalysis> = files.iter().map(|(p, s)| FileAnalysis::new(p, s)).collect();
        let model = Model::build(&fas);
        let mut out = Vec::new();
        for f in &fas {
            if r8_in_scope(&f.path) {
                rule_ns_arithmetic(&f.path, &f.lexed.tokens, &mut out);
            }
            if r10_in_scope(&f.path) {
                rule_schedule_time(&f.path, &f.lexed.tokens, &mut out);
            }
        }
        rule_transitive_panic(&model, &mut out);
        rule_borrow_overlap(&model, &mut out);
        rule_event_coverage(&fas, &model, &mut out);
        out
    }

    #[test]
    fn r6_reports_cross_crate_panic_with_path() {
        let v = run_all(&[
            (
                "crates/core/src/node.rs",
                r#"
                struct Node { h: Rc<RefCell<Heap>> }
                impl Node {
                    fn fault(&self) -> u64 { self.h.borrow().carve(3) }
                }
                "#,
            ),
            (
                "crates/alloc/src/heap.rs",
                r#"
                struct Heap { pages: Vec<u64> }
                impl Heap {
                    fn carve(&self, idx: usize) -> u64 { self.pages[idx] }
                }
                "#,
            ),
        ]);
        let r6: Vec<&Violation> = v.iter().filter(|v| v.rule == "R6").collect();
        assert_eq!(r6.len(), 1);
        assert_eq!(r6[0].file, "crates/alloc/src/heap.rs");
        assert_eq!(r6[0].path.len(), 2, "root and sink in the chain");
        assert!(r6[0].path[0].label.contains("fault"));
        assert!(r6[0].path[1].label.contains("carve"));
    }

    #[test]
    fn r9_flags_unconsumed_variant_only() {
        let v = run_all(&[
            (
                "crates/sim/src/trace.rs",
                "pub enum TraceEvent { Fault { vpn: u64 }, Evict { vpn: u64 } }\n\
                 fn emit_all(s: &S) { s.push(TraceEvent::Fault { vpn: 1 }); s.push(TraceEvent::Evict { vpn: 2 }); }\n",
            ),
            (
                "crates/core/src/audit.rs",
                "fn consume(ev: &TraceEvent) -> u32 { match ev { TraceEvent::Fault { .. } => 1, _ => 0 } }\n",
            ),
        ]);
        let r9: Vec<&Violation> = v.iter().filter(|v| v.rule == "R9").collect();
        assert_eq!(r9.len(), 1, "only Evict is unconsumed: {r9:?}");
        assert!(r9[0].message.contains("Evict"));
        assert!(r9[0].message.contains("audit"));
        assert_eq!(r9[0].line, 1, "anchored at the variant declaration");
    }

    #[test]
    fn r8_flags_bare_ops_only_in_time_statements() {
        let v = run_all(&[(
            "crates/sim/src/fabric.rs",
            "fn cost(start: Ns, wire: Ns, n: u64) -> Ns {\n\
             let count = n + 1;\n\
             let end = start + wire;\n\
             end\n}\n",
        )]);
        let r8: Vec<&Violation> = v.iter().filter(|v| v.rule == "R8").collect();
        assert_eq!(r8.len(), 1, "{r8:?}");
        assert_eq!(r8[0].line, 3, "the count arithmetic is not time math");
    }

    #[test]
    fn r10_flags_literal_schedule_times() {
        let v = run_all(&[(
            "crates/sim/src/pump.rs",
            "fn arm(cal: &Calendar, now: Ns) {\n\
             cal.schedule(1000, SchedEvent::ReclaimTick);\n\
             cal.schedule(now + 10, SchedEvent::ReclaimTick);\n}\n",
        )]);
        let r10: Vec<&Violation> = v.iter().filter(|v| v.rule == "R10").collect();
        assert_eq!(r10.len(), 1, "{r10:?}");
        assert_eq!(r10[0].line, 2);
    }

    #[test]
    fn r7_flags_call_that_reenters_cell() {
        let v = run_all(&[(
            "crates/sim/src/cluster.rs",
            r#"
            struct Pool { ep: Rc<RefCell<Endpoint>> }
            struct Endpoint { n: u64 }
            impl Pool {
                fn peek(&self) -> u64 { self.ep.borrow().n }
                fn poke(&self) {
                    let mut g = self.ep.borrow_mut();
                    let x = self.peek();
                }
            }
            "#,
        )]);
        let r7: Vec<&Violation> = v.iter().filter(|v| v.rule == "R7").collect();
        assert_eq!(r7.len(), 1, "{r7:?}");
        assert!(r7[0].message.contains("Endpoint"));
        assert!(!r7[0].path.is_empty());
    }
}
