//! The crate-wide call graph and its derived facts.
//!
//! Built from every file's parsed items plus per-function summaries, the
//! [`Model`] resolves call sites to function nodes and precomputes the
//! two closures the interprocedural rules need:
//!
//! - **reachability with parents** (rule R6): a multi-source BFS from all
//!   hot-path roots, recording one parent per reached function so the
//!   *shortest* offending call chain can be reported;
//! - **transitive borrow sets** (rule R7): for every function, the set of
//!   `RefCell` cells (by inner type name) that it or any transitive
//!   callee borrows, computed as a cycle-safe fixpoint.
//!
//! Resolution policy (deliberately conservative — a wrong edge fabricates
//! violations, a missing edge merely weakens a rule):
//!
//! - `recv.method(...)` with a known receiver type resolves against the
//!   `(type, method)` map, preferring a same-crate definition when two
//!   crates declare a type with the same name;
//! - an *unknown* receiver resolves only when the method name is defined
//!   exactly once in the whole workspace and is not a common std name;
//! - free calls resolve when the name is unique among free functions;
//! - anything else creates no edge.

use crate::lexer::{lex, Lexed};
use crate::parser::{parse_items, FileItems, FnItem, VariantItem};
use crate::report::PathStep;
use crate::summary::{CallTarget, FnSummary, Summarizer, TypeTables};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Method names too generic to resolve through the unknown-receiver
/// fallback — they collide with std container APIs constantly.
const STD_COMMON: [&str; 40] = [
    "new", "default", "len", "is_empty", "push", "pop", "insert", "remove", "get", "clone", "iter",
    "next", "clear", "contains", "take", "set", "reset", "run", "find", "map", "filter", "fold",
    "any", "all", "position", "swap", "sort", "extend", "drain", "retain", "first", "last",
    "count", "min", "max", "rev", "zip", "entry", "write", "read",
];

/// One lexed + parsed source file.
pub struct FileAnalysis {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    pub lexed: Lexed,
    pub items: FileItems,
}

impl FileAnalysis {
    pub fn new(path: &str, src: &str) -> FileAnalysis {
        let lexed = lex(src);
        let items = parse_items(&lexed.tokens);
        FileAnalysis {
            path: path.to_string(),
            lexed,
            items,
        }
    }
}

/// A function node: its item, summary, and resolved call edges.
pub struct FnNode {
    pub file: String,
    pub item: FnItem,
    pub summary: FnSummary,
    /// Resolved callee (node index) per summary call site, parallel to
    /// `summary.calls`.
    pub resolved: Vec<Option<usize>>,
}

impl FnNode {
    /// `Type::name` or `name` for reports.
    pub fn qual_name(&self) -> String {
        match &self.item.impl_type {
            Some(t) => format!("{t}::{}", self.item.name),
            None => self.item.name.clone(),
        }
    }

    /// The call-path step for this function.
    pub fn path_step(&self) -> PathStep {
        PathStep {
            label: self.qual_name(),
            file: self.file.clone(),
            line: self.item.line,
        }
    }
}

/// Whether a path is a test/bench/example target in its entirety.
pub fn is_test_target(path: &str) -> bool {
    path.starts_with("tests/")
        || path.starts_with("examples/")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
}

/// Whether a path is in the hot-path crates (`crates/core`, `crates/sim`).
pub fn is_hot_crate(path: &str) -> bool {
    path.starts_with("crates/core/") || path.starts_with("crates/sim/")
}

fn crate_of(path: &str) -> &str {
    match path
        .find('/')
        .and_then(|a| path[a + 1..].find('/').map(|b| &path[..a + 1 + b]))
    {
        Some(c) => c,
        None => path,
    }
}

/// The whole-workspace call graph.
pub struct Model {
    pub fns: Vec<FnNode>,
    /// Enum variants of interest (R9), with the file declaring them.
    pub variants: Vec<(String, VariantItem)>,
}

impl Model {
    /// Builds the model: type tables, summaries, and resolved edges.
    pub fn build(files: &[FileAnalysis]) -> Model {
        // Global item collections.
        let mut all_fields = Vec::new();
        let mut fns_src: Vec<(String, FnItem)> = Vec::new();
        let mut variants = Vec::new();
        for f in files {
            all_fields.extend(f.items.fields.iter().cloned());
            for item in &f.items.fns {
                fns_src.push((f.path.clone(), item.clone()));
            }
            for v in &f.items.variants {
                variants.push((f.path.clone(), v.clone()));
            }
        }
        let tables = TypeTables::build(&all_fields, &fns_src);

        // Summaries, per file so the summarizer sees the right tokens.
        let mut fns: Vec<FnNode> = Vec::new();
        for f in files {
            for item in &f.items.fns {
                let summary = Summarizer {
                    tokens: &f.lexed.tokens,
                    tables: &tables,
                    impl_type: item.impl_type.as_deref(),
                }
                .summarize(item);
                fns.push(FnNode {
                    file: f.path.clone(),
                    item: item.clone(),
                    summary,
                    resolved: Vec::new(),
                });
            }
        }

        // Resolution maps.
        let mut methods: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut frees: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, n) in fns.iter().enumerate() {
            match &n.item.impl_type {
                Some(t) => {
                    methods
                        .entry((t.clone(), n.item.name.clone()))
                        .or_default()
                        .push(i);
                }
                None => frees.entry(n.item.name.clone()).or_default().push(i),
            }
            by_name.entry(n.item.name.clone()).or_default().push(i);
        }

        let fn_files: Vec<String> = fns.iter().map(|n| n.file.clone()).collect();
        let pick = |cands: &[usize], caller_file: &str| -> Option<usize> {
            match cands.len() {
                0 => None,
                1 => Some(cands[0]),
                _ => {
                    let same: Vec<usize> = cands
                        .iter()
                        .copied()
                        .filter(|&c| crate_of(&fn_files[c]) == crate_of(caller_file))
                        .collect();
                    if same.len() == 1 {
                        Some(same[0])
                    } else {
                        None
                    }
                }
            }
        };

        for node in &mut fns {
            let mut resolved = Vec::with_capacity(node.summary.calls.len());
            for call in &node.summary.calls {
                let target = match &call.target {
                    CallTarget::Method {
                        recv: Some(ty),
                        name,
                    }
                    | CallTarget::Assoc { ty, name } => methods
                        .get(&(ty.clone(), name.clone()))
                        .and_then(|c| pick(c, &node.file)),
                    CallTarget::Method { recv: None, name } => {
                        if STD_COMMON.contains(&name.as_str()) {
                            None
                        } else {
                            match by_name.get(name) {
                                Some(c) if c.len() == 1 => Some(c[0]),
                                _ => None,
                            }
                        }
                    }
                    CallTarget::Free { name } => match frees.get(name) {
                        Some(c) if c.len() == 1 => Some(c[0]),
                        _ => None,
                    },
                };
                // A function never creates an edge to itself for rule
                // purposes via trivial recursion — keep the edge anyway;
                // BFS and the fixpoint are cycle-safe.
                resolved.push(target);
            }
            node.resolved = resolved;
        }

        Model { fns, variants }
    }

    /// A function is live analysis material (not test code).
    pub fn is_live(&self, i: usize) -> bool {
        !self.fns[i].item.in_test && !is_test_target(&self.fns[i].file)
    }

    /// Multi-source BFS from `roots`; returns per-node parent indices
    /// (`usize::MAX` for unreached, `i == parent[i]` for roots).
    pub fn reach_parents(&self, roots: &[usize]) -> Vec<usize> {
        let mut parent = vec![usize::MAX; self.fns.len()];
        let mut q = VecDeque::new();
        for &r in roots {
            if parent[r] == usize::MAX {
                parent[r] = r;
                q.push_back(r);
            }
        }
        while let Some(f) = q.pop_front() {
            for callee in self.fns[f].resolved.iter().flatten() {
                if parent[*callee] == usize::MAX {
                    parent[*callee] = f;
                    q.push_back(*callee);
                }
            }
        }
        parent
    }

    /// The call chain root → … → `i`, as report path steps.
    pub fn chain_to(&self, parent: &[usize], mut i: usize) -> Vec<PathStep> {
        let mut rev = vec![i];
        while parent[i] != i && parent[i] != usize::MAX {
            i = parent[i];
            rev.push(i);
        }
        rev.reverse();
        rev.iter().map(|&f| self.fns[f].path_step()).collect()
    }

    /// Transitive borrow sets: for each fn, every cell its call tree
    /// borrows (directly or through any callee). Cycle-safe fixpoint.
    pub fn transitive_borrows(&self) -> Vec<BTreeSet<String>> {
        let mut sets: Vec<BTreeSet<String>> = self
            .fns
            .iter()
            .map(|n| n.summary.borrows.iter().map(|b| b.cell.clone()).collect())
            .collect();
        loop {
            let mut changed = false;
            for i in 0..self.fns.len() {
                for callee in self.fns[i].resolved.iter().flatten() {
                    if *callee == i {
                        continue;
                    }
                    let add: Vec<String> = sets[*callee]
                        .iter()
                        .filter(|c| !sets[i].contains(*c))
                        .cloned()
                        .collect();
                    if !add.is_empty() {
                        changed = true;
                        sets[i].extend(add);
                    }
                }
            }
            if !changed {
                return sets;
            }
        }
    }

    /// Shortest chain from `start` to a fn that *directly* borrows `cell`
    /// (used to explain R7 findings). Returns path steps, ending with
    /// the borrowing function.
    pub fn borrow_chain(&self, start: usize, cell: &str) -> Vec<PathStep> {
        let mut parent = vec![usize::MAX; self.fns.len()];
        parent[start] = start;
        let mut q = VecDeque::from([start]);
        while let Some(f) = q.pop_front() {
            if self.fns[f].summary.borrows.iter().any(|b| b.cell == cell) {
                return self.chain_to(&parent, f);
            }
            for callee in self.fns[f].resolved.iter().flatten() {
                if parent[*callee] == usize::MAX {
                    parent[*callee] = f;
                    q.push_back(*callee);
                }
            }
        }
        vec![self.fns[start].path_step()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_of(files: &[(&str, &str)]) -> Model {
        let fas: Vec<FileAnalysis> = files.iter().map(|(p, s)| FileAnalysis::new(p, s)).collect();
        Model::build(&fas)
    }

    fn idx(m: &Model, name: &str) -> usize {
        m.fns
            .iter()
            .position(|n| n.item.name == name)
            .unwrap_or_else(|| panic!("fn {name} not found"))
    }

    #[test]
    fn method_receiver_resolution_creates_edges() {
        let m = model_of(&[(
            "crates/core/src/a.rs",
            r#"
            struct Guide { heap: Rc<RefCell<Heap>> }
            struct Heap { pages: Vec<u64> }
            impl Heap {
                fn live(&self) -> u64 { self.pages[0] }
            }
            impl Guide {
                fn pattern(&self) -> u64 { self.heap.borrow().live() }
            }
            "#,
        )]);
        let pattern = idx(&m, "pattern");
        let live = idx(&m, "live");
        assert_eq!(
            m.fns[pattern].resolved,
            vec![Some(live)],
            "borrow() peels the cell, `.live()` resolves on Heap"
        );
    }

    #[test]
    fn same_crate_definition_wins_on_type_name_clash() {
        let m = model_of(&[
            (
                "crates/core/src/a.rs",
                "struct W; impl W { fn go(&self) {} } fn core_user(w: W) { w.go(); }",
            ),
            (
                "crates/apps/src/b.rs",
                "struct W; impl W { fn go(&self) {} } fn app_user(w: W) { w.go(); }",
            ),
        ]);
        let cu = idx(&m, "core_user");
        let au = idx(&m, "app_user");
        let core_go = m
            .fns
            .iter()
            .position(|n| n.item.name == "go" && n.file.starts_with("crates/core/"))
            .unwrap();
        let app_go = m
            .fns
            .iter()
            .position(|n| n.item.name == "go" && n.file.starts_with("crates/apps/"))
            .unwrap();
        assert_eq!(m.fns[cu].resolved, vec![Some(core_go)]);
        assert_eq!(m.fns[au].resolved, vec![Some(app_go)]);
    }

    #[test]
    fn recursion_does_not_hang_closures() {
        let m = model_of(&[(
            "crates/core/src/a.rs",
            r#"
            struct C { cell: Rc<RefCell<Inner>> }
            struct Inner { n: u64 }
            impl C {
                fn even(&self, n: u64) -> bool { self.odd(n) }
                fn odd(&self, n: u64) -> bool { self.peek(); self.even(n) }
                fn peek(&self) { let g = self.cell.borrow(); }
            }
            "#,
        )]);
        let sets = m.transitive_borrows();
        let even = idx(&m, "even");
        assert!(
            sets[even].contains("Inner"),
            "mutual recursion still propagates borrow facts"
        );
        let parent = m.reach_parents(&[even]);
        assert_ne!(parent[idx(&m, "peek")], usize::MAX);
    }

    #[test]
    fn reach_reports_shortest_chain() {
        let m = model_of(&[(
            "crates/core/src/a.rs",
            r#"
            fn root() { mid(); deep1(); }
            fn mid() { sink(); }
            fn deep1() { deep2(); }
            fn deep2() { sink(); }
            fn sink() {}
            "#,
        )]);
        let parent = m.reach_parents(&[idx(&m, "root")]);
        let chain = m.chain_to(&parent, idx(&m, "sink"));
        assert_eq!(chain.len(), 3, "root -> mid -> sink, not the deep route");
        assert_eq!(chain[0].label, "root");
        assert_eq!(chain[1].label, "mid");
        assert_eq!(chain[2].label, "sink");
    }

    #[test]
    fn common_std_names_do_not_resolve_blind() {
        let m = model_of(&[(
            "crates/core/src/a.rs",
            r#"
            struct S { v: u64 }
            impl S { fn get(&self) -> u64 { self.v } }
            fn user(x: &Unknown) { x.get(); }
            "#,
        )]);
        let u = idx(&m, "user");
        assert_eq!(
            m.fns[u].resolved,
            vec![None],
            "blind `.get()` stays unresolved"
        );
    }
}
