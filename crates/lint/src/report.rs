//! Findings, the suppression ledger, and deterministic output.
//!
//! Reports are value types sorted by `(file, line, rule)` before any
//! rendering, and the JSON writer walks those sorted vectors — the linter
//! obeys its own no-hash-iteration rule, so two runs over the same tree
//! produce byte-identical output.

/// One step of an interprocedural call path.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PathStep {
    /// `Type::fn` or `fn`.
    pub label: String,
    /// Workspace-relative path of the function's file.
    pub file: String,
    /// 1-indexed declaration line.
    pub line: u32,
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-indexed line of the offending token.
    pub line: u32,
    /// Short rule id: `R1`..`R10`.
    pub rule: &'static str,
    /// Rule slug: `no-wall-clock`, `transitive-panic-freedom`, ...
    pub id: &'static str,
    /// Human explanation of this site.
    pub message: String,
    /// For interprocedural findings (R6/R7): the offending call chain,
    /// outermost caller first. Empty for single-site findings.
    pub path: Vec<PathStep>,
}

/// One `// dilos-lint: allow(<rule>, "<reason>")` directive.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Suppression {
    pub file: String,
    /// Line the directive sits on; it covers this line and the next.
    pub line: u32,
    /// The rule slug it names.
    pub id: String,
    /// The quoted justification (empty if none was given).
    pub reason: String,
    /// Whether it actually shielded a violation.
    pub used: bool,
}

/// The outcome of scanning a tree (or a single virtual file).
#[derive(Debug, Default, Clone)]
pub struct Report {
    pub violations: Vec<Violation>,
    pub suppressions: Vec<Suppression>,
    pub files_scanned: usize,
}

impl Report {
    /// Canonical order: `(file, line, rule)` for violations, `(file, line)`
    /// for the ledger. Every renderer calls this first.
    pub fn sort(&mut self) {
        self.violations
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        self.suppressions
            .sort_by(|a, b| (&a.file, a.line, &a.id).cmp(&(&b.file, b.line, &b.id)));
    }

    /// Merges another file's findings into this report.
    pub fn absorb(&mut self, other: Report) {
        self.violations.extend(other.violations);
        self.suppressions.extend(other.suppressions);
        self.files_scanned += other.files_scanned;
    }

    /// Machine-readable JSON (hand-rolled — no registry dependencies).
    pub fn to_json(&self) -> String {
        let mut sorted = self.clone();
        sorted.sort();
        let mut s = String::new();
        s.push_str("{\n  \"files_scanned\": ");
        s.push_str(&sorted.files_scanned.to_string());
        s.push_str(",\n  \"violations\": [");
        for (i, v) in sorted.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {\"rule\": ");
            json_str(&mut s, v.rule);
            s.push_str(", \"id\": ");
            json_str(&mut s, v.id);
            s.push_str(", \"file\": ");
            json_str(&mut s, &v.file);
            s.push_str(", \"line\": ");
            s.push_str(&v.line.to_string());
            s.push_str(", \"message\": ");
            json_str(&mut s, &v.message);
            s.push_str(", \"path\": [");
            for (k, p) in v.path.iter().enumerate() {
                if k > 0 {
                    s.push_str(", ");
                }
                s.push_str("{\"label\": ");
                json_str(&mut s, &p.label);
                s.push_str(", \"file\": ");
                json_str(&mut s, &p.file);
                s.push_str(", \"line\": ");
                s.push_str(&p.line.to_string());
                s.push('}');
            }
            s.push_str("]}");
        }
        if !sorted.violations.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n  \"suppressions\": [");
        for (i, sp) in sorted.suppressions.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {\"id\": ");
            json_str(&mut s, &sp.id);
            s.push_str(", \"file\": ");
            json_str(&mut s, &sp.file);
            s.push_str(", \"line\": ");
            s.push_str(&sp.line.to_string());
            s.push_str(", \"reason\": ");
            json_str(&mut s, &sp.reason);
            s.push_str(", \"used\": ");
            s.push_str(if sp.used { "true" } else { "false" });
            s.push('}');
        }
        if !sorted.suppressions.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// Human-readable rendering: violations first, then the ledger.
    pub fn to_human(&self) -> String {
        let mut sorted = self.clone();
        sorted.sort();
        let mut s = String::new();
        if sorted.violations.is_empty() {
            s.push_str(&format!(
                "dilos-lint: clean — {} files scanned, 0 violations\n",
                sorted.files_scanned
            ));
        } else {
            for v in &sorted.violations {
                s.push_str(&format!(
                    "{}:{}: [{} {}] {}\n",
                    v.file, v.line, v.rule, v.id, v.message
                ));
                for p in &v.path {
                    s.push_str(&format!("    via {} ({}:{})\n", p.label, p.file, p.line));
                }
            }
            s.push_str(&format!(
                "dilos-lint: {} violation(s) across {} files scanned\n",
                sorted.violations.len(),
                sorted.files_scanned
            ));
        }
        if !sorted.suppressions.is_empty() {
            s.push_str(&format!(
                "suppression ledger ({} entries):\n",
                sorted.suppressions.len()
            ));
            for sp in &sorted.suppressions {
                s.push_str(&format!(
                    "  {}:{}: allow({}) {} — \"{}\"\n",
                    sp.file,
                    sp.line,
                    sp.id,
                    if sp.used { "[used]" } else { "[UNUSED]" },
                    sp.reason
                ));
            }
        }
        s
    }
}

/// Appends `v` to `out` as a JSON string literal.
fn json_str(out: &mut String, v: &str) {
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_sorted_and_escaped() {
        let mut r = Report {
            files_scanned: 2,
            ..Default::default()
        };
        r.violations.push(Violation {
            file: "b.rs".into(),
            line: 9,
            rule: "R1",
            id: "no-wall-clock",
            message: "say \"no\"".into(),
            path: vec![],
        });
        r.violations.push(Violation {
            file: "a.rs".into(),
            line: 3,
            rule: "R3",
            id: "no-unwrap-in-hot-path",
            message: "x".into(),
            path: vec![PathStep {
                label: "Node::fault".into(),
                file: "c.rs".into(),
                line: 1,
            }],
        });
        let j = r.to_json();
        let a = j.find("a.rs").unwrap();
        let b = j.find("b.rs").unwrap();
        assert!(a < b, "violations must sort by file");
        assert!(j.contains("say \\\"no\\\""));
    }

    #[test]
    fn empty_report_renders_clean() {
        let r = Report {
            files_scanned: 5,
            ..Default::default()
        };
        assert!(r.to_human().contains("clean"));
        assert!(r.to_json().contains("\"violations\": []"));
    }
}
