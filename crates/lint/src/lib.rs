//! `dilos-lint`: registry-free determinism & simulation-hygiene static
//! analysis for the DiLOS workspace.
//!
//! The whole reproduction rests on one property: the simulator is
//! deterministic, so same-seed runs produce identical trace digests and
//! the paper orderings in `results/` are reproducible facts. That property
//! is checked dynamically by `tests/determinism.rs`; this crate enforces
//! it *statically*, so the bug classes that break it (wall-clock reads,
//! hash-order iteration, hot-path panics, stale trace timestamps, ambient
//! randomness) cannot be reintroduced silently.
//!
//! Ten named rules (see [`rules::RULES`]). R1–R5 are token-level and
//! per-file; R6–R10 (the v2 families) are *interprocedural*: a
//! hand-rolled item parser ([`parser`]) feeds per-function effect
//! summaries ([`summary`]) into a crate-wide call graph ([`graph`]), and
//! the rules in [`rules2`] walk its closures.
//!
//! | rule | slug | invariant it protects |
//! |------|------|-----------------------|
//! | R1 | `no-wall-clock` | virtual time only — `Instant`/`SystemTime` banned outside `crates/criterion`/`crates/bench` |
//! | R2 | `no-hash-iteration` | digest/trace/audit/stats order — no `HashMap`/`HashSet` iteration in the deterministic core |
//! | R3 | `no-unwrap-in-hot-path` | survivability — no `unwrap`/`expect`/`panic!` in `crates/core`/`crates/sim` non-test code |
//! | R4 | `calendar-time-only` | trace fidelity — `TraceSink::emit` times come from the live clock |
//! | R5 | `no-ambient-rand` | reproducibility — randomness only via `dilos_sim::rng` seeded streams |
//! | R6 | `transitive-panic-freedom` | survivability — hot-path fns must not *reach* a panic site through any call chain |
//! | R7 | `refcell-borrow-overlap` | no runtime `BorrowMutError` — a live `borrow_mut()` may not span a call that re-borrows the same cell |
//! | R8 | `ns-arithmetic-safety` | no silent time wraparound — `+`/`*` on `Ns` in sched/fabric/rdma/timeline must be `saturating_`/`checked_` |
//! | R9 | `trace-event-coverage` | observability — every `TraceEvent`/`SchedEvent` variant is emitted *and* consumed |
//! | R10 | `schedule-time-monotonicity` | calendar sanity — `schedule(...)` times derive from `now`, never literals or host clocks |
//!
//! Sites that are individually justified carry an inline suppression:
//!
//! ```text
//! // dilos-lint: allow(no-unwrap-in-hot-path, "mode invariant: checked at dispatch")
//! ```
//!
//! which shields the same line and the next, and is itself counted in the
//! report's suppression ledger (unused suppressions are called out).
//!
//! Like the vendored `crates/proptest` shim, this crate has **zero
//! registry dependencies**: the tokenizer, rule engine, and JSON writer
//! are all hand-rolled.

#![forbid(unsafe_code)]

pub mod graph;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod rules2;
pub mod sarif;
pub mod summary;

pub use report::{PathStep, Report, Suppression, Violation};
pub use rules::{lint_source, Scope, RULES};

use graph::{FileAnalysis, Model};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Lints a set of files *together*: per-file token rules first, then the
/// interprocedural families over the crate-wide call graph.
///
/// This is the real entry point — [`lint_source`] and [`scan_workspace`]
/// both route through it. Inputs are `(workspace-relative path, source)`
/// pairs; the report is sorted and suppression-filtered.
pub fn lint_files(inputs: &[(String, String)]) -> Report {
    let mut violations = Vec::new();
    let mut suppressions = Vec::new();
    let mut files = Vec::with_capacity(inputs.len());
    for (path, src) in inputs {
        let fa = FileAnalysis::new(path, src);
        rules::run_intra(path, &fa.lexed.tokens, &mut violations);
        suppressions.extend(rules::parse_suppressions(path, &fa.lexed.comments));
        files.push(fa);
    }
    let model = Model::build(&files);
    rules2::rule_transitive_panic(&model, &mut violations);
    rules2::rule_borrow_overlap(&model, &mut violations);
    rules2::rule_event_coverage(&files, &model, &mut violations);
    let mut report = Report {
        violations: rules::apply_suppressions(violations, &mut suppressions),
        suppressions,
        files_scanned: inputs.len(),
    };
    report.sort();
    report
}

/// Directories never scanned (build output, VCS, and the deliberately
/// violating lint fixtures).
const SKIP_DIRS: [&str; 3] = ["target", ".git", "node_modules"];

/// Path suffix of the fixture corpus: every file there violates a rule on
/// purpose, so the tree scan must not see them.
const FIXTURE_DIR: &str = "crates/lint/tests/fixtures";

/// Scans every `.rs` file under `root` (a workspace checkout) and returns
/// the merged, sorted report.
///
/// Traversal order is deterministic (directory entries sorted by name), so
/// two scans of the same tree produce byte-identical reports.
pub fn scan_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut inputs = Vec::with_capacity(files.len());
    for rel in files {
        let src = fs::read_to_string(root.join(&rel))?;
        let rel_str = rel
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        inputs.push((rel_str, src));
    }
    Ok(lint_files(&inputs))
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let Ok(rel) = path.strip_prefix(root) else {
            continue;
        };
        let rel_str = rel
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        if path.is_dir() {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            // Hidden directories (`.git`, editor state, tooling snapshots)
            // are never part of the workspace source tree.
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_str()) || rel_str == FIXTURE_DIR
            {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if rel_str.ends_with(".rs") {
            out.push(rel.to_path_buf());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_table_matches_design() {
        let core = Scope::for_path("crates/core/src/node.rs");
        assert!(core.r1 && core.r2 && core.r3 && core.r4 && core.r5);
        let bench = Scope::for_path("crates/bench/src/bin/repro.rs");
        assert!(!bench.r1 && !bench.r4 && bench.r5);
        let criterion = Scope::for_path("crates/criterion/src/lib.rs");
        assert!(!criterion.r1);
        let baseline = Scope::for_path("crates/baselines/src/aifm.rs");
        assert!(baseline.r2 && !baseline.r3);
        let sim_test = Scope::for_path("crates/sim/tests/sim_properties.rs");
        assert!(!sim_test.r2 && !sim_test.r3, "test targets are test code");
        let app = Scope::for_path("crates/apps/src/redis/server.rs");
        assert!(!app.r2 && !app.r3 && app.r1);
    }

    #[test]
    fn suppression_shields_next_line_and_lands_in_ledger() {
        let src = "\
// dilos-lint: allow(no-wall-clock, \"host timing by design\")
let t = Instant::now();
let u = Instant::now();
";
        let r = lint_source("crates/sim/src/x.rs", src);
        assert_eq!(r.violations.len(), 1, "only the unshielded line remains");
        assert_eq!(r.violations[0].line, 3);
        assert_eq!(r.suppressions.len(), 1);
        assert!(r.suppressions[0].used);
        assert_eq!(r.suppressions[0].reason, "host timing by design");
    }

    #[test]
    fn unused_suppression_is_reported_unused() {
        let src = "// dilos-lint: allow(no-ambient-rand, \"nothing here\")\nlet x = 1;\n";
        let r = lint_source("crates/sim/src/x.rs", src);
        assert!(r.violations.is_empty());
        assert_eq!(r.suppressions.len(), 1);
        assert!(!r.suppressions[0].used);
    }
}
