//! A hand-rolled, comment/string/raw-string-aware Rust tokenizer.
//!
//! The analyzer must never mistake the word `unwrap` inside a doc comment,
//! a string literal, or a `# Panics` section for a call site, so the lexer
//! classifies every byte of the source before any rule runs. It is not a
//! full Rust lexer — it only distinguishes the shapes the rules care
//! about: identifiers, punctuation, integer literals, string/char
//! literals, lifetimes, and comments (kept separately, because inline
//! `dilos-lint: allow(...)` suppressions live in them).

/// What a token is, as far as the rules need to know.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `for`, `unwrap`, ...).
    Ident(String),
    /// A single punctuation byte (`.`, `(`, `{`, `!`, ...).
    Punct(char),
    /// An integer or float literal (value irrelevant to the rules).
    Number,
    /// A string, byte-string, or raw-string literal.
    Str,
    /// A character literal (`'x'`, `'\n'`).
    Char,
    /// A lifetime (`'a`) — distinct from `Char` so `&'a self` never looks
    /// like an unterminated character literal.
    Lifetime,
}

/// One token with its source position and test-scope classification.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    /// 1-indexed source line.
    pub line: u32,
    /// True when the token sits inside `#[cfg(test)]` / `#[test]` scope.
    pub in_test: bool,
}

/// One `//` or `/* */` comment, with the line it starts on.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// A fully lexed file: code tokens (test-scope marked) plus comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Lexes `src`, then marks test scopes (`#[cfg(test)]`/`#[test]` blocks).
pub fn lex(src: &str) -> Lexed {
    let mut lexed = raw_lex(src);
    mark_test_scopes(&mut lexed.tokens);
    lexed
}

fn raw_lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: src[start..i].to_string(),
                });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    line: start_line,
                    text: src[start..i].to_string(),
                });
            }
            b'"' => {
                let start_line = line;
                i = skip_string(b, i + 1, &mut line);
                out.tokens.push(Token {
                    kind: TokKind::Str,
                    line: start_line,
                    in_test: false,
                });
            }
            b'r' | b'b' if starts_raw_or_byte_string(b, i) => {
                let start_line = line;
                i = skip_raw_or_byte_string(b, i, &mut line);
                out.tokens.push(Token {
                    kind: TokKind::Str,
                    line: start_line,
                    in_test: false,
                });
            }
            b'\'' => {
                // Lifetime (`'a`, `'static`) vs char literal (`'x'`, `'\n'`).
                let mut j = i + 1;
                if j < b.len() && (b[j] == b'\\' || b[j] != b'\'') {
                    // Scan a short run: a lifetime is ident bytes NOT
                    // followed by a closing quote.
                    let ident_start = j;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    if j > ident_start && (j >= b.len() || b[j] != b'\'') {
                        out.tokens.push(Token {
                            kind: TokKind::Lifetime,
                            line,
                            in_test: false,
                        });
                        i = j;
                        continue;
                    }
                }
                // Char literal: consume to the closing quote, honoring `\`.
                let mut j = i + 1;
                while j < b.len() && b[j] != b'\'' {
                    if b[j] == b'\\' {
                        j += 1;
                    }
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Char,
                    line,
                    in_test: false,
                });
                i = (j + 1).min(b.len());
            }
            _ if c.is_ascii_digit() => {
                // Floats lex as Number Punct('.') Number — the rules only
                // care that these bytes are not identifiers.
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Number,
                    line,
                    in_test: false,
                });
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident(src[start..i].to_string()),
                    line,
                    in_test: false,
                });
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokKind::Punct(c as char),
                    line,
                    in_test: false,
                });
                i += 1;
            }
        }
    }
    out
}

/// Whether position `i` starts `r"`, `r#"`, `b"`, `br"`, or `br#"`.
fn starts_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'r' {
        j += 1;
        while j < b.len() && b[j] == b'#' {
            j += 1;
        }
        return j < b.len() && b[j] == b'"';
    }
    // Plain byte string `b"..."`.
    b[i] == b'b' && j < b.len() && b[j] == b'"'
}

/// Skips past a plain (escaped) string body; `i` points after the opening
/// quote. Returns the index after the closing quote.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw/byte string starting at `i` (at the `r`/`b`). Returns the
/// index after the closing delimiter.
fn skip_raw_or_byte_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    if b[i] == b'b' {
        i += 1;
    }
    if i < b.len() && b[i] == b'r' {
        i += 1;
        let mut hashes = 0usize;
        while i < b.len() && b[i] == b'#' {
            hashes += 1;
            i += 1;
        }
        i += 1; // opening quote
        while i < b.len() {
            if b[i] == b'\n' {
                *line += 1;
                i += 1;
            } else if b[i] == b'"' {
                let mut j = i + 1;
                let mut seen = 0usize;
                while j < b.len() && b[j] == b'#' && seen < hashes {
                    seen += 1;
                    j += 1;
                }
                if seen == hashes {
                    return j;
                }
                i += 1;
            } else {
                i += 1;
            }
        }
        i
    } else {
        // `b"..."`: same escape rules as a plain string.
        skip_string(b, i + 1, line)
    }
}

/// Marks every token inside `#[cfg(test)]` / `#[test]`-attributed items.
///
/// Heuristic, not a parser: when an attribute's tokens contain the
/// identifier `test` (not negated via `not(test)`), the next braced block
/// — the attributed `mod` or `fn` body — is marked, nested braces
/// included. An attributed item that ends in `;` before any `{` (e.g.
/// `#[cfg(test)] use foo;`) clears the mark.
fn mark_test_scopes(tokens: &mut [Token]) {
    let mut depth: i32 = 0;
    // Depths at which a test region closes (stack of open test braces).
    let mut test_close: Vec<i32> = Vec::new();
    let mut pending_test_attr = false;
    let mut i = 0usize;
    while i < tokens.len() {
        // Attribute detection: `#` `[` ... `]` (outer) or `#` `!` `[` ... `]`.
        if tokens[i].kind == TokKind::Punct('#') {
            let mut j = i + 1;
            if j < tokens.len() && tokens[j].kind == TokKind::Punct('!') {
                j += 1;
            }
            if j < tokens.len() && tokens[j].kind == TokKind::Punct('[') {
                let mut brack = 1i32;
                let mut k = j + 1;
                let mut has_test = false;
                let mut prev_ident: Option<&str> = None;
                while k < tokens.len() && brack > 0 {
                    match &tokens[k].kind {
                        TokKind::Punct('[') => brack += 1,
                        TokKind::Punct(']') => brack -= 1,
                        TokKind::Ident(s) => {
                            if s == "test" && prev_ident != Some("not") {
                                has_test = true;
                            }
                            prev_ident = Some(s);
                        }
                        _ => {}
                    }
                    k += 1;
                }
                if has_test {
                    pending_test_attr = true;
                }
                // Attribute tokens themselves inherit the current scope.
                let in_test = !test_close.is_empty();
                for t in &mut tokens[i..k] {
                    t.in_test = t.in_test || in_test || has_test;
                }
                i = k;
                continue;
            }
        }
        match tokens[i].kind {
            TokKind::Punct('{') => {
                depth += 1;
                if pending_test_attr {
                    test_close.push(depth);
                    pending_test_attr = false;
                }
            }
            TokKind::Punct('}') => {
                if test_close.last() == Some(&depth) {
                    test_close.pop();
                }
                depth -= 1;
            }
            TokKind::Punct(';') if pending_test_attr && test_close.is_empty() => {
                // `#[cfg(test)] use ...;` — no body to mark.
                pending_test_attr = false;
            }
            _ => {}
        }
        tokens[i].in_test = tokens[i].in_test || !test_close.is_empty() || pending_test_attr;
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_identifiers() {
        let src = r##"
            // Instant::now in a comment
            /* unwrap() in a block /* nested */ comment */
            let s = "SystemTime inside a string";
            let r = r#"panic! inside a raw "string""#;
            let ok = 1;
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"ok".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x'; let n = '\\n';";
        let l = lex(src);
        let lifetimes = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = l.tokens.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 3);
        assert_eq!(chars, 2);
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src = r#"
            fn hot() { let x = map.get(&k); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { map.get(&k).unwrap(); }
            }
        "#;
        let l = lex(src);
        for t in &l.tokens {
            if let TokKind::Ident(s) = &t.kind {
                if s == "unwrap" {
                    assert!(t.in_test, "unwrap inside #[cfg(test)] must be test-scoped");
                }
                if s == "hot" {
                    assert!(!t.in_test);
                }
            }
        }
    }

    #[test]
    fn cfg_not_test_is_not_marked() {
        let src = "#[cfg(not(test))] fn live() { x.unwrap(); }";
        let l = lex(src);
        for t in &l.tokens {
            if let TokKind::Ident(s) = &t.kind {
                if s == "unwrap" {
                    assert!(!t.in_test, "not(test) must stay live code");
                }
            }
        }
    }

    #[test]
    fn test_attr_on_use_does_not_leak() {
        let src = "#[cfg(test)] use foo::bar; fn live() { x.unwrap(); }";
        let l = lex(src);
        for t in &l.tokens {
            if let TokKind::Ident(s) = &t.kind {
                if s == "unwrap" {
                    assert!(!t.in_test);
                }
            }
        }
    }

    #[test]
    fn comment_text_is_captured_with_line() {
        let src = "let a = 1;\n// dilos-lint: allow(no-wall-clock, \"why\")\nlet b = 2;\n";
        let l = lex(src);
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].line, 2);
        assert!(l.comments[0].text.contains("dilos-lint"));
    }
}
