//! Intraprocedural effect summaries: what one function *does*.
//!
//! For every parsed function body this module extracts the facts the
//! interprocedural rules consume:
//!
//! - **call sites** — method calls with a resolved receiver type where the
//!   local type environment allows it (`self` fields, typed params/lets,
//!   chained field access through `Rc<RefCell<...>>` peeling), associated
//!   calls (`Type::new`), and free calls;
//! - **panic sites** — `unwrap`/`expect`, `panic!`-family macros, and
//!   dynamic (non-literal) indexing, i.e. everything rule R6 treats as a
//!   transitive panic sink;
//! - **borrow sites** — `.borrow()`/`.borrow_mut()` on identified
//!   `RefCell` cells, keyed by the cell's *inner type* so aliased handles
//!   (two structs holding clones of one `Rc<RefCell<RdmaEndpoint>>`)
//!   conflate to the same cell;
//! - **mutable borrow spans** — the extent of each live `borrow_mut()`
//!   (a `let` guard lives to the end of its block or an explicit `drop`,
//!   a temporary to the end of its statement) together with every call
//!   and same-cell borrow that happens inside it, which is exactly what
//!   rule R7 needs.
//!
//! Resolution is deliberately conservative: a receiver whose type cannot
//! be derived stays `None`, and the call-graph layer only creates an edge
//! for it when the method name is globally unambiguous (and not a common
//! std name). A missed edge weakens a rule; a wrong edge fabricates a
//! violation — the design prefers the former.

use crate::lexer::{TokKind, Token};
use crate::parser::{peel_type, skip_group, FieldItem, FnItem};
use std::collections::BTreeMap;

/// Methods that preserve the receiver type (and its `RefCell`-ness) when
/// chained through.
const PASSTHROUGH: [&str; 4] = ["clone", "to_owned", "as_ref", "as_mut"];

/// Keywords that must never be read as call or receiver names.
const KEYWORDS: [&str; 22] = [
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "as", "in",
    "let", "mut", "move", "ref", "fn", "impl", "pub", "use", "mod", "where", "dyn",
];

/// A resolved-enough call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallTarget {
    /// `recv.name(...)` — receiver type known when `recv` is `Some`.
    Method { recv: Option<String>, name: String },
    /// `Type::name(...)`.
    Assoc { ty: String, name: String },
    /// `name(...)` or `module::name(...)`.
    Free { name: String },
}

#[derive(Debug, Clone)]
pub struct CallSite {
    pub line: u32,
    pub target: CallTarget,
}

/// A direct panic sink: what rule R6 propagates backwards.
#[derive(Debug, Clone)]
pub struct PanicSite {
    pub line: u32,
    /// `unwrap`, `expect`, `panic!`, `unreachable!`, `todo!`,
    /// `unimplemented!`, or `index` (dynamic `xs[i]`).
    pub what: &'static str,
}

/// A direct `.borrow()`/`.borrow_mut()` on an identified cell.
#[derive(Debug, Clone)]
pub struct BorrowSite {
    /// Inner type of the `RefCell` (cell identity).
    pub cell: String,
    pub line: u32,
    pub mutable: bool,
}

/// The extent of one live `borrow_mut()` guard.
#[derive(Debug, Clone)]
pub struct MutSpan {
    pub cell: String,
    /// Line the `borrow_mut()` happens on.
    pub line: u32,
    /// Indices into [`FnSummary::calls`] made while the guard is live.
    pub calls: Vec<usize>,
    /// Indices into [`FnSummary::borrows`] of *same-cell* borrows taken
    /// while the guard is live (a guaranteed `BorrowError` panic).
    pub overlaps: Vec<usize>,
}

/// Everything the interprocedural rules need to know about one function.
#[derive(Debug, Clone, Default)]
pub struct FnSummary {
    pub calls: Vec<CallSite>,
    pub panics: Vec<PanicSite>,
    pub borrows: Vec<BorrowSite>,
    pub spans: Vec<MutSpan>,
}

/// Cross-file type facts the summarizer resolves chains against.
#[derive(Debug, Default)]
pub struct TypeTables {
    /// `owner -> field -> (peeled type, crossed RefCell)`.
    pub fields: BTreeMap<String, BTreeMap<String, (String, bool)>>,
    /// `(type, method) -> (peeled return type, return crosses RefCell)`.
    pub method_ret: BTreeMap<(String, String), (String, bool)>,
    /// `free fn name -> (peeled return type, crosses RefCell)` (only kept
    /// when the name is unique among free fns).
    pub free_ret: BTreeMap<String, (String, bool)>,
}

impl TypeTables {
    /// Builds the tables from every file's parsed items.
    pub fn build(all_fields: &[FieldItem], all_fns: &[(String, FnItem)]) -> TypeTables {
        let mut t = TypeTables::default();
        for f in all_fields {
            t.fields
                .entry(f.owner.clone())
                .or_default()
                .insert(f.name.clone(), (f.ty.clone(), f.ref_cell));
        }
        let mut free_seen: BTreeMap<String, u32> = BTreeMap::new();
        for (_, f) in all_fns {
            let ret = (f.ret.clone(), false);
            match &f.impl_type {
                Some(ty) => {
                    t.method_ret
                        .entry((ty.clone(), f.name.clone()))
                        .or_insert(ret);
                }
                None => {
                    *free_seen.entry(f.name.clone()).or_insert(0) += 1;
                    t.free_ret.entry(f.name.clone()).or_insert(ret);
                }
            }
        }
        for (name, n) in free_seen {
            if n > 1 {
                t.free_ret.remove(&name);
            }
        }
        t
    }
}

/// One backward-collected receiver-chain segment.
enum Seg {
    /// A plain name (`self`, a local, a field).
    Name(String),
    /// A call segment `name(...)`.
    Call(String),
    /// An `Assoc` base: `Type::name(...)`.
    TypeCall(String, String),
    /// An index `[...]` (type-preserving thanks to `Vec` peeling).
    Index,
    /// Something the resolver cannot follow.
    Opaque,
}

fn is_upper(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(tokens: &[Token], i: usize, c: char) -> bool {
    matches!(tokens.get(i).map(|t| &t.kind), Some(TokKind::Punct(p)) if *p == c)
}

/// Finds the opening index of the group whose closer sits at `close`.
fn open_of(tokens: &[Token], close: usize, o: char, c: char) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = close;
    loop {
        match &tokens[i].kind {
            TokKind::Punct(p) if *p == c => depth += 1,
            TokKind::Punct(p) if *p == o => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
        if i == 0 {
            return None;
        }
        i -= 1;
    }
}

/// Extracts effect summaries for one function body.
pub struct Summarizer<'a> {
    pub tokens: &'a [Token],
    pub tables: &'a TypeTables,
    pub impl_type: Option<&'a str>,
}

impl<'a> Summarizer<'a> {
    /// Walks `item`'s body and produces its summary.
    pub fn summarize(&self, item: &FnItem) -> FnSummary {
        let mut s = FnSummary::default();
        // Local type environment: name -> (peeled ty, is RefCell handle).
        let mut env: BTreeMap<String, (String, bool)> = BTreeMap::new();
        for p in &item.params {
            if !p.ty.is_empty() {
                env.insert(p.name.clone(), (p.ty.clone(), p.ref_cell));
            }
        }
        // Open borrow_mut spans: (cell, line, guard name, open depth,
        // temporary?, call idxs, overlap idxs).
        struct Open {
            cell: String,
            line: u32,
            guard: Option<String>,
            depth: i32,
            calls: Vec<usize>,
            overlaps: Vec<usize>,
        }
        let mut open: Vec<Open> = Vec::new();
        let mut depth = 0i32;
        // Set while scanning a `let g = ....borrow_mut()` statement: the
        // binding that should become a guard rather than a temporary.
        let mut pending_guard: Option<String> = None;
        let toks = self.tokens;
        let close_span = |o: Open, s: &mut FnSummary| {
            s.spans.push(MutSpan {
                cell: o.cell,
                line: o.line,
                calls: o.calls,
                overlaps: o.overlaps,
            });
        };

        let mut i = item.body.start;
        while i < item.body.end {
            match &toks[i].kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    // Guards die with their block; temporaries can never
                    // outlive it either.
                    while let Some(pos) = open.iter().position(|o| o.depth > depth) {
                        close_span(open.remove(pos), &mut s);
                    }
                }
                TokKind::Punct(';') => {
                    pending_guard = None;
                    while let Some(pos) = open
                        .iter()
                        .position(|o| o.guard.is_none() && o.depth >= depth)
                    {
                        close_span(open.remove(pos), &mut s);
                    }
                }
                TokKind::Punct('[')
                    if !toks[i].in_test && self.indexes_dynamically(i, item.body.end) =>
                {
                    s.panics.push(PanicSite {
                        line: toks[i].line,
                        what: "index",
                    });
                }
                TokKind::Ident(w) if w == "let" => {
                    if let Some((name, Some((ty, rc, guard)))) =
                        self.infer_let(i, item.body.end, &env)
                    {
                        if guard {
                            pending_guard = Some(name.clone());
                        }
                        env.insert(name, (ty, rc));
                    }
                }
                TokKind::Ident(w) if w == "drop" && punct_at(toks, i + 1, '(') => {
                    if let Some(g) = ident_at(toks, i + 2) {
                        if punct_at(toks, i + 3, ')') {
                            while let Some(pos) =
                                open.iter().position(|o| o.guard.as_deref() == Some(g))
                            {
                                close_span(open.remove(pos), &mut s);
                            }
                        }
                    }
                }
                TokKind::Ident(w)
                    if !toks[i].in_test
                        && matches!(
                            w.as_str(),
                            "panic" | "unreachable" | "todo" | "unimplemented"
                        )
                        && punct_at(toks, i + 1, '!') =>
                {
                    let what = match w.as_str() {
                        "panic" => "panic!",
                        "unreachable" => "unreachable!",
                        "todo" => "todo!",
                        _ => "unimplemented!",
                    };
                    s.panics.push(PanicSite {
                        line: toks[i].line,
                        what,
                    });
                }
                TokKind::Ident(name)
                    if !toks[i].in_test
                        && punct_at(toks, i + 1, '(')
                        && !KEYWORDS.contains(&name.as_str()) =>
                {
                    let line = toks[i].line;
                    // Classify by what precedes the name.
                    if i > item.body.start && punct_at(toks, i - 1, '.') {
                        let (rty, rc) = self.resolve_recv(i - 1, item.body.start, &env);
                        if rc && (name == "borrow" || name == "borrow_mut") {
                            if let Some(cell) = rty {
                                let b_idx = s.borrows.len();
                                s.borrows.push(BorrowSite {
                                    cell: cell.clone(),
                                    line,
                                    mutable: name == "borrow_mut",
                                });
                                for o in open.iter_mut() {
                                    if o.cell == cell {
                                        o.overlaps.push(b_idx);
                                    }
                                }
                                if name == "borrow_mut" {
                                    open.push(Open {
                                        cell,
                                        line,
                                        guard: pending_guard.take(),
                                        depth,
                                        calls: Vec::new(),
                                        overlaps: Vec::new(),
                                    });
                                }
                            }
                        } else if name == "unwrap" || name == "expect" {
                            s.panics.push(PanicSite {
                                line,
                                what: if name == "unwrap" { "unwrap" } else { "expect" },
                            });
                        } else if !PASSTHROUGH.contains(&name.as_str()) || rty.is_some() {
                            let c_idx = s.calls.len();
                            s.calls.push(CallSite {
                                line,
                                target: CallTarget::Method {
                                    recv: rty,
                                    name: name.clone(),
                                },
                            });
                            for o in open.iter_mut() {
                                o.calls.push(c_idx);
                            }
                        }
                    } else if i >= 2 && punct_at(toks, i - 1, ':') && punct_at(toks, i - 2, ':') {
                        if let Some(head) = ident_at(toks, i.wrapping_sub(3)) {
                            if is_upper(name) {
                                // `Type::Variant(...)` — construction, not
                                // a call edge.
                            } else if is_upper(head) || head == "Self" {
                                let ty = if head == "Self" {
                                    self.impl_type.unwrap_or("Self").to_string()
                                } else {
                                    head.to_string()
                                };
                                let c_idx = s.calls.len();
                                s.calls.push(CallSite {
                                    line,
                                    target: CallTarget::Assoc {
                                        ty,
                                        name: name.clone(),
                                    },
                                });
                                for o in open.iter_mut() {
                                    o.calls.push(c_idx);
                                }
                            } else {
                                // `module::free(...)`.
                                let c_idx = s.calls.len();
                                s.calls.push(CallSite {
                                    line,
                                    target: CallTarget::Free { name: name.clone() },
                                });
                                for o in open.iter_mut() {
                                    o.calls.push(c_idx);
                                }
                            }
                        }
                    } else if !is_upper(name) {
                        // Bare `free(...)` (tuple-struct constructors are
                        // capitalized and skipped).
                        let c_idx = s.calls.len();
                        s.calls.push(CallSite {
                            line,
                            target: CallTarget::Free { name: name.clone() },
                        });
                        for o in open.iter_mut() {
                            o.calls.push(c_idx);
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
        while let Some(o) = open.pop() {
            close_span(o, &mut s);
        }
        s
    }

    /// True when the `[` at `i` is a dynamic index expression: preceded by
    /// a value (ident/`)`/`]`, not a keyword, macro bang, or attribute)
    /// and containing at least one identifier.
    fn indexes_dynamically(&self, i: usize, end: usize) -> bool {
        let toks = self.tokens;
        let prev_ok = if i == 0 {
            false
        } else {
            match &toks[i - 1].kind {
                TokKind::Ident(s) => !KEYWORDS.contains(&s.as_str()),
                TokKind::Punct(')') | TokKind::Punct(']') => true,
                _ => false,
            }
        };
        if !prev_ok {
            return false;
        }
        let Some(close) = skip_group(toks, i) else {
            return false;
        };
        let close = close.min(end);
        toks[i + 1..close.saturating_sub(1)]
            .iter()
            .any(|t| matches!(&t.kind, TokKind::Ident(_)))
    }

    /// Lookahead over a `let` statement starting at the `let` keyword.
    /// Returns `(binding name, Some((ty, refcell, opens_guard)))` when the
    /// binding's type can be inferred.
    #[allow(clippy::type_complexity)]
    fn infer_let(
        &self,
        let_idx: usize,
        end: usize,
        env: &BTreeMap<String, (String, bool)>,
    ) -> Option<(String, Option<(String, bool, bool)>)> {
        let toks = self.tokens;
        let mut i = let_idx + 1;
        if ident_at(toks, i) == Some("mut") {
            i += 1;
        }
        // Pattern: `name`, or `Some(name)`-style single-binding wrapper.
        let first = ident_at(toks, i)?;
        let name;
        if is_upper(first) && punct_at(toks, i + 1, '(') {
            name = ident_at(toks, i + 2)?.to_string();
            i = skip_group(toks, i + 1)?;
        } else if is_upper(first) {
            return None; // struct pattern etc.
        } else {
            name = first.to_string();
            i += 1;
        }
        // Optional ascription `: Type`.
        let mut ascribed: Option<(String, bool)> = None;
        if punct_at(toks, i, ':') && !punct_at(toks, i + 1, ':') {
            let mut stop = i + 1;
            let mut d = 0i32;
            while stop < end {
                match &toks[stop].kind {
                    TokKind::Punct('<') => d += 1,
                    TokKind::Punct('>') => d -= 1,
                    TokKind::Punct('=') | TokKind::Punct(';') if d <= 0 => break,
                    _ => {}
                }
                stop += 1;
            }
            let (ty, rc) = peel_type(toks, i + 1, stop);
            if !ty.is_empty() {
                ascribed = Some((ty, rc));
            }
            i = stop;
        }
        if !punct_at(toks, i, '=') {
            return Some((name, ascribed.map(|(t, r)| (t, r, false))));
        }
        // Infer from the initializer chain.
        let (ty, rc, guard) = self.eval_init(i + 1, end, env);
        if let Some((at, arc)) = ascribed {
            return Some((name, Some((at, arc, guard))));
        }
        match ty {
            Some(t) => Some((name, Some((t, rc, guard)))),
            None => Some((name, None)),
        }
    }

    /// Evaluates an initializer expression's leading chain:
    /// `Rc::new(RefCell::new(T::new(..)))`, `self.field.borrow_mut()`,
    /// `local.clone()`, ... Returns `(type, refcell, ends_in_borrow_mut)`.
    fn eval_init(
        &self,
        mut i: usize,
        end: usize,
        env: &BTreeMap<String, (String, bool)>,
    ) -> (Option<String>, bool, bool) {
        let toks = self.tokens;
        let mut rc_seen = false;
        // Descend through wrapper constructors.
        loop {
            if punct_at(toks, i, '&') {
                i += 1;
                continue;
            }
            let Some(head) = ident_at(toks, i) else {
                return (None, false, false);
            };
            if matches!(
                head,
                "Rc" | "Arc" | "Box" | "Some" | "Ok" | "RefCell" | "Cell"
            ) && punct_at(toks, i + 1, ':')
                && punct_at(toks, i + 2, ':')
                && punct_at(toks, i + 4, '(')
            {
                if head == "RefCell" {
                    rc_seen = true;
                }
                i += 5; // into the constructor argument
                continue;
            }
            if head == "Some" && punct_at(toks, i + 1, '(') {
                i += 2;
                continue;
            }
            break;
        }
        // Base value.
        let (mut ty, mut rc): (Option<String>, bool) = (None, false);
        let head = ident_at(toks, i).unwrap_or("");
        let mut j = i;
        if head == "self" {
            ty = self.impl_type.map(str::to_string);
            j += 1;
        } else if let Some((t, r)) = env.get(head) {
            ty = Some(t.clone());
            rc = *r;
            j += 1;
        } else if is_upper(head) && punct_at(toks, j + 1, '{') {
            // Struct literal `Type { ... }`.
            ty = Some(head.to_string());
            match skip_group(toks, j + 1) {
                Some(p) => j = p,
                None => return (ty, rc_seen, false),
            }
        } else if is_upper(head) && punct_at(toks, j + 1, ':') && punct_at(toks, j + 2, ':') {
            // `Type::ctor(...)`.
            let m = ident_at(toks, j + 3).unwrap_or("");
            if let Some((r_ty, r_rc)) = self
                .tables
                .method_ret
                .get(&(head.to_string(), m.to_string()))
            {
                if !r_ty.is_empty() {
                    ty = Some(r_ty.clone());
                    rc = *r_rc;
                }
            }
            if ty.is_none() && (m == "new" || m == "default" || m.starts_with("with_")) {
                ty = Some(head.to_string());
            }
            j += 4;
            if punct_at(toks, j, '(') {
                match skip_group(toks, j) {
                    Some(p) => j = p,
                    None => return (ty, rc || rc_seen, false),
                }
            }
        } else {
            return (None, false, false);
        }
        // Postfix chain.
        let mut last_borrow_mut = false;
        while j < end && punct_at(toks, j, '.') {
            let Some(m) = ident_at(toks, j + 1) else {
                break;
            };
            last_borrow_mut = false;
            if punct_at(toks, j + 2, '(') {
                if rc && (m == "borrow" || m == "borrow_mut") {
                    last_borrow_mut = m == "borrow_mut";
                    rc = false;
                } else if PASSTHROUGH.contains(&m) {
                    // type preserved
                } else if let Some(t) = &ty {
                    match self.tables.method_ret.get(&(t.clone(), m.to_string())) {
                        Some((r_ty, r_rc)) if !r_ty.is_empty() => {
                            ty = Some(r_ty.clone());
                            rc = *r_rc;
                        }
                        _ => {
                            ty = None;
                            rc = false;
                        }
                    }
                } else {
                    ty = None;
                }
                match skip_group(toks, j + 2) {
                    Some(p) => j = p,
                    None => break,
                }
            } else {
                // Field access.
                match ty
                    .as_ref()
                    .and_then(|t| self.tables.fields.get(t))
                    .and_then(|fs| fs.get(m))
                {
                    Some((f_ty, f_rc)) => {
                        ty = Some(f_ty.clone());
                        rc = *f_rc;
                    }
                    None => {
                        ty = None;
                        rc = false;
                    }
                }
                j += 2;
            }
        }
        (ty, rc || rc_seen, last_borrow_mut)
    }

    /// Resolves the receiver chain ending at the `.` token at `dot`.
    /// Returns the receiver's `(peeled type, is-RefCell-handle)`.
    fn resolve_recv(
        &self,
        dot: usize,
        start: usize,
        env: &BTreeMap<String, (String, bool)>,
    ) -> (Option<String>, bool) {
        let toks = self.tokens;
        // Collect segments backwards.
        let mut segs: Vec<Seg> = Vec::new();
        let mut j = dot; // points at a `.`
        loop {
            if j == start {
                return (None, false);
            }
            let k = j - 1;
            match &toks[k].kind {
                TokKind::Punct(')') => {
                    let Some(open) = open_of(toks, k, '(', ')') else {
                        return (None, false);
                    };
                    if open <= start {
                        return (None, false);
                    }
                    match ident_at(toks, open - 1) {
                        Some(m) if !KEYWORDS.contains(&m) => {
                            // `name(...)`: method/assoc/free call segment.
                            if open >= 3
                                && punct_at(toks, open - 2, ':')
                                && punct_at(toks, open - 3, ':')
                            {
                                let head = ident_at(toks, open.wrapping_sub(4)).unwrap_or("");
                                segs.push(Seg::TypeCall(head.to_string(), m.to_string()));
                                break;
                            }
                            segs.push(Seg::Call(m.to_string()));
                            if open >= 2 && punct_at(toks, open - 2, '.') {
                                j = open - 2;
                                continue;
                            }
                            break;
                        }
                        _ => {
                            // Parenthesized expression.
                            segs.push(Seg::Opaque);
                            break;
                        }
                    }
                }
                TokKind::Punct(']') => {
                    let Some(open) = open_of(toks, k, '[', ']') else {
                        return (None, false);
                    };
                    if open <= start {
                        return (None, false);
                    }
                    segs.push(Seg::Index);
                    // The `[` behaves like a `.`-continuation: the token
                    // before it is the indexed value.
                    if open == start {
                        return (None, false);
                    }
                    match &toks[open - 1].kind {
                        TokKind::Ident(s) if !KEYWORDS.contains(&s.as_str()) => {
                            segs.push(Seg::Name(s.clone()));
                            if open >= 2 && punct_at(toks, open - 2, '.') {
                                // Re-enter the loop at that dot; the name
                                // becomes a field segment of what precedes.
                                j = open - 2;
                                continue;
                            }
                            break;
                        }
                        _ => {
                            segs.push(Seg::Opaque);
                            break;
                        }
                    }
                }
                TokKind::Ident(s) => {
                    if KEYWORDS.contains(&s.as_str()) {
                        return (None, false);
                    }
                    segs.push(Seg::Name(s.clone()));
                    if k >= 1 && punct_at(toks, k - 1, '.') {
                        if k - 1 <= start {
                            break;
                        }
                        j = k - 1;
                        continue;
                    }
                    break;
                }
                _ => return (None, false),
            }
        }
        // Resolve forward (segments were collected innermost-last).
        segs.reverse();
        let mut ty: Option<String> = None;
        let mut rc = false;
        for (n, seg) in segs.iter().enumerate() {
            match seg {
                Seg::Name(s) if n == 0 => {
                    if s == "self" {
                        ty = self.impl_type.map(str::to_string);
                    } else if let Some((t, r)) = env.get(s) {
                        ty = Some(t.clone());
                        rc = *r;
                    } else if is_upper(s) {
                        ty = Some(s.clone());
                    } else {
                        return (None, false);
                    }
                }
                Seg::Name(s) => {
                    // Field access on the current type.
                    match ty
                        .as_ref()
                        .and_then(|t| self.tables.fields.get(t))
                        .and_then(|fs| fs.get(s))
                    {
                        Some((f_ty, f_rc)) => {
                            ty = Some(f_ty.clone());
                            rc = *f_rc;
                        }
                        None => return (None, false),
                    }
                }
                Seg::TypeCall(t, m) => {
                    let base = if t == "Self" {
                        self.impl_type.unwrap_or("Self").to_string()
                    } else {
                        t.clone()
                    };
                    match self.tables.method_ret.get(&(base.clone(), m.clone())) {
                        Some((r_ty, r_rc)) if !r_ty.is_empty() => {
                            ty = Some(r_ty.clone());
                            rc = *r_rc;
                        }
                        _ if m == "new" || m == "default" || m.starts_with("with_") => {
                            ty = Some(base);
                        }
                        _ => return (None, false),
                    }
                }
                Seg::Call(m) if n == 0 => match self.tables.free_ret.get(m) {
                    Some((r_ty, r_rc)) if !r_ty.is_empty() => {
                        ty = Some(r_ty.clone());
                        rc = *r_rc;
                    }
                    _ => return (None, false),
                },
                Seg::Call(m) => {
                    if rc && (m == "borrow" || m == "borrow_mut") {
                        rc = false;
                    } else if PASSTHROUGH.contains(&m.as_str()) {
                        // type preserved
                    } else {
                        match ty
                            .as_ref()
                            .and_then(|t| self.tables.method_ret.get(&(t.clone(), m.clone())))
                        {
                            Some((r_ty, r_rc)) if !r_ty.is_empty() => {
                                ty = Some(r_ty.clone());
                                rc = *r_rc;
                            }
                            _ => return (None, false),
                        }
                    }
                }
                Seg::Index => {
                    // `Vec` is peeled from field/param types, so indexing
                    // preserves the element type.
                }
                Seg::Opaque => return (None, false),
            }
        }
        (ty, rc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_items;

    fn summarize_all(src: &str) -> Vec<(String, FnSummary)> {
        let lexed = lex(src);
        let items = parse_items(&lexed.tokens);
        let mut fields = Vec::new();
        let mut fns = Vec::new();
        fields.extend(items.fields.iter().cloned());
        for f in &items.fns {
            fns.push(("test.rs".to_string(), f.clone()));
        }
        let tables = TypeTables::build(&fields, &fns);
        items
            .fns
            .iter()
            .map(|f| {
                let s = Summarizer {
                    tokens: &lexed.tokens,
                    tables: &tables,
                    impl_type: f.impl_type.as_deref(),
                }
                .summarize(f);
                (f.name.clone(), s)
            })
            .collect()
    }

    #[test]
    fn resolves_self_field_chain_through_refcell() {
        let src = r#"
            struct Pool { ep: Rc<RefCell<Endpoint>> }
            impl Pool {
                fn read(&self) -> u64 {
                    self.ep.borrow_mut().fetch(1)
                }
            }
        "#;
        let sums = summarize_all(src);
        let (_, s) = &sums[0];
        assert_eq!(s.borrows.len(), 1);
        assert_eq!(s.borrows[0].cell, "Endpoint");
        assert!(s.borrows[0].mutable);
        assert_eq!(s.spans.len(), 1, "temporary span recorded");
        // `.fetch` is a call on the borrowed inner value, inside the span.
        assert_eq!(s.calls.len(), 1);
        assert_eq!(
            s.calls[0].target,
            CallTarget::Method {
                recv: Some("Endpoint".into()),
                name: "fetch".into()
            }
        );
        assert_eq!(s.spans[0].calls, vec![0]);
    }

    #[test]
    fn let_guard_span_runs_to_block_end_or_drop() {
        let src = r#"
            struct Pool { ep: Rc<RefCell<Endpoint>> }
            impl Pool {
                fn a(&self) {
                    let mut g = self.ep.borrow_mut();
                    g.poke();
                    other();
                }
                fn b(&self) {
                    let g = self.ep.borrow_mut();
                    drop(g);
                    after();
                }
            }
        "#;
        let sums = summarize_all(src);
        let (_, a) = &sums[0];
        assert_eq!(a.spans.len(), 1);
        assert_eq!(a.spans[0].calls.len(), 2, "poke and other are in-span");
        let (_, b) = &sums[1];
        assert_eq!(b.spans.len(), 1);
        assert!(
            b.spans[0].calls.is_empty(),
            "drop(g) ends the guard before after()"
        );
    }

    #[test]
    fn same_cell_reborrow_is_an_overlap() {
        let src = r#"
            struct Pool { ep: Rc<RefCell<Endpoint>>, other: Rc<RefCell<Stats>> }
            impl Pool {
                fn bad(&self) {
                    let g = self.ep.borrow_mut();
                    let h = self.ep.borrow();
                    let ok = self.other.borrow();
                }
            }
        "#;
        let sums = summarize_all(src);
        let (_, s) = &sums[0];
        assert_eq!(s.spans.len(), 1);
        assert_eq!(s.spans[0].overlaps.len(), 1, "same-cell borrow overlaps");
        assert_eq!(s.borrows[s.spans[0].overlaps[0]].cell, "Endpoint");
    }

    #[test]
    fn panic_sites_and_dynamic_indexing() {
        let src = r#"
            fn f(xs: &[u64], i: usize) -> u64 {
                let a = xs[i];
                let b = xs[0];
                let c = xs.first().unwrap();
                if i > 99 { panic!("too big"); }
                a + b + c
            }
        "#;
        let sums = summarize_all(src);
        let (_, s) = &sums[0];
        let whats: Vec<&str> = s.panics.iter().map(|p| p.what).collect();
        assert_eq!(whats, vec!["index", "unwrap", "panic!"]);
    }

    #[test]
    fn assoc_and_free_calls_are_classified() {
        let src = r#"
            impl Node {
                fn go(&self) {
                    let c = Calendar::new();
                    helper(3);
                    std::mem::take(&mut 1);
                }
            }
        "#;
        let sums = summarize_all(src);
        let (_, s) = &sums[0];
        let t: Vec<&CallTarget> = s.calls.iter().map(|c| &c.target).collect();
        assert_eq!(
            t,
            vec![
                &CallTarget::Assoc {
                    ty: "Calendar".into(),
                    name: "new".into()
                },
                &CallTarget::Free {
                    name: "helper".into()
                },
                &CallTarget::Free {
                    name: "take".into()
                },
            ]
        );
    }

    #[test]
    fn local_refcell_binding_is_tracked() {
        let src = r#"
            struct Core { n: u64 }
            fn f() {
                let cell = Rc::new(RefCell::new(Core { n: 0 }));
                let g = cell.borrow_mut();
            }
        "#;
        let sums = summarize_all(src);
        let (_, s) = &sums.last().unwrap();
        assert_eq!(s.borrows.len(), 1);
        assert_eq!(s.borrows[0].cell, "Core");
    }

    #[test]
    fn test_scope_tokens_are_ignored() {
        let src = r#"
            struct S { v: u64 }
            impl S {
                fn live(&self) -> u64 { self.v }
            }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { S { v: 0 }.live(); x.unwrap(); }
            }
        "#;
        let sums = summarize_all(src);
        for (name, s) in &sums {
            assert!(
                s.panics.is_empty(),
                "{name}: test-scope unwrap must not count"
            );
        }
    }
}
