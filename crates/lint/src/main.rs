//! The `dilos-lint` CLI.
//!
//! ```text
//! dilos-lint [--json] [--format human|json|sarif] [--root <path>]
//! ```
//!
//! Scans every `.rs` file in the workspace and prints a human report,
//! machine-readable JSON, or SARIF 2.1.0 for code-scanning upload
//! (`--json` is shorthand for `--format json`). Exit status is non-zero
//! when any violation survives suppression, so CI can gate on it
//! directly.

use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Human,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut format = Format::Human;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => format = Format::Json,
            "--format" => {
                format = match args.next().as_deref() {
                    Some("human") => Format::Human,
                    Some("json") => Format::Json,
                    Some("sarif") => Format::Sarif,
                    other => {
                        eprintln!(
                            "dilos-lint: --format requires human, json, or sarif (got {other:?})"
                        );
                        return ExitCode::from(2);
                    }
                };
            }
            "--root" => {
                root = args.next().map(PathBuf::from);
                if root.is_none() {
                    eprintln!("dilos-lint: --root requires a path");
                    return ExitCode::from(2);
                }
            }
            "--help" | "-h" => {
                println!("usage: dilos-lint [--json] [--format human|json|sarif] [--root <path>]");
                println!("rules:");
                for (code, slug) in dilos_lint::RULES {
                    println!("  {code}  {slug}");
                }
                println!("suppress a site with: // dilos-lint: allow(<rule>, \"<reason>\")");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("dilos-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(find_workspace_root);
    let report = match dilos_lint::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dilos-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    match format {
        Format::Human => print!("{}", report.to_human()),
        Format::Json => print!("{}", report.to_json()),
        Format::Sarif => print!("{}", dilos_lint::sarif::to_sarif(&report)),
    }
    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Walks up from the current directory to the first `Cargo.toml` declaring
/// a `[workspace]`; falls back to the current directory.
fn find_workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.clone();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return cwd;
        }
    }
}
