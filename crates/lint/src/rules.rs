//! The rule table: five named determinism/hygiene invariants plus the
//! inline suppression ledger.
//!
//! Every rule is a token-pattern heuristic, not a type-checked analysis —
//! the fixtures in `tests/fixtures/` pin exactly what each one catches.
//! Scope is path-based: a rule applies to a file according to where that
//! file sits in the workspace (see [`Scope::for_path`]).

use crate::lexer::{Comment, TokKind, Token};
use crate::report::{PathStep, Report, Suppression, Violation};
use std::collections::BTreeMap;

/// `(code, slug)` for every rule, in order. R1–R5 are token-level (PR 3);
/// R6–R10 are the v2 interprocedural families (see [`crate::rules2`]).
pub const RULES: [(&str, &str); 10] = [
    ("R1", "no-wall-clock"),
    ("R2", "no-hash-iteration"),
    ("R3", "no-unwrap-in-hot-path"),
    ("R4", "calendar-time-only"),
    ("R5", "no-ambient-rand"),
    ("R6", "transitive-panic-freedom"),
    ("R7", "refcell-borrow-overlap"),
    ("R8", "ns-arithmetic-safety"),
    ("R9", "trace-event-coverage"),
    ("R10", "schedule-time-monotonicity"),
];

/// Which rules apply to a given file.
#[derive(Debug, Clone, Copy)]
pub struct Scope {
    pub r1: bool,
    pub r2: bool,
    pub r3: bool,
    pub r4: bool,
    pub r5: bool,
}

impl Scope {
    /// Path-based scoping (workspace-relative, forward slashes):
    ///
    /// - **R1/R4**: everywhere except `crates/criterion` and `crates/bench`,
    ///   which legitimately measure host time.
    /// - **R2**: the deterministic simulation core (`crates/core`,
    ///   `crates/sim`, `crates/baselines`, `crates/alloc`) plus any file
    ///   whose name marks it as a digest/trace/audit/stats path.
    /// - **R3**: `crates/core` and `crates/sim` only — the fault/event hot
    ///   path, where a panic takes down the whole simulated machine.
    /// - **R5**: everywhere.
    pub fn for_path(path: &str) -> Scope {
        let host_time_ok =
            path.starts_with("crates/criterion/") || path.starts_with("crates/bench/");
        let det_core = path.starts_with("crates/core/")
            || path.starts_with("crates/sim/")
            || path.starts_with("crates/baselines/")
            || path.starts_with("crates/alloc/");
        // Integration-test, bench, and example targets are test code in
        // their entirety (on top of the per-token `#[cfg(test)]` marking
        // inside library files).
        let test_target = path.starts_with("tests/")
            || path.starts_with("examples/")
            || path.contains("/tests/")
            || path.contains("/benches/")
            || path.contains("/examples/");
        let stem = path.rsplit('/').next().unwrap_or(path);
        let det_named = ["trace", "audit", "stats", "digest"]
            .iter()
            .any(|m| stem.contains(m));
        Scope {
            r1: !host_time_ok,
            r2: (det_core || det_named) && !test_target,
            r3: (path.starts_with("crates/core/") || path.starts_with("crates/sim/"))
                && !test_target,
            r4: !host_time_ok && !test_target,
            r5: true,
        }
    }
}

/// Lints one file's source under its workspace-relative path.
///
/// Interprocedural rules see only this one file; use
/// [`crate::lint_files`] to analyze a set together.
pub fn lint_source(rel_path: &str, src: &str) -> Report {
    crate::lint_files(&[(rel_path.to_string(), src.to_string())])
}

/// Runs the per-file rules (R1–R5, plus R8/R10 from the v2 families) on
/// one file's tokens.
pub(crate) fn run_intra(rel_path: &str, tokens: &[Token], violations: &mut Vec<Violation>) {
    let scope = Scope::for_path(rel_path);
    if scope.r1 {
        rule_wall_clock(rel_path, tokens, violations);
    }
    if scope.r2 {
        rule_hash_iteration(rel_path, tokens, violations);
    }
    if scope.r3 {
        rule_unwrap_hot_path(rel_path, tokens, violations);
    }
    if scope.r4 {
        rule_calendar_time(rel_path, tokens, violations);
    }
    if scope.r5 {
        rule_ambient_rand(rel_path, tokens, violations);
    }
    if crate::rules2::r8_in_scope(rel_path) {
        crate::rules2::rule_ns_arithmetic(rel_path, tokens, violations);
    }
    if crate::rules2::r10_in_scope(rel_path) {
        crate::rules2::rule_schedule_time(rel_path, tokens, violations);
    }
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(tokens: &[Token], i: usize, c: char) -> bool {
    matches!(tokens.get(i).map(|t| &t.kind), Some(TokKind::Punct(p)) if *p == c)
}

/// R1: `Instant`/`SystemTime` read the host clock; virtual time comes from
/// the `Calendar`/`Timeline`.
fn rule_wall_clock(file: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    for t in tokens {
        if let TokKind::Ident(s) = &t.kind {
            if s == "Instant" || s == "SystemTime" {
                out.push(violation(file, t.line, 0, vec![], format!(
                    "`{s}` reads the host wall clock; simulation time must come from the Calendar/Timeline (host time is only legitimate in crates/criterion and crates/bench)"
                )));
            }
        }
    }
}

const HASH_ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Walks backwards over `seg :: seg :: Name` path segments; returns the
/// index of the head segment of the path ending at `i`.
fn path_head(tokens: &[Token], mut i: usize) -> usize {
    while i >= 3
        && punct_at(tokens, i - 1, ':')
        && punct_at(tokens, i - 2, ':')
        && ident_at(tokens, i - 3).is_some()
    {
        i -= 3;
    }
    i
}

/// R2: iterating a `HashMap`/`HashSet` yields allocator/seed-dependent
/// order. Pass 1 records identifiers declared (or initialized) as hash
/// containers; pass 2 flags iteration call sites and `for … in` loops over
/// them. Test scopes are exempt on both passes.
fn rule_hash_iteration(file: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    let mut hash_decls: BTreeMap<String, &'static str> = BTreeMap::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.in_test {
            continue;
        }
        let type_name = match &t.kind {
            TokKind::Ident(s) if s == "HashMap" => "HashMap",
            TokKind::Ident(s) if s == "HashSet" => "HashSet",
            _ => continue,
        };
        let head = path_head(tokens, i);
        // `name: [std::collections::]HashMap<...>` (field, binding, param,
        // or struct-literal init).
        if head >= 2 && punct_at(tokens, head - 1, ':') && !punct_at(tokens, head - 2, ':') {
            if let Some(name) = ident_at(tokens, head - 2) {
                hash_decls.insert(name.to_string(), type_name);
            }
        }
        // `[let [mut]] name = [path::]HashMap::new()` (or `::default()`).
        if head >= 2 && punct_at(tokens, head - 1, '=') {
            if let Some(name) = ident_at(tokens, head - 2) {
                if name != "mut" && name != "let" {
                    hash_decls.insert(name.to_string(), type_name);
                }
            }
        }
    }
    if hash_decls.is_empty() {
        return;
    }
    for i in 0..tokens.len() {
        if tokens[i].in_test {
            continue;
        }
        // `name . method (` where method iterates.
        if let Some(m) = ident_at(tokens, i) {
            if HASH_ITER_METHODS.contains(&m)
                && punct_at(tokens, i + 1, '(')
                && i >= 2
                && punct_at(tokens, i - 1, '.')
            {
                if let Some(name) = ident_at(tokens, i - 2) {
                    if let Some(ty) = hash_decls.get(name) {
                        out.push(violation(file, tokens[i].line, 1, vec![], format!(
                            "`{name}.{m}()` iterates a `{ty}` in a determinism-sensitive path; hash order is seed/allocator-dependent — use BTreeMap/BTreeSet or a sorted snapshot"
                        )));
                    }
                }
            }
        }
        // `for … in [& [mut]] name {`
        if ident_at(tokens, i) == Some("in") {
            let mut j = i + 1;
            if punct_at(tokens, j, '&') {
                j += 1;
            }
            if ident_at(tokens, j) == Some("mut") {
                j += 1;
            }
            if let Some(name) = ident_at(tokens, j) {
                if punct_at(tokens, j + 1, '{') {
                    if let Some(ty) = hash_decls.get(name) {
                        out.push(violation(file, tokens[j].line, 1, vec![], format!(
                            "`for … in {name}` iterates a `{ty}` in a determinism-sensitive path; hash order is seed/allocator-dependent — use BTreeMap/BTreeSet or a sorted snapshot"
                        )));
                    }
                }
            }
        }
    }
}

/// R3: `unwrap()`/`expect()`/`panic!` in non-test hot-path code.
fn rule_unwrap_hot_path(file: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    for i in 0..tokens.len() {
        if tokens[i].in_test {
            continue;
        }
        match ident_at(tokens, i) {
            Some(m @ ("unwrap" | "expect"))
                if i >= 1 && punct_at(tokens, i - 1, '.') && punct_at(tokens, i + 1, '(') =>
            {
                out.push(violation(file, tokens[i].line, 2, vec![], format!(
                    "`.{m}()` in hot-path code can take down the whole simulated machine; return an Err, restructure, or add a documented dilos-lint allow"
                )));
            }
            Some("panic") if punct_at(tokens, i + 1, '!') => {
                out.push(violation(
                    file,
                    tokens[i].line,
                    2,
                    vec![],
                    "`panic!` in hot-path code; return an Err, restructure, or add a documented dilos-lint allow".to_string(),
                ));
            }
            _ => {}
        }
    }
}

/// Identifier prefixes that mark a cached/stale time value.
pub(crate) const STALE_TIME_PREFIXES: [&str; 6] =
    ["cached", "saved", "stale", "old_", "prev_", "last_"];

/// R4: the time argument of a `TraceSink::emit` call must come from the
/// live virtual clock (calendar, timeline, stamped access time), never a
/// literal or an obviously cached local.
fn rule_calendar_time(file: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    for i in 0..tokens.len() {
        if tokens[i].in_test {
            continue;
        }
        if i == 0
            || ident_at(tokens, i) != Some("emit")
            || !punct_at(tokens, i - 1, '.')
            || !punct_at(tokens, i + 1, '(')
        {
            continue;
        }
        // Collect the first argument's tokens (up to a top-level comma).
        let mut depth = 0i32;
        let mut arg: Vec<&Token> = Vec::new();
        let mut j = i + 2;
        while j < tokens.len() {
            match &tokens[j].kind {
                TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') if depth == 0 => break,
                TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                TokKind::Punct(',') if depth == 0 => break,
                _ => {}
            }
            arg.push(&tokens[j]);
            j += 1;
        }
        if arg.len() == 1 && arg[0].kind == TokKind::Number {
            out.push(violation(file, tokens[i].line, 3, vec![], "trace emitted at a literal time; every emit must carry the live virtual time (Calendar/Timeline/stamped access clock)".to_string()));
            continue;
        }
        for t in &arg {
            if let TokKind::Ident(s) = &t.kind {
                if STALE_TIME_PREFIXES.iter().any(|p| s.starts_with(p)) {
                    out.push(violation(file, tokens[i].line, 3, vec![], format!(
                        "trace emitted at `{s}`, which looks like a cached/stale time; take the time from the Calendar/Timeline at the emit site"
                    )));
                    break;
                }
            }
        }
    }
}

const AMBIENT_RAND_IDENTS: [&str; 7] = [
    "thread_rng",
    "OsRng",
    "StdRng",
    "SmallRng",
    "from_entropy",
    "getrandom",
    "RandomState",
];

/// R5: all randomness flows through `dilos_sim::rng` seeded generators.
fn rule_ambient_rand(file: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        if let TokKind::Ident(s) = &t.kind {
            if AMBIENT_RAND_IDENTS.contains(&s.as_str()) {
                out.push(violation(file, t.line, 4, vec![], format!(
                    "`{s}` draws ambient (non-seeded) randomness; all randomness must flow through dilos_sim::rng seeded generators"
                )));
            } else if s == "rand" && punct_at(tokens, i + 1, ':') && punct_at(tokens, i + 2, ':') {
                out.push(violation(file, t.line, 4, vec![],
                    "the `rand` crate draws ambient randomness; all randomness must flow through dilos_sim::rng seeded generators".to_string(),
                ));
            }
        }
    }
}

pub(crate) fn violation(
    file: &str,
    line: u32,
    rule_idx: usize,
    path: Vec<PathStep>,
    message: String,
) -> Violation {
    Violation {
        file: file.to_string(),
        line,
        rule: RULES[rule_idx].0,
        id: RULES[rule_idx].1,
        message,
        path,
    }
}

/// Parses `// dilos-lint: allow(<rule>, "<reason>")` directives.
pub(crate) fn parse_suppressions(file: &str, comments: &[Comment]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in comments {
        // Doc comments (`///`, `//!`, `/** */`, `/*! */`) describe the
        // directive syntax without invoking it; only plain comments count.
        if c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/**")
            || c.text.starts_with("/*!")
        {
            continue;
        }
        let Some(pos) = c.text.find("dilos-lint:") else {
            continue;
        };
        let rest = c.text[pos + "dilos-lint:".len()..].trim_start();
        let Some(body) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = body.find(')') else {
            continue;
        };
        let inner = &body[..close];
        let (id, reason_part) = match inner.find(',') {
            Some(comma) => (&inner[..comma], &inner[comma + 1..]),
            None => (inner, ""),
        };
        let reason = match (reason_part.find('"'), reason_part.rfind('"')) {
            (Some(a), Some(b)) if b > a => reason_part[a + 1..b].to_string(),
            _ => reason_part.trim().to_string(),
        };
        out.push(Suppression {
            file: file.to_string(),
            line: c.line,
            id: id.trim().to_string(),
            reason,
            used: false,
        });
    }
    out
}

/// Drops violations shielded by a matching suppression (same file, same
/// line or the line directly below the directive), marking the
/// suppression used. Interprocedural findings are anchored at file-local
/// lines (R6 at the sink, R9 at the variant declaration), so the same
/// mechanism covers them.
pub(crate) fn apply_suppressions(
    violations: Vec<Violation>,
    suppressions: &mut [Suppression],
) -> Vec<Violation> {
    violations
        .into_iter()
        .filter(|v| {
            for s in suppressions.iter_mut() {
                let names_rule = s.id == v.id || s.id == v.rule;
                if names_rule && s.file == v.file && (v.line == s.line || v.line == s.line + 1) {
                    s.used = true;
                    return false;
                }
            }
            true
        })
        .collect()
}
