//! The fixture battery: every rule is pinned by one violating and one
//! clean snippet, linted under a virtual workspace path so the path-based
//! scoping is exercised too. Assertions are exact — rule code, rule id,
//! file, and line — so any drift in a rule's detection surface fails here
//! first.

use dilos_lint::{lint_files, lint_source, Report};

/// Lints several virtual files together so the interprocedural rules
/// (R6/R7/R9) see the whole set.
fn lint_set(files: &[(&str, &str)]) -> Report {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    lint_files(&owned)
}

/// Asserts that `report` holds exactly `expect` violations, as
/// `(rule, id, line)` triples in report (sorted) order, and that each one
/// round-trips into the JSON output verbatim.
fn assert_violations(report: &Report, file: &str, expect: &[(&str, &str, u32)]) {
    let got: Vec<(&str, &str, u32)> = report
        .violations
        .iter()
        .map(|v| (v.rule, v.id, v.line))
        .collect();
    assert_eq!(got, expect, "violations for {file}:\n{}", report.to_human());
    for v in &report.violations {
        assert_eq!(v.file, file);
    }
    let json = report.to_json();
    for (rule, id, line) in expect {
        let needle = format!(
            "{{\"rule\": \"{rule}\", \"id\": \"{id}\", \"file\": \"{file}\", \"line\": {line}, \"message\": "
        );
        assert!(json.contains(&needle), "JSON missing {needle}\n{json}");
    }
}

fn clean(report: &Report, file: &str) {
    assert_violations(report, file, &[]);
}

#[test]
fn r1_wall_clock() {
    let src = include_str!("fixtures/r1_violating.rs");
    let file = "crates/sim/src/fabric.rs";
    let r = lint_source(file, src);
    assert_violations(&r, file, &[("R1", "no-wall-clock", 2)]);
    // The same source is legitimate where host time is allowed.
    clean(
        &lint_source("crates/criterion/src/lib.rs", src),
        "crates/criterion/src/lib.rs",
    );
    let file = "crates/sim/src/fabric.rs";
    clean(
        &lint_source(file, include_str!("fixtures/r1_clean.rs")),
        file,
    );
}

#[test]
fn r2_hash_iteration() {
    let src = include_str!("fixtures/r2_violating.rs");
    let file = "crates/core/src/trace.rs";
    let r = lint_source(file, src);
    assert_violations(&r, file, &[("R2", "no-hash-iteration", 10)]);
    // Out of R2's scope (not the deterministic core, not a det-named stem).
    clean(
        &lint_source("crates/apps/src/store.rs", src),
        "crates/apps/src/store.rs",
    );
    let file = "crates/core/src/trace.rs";
    clean(
        &lint_source(file, include_str!("fixtures/r2_clean.rs")),
        file,
    );
}

#[test]
fn r3_unwrap_in_hot_path() {
    let src = include_str!("fixtures/r3_violating.rs");
    let file = "crates/core/src/node_fixture.rs";
    let r = lint_source(file, src);
    assert_violations(
        &r,
        file,
        &[
            ("R3", "no-unwrap-in-hot-path", 2),
            ("R3", "no-unwrap-in-hot-path", 6),
            ("R3", "no-unwrap-in-hot-path", 10),
        ],
    );
    // Outside crates/core and crates/sim a panic is someone else's policy.
    clean(
        &lint_source("crates/apps/src/lib.rs", src),
        "crates/apps/src/lib.rs",
    );
    // Unwraps inside `#[cfg(test)]` scopes are exempt.
    let file = "crates/core/src/node_fixture.rs";
    clean(
        &lint_source(file, include_str!("fixtures/r3_clean.rs")),
        file,
    );
}

#[test]
fn r4_calendar_time() {
    let src = include_str!("fixtures/r4_violating.rs");
    let file = "crates/core/src/pager.rs";
    let r = lint_source(file, src);
    assert_violations(
        &r,
        file,
        &[
            ("R4", "calendar-time-only", 8),
            ("R4", "calendar-time-only", 10),
        ],
    );
    clean(
        &lint_source(file, include_str!("fixtures/r4_clean.rs")),
        file,
    );
}

#[test]
fn r5_ambient_rand() {
    let src = include_str!("fixtures/r5_violating.rs");
    let file = "crates/apps/src/workload.rs";
    let r = lint_source(file, src);
    assert_violations(
        &r,
        file,
        &[("R5", "no-ambient-rand", 2), ("R5", "no-ambient-rand", 6)],
    );
    clean(
        &lint_source(file, include_str!("fixtures/r5_clean.rs")),
        file,
    );
}

/// A metrics-registry shaped snippet: snapshotting counters by iterating a
/// `HashMap` and stamping the snapshot with host time is exactly the
/// telemetry code R1 and R2 exist to keep out of the deterministic core.
#[test]
fn metrics_shaped_code_trips_r1_and_r2_in_the_core() {
    let src = include_str!("fixtures/metrics_violating.rs");
    let file = "crates/sim/src/metrics.rs";
    let r = lint_source(file, src);
    assert_violations(
        &r,
        file,
        &[("R1", "no-wall-clock", 9), ("R2", "no-hash-iteration", 11)],
    );
    // The same snippet is out of both rules' scope in the bench harness,
    // where host time and unordered maps are someone else's policy.
    clean(
        &lint_source("crates/bench/src/telemetry.rs", src),
        "crates/bench/src/telemetry.rs",
    );
    // The BTreeMap + virtual-timestamp version is clean even in the core.
    let file = "crates/sim/src/metrics.rs";
    clean(
        &lint_source(file, include_str!("fixtures/metrics_clean.rs")),
        file,
    );
}

/// A cluster-arbiter shaped snippet: splitting the frame pool by iterating
/// a `HashMap` keyed by tenant id and stamping the decision with host time
/// is exactly the multi-tenant arbitration code R1 and R2 must keep out of
/// the shared-fabric core — tenant order decides who gets the remainder.
#[test]
fn cluster_arbitration_code_trips_r1_and_r2_in_the_core() {
    let src = include_str!("fixtures/cluster_violating.rs");
    let file = "crates/sim/src/cluster.rs";
    let r = lint_source(file, src);
    assert_violations(
        &r,
        file,
        &[
            ("R1", "no-wall-clock", 9),
            ("R2", "no-hash-iteration", 10),
            ("R2", "no-hash-iteration", 12),
        ],
    );
    // Out of scope in the bench harness, where host time and unordered
    // maps are someone else's policy.
    clean(
        &lint_source("crates/bench/src/loadgen.rs", src),
        "crates/bench/src/loadgen.rs",
    );
    // The BTreeMap-keyed, virtual-timestamp arbiter is clean in the core.
    let file = "crates/sim/src/cluster.rs";
    clean(
        &lint_source(file, include_str!("fixtures/cluster_clean.rs")),
        file,
    );
}

#[test]
fn recovery_replay_code_trips_r1_and_r2_in_the_sim() {
    let src = include_str!("fixtures/recover_violating.rs");
    let file = "crates/sim/src/recover.rs";
    let r = lint_source(file, src);
    assert_violations(
        &r,
        file,
        &[
            ("R1", "no-wall-clock", 9),
            ("R2", "no-hash-iteration", 10),
            ("R2", "no-hash-iteration", 12),
        ],
    );
    // Out of scope in the bench harness: the recover *experiment* may time
    // itself on the host clock; the recovery *module* may not.
    clean(
        &lint_source("crates/bench/src/recover.rs", src),
        "crates/bench/src/recover.rs",
    );
    // Replay over a BTreeMap-ordered log, timed virtually, is clean.
    let file = "crates/sim/src/recover.rs";
    clean(
        &lint_source(file, include_str!("fixtures/recover_clean.rs")),
        file,
    );
}

#[test]
fn r6_transitive_panic_freedom() {
    let hot = include_str!("fixtures/r6_hot.rs");
    let heap = include_str!("fixtures/r6_heap_violating.rs");
    let r = lint_set(&[
        ("crates/core/src/node_fixture.rs", hot),
        ("crates/alloc/src/heap_fixture.rs", heap),
    ]);
    assert_eq!(r.violations.len(), 1, "{}", r.to_human());
    let v = &r.violations[0];
    assert_eq!(
        (v.rule, v.id, v.file.as_str(), v.line),
        (
            "R6",
            "transitive-panic-freedom",
            "crates/alloc/src/heap_fixture.rs",
            7
        )
    );
    // The full call chain, outermost hot-path root first.
    let labels: Vec<&str> = v.path.iter().map(|p| p.label.as_str()).collect();
    assert_eq!(labels, ["Node::fault", "Heap::carve"]);
    assert_eq!(v.path[0].file, "crates/core/src/node_fixture.rs");
    let json = r.to_json();
    assert!(
        json.contains("\"path\": [{\"label\": \"Node::fault\""),
        "call path must round-trip into JSON:\n{json}"
    );
    // The .get() version panics nowhere, so the same root is clean.
    let r = lint_set(&[
        ("crates/core/src/node_fixture.rs", hot),
        (
            "crates/alloc/src/heap_fixture.rs",
            include_str!("fixtures/r6_heap_clean.rs"),
        ),
    ]);
    assert!(r.violations.is_empty(), "{}", r.to_human());
}

#[test]
fn r7_refcell_borrow_overlap() {
    let file = "crates/sim/src/pool_fixture.rs";
    let r = lint_source(file, include_str!("fixtures/r7_violating.rs"));
    assert_violations(&r, file, &[("R7", "refcell-borrow-overlap", 20)]);
    let v = &r.violations[0];
    assert!(
        v.message.contains("Endpoint"),
        "names the re-borrowed cell: {}",
        v.message
    );
    assert!(!v.path.is_empty(), "carries the borrow chain");
    // Dropping the guard before the call resolves the overlap.
    clean(
        &lint_source(file, include_str!("fixtures/r7_clean.rs")),
        file,
    );
}

#[test]
fn r8_ns_arithmetic() {
    let src = include_str!("fixtures/r8_violating.rs");
    let file = "crates/sim/src/timeline.rs";
    let r = lint_source(file, src);
    assert_violations(&r, file, &[("R8", "ns-arithmetic-safety", 4)]);
    // The same arithmetic is out of scope away from the time-math stems.
    clean(
        &lint_source("crates/sim/src/metrics.rs", src),
        "crates/sim/src/metrics.rs",
    );
    let file = "crates/sim/src/timeline.rs";
    clean(
        &lint_source(file, include_str!("fixtures/r8_clean.rs")),
        file,
    );
}

#[test]
fn r9_trace_event_coverage() {
    let events = include_str!("fixtures/r9_events.rs");
    let r = lint_set(&[
        ("crates/sim/src/trace_fixture.rs", events),
        (
            "crates/core/src/audit.rs",
            include_str!("fixtures/r9_audit_violating.rs"),
        ),
    ]);
    assert_eq!(r.violations.len(), 1, "{}", r.to_human());
    let v = &r.violations[0];
    assert_eq!(
        (v.rule, v.id, v.file.as_str(), v.line),
        (
            "R9",
            "trace-event-coverage",
            "crates/sim/src/trace_fixture.rs",
            3
        )
    );
    assert!(v.message.contains("Evict"), "{}", v.message);
    // Matching every variant in the auditor clears the census.
    let r = lint_set(&[
        ("crates/sim/src/trace_fixture.rs", events),
        (
            "crates/core/src/audit.rs",
            include_str!("fixtures/r9_audit_clean.rs"),
        ),
    ]);
    assert!(r.violations.is_empty(), "{}", r.to_human());
}

/// The causal tracer consumes every `TraceEvent` variant when assembling
/// span trees, but it is a passive observer: R9 must keep demanding an
/// audit/digest-stem consumer even when a causal-style file matches every
/// variant. (Guards the PR 9 tracing layer from silently becoming the only
/// consumer of an event.)
#[test]
fn r9_causal_consumer_is_not_audit_coverage() {
    let events = include_str!("fixtures/r9_events.rs");
    let causal = include_str!("fixtures/r9_causal_consumer.rs");
    // Full match in the causal observer, wildcard in the auditor: the
    // unaudited variant still flags.
    let r = lint_set(&[
        ("crates/sim/src/trace_fixture.rs", events),
        ("crates/sim/src/causal_fixture.rs", causal),
        (
            "crates/core/src/audit.rs",
            include_str!("fixtures/r9_audit_violating.rs"),
        ),
    ]);
    assert_eq!(r.violations.len(), 1, "{}", r.to_human());
    let v = &r.violations[0];
    assert_eq!((v.rule, v.id), ("R9", "trace-event-coverage"));
    assert!(v.message.contains("Evict"), "{}", v.message);
    // A full auditor match clears it; the causal observer stays legal.
    let r = lint_set(&[
        ("crates/sim/src/trace_fixture.rs", events),
        ("crates/sim/src/causal_fixture.rs", causal),
        (
            "crates/core/src/audit.rs",
            include_str!("fixtures/r9_audit_clean.rs"),
        ),
    ]);
    assert!(r.violations.is_empty(), "{}", r.to_human());
}

#[test]
fn r10_schedule_time_monotonicity() {
    let src = include_str!("fixtures/r10_violating.rs");
    let file = "crates/sim/src/pump.rs";
    let r = lint_source(file, src);
    assert_violations(
        &r,
        file,
        &[
            ("R10", "schedule-time-monotonicity", 2),
            ("R10", "schedule-time-monotonicity", 3),
        ],
    );
    // Out of scope outside the deterministic crates.
    clean(
        &lint_source("crates/bench/src/pump.rs", src),
        "crates/bench/src/pump.rs",
    );
    let file = "crates/sim/src/pump.rs";
    clean(
        &lint_source(file, include_str!("fixtures/r10_clean.rs")),
        file,
    );
}

#[test]
fn suppression_shields_and_ledgers() {
    let file = "crates/core/src/sweep.rs";
    let r = lint_source(file, include_str!("fixtures/suppressed.rs"));
    clean(&r, file);
    assert_eq!(r.suppressions.len(), 2);
    let shield = &r.suppressions[0];
    assert_eq!(
        (shield.line, shield.id.as_str(), shield.used),
        (2, "no-unwrap-in-hot-path", true)
    );
    let idle = &r.suppressions[1];
    assert_eq!(
        (idle.line, idle.id.as_str(), idle.used),
        (8, "no-wall-clock", false)
    );
    assert_eq!(shield.reason, "fixture: head is non-empty by construction");
}

#[test]
fn suppression_for_the_wrong_rule_does_not_shield() {
    let file = "crates/core/src/sweep.rs";
    let r = lint_source(file, include_str!("fixtures/suppressed_wrong_rule.rs"));
    assert_violations(&r, file, &[("R3", "no-unwrap-in-hot-path", 3)]);
    assert_eq!(r.suppressions.len(), 1);
    assert!(!r.suppressions[0].used);
}
