pub enum TraceEvent {
    Fault { vpn: u64 },
    Evict { vpn: u64 },
}

pub fn emit_all(sink: &mut Vec<TraceEvent>) {
    sink.push(TraceEvent::Fault { vpn: 1 });
    sink.push(TraceEvent::Evict { vpn: 2 });
}
