pub struct Heap {
    pages: Vec<u64>,
}

impl Heap {
    pub fn carve(&self, idx: usize) -> u64 {
        self.pages[idx]
    }
}
