use std::cell::RefCell;
use std::rc::Rc;

pub struct Node {
    h: Rc<RefCell<Heap>>,
}

impl Node {
    pub fn fault(&self) -> u64 {
        self.h.borrow().carve(3)
    }
}
