pub struct Sink;

impl Sink {
    pub fn emit(&self, _t: u64, _what: u32) {}
}

pub fn log(sink: &Sink, now: u64) {
    sink.emit(0, 1);
    let cached_now = now;
    sink.emit(cached_now, 2);
}
