pub type Ns = u64;

pub fn stamp(now: Ns) -> Ns {
    now.saturating_add(1)
}
