pub type Ns = u64;

pub fn stamp(now: Ns) -> Ns {
    now + 1
}
