pub fn pick(v: &[u64]) -> u64 {
    // dilos-lint: allow(no-unwrap-in-hot-path, "fixture: head is non-empty by construction")
    let first = v.first().unwrap();
    *first
}

pub fn noop() -> u32 {
    // dilos-lint: allow(no-wall-clock, "fixture: shields nothing")
    7
}
