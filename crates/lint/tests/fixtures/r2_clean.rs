use std::collections::{BTreeMap, HashMap};

pub struct Store {
    pages: BTreeMap<u64, u32>,
    scratch: HashMap<u64, u32>,
}

impl Store {
    pub fn digest(&self) -> u64 {
        let mut acc = 0u64;
        for k in self.pages.keys() {
            acc ^= *k;
        }
        acc
    }

    pub fn lookup(&self, k: u64) -> Option<u32> {
        self.scratch.get(&k).copied()
    }
}
