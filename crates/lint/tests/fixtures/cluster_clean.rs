use std::collections::BTreeMap;

pub struct Arbiter {
    shares: BTreeMap<u8, u32>,
}

impl Arbiter {
    pub fn split(&self, pool: u32, now: u64) -> Vec<(u8, u32, u64)> {
        let total: u32 = self.shares.values().sum();
        let mut out = Vec::new();
        for (tenant, share) in &self.shares {
            out.push((*tenant, pool * share / total.max(1), now));
        }
        out
    }
}
