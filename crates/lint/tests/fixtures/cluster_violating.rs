use std::collections::HashMap;

pub struct Arbiter {
    shares: HashMap<u8, u32>,
}

impl Arbiter {
    pub fn split(&self, pool: u32) -> Vec<(u8, u32)> {
        let epoch = std::time::Instant::now();
        let total: u32 = self.shares.values().sum();
        let mut out = Vec::new();
        for (tenant, share) in self.shares.iter() {
            out.push((*tenant, pool * share / total.max(1)));
        }
        let _ = epoch.elapsed();
        out
    }
}
