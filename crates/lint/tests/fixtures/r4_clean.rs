pub struct Sink;

impl Sink {
    pub fn emit(&self, _t: u64, _what: u32) {}
}

pub fn log(sink: &Sink, now: u64) {
    sink.emit(now, 1);
    sink.emit(now + 3, 2);
}
