pub type Ns = u64;

pub fn pace(now: Ns, step: Ns) -> Ns {
    now + step
}
