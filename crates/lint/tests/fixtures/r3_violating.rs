pub fn take(slot: Option<u32>) -> u32 {
    slot.unwrap()
}

pub fn must(slot: Option<u32>) -> u32 {
    slot.expect("slot")
}

pub fn never() -> u32 {
    panic!("boom")
}
