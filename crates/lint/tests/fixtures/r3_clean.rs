pub fn take(slot: Option<u32>) -> Result<u32, &'static str> {
    slot.ok_or("empty slot")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(super::take(Some(3)).unwrap(), 3);
    }
}
