pub fn arm(cal: &Calendar, now: Ns, saved_deadline: Ns) {
    cal.schedule(1000, SchedEvent::ReclaimTick);
    cal.schedule(saved_deadline, SchedEvent::ReclaimTick);
    cal.schedule(now + 10, SchedEvent::ReclaimTick);
}
