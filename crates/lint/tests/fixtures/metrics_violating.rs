use std::collections::HashMap;

pub struct Registry {
    counters: HashMap<String, u64>,
}

impl Registry {
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let started = std::time::Instant::now();
        let mut out = Vec::new();
        for name in self.counters.keys() {
            out.push((name.clone(), 0));
        }
        let _ = started.elapsed();
        out
    }
}
