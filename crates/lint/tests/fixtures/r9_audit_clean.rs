pub fn consume(ev: &TraceEvent) -> u32 {
    match ev {
        TraceEvent::Fault { .. } => 1,
        TraceEvent::Evict { .. } => 2,
    }
}
