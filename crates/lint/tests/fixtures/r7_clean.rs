use std::cell::RefCell;
use std::rc::Rc;

pub struct Endpoint {
    n: u64,
}

pub struct Pool {
    ep: Rc<RefCell<Endpoint>>,
}

impl Pool {
    pub fn peek(&self) -> u64 {
        self.ep.borrow().n
    }

    pub fn poke(&self) -> u64 {
        {
            let mut g = self.ep.borrow_mut();
            g.n = g.n.saturating_add(1);
        }
        self.peek()
    }
}
