pub fn jitter(seed: u64) -> u64 {
    let mut rng = dilos_sim::rng::SplitMix64::new(seed);
    rng.next_u64()
}
