pub fn pick(v: &[u64]) -> u64 {
    // dilos-lint: allow(no-wall-clock, "fixture: names the wrong rule")
    let first = v.first().unwrap();
    *first
}
