use std::collections::HashMap;

pub struct Store {
    pages: HashMap<u64, u32>,
}

impl Store {
    pub fn digest(&self) -> u64 {
        let mut acc = 0u64;
        for k in self.pages.keys() {
            acc ^= *k;
        }
        acc
    }
}
