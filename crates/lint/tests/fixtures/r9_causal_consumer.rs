/// A causal-tracer style consumer: groups events into span trees. It
/// matches every variant, but it is an *observer*, not an auditor — R9
/// must not count it as audit coverage.
pub fn record(ev: &TraceEvent) -> u32 {
    match ev {
        TraceEvent::Fault { vpn } => (*vpn) as u32,
        TraceEvent::Evict { vpn } => (*vpn + 1) as u32,
    }
}
