pub fn roll() -> u8 {
    rand::random()
}

pub fn jitter() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}
