pub fn arm(cal: &Calendar, now: Ns, cfg: &Cfg) {
    cal.schedule(now + cfg.tick_interval, SchedEvent::ReclaimTick);
}
