use std::collections::BTreeMap;

pub struct Registry {
    counters: BTreeMap<String, u64>,
}

impl Registry {
    pub fn snapshot(&self, now: u64) -> Vec<(String, u64, u64)> {
        let mut out = Vec::new();
        for (name, v) in &self.counters {
            out.push((name.clone(), *v, now));
        }
        out
    }
}
