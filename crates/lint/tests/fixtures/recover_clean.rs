use std::collections::BTreeMap;

pub struct DurableLog {
    pending: BTreeMap<u64, Vec<u8>>,
}

impl DurableLog {
    pub fn replay_all(&self, now: u64) -> (u64, u64) {
        let depth = self.pending.len() as u64;
        let mut replayed = 0;
        for (seq, record) in &self.pending {
            replayed += *seq + record.len() as u64;
        }
        (replayed + depth, now)
    }
}
