use std::collections::HashMap;

pub struct DurableLog {
    pending: HashMap<u64, Vec<u8>>,
}

impl DurableLog {
    pub fn replay_all(&self) -> u64 {
        let t0 = std::time::Instant::now();
        let depth: u64 = self.pending.values().map(|r| r.len() as u64).sum();
        let mut replayed = 0;
        for (seq, record) in self.pending.iter() {
            replayed += *seq + record.len() as u64;
        }
        let _ = t0.elapsed();
        replayed + depth
    }
}
