//! `dilos-bench` — the harness that regenerates every table and figure of
//! the DiLOS paper.
//!
//! Each experiment is a library function returning a [`table::Report`], so
//! the Criterion benches (`benches/`) and the `repro` binary share one
//! implementation. The experiment ↔ paper mapping lives in DESIGN.md; the
//! measured-vs-paper comparison in EXPERIMENTS.md.

#![forbid(unsafe_code)]

pub mod ablation;
pub mod apps_exp;
pub mod loadgen;
pub mod micro;
pub mod recover;
pub mod redis_exp;
pub mod serve;
pub mod simbench;
pub mod table;
pub mod telemetry;
pub mod timeline;

pub use table::Report;
