//! Self-benchmark for `dilos-lint`: scans the whole workspace twice and
//! writes `BENCH_lint.json` (lines/sec, files, findings) so the linter's
//! throughput is tracked PR-over-PR like the paper benchmarks.
//!
//! The two scans double as a determinism check: their JSON reports must
//! be byte-identical or this binary exits non-zero. Host timing is fine
//! here — this is the bench crate, outside rule R1's scope.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let root = workspace_root();
    let lines: u64 = count_workspace_lines(&root);

    let t0 = Instant::now();
    let first = match dilos_lint::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint_bench: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    let cold = t0.elapsed();

    let t1 = Instant::now();
    let second = match dilos_lint::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint_bench: rescan failed: {e}");
            return ExitCode::from(2);
        }
    };
    let warm = t1.elapsed();

    if first.to_json() != second.to_json() {
        eprintln!("lint_bench: two scans disagree — linter is nondeterministic");
        return ExitCode::FAILURE;
    }

    let cold_s = cold.as_secs_f64().max(1e-9);
    let warm_s = warm.as_secs_f64().max(1e-9);
    let json = format!(
        "{{\n  \"bench\": \"dilos-lint workspace scan\",\n  \"files_scanned\": {},\n  \"lines_scanned\": {},\n  \"violations\": {},\n  \"suppressions\": {},\n  \"cold_scan_ms\": {:.3},\n  \"warm_scan_ms\": {:.3},\n  \"lines_per_sec_cold\": {:.0},\n  \"lines_per_sec_warm\": {:.0},\n  \"scans_identical\": true\n}}\n",
        first.files_scanned,
        lines,
        first.violations.len(),
        first.suppressions.len(),
        cold_s * 1e3,
        warm_s * 1e3,
        lines as f64 / cold_s,
        lines as f64 / warm_s,
    );
    let out = root.join("BENCH_lint.json");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("lint_bench: writing {}: {e}", out.display());
        return ExitCode::from(2);
    }
    print!("{json}");
    ExitCode::SUCCESS
}

/// Total source lines the scan covers (same traversal filters as the
/// linter: skips hidden dirs, target, and the fixture corpus).
fn count_workspace_lines(root: &PathBuf) -> u64 {
    fn walk(root: &PathBuf, dir: &PathBuf, total: &mut u64) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for e in entries.flatten() {
            let path = e.path();
            let name = e.file_name().to_string_lossy().into_owned();
            if path.is_dir() {
                let rel = path
                    .strip_prefix(root)
                    .map(|r| r.to_string_lossy().replace(std::path::MAIN_SEPARATOR, "/"))
                    .unwrap_or_default();
                if name.starts_with('.')
                    || name == "target"
                    || name == "node_modules"
                    || rel == "crates/lint/tests/fixtures"
                {
                    continue;
                }
                walk(root, &path, total);
            } else if name.ends_with(".rs") {
                if let Ok(src) = std::fs::read_to_string(&path) {
                    *total += src.lines().count() as u64;
                }
            }
        }
    }
    let mut total = 0;
    walk(root, root, &mut total);
    total
}

/// Walks up from the current directory to the first `Cargo.toml` declaring
/// a `[workspace]`; falls back to the current directory.
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.clone();
    loop {
        if let Ok(text) = std::fs::read_to_string(dir.join("Cargo.toml")) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return cwd;
        }
    }
}
