//! Self-benchmark for the simulator core: runs the tab01 and serve
//! workloads twice, checks the two runs' censuses (events, faults, digests)
//! are identical, and writes `BENCH_sim.json` at the workspace root so the
//! event loop's throughput is tracked PR-over-PR like `BENCH_lint.json`.
//!
//! Every host-timing-derived value lives in the single `"wall_clock"` line;
//! the rest of the file is byte-stable, so CI compares two fresh runs with
//! `grep -v '"wall_clock"' | cmp`. Host timing is fine here — this is the
//! bench crate, outside rule R1's scope.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use dilos_bench::micro::MicroScale;
use dilos_bench::serve::ServeScale;
use dilos_bench::simbench::{census_json, census_serve, census_tab01, WorkloadCensus};

fn main() -> ExitCode {
    let micro = MicroScale::default();
    let serve = ServeScale::default();

    let run = || -> (Vec<WorkloadCensus>, Vec<f64>) {
        let mut censuses = Vec::new();
        let mut elapsed_ms = Vec::new();
        let t0 = Instant::now();
        censuses.push(census_tab01(micro));
        elapsed_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        let t1 = Instant::now();
        censuses.push(census_serve(serve));
        elapsed_ms.push(t1.elapsed().as_secs_f64() * 1e3);
        (censuses, elapsed_ms)
    };

    let (cold, cold_ms) = run();
    let (warm, warm_ms) = run();
    if census_json(&cold) != census_json(&warm) {
        eprintln!("sim_bench: two runs disagree — the simulator is nondeterministic");
        return ExitCode::FAILURE;
    }

    // Rates come from the warm run (allocator and caches settled).
    let mut wall = String::from("  \"wall_clock\": {");
    for (i, c) in warm.iter().enumerate() {
        let warm_s = (warm_ms[i] / 1e3).max(1e-9);
        let _ = std::fmt::Write::write_fmt(
            &mut wall,
            format_args!(
                "{}\"{id}_cold_ms\": {:.3}, \"{id}_warm_ms\": {:.3}, \
                 \"{id}_events_per_sec\": {:.0}, \"{id}_faults_per_sec\": {:.0}",
                if i > 0 { ", " } else { "" },
                cold_ms[i],
                warm_ms[i],
                c.events as f64 / warm_s,
                c.faults as f64 / warm_s,
                id = c.id,
            ),
        );
    }
    wall.push('}');

    let json = format!(
        "{{\n  \"bench\": \"dilos-sim event loop (tab01 + serve)\",\n{},\n  \
         \"runs_identical\": true,\n{wall}\n}}\n",
        census_json(&warm),
    );
    let out = workspace_root().join("BENCH_sim.json");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("sim_bench: writing {}: {e}", out.display());
        return ExitCode::from(2);
    }
    print!("{json}");
    for (i, c) in warm.iter().enumerate() {
        let warm_s = (warm_ms[i] / 1e3).max(1e-9);
        eprintln!(
            "sim_bench: {} — {:.0} events/sec, {:.0} faults/sec ({} events, {} faults, {:.1} ms)",
            c.id,
            c.events as f64 / warm_s,
            c.faults as f64 / warm_s,
            c.events,
            c.faults,
            warm_ms[i],
        );
    }
    ExitCode::SUCCESS
}

/// Walks up from the current directory to the first `Cargo.toml` declaring
/// a `[workspace]`; falls back to the current directory.
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.clone();
    loop {
        if let Ok(text) = std::fs::read_to_string(dir.join("Cargo.toml")) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return cwd;
        }
    }
}
