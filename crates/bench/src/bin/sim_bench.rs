//! Self-benchmark for the simulator core: runs the tab01 and serve
//! workloads twice, checks the two runs' censuses (events, faults, digests)
//! are identical, and writes `BENCH_sim.json` at the workspace root so the
//! event loop's throughput is tracked PR-over-PR like `BENCH_lint.json`.
//!
//! Every host-timing-derived value lives in the single `"wall_clock"` line;
//! the rest of the file is byte-stable, so CI compares two fresh runs with
//! `grep -v '"wall_clock"' | cmp`. Host timing is fine here — this is the
//! bench crate, outside rule R1's scope.
//!
//! `BENCH_sim.json` is a *trajectory*, not a snapshot: the `wall_clock`
//! object carries a `history` array with one entry per revision (events/s
//! and faults/s keyed by `git` short rev). A rerun at the same rev replaces
//! its own entry — so CI's double run stays idempotent — while a new rev
//! appends, and the delta vs the previous entry is printed for the job
//! summary (lines prefixed `sim_bench: delta`).

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use dilos_bench::micro::MicroScale;
use dilos_bench::serve::ServeScale;
use dilos_bench::simbench::{census_json, census_serve, census_tab01, WorkloadCensus};

fn main() -> ExitCode {
    let micro = MicroScale::default();
    let serve = ServeScale::default();

    let run = || -> (Vec<WorkloadCensus>, Vec<f64>) {
        let mut censuses = Vec::new();
        let mut elapsed_ms = Vec::new();
        let t0 = Instant::now();
        censuses.push(census_tab01(micro));
        elapsed_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        let t1 = Instant::now();
        censuses.push(census_serve(serve));
        elapsed_ms.push(t1.elapsed().as_secs_f64() * 1e3);
        (censuses, elapsed_ms)
    };

    let (cold, cold_ms) = run();
    let (warm, warm_ms) = run();
    if census_json(&cold) != census_json(&warm) {
        eprintln!("sim_bench: two runs disagree — the simulator is nondeterministic");
        return ExitCode::FAILURE;
    }

    let root = workspace_root();
    let out = root.join("BENCH_sim.json");
    let rev = git_short_rev(&root);

    // Rates come from the warm run (allocator and caches settled).
    let mut wall = String::from("  \"wall_clock\": {");
    for (i, c) in warm.iter().enumerate() {
        let warm_s = (warm_ms[i] / 1e3).max(1e-9);
        let _ = std::fmt::Write::write_fmt(
            &mut wall,
            format_args!(
                "{}\"{id}_cold_ms\": {:.3}, \"{id}_warm_ms\": {:.3}, \
                 \"{id}_events_per_sec\": {:.0}, \"{id}_faults_per_sec\": {:.0}",
                if i > 0 { ", " } else { "" },
                cold_ms[i],
                warm_ms[i],
                c.events as f64 / warm_s,
                c.faults as f64 / warm_s,
                id = c.id,
            ),
        );
    }

    // Trajectory: prior entries for other revs survive; this rev's entry is
    // replaced in place, so a double run (CI's determinism gate) does not
    // grow the file.
    let mut history: Vec<String> = read_history(&out)
        .into_iter()
        .filter(|e| entry_rev(e) != rev)
        .collect();
    let mut entry = format!("{{\"rev\": \"{rev}\"");
    for (i, c) in warm.iter().enumerate() {
        let warm_s = (warm_ms[i] / 1e3).max(1e-9);
        let _ = std::fmt::Write::write_fmt(
            &mut entry,
            format_args!(
                ", \"{id}_events_per_sec\": {:.0}, \"{id}_faults_per_sec\": {:.0}",
                c.events as f64 / warm_s,
                c.faults as f64 / warm_s,
                id = c.id,
            ),
        );
    }
    entry.push('}');

    // Delta vs the previous PR's entry, for the CI job summary.
    if let Some(prev) = history.last() {
        let prev_rev = entry_rev(prev);
        for c in &warm {
            let key = format!("{}_events_per_sec", c.id);
            if let (Some(new), Some(old)) = (entry_num(&entry, &key), entry_num(prev, &key)) {
                let pct = if old > 0.0 { (new / old - 1.0) * 100.0 } else { 0.0 };
                eprintln!(
                    "sim_bench: delta {} events/sec {:+.1}% ({:.0} vs {:.0} @ {prev_rev})",
                    c.id, pct, new, old,
                );
            }
        }
    } else {
        eprintln!("sim_bench: delta — no prior history entry (trajectory starts at {rev})");
    }
    history.push(entry);

    let _ = std::fmt::Write::write_fmt(
        &mut wall,
        format_args!(", \"history\": [{}]}}", history.join(", ")),
    );

    let json = format!(
        "{{\n  \"bench\": \"dilos-sim event loop (tab01 + serve)\",\n{},\n  \
         \"runs_identical\": true,\n{wall}\n}}\n",
        census_json(&warm),
    );
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("sim_bench: writing {}: {e}", out.display());
        return ExitCode::from(2);
    }
    print!("{json}");
    for (i, c) in warm.iter().enumerate() {
        let warm_s = (warm_ms[i] / 1e3).max(1e-9);
        eprintln!(
            "sim_bench: {} — {:.0} events/sec, {:.0} faults/sec ({} events, {} faults, {:.1} ms)",
            c.id,
            c.events as f64 / warm_s,
            c.faults as f64 / warm_s,
            c.events,
            c.faults,
            warm_ms[i],
        );
    }
    ExitCode::SUCCESS
}

/// The repo's short HEAD rev, or `"worktree"` when git is unavailable (the
/// trajectory still works — the single entry just keeps replacing itself).
fn git_short_rev(root: &Path) -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(root)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "worktree".to_string())
}

/// Pulls the `"history": [...]` entries (flat objects, our own format) out
/// of an existing `BENCH_sim.json`. Anything unparseable yields an empty
/// history — the trajectory restarts rather than the bench failing.
fn read_history(path: &Path) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Some(start) = text.find("\"history\": [") else {
        return Vec::new();
    };
    let body = &text[start + "\"history\": [".len()..];
    let Some(end) = body.find(']') else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut depth = 0usize;
    for ch in body[..end].chars() {
        match ch {
            '{' => {
                depth += 1;
                cur.push(ch);
            }
            '}' => {
                depth = depth.saturating_sub(1);
                cur.push(ch);
                if depth == 0 {
                    out.push(std::mem::take(&mut cur));
                }
            }
            _ if depth > 0 => cur.push(ch),
            _ => {}
        }
    }
    out
}

/// The `"rev"` value of a history entry (empty string when malformed).
fn entry_rev(entry: &str) -> String {
    entry
        .split("\"rev\": \"")
        .nth(1)
        .and_then(|r| r.split('"').next())
        .unwrap_or("")
        .to_string()
}

/// A numeric field of a history entry.
fn entry_num(entry: &str, key: &str) -> Option<f64> {
    let tail = entry.split(&format!("\"{key}\": ")).nth(1)?;
    let num: String = tail
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

/// Walks up from the current directory to the first `Cargo.toml` declaring
/// a `[workspace]`; falls back to the current directory.
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.clone();
    loop {
        if let Ok(text) = std::fs::read_to_string(dir.join("Cargo.toml")) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return cwd;
        }
    }
}
