//! `repro` — regenerates every table and figure of the DiLOS paper.
//!
//! Usage:
//!
//! ```text
//! repro [--full] [--only <id>...] [--out <dir>] [--metrics]
//! ```
//!
//! Ids: fig01 fig02 fig06 tab01 tab02 tab03 fig07a fig07b fig07cd fig08
//! fig09 fig10 tab04 fig12 ablation serve recover (`tab03` is an alias
//! for `tab01` — both tables come from the same fault-count run). `--only`
//! accepts any number of ids. Default writes reports to `results/` and
//! prints them; `--full` runs larger (slower) configurations. Alongside
//! the per-id markdown, a machine-readable `bench.json` maps each
//! experiment id that ran to its measured rows, notes, and trace digests;
//! `serve` and `recover` additionally write their own byte-stable
//! `serve.json` / `recover.json` (the CI determinism gate compares two
//! fresh runs of each). `--metrics` also runs the metered tab01 systems
//! and writes `metrics.json`, `timeseries.json`, and `profile.folded` to
//! the output directory. `--timeline` runs the causally-traced systems
//! and writes `timeline.json` / `serve_timeline.json` (Chrome trace-event
//! JSON, openable at ui.perfetto.dev) plus the critical-path tail report
//! `tail.md` / `tail.json`.

use std::io::Write as _;

use dilos_bench::ablation::{ablation_design_choices, ablation_transport, ablation_vector_length};
use dilos_bench::apps_exp::{
    fig07a_quicksort, fig07b_kmeans, fig07cd_snappy, fig08_dataframe, fig09_gapbs, SimpleScale,
};
use dilos_bench::micro::{
    fig01_fastswap_breakdown, fig02_rdma_latency, fig06_latency_breakdown,
    tab01_tab03_fault_counts, tab02_seq_throughput, MicroScale,
};
use dilos_bench::recover::{recover_crash_sweep, RecoverScale};
use dilos_bench::redis_exp::{fig10_redis, fig12_bandwidth, tab04_tail_latency, RedisScale};
use dilos_bench::serve::{serve_qos, ServeScale};
use dilos_bench::Report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let metrics = args.iter().any(|a| a == "--metrics");
    let timeline = args.iter().any(|a| a == "--timeline");
    // `--only` takes every following token up to the next flag. `tab03` is
    // an alias for `tab01` (one run produces both tables).
    let only: Option<Vec<String>> = args.iter().position(|a| a == "--only").map(|i| {
        args[i + 1..]
            .iter()
            .take_while(|a| !a.starts_with("--"))
            .map(|a| {
                if a == "tab03" {
                    "tab01".into()
                } else {
                    a.clone()
                }
            })
            .collect()
    });
    if let Some(ids) = &only {
        if ids.is_empty() {
            eprintln!("[repro] --only requires at least one experiment id");
            std::process::exit(2);
        }
    }
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results".to_string());
    std::fs::create_dir_all(&out_dir).expect("create results dir");

    let micro = if full {
        MicroScale {
            pages: 32_768,
            ratio: 13,
        }
    } else {
        MicroScale::default()
    };
    let simple = if full {
        SimpleScale {
            sort_elements: 1 << 21,
            kmeans_points: 1 << 18,
            snappy_bytes: 4 << 20,
        }
    } else {
        SimpleScale::default()
    };
    let redis = if full {
        RedisScale {
            keys_4k: 2_048,
            keys_64k: 128,
            keys_mixed: 192,
            lists: 128,
            list_elements: 25_600,
            queries: 2_000,
        }
    } else {
        RedisScale::default()
    };
    let serve = if full {
        ServeScale {
            victim_requests: 2_000,
            victim_mean_ns: 50_000,
            noisy_requests: 600,
        }
    } else {
        ServeScale::default()
    };
    let recover = if full {
        RecoverScale {
            pages: 1_024,
            local_pages: 128,
            rw_ops: 2_000,
        }
    } else {
        RecoverScale::default()
    };
    let taxi_rows = if full { 60_000 } else { 16_000 };
    let graph_scale = if full { 13 } else { 11 };
    let fig12_keys = if full { 16_384 } else { 4_096 };

    type Experiment = (&'static str, Box<dyn FnOnce() -> Report>);
    let experiments: Vec<Experiment> = vec![
        ("fig01", Box::new(move || fig01_fastswap_breakdown(micro))),
        ("fig02", Box::new(fig02_rdma_latency)),
        ("tab01", Box::new(move || tab01_tab03_fault_counts(micro))),
        ("tab02", Box::new(move || tab02_seq_throughput(micro))),
        ("fig06", Box::new(move || fig06_latency_breakdown(micro))),
        ("fig07a", Box::new(move || fig07a_quicksort(simple))),
        ("fig07b", Box::new(move || fig07b_kmeans(simple))),
        ("fig07cd", Box::new(move || fig07cd_snappy(simple))),
        ("fig08", Box::new(move || fig08_dataframe(taxi_rows))),
        ("fig09", Box::new(move || fig09_gapbs(graph_scale))),
        ("fig10", Box::new(move || fig10_redis(redis))),
        ("tab04", Box::new(move || tab04_tail_latency(redis))),
        (
            "fig12",
            Box::new(move || fig12_bandwidth(fig12_keys, 2_000)),
        ),
        ("serve", Box::new(move || serve_qos(serve))),
        ("recover", Box::new(move || recover_crash_sweep(recover))),
        (
            "ablation",
            Box::new(move || {
                let mut a = ablation_design_choices(micro.pages);
                for extra in [ablation_vector_length(256), ablation_transport(micro.pages)] {
                    a.notes.push(String::new());
                    a.notes.extend(extra.render().lines().map(String::from));
                }
                a
            }),
        ),
    ];

    let known: Vec<&str> = experiments.iter().map(|(id, _)| *id).collect();
    if let Some(ids) = &only {
        if let Some(bad) = ids.iter().find(|o| !known.contains(&o.as_str())) {
            eprintln!(
                "[repro] unknown experiment id {bad:?}; known: {}",
                known.join(" ")
            );
            std::process::exit(2);
        }
    }

    let mut combined = String::new();
    let mut json_entries: Vec<String> = Vec::new();
    for (id, run) in experiments {
        if let Some(ids) = &only {
            if !ids.iter().any(|o| o == id) {
                continue;
            }
        }
        eprintln!("[repro] running {id} …");
        let t0 = std::time::Instant::now();
        let report = run();
        let rendered = report.render();
        eprintln!("[repro] {id} done in {:.1?}", t0.elapsed());
        println!("{rendered}");
        combined.push_str(&rendered);
        combined.push('\n');
        let path = format!("{out_dir}/{id}.md");
        std::fs::write(&path, &rendered).expect("write report");
        if id == "serve" || id == "recover" {
            // These tables get their own byte-stable artifacts so the CI
            // determinism gate can `cmp` two fresh runs of just them.
            std::fs::write(format!("{out_dir}/{id}.json"), report.to_json())
                .expect("write per-id json");
        }
        json_entries.push(format!("  \"{id}\": {}", report.to_json()));
    }
    let mut f = std::fs::File::create(format!("{out_dir}/all.md")).expect("create all.md");
    f.write_all(combined.as_bytes()).expect("write all.md");
    let json = format!("{{\n{}\n}}\n", json_entries.join(",\n"));
    std::fs::write(format!("{out_dir}/bench.json"), json).expect("write bench.json");
    eprintln!("[repro] reports written to {out_dir}/ (machine-readable: {out_dir}/bench.json)");
    if metrics {
        eprintln!("[repro] running metered telemetry pass …");
        let report =
            dilos_bench::telemetry::write_artifacts(micro, &out_dir).expect("write telemetry");
        println!("{}", report.render());
        eprintln!(
            "[repro] telemetry written to {out_dir}/metrics.json, {out_dir}/timeseries.json, \
             {out_dir}/profile.folded"
        );
    }
    if timeline {
        eprintln!("[repro] running causal timeline pass …");
        let report = dilos_bench::timeline::write_timeline_artifacts(micro, serve, &out_dir)
            .expect("write timeline");
        println!("{}", report.render());
        eprintln!(
            "[repro] timelines written to {out_dir}/timeline.json, \
             {out_dir}/serve_timeline.json; tail report in {out_dir}/tail.md, {out_dir}/tail.json"
        );
    }
}
