//! Application experiments: Figures 7, 8, and 9.

use std::cell::RefCell;
use std::rc::Rc;

use dilos_apps::dataframe::TaxiWorkload;
use dilos_apps::farmem::{SystemKind, SystemSpec};
use dilos_apps::gapbs::{GraphGuide, GraphWorkload};
use dilos_apps::kmeans::KmeansWorkload;
use dilos_apps::quicksort::QuicksortWorkload;
use dilos_apps::snappy::SnappyWorkload;
use dilos_core::{Dilos, DilosConfig, Readahead};

use crate::table::{ms, Report};

/// The local-memory ratios the paper sweeps.
pub const RATIOS: [u32; 4] = [13, 25, 50, 100];

/// Scale for the Figure 7 simple benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct SimpleScale {
    /// Quicksort elements (paper: 2048 M).
    pub sort_elements: usize,
    /// K-means points (paper: 15 M).
    pub kmeans_points: usize,
    /// Snappy input bytes (paper: 16 GB).
    pub snappy_bytes: usize,
}

impl Default for SimpleScale {
    fn default() -> Self {
        Self {
            sort_elements: 1 << 19,
            kmeans_points: 65_536,
            snappy_bytes: 1 << 20,
        }
    }
}

/// Figure 7(a): quicksort completion time vs local memory ratio.
pub fn fig07a_quicksort(scale: SimpleScale) -> Report {
    let mut report = Report::new(
        "Figure 7(a) — quicksort completion time (ms)",
        &["system", "12.5%", "25%", "50%", "100%"],
    );
    let wl = QuicksortWorkload {
        elements: scale.sort_elements,
        seed: 42,
    };
    let ws = (scale.sort_elements * 8) as u64;
    for kind in [
        SystemKind::Fastswap,
        SystemKind::DilosNoPrefetch,
        SystemKind::DilosReadahead,
    ] {
        let mut row = vec![kind.label().to_string()];
        for ratio in RATIOS {
            let mut mem = SystemSpec::for_working_set(kind, ws, ratio).boot();
            let arr = wl.populate(mem.as_mut());
            let elapsed = wl.sort(mem.as_mut(), arr);
            assert!(wl.verify(mem.as_mut(), arr), "sort must be correct");
            row.push(ms(elapsed));
        }
        report.row(row);
    }
    report.note("Paper: Fastswap degrades 39 % from 100 % to 12.5 %; DiLOS only 12 % (1.39× gap).");
    report
}

/// Figure 7(b): k-means completion time vs local memory ratio.
pub fn fig07b_kmeans(scale: SimpleScale) -> Report {
    let mut report = Report::new(
        "Figure 7(b) — k-means completion time (ms)",
        &["system", "12.5%", "25%", "50%", "100%"],
    );
    let wl = KmeansWorkload {
        points: scale.kmeans_points,
        k: 10,
        max_iters: 6,
        seed: 7,
    };
    // Points + assignment arrays.
    let ws = (scale.kmeans_points * 16) as u64;
    for kind in [
        SystemKind::Fastswap,
        SystemKind::DilosNoPrefetch,
        SystemKind::DilosReadahead,
    ] {
        let mut row = vec![kind.label().to_string()];
        for ratio in RATIOS {
            let mut mem = SystemSpec::for_working_set(kind, ws, ratio).boot();
            let pts = wl.populate(mem.as_mut());
            let r = wl.run(mem.as_mut(), pts);
            row.push(ms(r.elapsed));
        }
        report.row(row);
    }
    report.note("Paper: DiLOS up to 2.71× faster than Fastswap at 12.5 %.");
    report
}

/// Figure 7(c,d): Snappy compression/decompression vs local memory ratio,
/// including AIFM and DiLOS-TCP.
pub fn fig07cd_snappy(scale: SimpleScale) -> Report {
    let mut report = Report::new(
        "Figure 7(c,d) — snappy compress+decompress completion time (ms)",
        &["system", "12.5%", "25%", "50%", "100%"],
    );
    let wl = SnappyWorkload {
        input_bytes: scale.snappy_bytes,
        seed: 3,
    };
    let ws = scale.snappy_bytes as u64 * 2;
    for kind in [
        SystemKind::Fastswap,
        SystemKind::DilosReadahead,
        SystemKind::DilosTcp,
        SystemKind::Aifm,
    ] {
        let mut row = vec![kind.label().to_string()];
        for ratio in RATIOS {
            let mut mem = SystemSpec::for_working_set(kind, ws, ratio).boot();
            let src = wl.populate(mem.as_mut());
            let r = wl.roundtrip_far(mem.as_mut(), src);
            row.push(ms(r.elapsed));
        }
        report.row(row);
    }
    report.note("Paper at 12.5 %: AIFM best; DiLOS within 7–9 %, DiLOS-TCP 17–23 %, Fastswap 35–40 % behind.");
    report.note("At 100 %: AIFM similar or slower (per-deref checks).");
    report
}

/// Figure 8: DataFrame NYC-taxi analysis completion time vs local memory.
pub fn fig08_dataframe(rows: usize) -> Report {
    let mut report = Report::new(
        "Figure 8 — DataFrame NYC taxi completion time (ms)",
        &["system", "12.5%", "25%", "50%", "100%"],
    );
    let wl = TaxiWorkload { rows, seed: 17 };
    for kind in [
        SystemKind::Fastswap,
        SystemKind::DilosReadahead,
        SystemKind::DilosTcp,
        SystemKind::Aifm,
    ] {
        let mut row = vec![kind.label().to_string()];
        for ratio in RATIOS {
            let mut mem = SystemSpec::for_working_set(kind, wl.working_set(), ratio).boot();
            let t = wl.populate(mem.as_mut());
            let a = wl.analyze(mem.as_mut(), &t);
            row.push(ms(a.elapsed));
        }
        report.row(row);
    }
    report.note(
        "Paper: at 100 % AIFM is 50–83 % slower; DiLOS beats AIFM by 54 % (RDMA) / 14 % (TCP).",
    );
    report.note(
        "Fastswap's completion more than doubles as memory shrinks; DiLOS/AIFM rise slightly.",
    );
    report
}

/// Figure 9: GAPBS PageRank and betweenness centrality vs local memory.
pub fn fig09_gapbs(scale: u32) -> Report {
    let mut report = Report::new(
        "Figure 9 — GAPBS processing time (ms), 4 threads",
        &["kernel", "system", "12.5%", "25%", "50%", "100%"],
    );
    // Twitter (the paper's dataset) is dense: ~35 edges per vertex. A high
    // edge factor keeps the same shape — per-vertex state is the hot random
    // set, the CSR is the streamed bulk.
    let wl = GraphWorkload {
        scale,
        edge_factor: 32,
        seed: 21,
        threads: 4,
    };
    for kernel in ["PageRank", "BC"] {
        for kind in [SystemKind::Fastswap, SystemKind::DilosReadahead] {
            let mut row = vec![kernel.to_string(), kind.label().to_string()];
            for ratio in RATIOS {
                let mut spec = SystemSpec::for_working_set(kind, wl.working_set(), ratio);
                spec.cores = wl.threads;
                let mut mem = spec.boot();
                let g = wl.build(mem.as_mut());
                let elapsed = match kernel {
                    "PageRank" => wl.pagerank(mem.as_mut(), &g, 5).1,
                    _ => wl.betweenness(mem.as_mut(), &g, 2).1,
                };
                row.push(ms(elapsed));
            }
            report.row(row);
        }
    }
    // Extra row beyond the paper: the app-aware CSR guide on BC (the §4.3
    // guide API applied to a second application domain).
    {
        let mut row = vec!["BC".to_string(), "DiLOS app-aware".to_string()];
        for ratio in RATIOS {
            let local_pages = ((wl.working_set() / 4096) * ratio as u64 / 100).max(32) as usize;
            let mut node = Dilos::new(DilosConfig {
                local_pages,
                remote_bytes: (wl.working_set() * 4).next_power_of_two(),
                cores: wl.threads,
                ..DilosConfig::default()
            });
            node.set_prefetcher(Box::new(Readahead::new()));
            let g = wl.build(&mut node);
            let guide = Rc::new(RefCell::new(GraphGuide::new(&g)));
            node.set_prefetch_guide(guide.clone());
            let (_, elapsed) = wl.betweenness_hooked(&mut node, &g, 2, Some(&guide));
            row.push(ms(elapsed));
        }
        report.row(row);
    }
    report.note("Paper: DiLOS up to 76 % faster on BC at 12.5 %; Fastswap can win PR at 50–100 % (OSv sync overhead).");
    report.note(
        "The app-aware BC row is this reproduction's extension: the guide API on CSR traversal.",
    );
    report
}
