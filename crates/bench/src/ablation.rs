//! Ablation experiments for the design choices §6 enumerates.
//!
//! Each DiLOS design decision is toggleable in `DilosConfig`; this bench
//! quantifies what each one buys on the sequential-read workload, plus a
//! vector-length sweep for guided paging (the §6.3 "no longer than three"
//! finding).

use std::cell::RefCell;
use std::rc::Rc;

use dilos_alloc::Heap;
use dilos_apps::farmem::Introspect;
use dilos_apps::seqrw::SeqWorkload;
use dilos_core::{Dilos, DilosConfig, HeapPagingGuide, Readahead};

use crate::table::{f2, us, Report};

fn boot(pages: usize, ratio: u32, tweak: impl Fn(&mut DilosConfig)) -> Dilos {
    let local_pages = ((pages as u64 * ratio as u64) / 100).max(32) as usize;
    let mut cfg = DilosConfig {
        local_pages,
        remote_bytes: ((pages * 4096 * 2) as u64).next_power_of_two().max(1 << 24),
        ..DilosConfig::default()
    };
    tweak(&mut cfg);
    let mut node = Dilos::new(cfg);
    node.set_prefetcher(Box::new(Readahead::new()));
    node
}

/// The design-choice ablation: sequential read with each DiLOS feature
/// individually disabled.
pub fn ablation_design_choices(pages: usize) -> Report {
    let mut report = Report::new(
        "Ablation — DiLOS design choices, sequential read+write (12.5 % local)",
        &[
            "config",
            "read GB/s",
            "write GB/s",
            "avg fault (µs)",
            "major",
            "minor",
        ],
    );
    #[allow(clippy::type_complexity)]
    let cases: Vec<(&str, Box<dyn Fn(&mut DilosConfig)>)> = vec![
        ("DiLOS (full)", Box::new(|_: &mut DilosConfig| {})),
        (
            "+ swap cache (Linux-style)",
            Box::new(|c| c.swap_cache_mode = true),
        ),
        (
            "+ direct reclaim (in handler)",
            Box::new(|c| c.direct_reclaim = true),
        ),
        (
            "+ shared queue (HoL blocking)",
            Box::new(|c| c.shared_queue = true),
        ),
        ("- hit tracker", Box::new(|c| c.hit_tracker = false)),
    ];
    for (label, tweak) in cases {
        let mut node = boot(pages, 13, &tweak);
        let wl = SeqWorkload { pages };
        let base = wl.populate(&mut node);
        let r = wl.read_pass(&mut node, base);
        let s = *node.stats();
        let mut node2 = boot(pages, 13, &tweak);
        let base2 = wl.populate(&mut node2);
        let w = wl.write_pass(&mut node2, base2);
        report.row(vec![
            label.to_string(),
            f2(r.gbps()),
            f2(w.gbps()),
            us(s.breakdown.avg_total()),
            s.major_faults.to_string(),
            s.minor_faults.to_string(),
        ]);
    }
    report
        .note("Each row re-adds one overhead DiLOS's design removes; the full config should lead.");
    report
}

/// §5.1's transport discussion: the DiLOS design choices still pay off when
/// far memory is an NVMe drive instead of RDMA — the I/O is slower, so the
/// *relative* win shrinks, but the ordering holds.
pub fn ablation_transport(pages: usize) -> Report {
    use dilos_baselines::{Fastswap, FastswapConfig};
    use dilos_sim::SimConfig;
    let mut report = Report::new(
        "Ablation — transport: RDMA vs NVMe far memory (12.5 % local, seq read)",
        &["transport", "system", "GB/s", "avg fault (µs)"],
    );
    let local_pages = ((pages as u64 * 13) / 100).max(32) as usize;
    for (label, sim) in [
        ("RDMA 100GbE", SimConfig::default()),
        ("NVMe", SimConfig::nvme()),
    ] {
        // DiLOS.
        let mut cfg = DilosConfig {
            local_pages,
            remote_bytes: ((pages * 4096 * 2) as u64).next_power_of_two().max(1 << 24),
            ..DilosConfig::default()
        };
        cfg.sim = sim.clone();
        let mut node = Dilos::new(cfg);
        node.set_prefetcher(Box::new(Readahead::new()));
        let wl = SeqWorkload { pages };
        let base = wl.populate(&mut node);
        let r = wl.read_pass(&mut node, base);
        report.row(vec![
            label.to_string(),
            "DiLOS readahead".to_string(),
            f2(r.gbps()),
            us(node.stats().breakdown.avg_total()),
        ]);
        // Fastswap.
        let mut fcfg = FastswapConfig {
            local_pages,
            remote_bytes: ((pages * 4096 * 2) as u64).next_power_of_two().max(1 << 24),
            ..FastswapConfig::default()
        };
        fcfg.sim = sim;
        let mut fsw = Fastswap::new(fcfg);
        let base = wl.populate(&mut fsw);
        let r = wl.read_pass(&mut fsw, base);
        report.row(vec![
            label.to_string(),
            "Fastswap".to_string(),
            f2(r.gbps()),
            us(fsw.stats().breakdown.avg_total()),
        ]);
    }
    report.note("§5.1: with NVMe the I/O dominates, shrinking (not erasing) DiLOS's software win.");
    report
}

/// The scatter/gather vector-length sweep (§6.3: vectors longer than three
/// slow down).
pub fn ablation_vector_length(pages: usize) -> Report {
    let mut report = Report::new(
        "Ablation — guided-paging vector length cap",
        &[
            "max segments",
            "elapsed (µs)",
            "rx bytes",
            "fetch bytes saved",
        ],
    );
    for cap in [1usize, 2, 3, 6, 12] {
        let mut node = boot(pages, 25, |_| {});
        let heap_bytes = (pages * 4096 / 2) as u64;
        let base = node.ddc_alloc(heap_bytes as usize);
        let heap = Rc::new(RefCell::new(Heap::new(base, heap_bytes)));
        node.set_paging_guide(Rc::new(RefCell::new(HeapPagingGuide::new(
            Rc::clone(&heap),
            cap,
        ))));
        // Build a fragmented heap: allocate 64 B objects, free 3 of every 4.
        let mut vas = Vec::new();
        let count = pages * 16;
        for _ in 0..count {
            vas.push(heap.borrow_mut().malloc(64).expect("heap sized for this"));
        }
        for (i, va) in vas.iter().enumerate() {
            if i % 4 != 0 {
                heap.borrow_mut().free(*va).expect("live");
            }
        }
        let live: Vec<u64> = vas.iter().copied().step_by(4).collect();
        for &va in &live {
            node.write(0, va, &[0xAB; 64]);
        }
        // Churn to force the fragmented pages out, then read the survivors.
        let churn_pages = node.config().local_pages * 4;
        let churn = node.ddc_alloc(churn_pages * 4096);
        for p in 0..churn_pages as u64 {
            node.write_u64(0, churn + p * 4096, p);
        }
        let t0 = node.now(0);
        let mut buf = [0u8; 64];
        for &va in &live {
            Dilos::read(&mut node, 0, va, &mut buf);
        }
        let elapsed = node.now(0) - t0;
        let (_, rx) = Introspect::net_bytes(&node);
        report.row(vec![
            cap.to_string(),
            us(elapsed),
            rx.to_string(),
            node.stats().fetch_bytes_saved.to_string(),
        ]);
    }
    report.note("Past three segments the per-segment penalty outweighs the bytes saved (§6.3).");
    report
}
