//! Microbenchmark experiments: Figures 1, 2, 6 and Tables 1, 2, 3.

use dilos_apps::farmem::{SystemKind, SystemSpec};
use dilos_apps::seqrw::SeqWorkload;
use dilos_baselines::{Fastswap, FastswapConfig};
use dilos_sim::{Observability, RdmaEndpoint, ServiceClass, SimConfig, PAGE_SIZE};

use crate::table::{f2, us, Report};

/// Scale factor: pages in the sequential region (the paper uses 20 GB /
/// 5.24 M pages; the default here keeps each run under a second).
#[derive(Debug, Clone, Copy)]
pub struct MicroScale {
    /// Region size in pages.
    pub pages: usize,
    /// Local cache ratio in percent (paper: 12.5).
    pub ratio: u32,
}

impl Default for MicroScale {
    fn default() -> Self {
        Self {
            pages: 4_096,
            ratio: 13,
        }
    }
}

fn fastswap_at(pages: usize, ratio: u32, offload_percent: u32, traced: bool) -> Fastswap {
    let ws = (pages * PAGE_SIZE) as u64;
    let local_pages = ((pages as u64 * ratio as u64) / 100).max(32) as usize;
    let obs = if traced {
        Observability::tracing()
    } else {
        Observability::none()
    };
    let mut cfg = FastswapConfig {
        local_pages,
        remote_bytes: (ws * 2).next_power_of_two().max(1 << 24),
        obs,
        ..FastswapConfig::default()
    };
    cfg.costs.offload_percent = offload_percent;
    Fastswap::new(cfg)
}

/// Figure 1: Fastswap's page-fault latency breakdown, average vs
/// no-reclamation (all reclaim offloaded).
pub fn fig01_fastswap_breakdown(scale: MicroScale) -> Report {
    let mut report = Report::new(
        "Figure 1 — Fastswap page-fault latency breakdown (µs)",
        &[
            "config",
            "exception",
            "swap-cache",
            "page-alloc",
            "fetch",
            "reclaim",
            "map",
            "total",
        ],
    );
    for (label, offload) in [("average", 50u32), ("no reclamation", 100)] {
        let mut n = fastswap_at(scale.pages, scale.ratio, offload, false);
        let wl = SeqWorkload { pages: scale.pages };
        let base = wl.populate(&mut n);
        wl.read_pass(&mut n, base);
        let b = n.stats().breakdown;
        let phases = b.avg_phases();
        let mut row = vec![label.to_string()];
        row.extend(phases.iter().map(|&(_, v)| us(v)));
        row.push(us(b.avg_total()));
        report.row(row);
    }
    report.note("Paper: avg ≈ 6.3 µs with fetch 46 %, exception 9 %, reclaim 29 %.");
    report
}

/// Figure 2: raw one-sided RDMA latency vs object size.
pub fn fig02_rdma_latency() -> Report {
    let mut report = Report::new(
        "Figure 2 — RDMA latency (µs) for a range of object sizes",
        &["size", "read", "write"],
    );
    let mut ep = RdmaEndpoint::connect(SimConfig::default(), 1 << 26);
    let mut t = 0u64;
    for size in [64usize, 128, 256, 512, 1024, 2048, 4096] {
        let mut buf = vec![0u8; size];
        let r0 = t + 1_000_000; // Idle gaps between probes.
        let read_done = ep
            .read(r0, 0, ServiceClass::App, 0, &mut buf)
            .expect("probe read");
        let w0 = read_done + 1_000_000;
        let write_done = ep
            .write(w0, 0, ServiceClass::App, 0, &buf)
            .expect("probe write");
        t = write_done;
        report.row(vec![
            format!("{size}B"),
            us(read_done - r0),
            us(write_done - w0),
        ]);
    }
    report.note("Paper: 4 KB imposes only ~0.6 µs extra over 128 B.");
    report
}

/// Tables 1 & 3: page-fault counts during sequential read.
pub fn tab01_tab03_fault_counts(scale: MicroScale) -> Report {
    let mut report = Report::new(
        "Tables 1 & 3 — page faults during sequential read",
        &["system", "major", "minor", "total", "pages"],
    );
    // Fastswap (Table 1 and the first row of Table 3).
    {
        let mut n = fastswap_at(scale.pages, scale.ratio, 50, true);
        let wl = SeqWorkload { pages: scale.pages };
        let base = wl.populate(&mut n);
        wl.read_pass(&mut n, base);
        let s = n.stats();
        report.row(vec![
            "Fastswap".into(),
            s.major_faults.to_string(),
            s.minor_faults.to_string(),
            (s.major_faults + s.minor_faults).to_string(),
            scale.pages.to_string(),
        ]);
        report.digest("Fastswap", n.trace_digest());
    }
    for kind in [
        SystemKind::DilosNoPrefetch,
        SystemKind::DilosReadahead,
        SystemKind::DilosTrend,
    ] {
        let ws = (scale.pages * PAGE_SIZE) as u64;
        // Audited boot: the run doubles as an invariant check, and the
        // digest pins the exact event stream this table was computed from.
        let mut mem = SystemSpec::for_working_set(kind, ws, scale.ratio)
            .observed(Observability::audited())
            .boot();
        let wl = SeqWorkload { pages: scale.pages };
        let base = wl.populate(mem.as_mut());
        wl.read_pass(mem.as_mut(), base);
        let (major, minor) = mem.fault_counts();
        report.row(vec![
            kind.label().into(),
            major.to_string(),
            minor.to_string(),
            (major + minor).to_string(),
            scale.pages.to_string(),
        ]);
        let violations = mem.audit_report();
        let digest = mem.trace_digest();
        report.digest(kind.label(), digest);
        report.note(format!(
            "{}: trace digest {digest:#018x}, audit {}",
            kind.label(),
            if violations.is_empty() {
                "clean".to_string()
            } else {
                format!("{} VIOLATIONS: {violations:?}", violations.len())
            }
        ));
    }
    report.note("Paper Table 1: Fastswap 12.5 % major / 87.5 % minor.");
    report.note("Paper Table 3: DiLOS prefetchers cut minors ~25 % vs Fastswap.");
    report
}

/// Table 2: sequential read/write throughput (GB/s).
pub fn tab02_seq_throughput(scale: MicroScale) -> Report {
    let mut report = Report::new(
        "Table 2 — sequential read/write throughput (GB/s)",
        &["system", "read", "write"],
    );
    // Fastswap row.
    {
        let wl = SeqWorkload { pages: scale.pages };
        let mut n = fastswap_at(scale.pages, scale.ratio, 50, true);
        let base = wl.populate(&mut n);
        let r = wl.read_pass(&mut n, base);
        let mut n2 = fastswap_at(scale.pages, scale.ratio, 50, true);
        let base2 = wl.populate(&mut n2);
        let w = wl.write_pass(&mut n2, base2);
        report.row(vec!["Fastswap".into(), f2(r.gbps()), f2(w.gbps())]);
        report.digest("Fastswap (read)", n.trace_digest());
        report.digest("Fastswap (write)", n2.trace_digest());
    }
    for kind in [
        SystemKind::DilosNoPrefetch,
        SystemKind::DilosReadahead,
        SystemKind::DilosTrend,
    ] {
        let ws = (scale.pages * PAGE_SIZE) as u64;
        let wl = SeqWorkload { pages: scale.pages };
        let mut mem = SystemSpec::for_working_set(kind, ws, scale.ratio)
            .observed(Observability::tracing())
            .boot();
        let base = wl.populate(mem.as_mut());
        let r = wl.read_pass(mem.as_mut(), base);
        let mut mem2 = SystemSpec::for_working_set(kind, ws, scale.ratio)
            .observed(Observability::tracing())
            .boot();
        let base2 = wl.populate(mem2.as_mut());
        let w = wl.write_pass(mem2.as_mut(), base2);
        report.row(vec![kind.label().into(), f2(r.gbps()), f2(w.gbps())]);
        report.digest(format!("{} (read)", kind.label()), mem.trace_digest());
        report.digest(format!("{} (write)", kind.label()), mem2.trace_digest());
    }
    report.note(
        "Paper: Fastswap 0.98/0.49; DiLOS none 1.24/1.14, readahead 3.74/3.49, trend 3.73/3.49.",
    );
    report
}

/// Figure 6: DiLOS vs Fastswap fault-latency breakdown on sequential read,
/// prefetch off for both.
pub fn fig06_latency_breakdown(scale: MicroScale) -> Report {
    let mut report = Report::new(
        "Figure 6 — fault latency breakdown, DiLOS vs Fastswap (µs)",
        &[
            "system",
            "exception",
            "software",
            "alloc/reclaim",
            "fetch",
            "map",
            "total",
        ],
    );
    {
        let mut n = fastswap_at(scale.pages, scale.ratio, 50, false);
        let wl = SeqWorkload { pages: scale.pages };
        let base = wl.populate(&mut n);
        wl.read_pass(&mut n, base);
        let b = n.stats().breakdown;
        let d = b.count.max(1);
        report.row(vec![
            "Fastswap".into(),
            us(b.exception / d),
            us((b.swap_cache + b.page_alloc) / d),
            us(b.reclaim / d),
            us(b.fetch / d),
            us(b.map / d),
            us(b.avg_total()),
        ]);
    }
    {
        let ws = (scale.pages * PAGE_SIZE) as u64;
        let wl = SeqWorkload { pages: scale.pages };
        let mut mem =
            SystemSpec::for_working_set(SystemKind::DilosNoPrefetch, ws, scale.ratio).boot();
        let base = wl.populate(mem.as_mut());
        wl.read_pass(mem.as_mut(), base);
        let b = mem.as_dilos().expect("DiLOS node").stats().breakdown;
        let d = b.count.max(1);
        report.row(vec![
            "DiLOS".into(),
            us(b.exception / d),
            us(b.check / d),
            us((b.alloc_wait + b.reclaim) / d),
            us(b.fetch / d),
            us(b.map / d),
            us(b.avg_total()),
        ]);
    }
    report.note("Paper: DiLOS cuts total fault latency ~49 %, reclaim time fully hidden.");
    report
}
