//! Redis experiments: Figure 10 (throughput), Table 4 (tail latency), and
//! Figure 12 (guided-paging bandwidth).

use std::cell::RefCell;
use std::rc::Rc;

use dilos_alloc::Heap;
use dilos_apps::farmem::{FarMemory, SystemKind, SystemSpec};
use dilos_apps::redis::{LrangeBench, RedisBench, RedisGuide, RedisServer, ValueSizes};
use dilos_core::{Dilos, DilosConfig, HeapPagingGuide, Readahead};

use crate::table::{f2, ms, Report};

/// A Redis system under test: one of the generic systems, or DiLOS with the
/// app-aware guide attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedisSystem {
    /// A stock system.
    Kind(SystemKind),
    /// DiLOS + readahead + the app-aware Redis guide.
    AppAware,
}

impl RedisSystem {
    /// Table label.
    pub fn label(self) -> String {
        match self {
            RedisSystem::Kind(k) => k.label().to_string(),
            RedisSystem::AppAware => "DiLOS app-aware".to_string(),
        }
    }

    /// The Figure 10 line-up.
    pub const FIG10: [RedisSystem; 5] = [
        RedisSystem::Kind(SystemKind::Fastswap),
        RedisSystem::Kind(SystemKind::DilosNoPrefetch),
        RedisSystem::Kind(SystemKind::DilosReadahead),
        RedisSystem::Kind(SystemKind::DilosTrend),
        RedisSystem::AppAware,
    ];
}

/// A booted Redis deployment.
pub struct RedisSetup {
    /// The far-memory system.
    pub mem: Box<dyn FarMemory>,
    /// The server.
    pub server: RedisServer,
    /// The guide, when attached.
    pub guide: Option<Rc<RefCell<RedisGuide>>>,
}

/// Boots `sys` with a `heap_bytes` DDC heap and a local cache of
/// `ratio` percent of `working_set`; optionally wires guided paging.
pub fn boot_redis(
    sys: RedisSystem,
    heap_bytes: u64,
    working_set: u64,
    ratio: u32,
    zl_cap: u32,
    guided_paging: bool,
) -> RedisSetup {
    match sys {
        RedisSystem::Kind(kind) => {
            // Local cache is a ratio of the *working set*; the remote region
            // must still hold the whole heap.
            let mut spec = SystemSpec::for_working_set(kind, working_set, ratio);
            spec.remote_bytes = spec.remote_bytes.max((heap_bytes * 2).next_power_of_two());
            let mut mem = spec.boot();
            let base = mem.alloc(heap_bytes as usize);
            let heap = Rc::new(RefCell::new(Heap::new(base, heap_bytes)));
            let server = RedisServer::new(heap, mem.as_mut(), zl_cap);
            RedisSetup {
                mem,
                server,
                guide: None,
            }
        }
        RedisSystem::AppAware => {
            let ws_pages = working_set.div_ceil(4096);
            let local_pages = ((ws_pages * ratio as u64) / 100).max(32) as usize;
            let mut node = Dilos::new(DilosConfig {
                local_pages,
                remote_bytes: (heap_bytes * 2).next_power_of_two().max(1 << 24),
                ..DilosConfig::default()
            });
            node.set_prefetcher(Box::new(Readahead::new()));
            let base = node.ddc_alloc(heap_bytes as usize);
            let heap = Rc::new(RefCell::new(Heap::new(base, heap_bytes)));
            let guide = Rc::new(RefCell::new(RedisGuide::new()));
            node.set_prefetch_guide(guide.clone());
            if guided_paging {
                node.set_paging_guide(Rc::new(RefCell::new(HeapPagingGuide::new(
                    Rc::clone(&heap),
                    3,
                ))));
            }
            let mut mem: Box<dyn FarMemory> = Box::new(node);
            let mut server = RedisServer::new(heap, mem.as_mut(), zl_cap);
            server.attach_guide(guide.clone());
            RedisSetup {
                mem,
                server,
                guide: Some(guide),
            }
        }
    }
}

/// Scale for the Redis experiments.
#[derive(Debug, Clone, Copy)]
pub struct RedisScale {
    /// Keys for the 4 KiB workload.
    pub keys_4k: usize,
    /// Keys for the 64 KiB workload.
    pub keys_64k: usize,
    /// Keys for the mixed workload.
    pub keys_mixed: usize,
    /// Lists for the LRANGE workload.
    pub lists: usize,
    /// Elements pushed across all lists.
    pub list_elements: usize,
    /// Queries per workload.
    pub queries: usize,
}

impl Default for RedisScale {
    fn default() -> Self {
        Self {
            keys_4k: 512,
            keys_64k: 48,
            keys_mixed: 64,
            lists: 48,
            list_elements: 9_600,
            queries: 800,
        }
    }
}

struct GetSpec {
    label: &'static str,
    keys: usize,
    sizes: ValueSizes,
}

fn get_specs(scale: &RedisScale) -> [GetSpec; 3] {
    [
        GetSpec {
            label: "GET 4KB",
            keys: scale.keys_4k,
            sizes: ValueSizes::Fixed(4096),
        },
        GetSpec {
            label: "GET 64KB",
            keys: scale.keys_64k,
            sizes: ValueSizes::Fixed(64 * 1024),
        },
        GetSpec {
            label: "GET mixed",
            keys: scale.keys_mixed,
            sizes: ValueSizes::Mixed,
        },
    ]
}

fn get_working_set(spec: &GetSpec) -> u64 {
    let avg = match spec.sizes {
        ValueSizes::Fixed(n) => n as u64,
        ValueSizes::Mixed => 42 * 1024, // Mean of the six sizes.
    };
    spec.keys as u64 * (avg + 64)
}

/// Figure 10: Redis GET and LRANGE throughput vs local memory ratio.
pub fn fig10_redis(scale: RedisScale) -> Report {
    let mut report = Report::new(
        "Figure 10 — Redis throughput (requests/s)",
        &["workload", "system", "12.5%", "25%", "50%", "100%"],
    );
    for spec in get_specs(&scale) {
        let ws = get_working_set(&spec);
        let heap_bytes = (ws * 2).next_power_of_two().max(1 << 22);
        for sys in RedisSystem::FIG10 {
            let mut row = vec![spec.label.to_string(), sys.label()];
            for ratio in crate::apps_exp::RATIOS {
                let mut setup = boot_redis(sys, heap_bytes, ws, ratio, 8192, false);
                let bench = RedisBench {
                    keys: spec.keys,
                    sizes: spec.sizes,
                    seed: 11,
                };
                bench.populate(&mut setup.server, setup.mem.as_mut());
                let r = bench.run_gets(&mut setup.server, setup.mem.as_mut(), scale.queries);
                row.push(format!("{:.0}", r.qps()));
            }
            report.row(row);
        }
    }
    // LRANGE workload. Element and ziplist sizes follow the paper's
    // geometry: a 100-element range crosses several quicklist nodes, so the
    // query is a pointer chase, not a stream.
    {
        let elem_size = 400usize;
        let ws = (scale.list_elements * (elem_size + 40)) as u64;
        let heap_bytes = (ws * 2).next_power_of_two().max(1 << 22);
        for sys in RedisSystem::FIG10 {
            let mut row = vec!["LRANGE".to_string(), sys.label()];
            for ratio in crate::apps_exp::RATIOS {
                let mut setup = boot_redis(sys, heap_bytes, ws, ratio, 4096, false);
                let bench = LrangeBench {
                    lists: scale.lists,
                    elements: scale.list_elements,
                    elem_size,
                    seed: 12,
                };
                bench.populate(&mut setup.server, setup.mem.as_mut());
                let r = bench.run(&mut setup.server, setup.mem.as_mut(), scale.queries / 4);
                row.push(format!("{:.0}", r.qps()));
            }
            report.row(row);
        }
    }
    report.note(
        "Paper: DiLOS no-prefetch already 1.37–1.52× Fastswap at 12.5 %; prefetchers up to 2.51×.",
    );
    report.note(
        "LRANGE: general-purpose prefetchers gain nothing; app-aware +62 % (2.21× Fastswap).",
    );
    report
}

/// Table 4: tail latency of GET (mixed) and LRANGE at 12.5 % local memory.
pub fn tab04_tail_latency(scale: RedisScale) -> Report {
    let mut report = Report::new(
        "Table 4 — tail latency at 12.5 % local memory (ms)",
        &[
            "system",
            "GET-mixed p99",
            "GET-mixed p99.9",
            "LRANGE p99",
            "LRANGE p99.9",
        ],
    );
    for sys in RedisSystem::FIG10 {
        // GET mixed.
        let spec = &get_specs(&scale)[2];
        let ws = get_working_set(spec);
        let heap_bytes = (ws * 2).next_power_of_two().max(1 << 22);
        let mut setup = boot_redis(sys, heap_bytes, ws, 13, 8192, false);
        let bench = RedisBench {
            keys: spec.keys,
            sizes: spec.sizes,
            seed: 11,
        };
        bench.populate(&mut setup.server, setup.mem.as_mut());
        let get = bench.run_gets(&mut setup.server, setup.mem.as_mut(), scale.queries);

        // LRANGE (same geometry as Figure 10).
        let elem_size = 400usize;
        let lws = (scale.list_elements * (elem_size + 40)) as u64;
        let lheap = (lws * 2).next_power_of_two().max(1 << 22);
        let mut lsetup = boot_redis(sys, lheap, lws, 13, 4096, false);
        let lbench = LrangeBench {
            lists: scale.lists,
            elements: scale.list_elements,
            elem_size,
            seed: 12,
        };
        lbench.populate(&mut lsetup.server, lsetup.mem.as_mut());
        let lr = lbench.run(&mut lsetup.server, lsetup.mem.as_mut(), scale.queries / 4);

        report.row(vec![
            sys.label(),
            ms(get.latency.quantile(0.99)),
            ms(get.latency.quantile(0.999)),
            ms(lr.latency.quantile(0.99)),
            ms(lr.latency.quantile(0.999)),
        ]);
    }
    report.note(
        "Units here are µs-scale simulations of the paper's ms-scale table; ordering is the claim.",
    );
    report.note("Paper: app-aware cuts LRANGE p99 by 18 % vs other DiLOS prefetchers; Fastswap worst everywhere.");
    report
}

/// Figure 12: network traffic during DEL then GET, guided paging on vs off.
pub fn fig12_bandwidth(keys: usize, queries: usize) -> Report {
    let mut report = Report::new(
        "Figure 12 — network traffic with guided paging (bytes)",
        &["config", "phase", "tx", "rx", "total", "saved vs unguided"],
    );
    let ws = keys as u64 * 160;
    let heap_bytes = (ws * 4).next_power_of_two().max(1 << 22);
    let mut totals: Vec<(String, [u64; 2])> = Vec::new();
    for guided in [false, true] {
        // Paper: local memory ≈ 25 % of post-DEL usage; populate at 128 B
        // values, DEL 70 %, then GET the survivors.
        let mut setup = boot_redis(RedisSystem::AppAware, heap_bytes, ws, 25, 8192, guided);
        let bench = RedisBench {
            keys,
            sizes: ValueSizes::Fixed(128),
            seed: 5,
        };
        bench.populate(&mut setup.server, setup.mem.as_mut());
        let (tx0, rx0) = setup.mem.net_bytes();
        let deleted = bench.run_dels(&mut setup.server, setup.mem.as_mut(), 70);
        let (tx1, rx1) = setup.mem.net_bytes();
        bench.run_gets_surviving(&mut setup.server, setup.mem.as_mut(), &deleted, queries);
        let (tx2, rx2) = setup.mem.net_bytes();
        let label = if guided { "guided" } else { "unguided" };
        totals.push((
            label.to_string(),
            [tx1 - tx0 + (rx1 - rx0), tx2 - tx1 + (rx2 - rx1)],
        ));
        for (phase, tx, rx) in [("DEL", tx1 - tx0, rx1 - rx0), ("GET", tx2 - tx1, rx2 - rx1)] {
            report.row(vec![
                label.to_string(),
                phase.to_string(),
                tx.to_string(),
                rx.to_string(),
                (tx + rx).to_string(),
                "-".to_string(),
            ]);
        }
    }
    // Savings summary.
    if totals.len() == 2 {
        let (un, gd) = (&totals[0].1, &totals[1].1);
        for (i, phase) in ["DEL", "GET"].iter().enumerate() {
            let saved = 100.0 * (1.0 - gd[i] as f64 / un[i].max(1) as f64);
            report.note(format!(
                "{phase}: guided paging saves {}% of traffic",
                f2(saved)
            ));
        }
    }
    report.note("Paper: 12 % less bandwidth for DEL, 29 % for GET.");
    report
}
