//! Deterministic load generation for the multi-tenant serving cluster.
//!
//! The generator is **open-loop** by default: arrival times come from a
//! SplitMix-seeded exponential distribution on the *virtual* clock, fixed
//! before the system serves a single request, so a slow server faces the
//! same offered load as a fast one and queueing delay lands in the latency
//! distribution where it belongs (the coordinated-omission trap a
//! closed-loop generator falls into). A closed-loop mode (fixed think time
//! after each completion) exists for saturation workloads — a scanner with
//! zero think time is a wire-saturating noisy neighbor.
//!
//! Determinism: every random choice flows from per-tenant [`SplitMix64`]
//! streams; tenants are driven by a global earliest-start event loop with
//! ties broken by tenant id. Same seeds + same cluster ⇒ byte-identical
//! latency tables and trace digests.

use dilos_core::ServingCluster;
use dilos_sim::{LatencyHistogram, Ns, SplitMix64};

/// Page size the request kernels stride by.
const PAGE: u64 = 4096;

/// When a request stream hands the next request to the server.
#[derive(Debug, Clone, Copy)]
pub enum Arrival {
    /// Open loop: exponential inter-arrival times with the given mean,
    /// independent of completions.
    Open {
        /// Mean inter-arrival gap in virtual ns.
        mean_ns: Ns,
    },
    /// Closed loop: the next request arrives `think_ns` after the previous
    /// one completes.
    Closed {
        /// Think time in virtual ns.
        think_ns: Ns,
    },
}

/// What one request does against the tenant's working set.
#[derive(Debug, Clone, Copy)]
pub enum RequestKind {
    /// Point lookups: `touches` uniformly random 8-byte reads.
    PointRead {
        /// Pages touched per request.
        touches: usize,
    },
    /// A sequential scan of `pages` pages, resuming where the previous
    /// scan stopped (wrapping at the working-set end).
    Scan {
        /// Pages read per request.
        pages: usize,
    },
}

/// One tenant's request stream.
#[derive(Debug, Clone, Copy)]
pub struct TenantLoad {
    /// Seed for this tenant's arrival/choice streams.
    pub seed: u64,
    /// Arrival process.
    pub arrival: Arrival,
    /// Requests to serve.
    pub requests: usize,
    /// Request kernel.
    pub kind: RequestKind,
    /// Working-set size in pages (populated by a warmup write pass).
    pub working_pages: usize,
}

/// Measured outcome of one tenant's stream.
#[derive(Debug)]
pub struct TenantResult {
    /// Request latency (arrival → completion, so queueing counts).
    pub latency: LatencyHistogram,
    /// Requests completed (always `requests`).
    pub completed: usize,
    /// Virtual time the tenant finished its stream.
    pub makespan: Ns,
}

/// Exponential inter-arrival gap: `-ln(1 - u) * mean`, floored at 1 ns.
fn exp_gap(rng: &mut SplitMix64, mean_ns: Ns) -> Ns {
    let u = rng.gen_f64();
    let gap = -(1.0 - u).ln() * mean_ns as f64;
    (gap as Ns).max(1)
}

struct TenantState {
    load: TenantLoad,
    rng: SplitMix64,
    base: u64,
    next_arrival: Ns,
    scan_cursor: u64,
    done: usize,
    latency: LatencyHistogram,
}

/// Drives every tenant's stream to completion and returns per-tenant
/// latency tables. `loads[i]` drives cluster tenant `i` on core 0.
///
/// A warmup write pass populates (and stamps) each working set before any
/// request is timed, then per-tenant clocks restart from the arrival
/// schedule — warmup cost never pollutes the latency table.
///
/// # Panics
///
/// Panics when `loads` does not match the cluster's tenant count.
pub fn drive(cluster: &mut ServingCluster, loads: &[TenantLoad]) -> Vec<TenantResult> {
    assert_eq!(loads.len(), cluster.len(), "one load per tenant");

    // Warmup: populate every working set (zero-fill + stamp) so requests
    // measure steady-state paging, not first-touch faults.
    let mut states: Vec<TenantState> = loads
        .iter()
        .enumerate()
        .map(|(id, &load)| {
            let node = cluster.tenant(id);
            let base = node.ddc_alloc(load.working_pages * PAGE as usize);
            for p in 0..load.working_pages as u64 {
                node.write_u64(0, base + p * PAGE, p ^ load.seed);
            }
            let mut rng = SplitMix64::new(load.seed);
            let first = match load.arrival {
                Arrival::Open { mean_ns } => node.now(0) + exp_gap(&mut rng, mean_ns),
                Arrival::Closed { think_ns } => node.now(0) + think_ns,
            };
            TenantState {
                load,
                rng,
                base,
                next_arrival: first,
                scan_cursor: 0,
                done: 0,
                latency: LatencyHistogram::new(),
            }
        })
        .collect();

    // Global earliest-start loop: each step serves one request on the
    // tenant whose next request can start soonest (start = max(arrival,
    // tenant clock)), ties broken by tenant id. This interleaves tenants
    // in virtual-time order so shared-fabric contention is resolved the
    // same way every run.
    loop {
        let mut pick: Option<(Ns, usize)> = None;
        for (id, st) in states.iter().enumerate() {
            if st.done == st.load.requests {
                continue;
            }
            let start = st.next_arrival.max(cluster.tenant_ref(id).max_now());
            if pick.is_none_or(|(best, _)| start < best) {
                pick = Some((start, id));
            }
        }
        let Some((_, id)) = pick else { break };
        let st = &mut states[id];
        let arrival = st.next_arrival;
        let node = cluster.tenant(id);
        let now = node.now(0);
        if arrival > now {
            // Idle until the request arrives.
            node.compute(0, arrival - now);
        }
        match st.load.kind {
            RequestKind::PointRead { touches } => {
                for _ in 0..touches {
                    let p = st.rng.gen_range(st.load.working_pages as u64);
                    let _ = node.read_u64(0, st.base + p * PAGE);
                }
            }
            RequestKind::Scan { pages } => {
                for _ in 0..pages {
                    let p = st.scan_cursor;
                    let _ = node.read_u64(0, st.base + p * PAGE);
                    st.scan_cursor = (st.scan_cursor + 1) % st.load.working_pages as u64;
                }
            }
        }
        let completion = node.now(0);
        st.latency.record(completion.saturating_sub(arrival));
        st.done += 1;
        st.next_arrival = match st.load.arrival {
            Arrival::Open { mean_ns } => arrival + exp_gap(&mut st.rng, mean_ns),
            Arrival::Closed { think_ns } => completion + think_ns,
        };
    }

    states
        .into_iter()
        .enumerate()
        .map(|(id, st)| TenantResult {
            latency: st.latency,
            completed: st.done,
            makespan: cluster.tenant_ref(id).max_now(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dilos_core::{ClusterConfig, TenantSpec};
    use dilos_sim::Observability;

    fn small_cluster(qos: bool) -> ServingCluster {
        ServingCluster::boot(ClusterConfig {
            qos,
            tenants: vec![
                TenantSpec {
                    local_quota: 128,
                    local_demand: 128,
                    obs: Observability::tracing(),
                    ..TenantSpec::default()
                },
                TenantSpec {
                    local_quota: 128,
                    local_demand: 512,
                    ..TenantSpec::default()
                },
            ],
            ..ClusterConfig::default()
        })
    }

    fn loads() -> Vec<TenantLoad> {
        vec![
            TenantLoad {
                seed: 0xA11CE,
                arrival: Arrival::Open { mean_ns: 40_000 },
                requests: 200,
                kind: RequestKind::PointRead { touches: 2 },
                working_pages: 256,
            },
            TenantLoad {
                seed: 0xB0B,
                arrival: Arrival::Closed { think_ns: 0 },
                requests: 50,
                kind: RequestKind::Scan { pages: 64 },
                working_pages: 512,
            },
        ]
    }

    #[test]
    fn open_loop_arrivals_are_schedule_driven() {
        let mut cluster = small_cluster(true);
        let results = drive(&mut cluster, &loads());
        assert_eq!(results[0].completed, 200);
        assert_eq!(results[1].completed, 50);
        assert_eq!(results[0].latency.count(), 200);
        assert!(results[0].latency.p999() >= results[0].latency.p50());
        assert!(results[0].makespan > 0);
    }

    #[test]
    fn same_seed_runs_are_byte_identical() {
        let run = || {
            let mut cluster = small_cluster(true);
            let results = drive(&mut cluster, &loads());
            let quantiles: Vec<(Ns, Ns, Ns, Ns)> = results
                .iter()
                .map(|r| {
                    (
                        r.latency.p50(),
                        r.latency.p90(),
                        r.latency.p99(),
                        r.latency.p999(),
                    )
                })
                .collect();
            (quantiles, cluster.tenant(0).trace_digest())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn exponential_gaps_have_roughly_the_requested_mean() {
        let mut rng = SplitMix64::new(42);
        let mean = 10_000u64;
        let n = 20_000;
        let total: u64 = (0..n).map(|_| exp_gap(&mut rng, mean)).sum();
        let measured = total / n;
        assert!(
            (measured as i64 - mean as i64).unsigned_abs() < mean / 10,
            "measured mean {measured} vs requested {mean}"
        );
    }
}
