//! The crash-recovery experiment: recovery latency vs intent-log depth.
//!
//! Not a paper figure — DiLOS (§5.1) leaves memory-node fault tolerance as
//! future work — but the natural measurement for this reproduction's
//! recovery model: each memory node keeps a durable checkpoint plus a
//! write-intent log acknowledged ahead of every remote write, so the cost
//! of a crash is replaying the log tail onto the last checkpoint and
//! reconciling with the surviving replicas. The checkpoint interval sets
//! that tail's length: seal rarely and a crash replays a deep log, seal
//! often and replay shrinks while reconciliation stays constant.
//!
//! The sweep crashes the same victim at the same data-path completion
//! index under four checkpoint intervals and reports the log depth at the
//! crash, the records replayed, the pages reconciled, and the modeled
//! recovery latency. Every run is audited (invariants: no acknowledged
//! write lost, no frame resurrected) and digest-pinned.

use dilos_core::{Dilos, DilosConfig, Readahead};
use dilos_sim::{Observability, RecoverConfig, RecoveryStats, SplitMix64};

use crate::table::{us, Report};

/// Scale knobs for the recovery experiment.
#[derive(Debug, Clone, Copy)]
pub struct RecoverScale {
    /// Working-set pages (4× the local cache, so evictions keep the
    /// intent log busy).
    pub pages: u64,
    /// Local cache size in frames.
    pub local_pages: usize,
    /// Random read/write operations between populate and read-back.
    pub rw_ops: u64,
}

impl Default for RecoverScale {
    fn default() -> Self {
        Self {
            pages: 256,
            local_pages: 64,
            rw_ops: 400,
        }
    }
}

const SEED: u64 = 0xC4A5;
const CHECKPOINT_INTERVALS: [u64; 4] = [8, 32, 128, 512];

fn boot(scale: RecoverScale, checkpoint_every: u64, crash_at: Option<u64>) -> Dilos {
    let mut n = Dilos::new(DilosConfig {
        local_pages: scale.local_pages,
        remote_bytes: 1 << 24,
        memory_nodes: 3,
        replication: 2,
        recovery: Some(RecoverConfig {
            crash_at_event: crash_at,
            victim: 1,
            checkpoint_every,
            repair_delay_ns: 1_500_000,
            ..RecoverConfig::default()
        }),
        obs: Observability::audited(),
        ..DilosConfig::default()
    });
    n.set_prefetcher(Box::new(Readahead::new()));
    n
}

/// Seeded mixed workload; returns the read-back checksum.
fn drive(n: &mut Dilos, scale: RecoverScale) -> u64 {
    let va = n.ddc_alloc((scale.pages * 4096) as usize);
    for p in 0..scale.pages {
        n.write_u64(0, va + p * 4096, SEED ^ p);
    }
    let mut rng = SplitMix64::new(SEED);
    for _ in 0..scale.rw_ops {
        let p = rng.next_u64() % scale.pages;
        let addr = va + p * 4096 + (rng.next_u64() % 500) * 8;
        if rng.next_u64().is_multiple_of(3) {
            n.write_u64(0, addr, rng.next_u64());
        } else {
            let _ = n.read_u64(0, addr);
        }
    }
    let mut fold = 0u64;
    for p in 0..scale.pages {
        fold = fold
            .wrapping_mul(0x0000_0100_0000_01B3)
            .wrapping_add(n.read_u64(0, va + p * 4096));
    }
    fold
}

fn run(
    scale: RecoverScale,
    checkpoint_every: u64,
    crash_at: Option<u64>,
) -> (u64, u64, RecoveryStats, Vec<String>) {
    let mut n = boot(scale, checkpoint_every, crash_at);
    let fold = drive(&mut n, scale);
    let report = n.audit_report();
    let digest = n.trace_digest();
    (digest, fold, n.recovery_stats(), report)
}

/// Recovery latency vs intent-log depth: crash the same victim at the same
/// completion index under four checkpoint intervals.
pub fn recover_crash_sweep(scale: RecoverScale) -> Report {
    let mut report = Report::new(
        "Crash recovery — latency vs intent-log depth",
        &[
            "checkpoint every",
            "crash at op",
            "log depth",
            "replayed",
            "reconciled",
            "recovery",
        ],
    );
    // A crash-free run under the middle interval fixes the crash point (¾
    // through the run) and the reference checksum recovery must reproduce.
    let (_, fold_ref, base, base_report) = run(scale, 32, None);
    let crash_at = base.completions * 3 / 4;
    report.note(format!(
        "Workload: {} pages, {} rw ops, {} completions crash-free; \
         crash at completion {crash_at}, victim node 1 of 3 (replication 2).",
        scale.pages, scale.rw_ops, base.completions
    ));
    if !base_report.is_empty() {
        report.note(format!(
            "crash-free run: {} AUDIT VIOLATIONS: {base_report:?}",
            base_report.len()
        ));
    }
    for every in CHECKPOINT_INTERVALS {
        let (digest, fold, stats, violations) = run(scale, every, Some(crash_at));
        report.row(vec![
            every.to_string(),
            crash_at.to_string(),
            stats.log_depth_at_crash.to_string(),
            stats.replayed.to_string(),
            stats.reconciled.to_string(),
            us(stats.recovery_ns),
        ]);
        let label = format!("ckpt{every}");
        report.digest(&label, digest);
        report.note(format!(
            "{label}: trace digest {digest:#018x}, audit {}, data {}",
            if violations.is_empty() {
                "clean".to_string()
            } else {
                format!("{} VIOLATIONS: {violations:?}", violations.len())
            },
            if fold == fold_ref {
                "intact"
            } else {
                "DIVERGED"
            }
        ));
    }
    report.note(
        "Modeled recovery cost: 500 ns per replayed record + 2 µs per \
         reconciled page (control path; not charged to the calendar).",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro::{tab01_tab03_fault_counts, MicroScale};

    /// The recovery artifact is byte-stable: two fresh sweeps render and
    /// serialize identically (the CI determinism gate `cmp`s this).
    #[test]
    fn recover_sweep_is_byte_identical_across_runs() {
        let a = recover_crash_sweep(RecoverScale::default());
        let b = recover_crash_sweep(RecoverScale::default());
        assert_eq!(a.to_json(), b.to_json(), "recover.json diverged");
        assert_eq!(a.render(), b.render(), "recover.md diverged");
        assert!(
            !a.to_json().contains("VIOLATIONS"),
            "sweep must audit clean: {}",
            a.to_json()
        );
        assert!(!a.to_json().contains("DIVERGED"), "recovery lost data");
    }

    /// Deeper intent logs replay more: the largest checkpoint interval must
    /// replay at least as many records as the smallest.
    #[test]
    fn replay_grows_with_checkpoint_interval() {
        let scale = RecoverScale::default();
        let (_, _, base, _) = run(scale, 32, None);
        let crash_at = base.completions * 3 / 4;
        let (_, _, rare, _) = run(scale, 512, Some(crash_at));
        let (_, _, frequent, _) = run(scale, 8, Some(crash_at));
        assert!(
            rare.replayed >= frequent.replayed,
            "rare checkpoints ({}) must replay no less than frequent ones ({})",
            rare.replayed,
            frequent.replayed
        );
        assert_eq!(rare.crashes, 1);
        assert_eq!(frequent.crashes, 1);
    }

    /// The recovery machinery is invisible when disarmed: the tab01 fault
    /// table still lands on its pinned trace digests.
    #[test]
    fn disarmed_tab01_digests_are_unchanged() {
        let report = tab01_tab03_fault_counts(MicroScale::default());
        for (label, digest) in [
            ("DiLOS no-prefetch", 0x16731fc2dfab62cb_u64),
            ("DiLOS readahead", 0x19ed7dbb10f8648a),
            ("DiLOS trend-based", 0x367878bd711bc5bf),
        ] {
            assert!(
                report
                    .digests
                    .iter()
                    .any(|(l, d)| l == label && *d == digest),
                "{label}: pinned digest {digest:#018x} missing or changed: {:?}",
                report.digests
            );
        }
    }
}
