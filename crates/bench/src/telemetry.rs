//! Telemetry assembly for `repro --metrics`.
//!
//! Boots the Tables 1 & 3 systems (Fastswap plus the three DiLOS prefetcher
//! configurations) with the metrics registry and span profiler enabled,
//! drives the same sequential-read workload, and assembles three artifacts:
//!
//! * `metrics.json` — per-system counters, final gauges, and fault-latency
//!   histograms (with quantiles and bucket boundaries),
//! * `timeseries.json` — per-system virtual-time gauge series from the
//!   calendar-driven sampler,
//! * `profile.folded` — merged folded stacks (`system;core;span value`) in
//!   the format `flamegraph.pl` and inferno consume directly.
//!
//! Everything is hand-rolled, byte-stable JSON: same seed and scale produce
//! byte-identical files, so CI can `cmp` two runs. Because the registry is a
//! pure observer, the trace digests recorded here equal the ones `tab01`
//! pins with metrics off.

use std::fmt::Write as _;

use dilos_apps::farmem::{SystemKind, SystemSpec};
use dilos_apps::seqrw::SeqWorkload;
use dilos_sim::{Observability, PAGE_SIZE};

use crate::table::{us, Report};

/// Telemetry captured from one system's metered run.
#[derive(Debug, Clone)]
pub struct SystemTelemetry {
    /// Stable machine id used as the JSON key and folded-stack prefix.
    pub id: &'static str,
    /// Human label (matches the tab01 table rows).
    pub label: &'static str,
    /// Trace digest of the metered run (must equal the unmetered digest).
    pub digest: u64,
    /// `(major, minor, zero_fill)` fault counts from the hand counters.
    pub faults: (u64, u64, u64),
    /// Number of sampler ticks recorded.
    pub samples: u64,
    /// p99 major-fault latency in virtual ns (0 when no major faults).
    pub p99_major_ns: u64,
    /// Counters JSON object (`{"name": [lane...], ...}`).
    pub counters_json: String,
    /// Final gauge values JSON object.
    pub gauges_json: String,
    /// Gauge time-series JSON object (`{"name": [[t, v], ...], ...}`).
    pub series_json: String,
    /// Fault-latency histograms JSON object.
    pub histograms_json: String,
    /// Per-phase latency quantiles JSON object (p50/p90/p99/p999 of the
    /// per-span phase durations).
    pub phase_quantiles_json: String,
    /// Folded stacks, each line prefixed `id;`.
    pub folded: String,
    /// Sampler interval in virtual ns.
    pub interval_ns: u64,
}

/// The systems `--metrics` meters: the tab01 set.
pub const METERED: [(&str, SystemKind); 4] = [
    ("fastswap", SystemKind::Fastswap),
    ("dilos-noprefetch", SystemKind::DilosNoPrefetch),
    ("dilos-readahead", SystemKind::DilosReadahead),
    ("dilos-trend", SystemKind::DilosTrend),
];

/// Runs the sequential-read workload on every metered system and collects
/// its telemetry.
pub fn collect(scale: crate::micro::MicroScale) -> Vec<SystemTelemetry> {
    let ws = (scale.pages * PAGE_SIZE) as u64;
    let wl = SeqWorkload { pages: scale.pages };
    let mut out = Vec::new();
    for (id, kind) in METERED {
        let mut mem = SystemSpec::for_working_set(kind, ws, scale.ratio)
            .observed(Observability::metered())
            .boot();
        let base = wl.populate(mem.as_mut());
        wl.read_pass(mem.as_mut(), base);
        // Digesting quiesces the system, which also flushes pending
        // sampler ticks up to the completion horizon.
        let digest = mem.trace_digest();
        let metrics = mem.metrics();
        let profiler = mem.profiler();
        let mut folded = String::new();
        for line in profiler.folded().lines() {
            let _ = writeln!(folded, "{id};{line}");
        }
        out.push(SystemTelemetry {
            id,
            label: kind.label(),
            digest,
            faults: mem.fault_counters(),
            samples: metrics.samples(),
            p99_major_ns: profiler
                .histogram("major")
                .map(|h| h.quantile(0.99))
                .unwrap_or(0),
            counters_json: metrics.counters_json(),
            gauges_json: metrics.gauges_json(),
            series_json: metrics.series_json(),
            histograms_json: profiler.histograms_json(),
            phase_quantiles_json: profiler.phase_quantiles_json(),
            folded,
            interval_ns: metrics.sample_interval_ns(),
        });
    }
    out
}

/// Indents every line of a JSON fragment after the first by `pad` spaces.
fn indent(json: &str, pad: usize) -> String {
    let mut out = String::with_capacity(json.len());
    for (i, line) in json.lines().enumerate() {
        if i > 0 {
            out.push('\n');
            for _ in 0..pad {
                out.push(' ');
            }
        }
        out.push_str(line);
    }
    out
}

/// Renders `metrics.json`: per-system counters, gauges, and histograms.
pub fn metrics_json(systems: &[SystemTelemetry]) -> String {
    let mut out = String::from("{\n");
    for (i, s) in systems.iter().enumerate() {
        let _ = write!(
            out,
            "  \"{}\": {{\n    \"label\": \"{}\",\n    \"digest\": \"{:#018x}\",\n    \
             \"major\": {},\n    \"minor\": {},\n    \"zero_fill\": {},\n    \
             \"counters\": {},\n    \"gauges\": {},\n    \"histograms\": {},\n    \
             \"phase_quantiles\": {}\n  }}",
            s.id,
            s.label,
            s.digest,
            s.faults.0,
            s.faults.1,
            s.faults.2,
            indent(&s.counters_json, 4),
            indent(&s.gauges_json, 4),
            indent(&s.histograms_json, 4),
            indent(&s.phase_quantiles_json, 4),
        );
        out.push_str(if i + 1 < systems.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}

/// Renders `timeseries.json`: per-system sampler output.
pub fn timeseries_json(systems: &[SystemTelemetry]) -> String {
    let mut out = String::from("{\n");
    for (i, s) in systems.iter().enumerate() {
        let _ = write!(
            out,
            "  \"{}\": {{\n    \"interval_ns\": {},\n    \"samples\": {},\n    \
             \"series\": {}\n  }}",
            s.id,
            s.interval_ns,
            s.samples,
            indent(&s.series_json, 4),
        );
        out.push_str(if i + 1 < systems.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}

/// Renders `profile.folded`: all systems' folded stacks concatenated.
pub fn profile_folded(systems: &[SystemTelemetry]) -> String {
    let mut out = String::new();
    for s in systems {
        out.push_str(&s.folded);
    }
    out
}

/// Runs the metered systems, writes the three artifacts under `out_dir`,
/// and returns a human summary table.
pub fn write_artifacts(scale: crate::micro::MicroScale, out_dir: &str) -> std::io::Result<Report> {
    let systems = collect(scale);
    std::fs::write(format!("{out_dir}/metrics.json"), metrics_json(&systems))?;
    std::fs::write(
        format!("{out_dir}/timeseries.json"),
        timeseries_json(&systems),
    )?;
    std::fs::write(
        format!("{out_dir}/profile.folded"),
        profile_folded(&systems),
    )?;
    let mut report = Report::new(
        "Telemetry — metered sequential read (tab01 systems)",
        &[
            "system",
            "major",
            "minor",
            "zero-fill",
            "samples",
            "p99 major (µs)",
        ],
    );
    for s in &systems {
        report.row(vec![
            s.label.to_string(),
            s.faults.0.to_string(),
            s.faults.1.to_string(),
            s.faults.2.to_string(),
            s.samples.to_string(),
            us(s.p99_major_ns),
        ]);
        report.digest(s.label, s.digest);
    }
    report.note(format!(
        "Artifacts: {out_dir}/metrics.json, {out_dir}/timeseries.json, {out_dir}/profile.folded."
    ));
    report.note("Render the profile with: inferno-flamegraph < results/profile.folded > flame.svg");
    report.note("Digests match the unmetered tab01 run: metrics are pure observers.");
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro::MicroScale;

    fn tiny() -> MicroScale {
        MicroScale {
            pages: 256,
            ratio: 25,
        }
    }

    #[test]
    fn collect_meters_every_system() {
        let systems = collect(tiny());
        assert_eq!(systems.len(), METERED.len());
        for s in &systems {
            assert!(s.samples > 0, "{}: no sampler ticks", s.id);
            assert!(s.faults.0 > 0, "{}: no major faults", s.id);
            assert!(s.folded.lines().all(|l| l.starts_with(s.id)), "{}", s.id);
            assert_ne!(s.digest, 0, "{}: digest missing", s.id);
        }
    }

    #[test]
    fn artifacts_are_byte_stable() {
        let a = collect(tiny());
        let b = collect(tiny());
        assert_eq!(metrics_json(&a), metrics_json(&b));
        assert_eq!(timeseries_json(&a), timeseries_json(&b));
        assert_eq!(profile_folded(&a), profile_folded(&b));
        // Sanity: the JSON opens and closes as an object and names every
        // system.
        let m = metrics_json(&a);
        assert!(m.starts_with("{\n") && m.ends_with("}\n"));
        for (id, _) in METERED {
            assert!(m.contains(&format!("\"{id}\"")), "{id} missing");
        }
    }

    #[test]
    fn metrics_json_carries_phase_quantiles() {
        let systems = collect(tiny());
        let m = metrics_json(&systems);
        assert!(m.contains("\"phase_quantiles\": {"));
        for s in &systems {
            if s.id == "fastswap" {
                // Baselines do not emit FaultPhase events; their object is
                // empty but present.
                assert_eq!(s.phase_quantiles_json, "{}", "{}", s.id);
                continue;
            }
            assert!(
                s.phase_quantiles_json.contains("\"fetch\""),
                "{}: fetch phase missing from {}",
                s.id,
                s.phase_quantiles_json
            );
            assert!(s.phase_quantiles_json.contains("\"p999\""), "{}", s.id);
        }
    }
}
