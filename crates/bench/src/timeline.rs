//! Causal timeline export and critical-path tail analysis.
//!
//! `repro --timeline` boots the tab01 systems (and the contended serving
//! cluster) with the [`CausalTracer`] armed, then renders two kinds of
//! artifact from the assembled span trees:
//!
//! * **`timeline.json` / `serve_timeline.json`** — Chrome trace-event JSON
//!   (the format `chrome://tracing` and <https://ui.perfetto.dev> open
//!   directly). One process per system or tenant, one thread track per
//!   faulting core plus dedicated prefetch / evict / reclaim lanes and one
//!   lane per memory node for RDMA verb spans. All timestamps are the
//!   simulator's *virtual* clock (µs), so two runs produce byte-identical
//!   files.
//! * **`tail.md` / `tail.json`** — the k worst demand-fault exemplars per
//!   track with their [`critical_path`] breakdown (queueing / transfer /
//!   service / replay) and full span trees, so a p99.9 blowup can be read
//!   causally ("this fault spent 92 % of its life queueing behind the
//!   noisy tenant's transfers") instead of statistically.
//!
//! Arming the tracer never perturbs data-path timing: the per-track trace
//! digests recorded here equal the unarmed tab01 digests, and a tier-1 test
//! pins that equality.

use std::fmt::Write as _;

use dilos_apps::farmem::SystemSpec;
use dilos_apps::seqrw::SeqWorkload;
use dilos_sim::TraceEvent;
use dilos_sim::{critical_path, CausalTracer, Ns, Observability, ReqKind, RequestTrace, PAGE_SIZE};

use crate::micro::MicroScale;
use crate::serve::{serve_timeline_tracks, ServeScale};
use crate::table::{us, Report};
use crate::telemetry::METERED;

/// How many worst-case exemplars the tail report keeps per track.
pub const TAIL_K: usize = 5;

/// Synthetic thread ids for non-core lanes (cores use their own number).
const TID_PREFETCH: u32 = 80;
const TID_EVICT: u32 = 81;
const TID_RECLAIM: u32 = 82;
const TID_NODE_BASE: u32 = 100;

/// One armed run: a Perfetto process track plus its causal record.
#[derive(Debug, Clone)]
pub struct TimelineTrack {
    /// Process name in the exported timeline.
    pub label: String,
    /// Trace digest of the armed run (must equal the unarmed digest).
    pub digest: u64,
    /// The assembled span trees.
    pub tracer: CausalTracer,
}

/// Boots every tab01 system with the causal tracer armed and drives the
/// sequential-read workload, returning one labelled track per system.
pub fn collect_timeline(scale: MicroScale) -> Vec<TimelineTrack> {
    let ws = (scale.pages * PAGE_SIZE) as u64;
    let wl = SeqWorkload { pages: scale.pages };
    let mut out = Vec::new();
    for (id, kind) in METERED {
        let obs = Observability::tracing().with_timeline();
        let mut mem = SystemSpec::for_working_set(kind, ws, scale.ratio)
            .observed(obs.clone())
            .boot();
        let base = wl.populate(mem.as_mut());
        wl.read_pass(mem.as_mut(), base);
        let digest = mem.trace_digest();
        out.push(TimelineTrack {
            label: id.to_string(),
            digest,
            tracer: obs.causal().clone(),
        });
    }
    out
}

/// Formats a virtual-ns stamp as Chrome's microsecond field. Pure integer
/// arithmetic in, fixed three-decimal rendering out: byte-stable.
fn ts_us(t: Ns) -> String {
    format!("{}.{:03}", t / 1_000, t % 1_000)
}

fn push_event(out: &mut String, first: &mut bool, ev: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str("    ");
    out.push_str(ev);
}

fn span_tid(r: &RequestTrace) -> u32 {
    match r.kind {
        ReqKind::Prefetch => TID_PREFETCH,
        ReqKind::Evict => TID_EVICT,
        _ => u32::from(r.core),
    }
}

fn tid_name(tid: u32) -> String {
    match tid {
        TID_PREFETCH => "prefetch".into(),
        TID_EVICT => "evict".into(),
        TID_RECLAIM => "reclaim-bg".into(),
        t if t >= TID_NODE_BASE => format!("memnode{} rdma", t - TID_NODE_BASE),
        t => format!("core{t} faults"),
    }
}

/// Renders a set of tracks as Chrome trace-event JSON (`{"traceEvents":
/// [...]}`). Every value derives from the virtual clock and the request
/// register, so the output is byte-identical across runs.
pub fn chrome_trace_json(tracks: &[(String, &CausalTracer)]) -> String {
    let mut out = String::from("{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [\n");
    let mut first = true;
    for (pid0, (label, tracer)) in tracks.iter().enumerate() {
        let pid = pid0 + 1;
        let reqs = tracer.requests();
        let episodes = tracer.reclaim_episodes();
        // Thread metadata for every lane this track actually uses, in
        // ascending tid order.
        let mut tids: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
        for r in &reqs {
            tids.insert(span_tid(r));
            for (_, ev) in &r.events {
                if let TraceEvent::RdmaIssue { node, .. } = ev {
                    tids.insert(TID_NODE_BASE + u32::from(*node));
                }
            }
        }
        if !episodes.is_empty() {
            tids.insert(TID_RECLAIM);
        }
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"{label}\"}}}}"
            ),
        );
        for tid in &tids {
            push_event(
                &mut out,
                &mut first,
                &format!(
                    "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    tid_name(*tid)
                ),
            );
        }
        // One complete ("X") slice per request, plus verb slices on the
        // owning memnode lane.
        for r in &reqs {
            let b = critical_path(r);
            let vpn = if r.vpn == u64::MAX {
                "-".to_string()
            } else {
                format!("{:#x}", r.vpn)
            };
            push_event(
                &mut out,
                &mut first,
                &format!(
                    "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{},\"ts\":{},\"dur\":{},\
                     \"name\":\"{} vpn={vpn}\",\"args\":{{\"req\":{},\
                     \"queueing_ns\":{},\"transfer_ns\":{},\"service_ns\":{},\
                     \"replay_ns\":{},\"other_ns\":{},\"dominant\":\"{}\"}}}}",
                    span_tid(r),
                    ts_us(r.begin),
                    ts_us(r.total()),
                    r.kind.label(),
                    r.id,
                    b.queueing,
                    b.transfer,
                    b.service,
                    b.replay,
                    b.other,
                    b.dominant(),
                ),
            );
            // Verb sub-spans: FIFO-pair issues with completions per queue
            // pair, drawn on the serving memnode's lane.
            let mut open: std::collections::BTreeMap<(u8, bool, u8, u8), Vec<Ns>> =
                std::collections::BTreeMap::new();
            for (t, ev) in &r.events {
                match *ev {
                    TraceEvent::RdmaIssue {
                        class,
                        write,
                        node,
                        core,
                        ..
                    } => open
                        .entry((class.idx() as u8, write, node, core))
                        .or_default()
                        .push(*t),
                    TraceEvent::RdmaComplete {
                        class,
                        write,
                        node,
                        core,
                        done,
                    } => {
                        let key = (class.idx() as u8, write, node, core);
                        let issued = open.get_mut(&key).and_then(|q| {
                            if q.is_empty() {
                                None
                            } else {
                                Some(q.remove(0))
                            }
                        });
                        if let Some(issued) = issued {
                            push_event(
                                &mut out,
                                &mut first,
                                &format!(
                                    "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{},\"ts\":{},\
                                     \"dur\":{},\"name\":\"rdma {} ({})\",\
                                     \"args\":{{\"req\":{}}}}}",
                                    TID_NODE_BASE + u32::from(node),
                                    ts_us(issued),
                                    ts_us(done.saturating_sub(issued)),
                                    if write { "write" } else { "read" },
                                    class.label(),
                                    r.id,
                                ),
                            );
                        }
                    }
                    _ => {}
                }
            }
        }
        for (begin, end, freed) in &episodes {
            push_event(
                &mut out,
                &mut first,
                &format!(
                    "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{TID_RECLAIM},\"ts\":{},\"dur\":{},\
                     \"name\":\"reclaim\",\"args\":{{\"freed\":{freed}}}}}",
                    ts_us(*begin),
                    ts_us(end.saturating_sub(*begin)),
                ),
            );
        }
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// One tail exemplar: a worst-case demand fault and where its time went.
#[derive(Debug, Clone)]
pub struct TailExemplar {
    /// Track (system or tenant) the fault belongs to.
    pub track: String,
    /// The full span tree.
    pub request: RequestTrace,
    /// Its critical-path attribution.
    pub breakdown: dilos_sim::PhaseBreakdown,
}

fn is_demand_fault(kind: ReqKind) -> bool {
    matches!(
        kind,
        ReqKind::MajorFault | ReqKind::MinorFault | ReqKind::ZeroFill
    )
}

/// Picks the `k` slowest demand faults of one track (ties broken by the
/// earlier request id, so the pick is deterministic).
pub fn worst_faults(
    tracer: &CausalTracer,
    k: usize,
) -> Vec<(RequestTrace, dilos_sim::PhaseBreakdown)> {
    let mut faults: Vec<RequestTrace> = tracer
        .requests()
        .into_iter()
        .filter(|r| is_demand_fault(r.kind))
        .collect();
    faults.sort_by(|a, b| b.total().cmp(&a.total()).then(a.id.cmp(&b.id)));
    faults
        .into_iter()
        .take(k)
        .map(|r| {
            let b = critical_path(&r);
            (r, b)
        })
        .collect()
}

/// Collects the tail exemplars across every track.
pub fn tail_exemplars(tracks: &[(String, &CausalTracer)], k: usize) -> Vec<TailExemplar> {
    let mut out = Vec::new();
    for (label, tracer) in tracks {
        for (request, breakdown) in worst_faults(tracer, k) {
            out.push(TailExemplar {
                track: label.clone(),
                request,
                breakdown,
            });
        }
    }
    out
}

fn event_line(t: Ns, ev: &TraceEvent) -> String {
    format!("{} {ev:?}", us(t))
}

/// Renders `tail.md`: per-track worst-fault tables plus indented span
/// trees for each exemplar.
pub fn tail_md(exemplars: &[TailExemplar]) -> String {
    let mut out = String::from(
        "# Causal tail exemplars\n\n\
         The k slowest demand faults per track, with end-to-end latency\n\
         attributed along the critical path. All times are virtual µs; the\n\
         span trees list every event the causal tracer attributed to the\n\
         request id, in emission order.\n",
    );
    let mut track = "";
    for e in exemplars {
        if e.track != track {
            track = &e.track;
            let _ = write!(
                out,
                "\n## {track}\n\n\
                 | req | kind | core | vpn | begin | total | queueing | transfer \
                 | service | replay | other | dominant |\n\
                 |---|---|---|---|---|---|---|---|---|---|---|---|\n"
            );
            for peer in exemplars.iter().filter(|p| p.track == e.track) {
                let r = &peer.request;
                let b = &peer.breakdown;
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {:#x} | {} | {} | {} | {} | {} | {} | {} | {} |",
                    r.id,
                    r.kind.label(),
                    r.core,
                    r.vpn,
                    us(r.begin),
                    us(b.total),
                    us(b.queueing),
                    us(b.transfer),
                    us(b.service),
                    us(b.replay),
                    us(b.other),
                    b.dominant(),
                );
            }
        }
        let r = &e.request;
        let _ = write!(
            out,
            "\n### req {} — {} vpn={:#x} ({} total, dominant: {})\n\n",
            r.id,
            r.kind.label(),
            r.vpn,
            us(r.total()),
            e.breakdown.dominant(),
        );
        for (t, ev) in &r.events {
            let _ = writeln!(out, "    {}", event_line(*t, ev));
        }
    }
    out
}

/// Renders `tail.json`: the same exemplars, machine-readable.
pub fn tail_json(exemplars: &[TailExemplar]) -> String {
    let mut out = String::from("{\n  \"exemplars\": [\n");
    for (i, e) in exemplars.iter().enumerate() {
        let r = &e.request;
        let b = &e.breakdown;
        let mut events = String::new();
        for (j, (t, ev)) in r.events.iter().enumerate() {
            let _ = write!(
                events,
                "{}\n        {{\"t_ns\": {t}, \"event\": \"{ev:?}\"}}",
                if j > 0 { "," } else { "" }
            );
        }
        let _ = write!(
            out,
            "    {{\n      \"track\": \"{}\",\n      \"req\": {},\n      \
             \"kind\": \"{}\",\n      \"core\": {},\n      \"vpn\": {},\n      \
             \"begin_ns\": {},\n      \"total_ns\": {},\n      \
             \"queueing_ns\": {},\n      \"transfer_ns\": {},\n      \
             \"service_ns\": {},\n      \"replay_ns\": {},\n      \
             \"other_ns\": {},\n      \"dominant\": \"{}\",\n      \
             \"events\": [{events}\n      ]\n    }}{}\n",
            e.track,
            r.id,
            r.kind.label(),
            r.core,
            r.vpn,
            r.begin,
            b.total,
            b.queueing,
            b.transfer,
            b.service,
            b.replay,
            b.other,
            b.dominant(),
            if i + 1 < exemplars.len() { "," } else { "" },
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the armed tab01 systems and the contended serving cluster, writes
/// `timeline.json`, `serve_timeline.json`, `tail.md`, and `tail.json`
/// under `out_dir`, and returns a human summary table.
pub fn write_timeline_artifacts(
    scale: MicroScale,
    serve_scale: ServeScale,
    out_dir: &str,
) -> std::io::Result<Report> {
    let micro = collect_timeline(scale);
    let micro_tracks: Vec<(String, &CausalTracer)> =
        micro.iter().map(|t| (t.label.clone(), &t.tracer)).collect();
    std::fs::write(
        format!("{out_dir}/timeline.json"),
        chrome_trace_json(&micro_tracks),
    )?;
    // The serving cluster, contended, with and without QoS: the per-tenant
    // tracks cross-check the serve table's lanes.
    let mut serve_owned: Vec<(String, CausalTracer, u64)> = Vec::new();
    for qos in [false, true] {
        serve_owned.extend(serve_timeline_tracks(serve_scale, qos));
    }
    let serve_tracks: Vec<(String, &CausalTracer)> = serve_owned
        .iter()
        .map(|(label, tracer, _)| (label.clone(), tracer))
        .collect();
    std::fs::write(
        format!("{out_dir}/serve_timeline.json"),
        chrome_trace_json(&serve_tracks),
    )?;
    let mut all_tracks = micro_tracks;
    all_tracks.extend(serve_tracks);
    let exemplars = tail_exemplars(&all_tracks, TAIL_K);
    std::fs::write(format!("{out_dir}/tail.md"), tail_md(&exemplars))?;
    std::fs::write(format!("{out_dir}/tail.json"), tail_json(&exemplars))?;

    let mut report = Report::new(
        "Timeline — causal span trees (tab01 systems + serving cluster)",
        &["track", "requests", "worst fault", "dominant"],
    );
    for (label, tracer) in &all_tracks {
        let worst = worst_faults(tracer, 1);
        let (total, dominant) = worst
            .first()
            .map_or((0, "none"), |(r, b)| (r.total(), b.dominant()));
        report.row(vec![
            label.clone(),
            tracer.request_count().to_string(),
            us(total),
            dominant.to_string(),
        ]);
    }
    for t in &micro {
        report.digest(t.label.clone(), t.digest);
    }
    for (label, _, digest) in &serve_owned {
        report.digest(label.clone(), *digest);
    }
    report.note(format!(
        "Artifacts: {out_dir}/timeline.json, {out_dir}/serve_timeline.json, \
         {out_dir}/tail.md, {out_dir}/tail.json."
    ));
    report.note("Open the timelines at https://ui.perfetto.dev (or chrome://tracing).");
    report.note("Digests match the unarmed tab01 run: the causal tracer is a pure observer.");
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MicroScale {
        MicroScale {
            pages: 256,
            ratio: 25,
        }
    }

    #[test]
    fn collect_covers_every_system_and_is_deterministic() {
        let a = collect_timeline(tiny());
        let b = collect_timeline(tiny());
        assert_eq!(a.len(), METERED.len());
        for (ta, tb) in a.iter().zip(&b) {
            assert_eq!(ta.digest, tb.digest, "{}", ta.label);
            assert!(ta.tracer.request_count() > 0, "{}: no requests", ta.label);
            assert_eq!(
                ta.tracer.request_count(),
                tb.tracer.request_count(),
                "{}",
                ta.label
            );
        }
    }

    #[test]
    fn chrome_export_is_byte_stable_and_well_formed() {
        let mk = || {
            let tracks = collect_timeline(tiny());
            let pairs: Vec<(String, &CausalTracer)> = tracks
                .iter()
                .map(|t| (t.label.clone(), &t.tracer))
                .collect();
            chrome_trace_json(&pairs)
        };
        let a = mk();
        assert_eq!(a, mk(), "timeline must be byte-stable");
        assert!(a.starts_with("{\n"));
        assert!(a.contains("\"traceEvents\""));
        assert!(a.contains("\"process_name\""));
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("major-fault"));
        assert!(a.contains("rdma read (fault)"));
    }

    #[test]
    fn tail_picks_the_slowest_faults_first() {
        let tracks = collect_timeline(tiny());
        let pairs: Vec<(String, &CausalTracer)> = tracks
            .iter()
            .map(|t| (t.label.clone(), &t.tracer))
            .collect();
        let exemplars = tail_exemplars(&pairs, TAIL_K);
        assert!(!exemplars.is_empty());
        let mut track = "";
        let mut last = Ns::MAX;
        for e in &exemplars {
            if e.track != track {
                track = &e.track;
                last = Ns::MAX;
            }
            assert!(is_demand_fault(e.request.kind));
            assert!(e.request.total() <= last, "{track}: not sorted");
            last = e.request.total();
            let b = &e.breakdown;
            assert_eq!(
                b.queueing + b.transfer + b.service + b.replay + b.other,
                b.total,
                "breakdown must be exhaustive"
            );
        }
        let md = tail_md(&exemplars);
        assert!(md.contains("| req | kind |"));
        assert!(md.contains("FaultBegin"));
        let json = tail_json(&exemplars);
        assert_eq!(json, tail_json(&exemplars));
        assert!(json.contains("\"dominant\""));
    }
}
