//! The simulator self-benchmark behind `sim_bench` / `BENCH_sim.json`.
//!
//! Two representative workloads exercise the event loop end to end:
//!
//! * **tab01** — the four Tables 1 & 3 systems (Fastswap + three DiLOS
//!   prefetcher configurations) driving the sequential-read microbenchmark,
//! * **serve** — the contended multi-tenant serving cluster with QoS on
//!   (three tenants, shared wire, bandwidth shares and frame quotas).
//!
//! For each workload this module produces a *census*: total trace events
//! emitted, total demand faults (major + minor), and the run's trace
//! digests — all virtual-clock quantities, byte-stable across runs. The
//! `sim_bench` binary times two back-to-back censuses on the host clock,
//! checks they agree (the determinism gate), and writes `BENCH_sim.json`
//! with the census plus a single clearly-marked `"wall_clock"` line holding
//! every host-timing-derived number (events/sec, faults/sec, elapsed ms) so
//! CI can `grep -v wall_clock` and `cmp` the deterministic remainder.

use std::fmt::Write as _;

use dilos_apps::farmem::SystemSpec;
use dilos_apps::seqrw::SeqWorkload;
use dilos_sim::{Observability, PAGE_SIZE};

use crate::micro::MicroScale;
use crate::serve::{serve_census, ServeScale};
use crate::telemetry::METERED;

/// One workload's deterministic measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadCensus {
    /// Stable id used as the JSON key ("tab01", "serve").
    pub id: &'static str,
    /// Trace events emitted across every system/tenant in the workload.
    pub events: u64,
    /// Demand faults (major + minor) across the workload.
    pub faults: u64,
    /// Trace digests, one per system/tenant, in boot order.
    pub digests: Vec<u64>,
}

/// Runs the tab01 systems under plain tracing and counts what the event
/// loop did. Digesting precedes counting: it quiesces each system, which
/// can flush a few final events.
pub fn census_tab01(scale: MicroScale) -> WorkloadCensus {
    let ws = (scale.pages * PAGE_SIZE) as u64;
    let wl = SeqWorkload { pages: scale.pages };
    let (mut events, mut faults, mut digests) = (0u64, 0u64, Vec::new());
    for (_, kind) in METERED {
        let obs = Observability::tracing();
        let mut mem = SystemSpec::for_working_set(kind, ws, scale.ratio)
            .observed(obs.clone())
            .boot();
        let base = wl.populate(mem.as_mut());
        wl.read_pass(mem.as_mut(), base);
        digests.push(mem.trace_digest());
        events += obs.trace().count();
        let (major, minor, _zero) = mem.fault_counters();
        faults += major + minor;
    }
    WorkloadCensus {
        id: "tab01",
        events,
        faults,
        digests,
    }
}

/// Runs the contended serving cluster (QoS on) and counts what its event
/// loop did.
pub fn census_serve(scale: ServeScale) -> WorkloadCensus {
    let (events, faults, digests) = serve_census(scale, true);
    WorkloadCensus {
        id: "serve",
        events,
        faults,
        digests,
    }
}

/// Renders the deterministic half of `BENCH_sim.json` (everything except
/// the `"wall_clock"` line): byte-stable across runs.
pub fn census_json(censuses: &[WorkloadCensus]) -> String {
    let mut out = String::from("  \"workloads\": {\n");
    for (i, c) in censuses.iter().enumerate() {
        let digests: Vec<String> = c.digests.iter().map(|d| format!("\"{d:#018x}\"")).collect();
        let _ = write!(
            out,
            "    \"{}\": {{\n      \"events\": {},\n      \"faults\": {},\n      \
             \"digests\": [{}]\n    }}{}\n",
            c.id,
            c.events,
            c.faults,
            digests.join(", "),
            if i + 1 < censuses.len() { "," } else { "" },
        );
    }
    out.push_str("  }");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn censuses_are_deterministic_and_nonzero() {
        let micro = MicroScale {
            pages: 256,
            ratio: 25,
        };
        let serve = ServeScale {
            victim_requests: 60,
            victim_mean_ns: 50_000,
            noisy_requests: 30,
        };
        let a = [census_tab01(micro), census_serve(serve)];
        let b = [census_tab01(micro), census_serve(serve)];
        assert_eq!(a, b, "census must be byte-stable");
        for c in &a {
            assert!(c.events > 0, "{}: no events", c.id);
            assert!(c.faults > 0, "{}: no faults", c.id);
            assert!(c.digests.iter().all(|&d| d != 0), "{}: zero digest", c.id);
        }
        assert_eq!(a[0].digests.len(), METERED.len());
        assert_eq!(a[1].digests.len(), 3, "three tenants");
        let json = census_json(&a);
        assert_eq!(json, census_json(&b));
        assert!(json.contains("\"tab01\"") && json.contains("\"serve\""));
        assert!(!json.contains("wall_clock"), "census carries no host time");
    }
}
