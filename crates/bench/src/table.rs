//! Plain-text table rendering for experiment reports.
//!
//! Every experiment runner returns a [`Report`]; the Criterion benches and
//! the `repro` binary print it and (for `repro`) persist it under
//! `results/`.

use std::fmt::Write as _;

/// A rendered experiment report: a title, column headers, and rows.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id + description ("Table 2 — sequential throughput").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (paper-vs-measured commentary).
    pub notes: Vec<String>,
    /// Trace digests pinning the exact event stream behind the numbers,
    /// labelled per system/configuration. Rendered into `bench.json` so a
    /// regression shows up as a digest change even when the table rounds it
    /// away.
    pub digests: Vec<(String, u64)>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
            digests: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len(), "column count");
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Records a labelled trace digest.
    pub fn digest(&mut self, label: impl Into<String>, digest: u64) {
        self.digests.push((label.into(), digest));
    }

    /// Renders the report as a JSON object (hand-rolled; the workspace
    /// deliberately has no serialization dependency). Digests are emitted
    /// as hex strings — JSON numbers lose precision past 2^53.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out
        }
        let arr = |items: &[String]| {
            let cells: Vec<String> = items.iter().map(|c| format!("\"{}\"", esc(c))).collect();
            format!("[{}]", cells.join(", "))
        };
        let rows: Vec<String> = self.rows.iter().map(|r| arr(r)).collect();
        let digests: Vec<String> = self
            .digests
            .iter()
            .map(|(label, d)| format!("\"{}\": \"{d:#018x}\"", esc(label)))
            .collect();
        format!(
            "{{\n    \"title\": \"{}\",\n    \"headers\": {},\n    \"rows\": [{}],\n    \
             \"notes\": {},\n    \"digests\": {{{}}}\n  }}",
            esc(&self.title),
            arr(&self.headers),
            rows.join(", "),
            arr(&self.notes),
            digests.join(", ")
        )
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(s, " {c:<w$} |");
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{:-<1$}|", "", w + 2);
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        for n in &self.notes {
            let _ = writeln!(out, "> {n}");
        }
        out
    }
}

/// Formats nanoseconds as microseconds with two decimals.
pub fn us(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1_000.0)
}

/// Formats a ratio/float with two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats virtual nanoseconds as milliseconds.
pub fn ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut r = Report::new("Test", &["name", "value"]);
        r.row(vec!["a".into(), "1".into()]);
        r.row(vec!["long-name".into(), "22".into()]);
        r.note("a note");
        let s = r.render();
        assert!(s.contains("## Test"));
        assert!(s.contains("| long-name | 22    |"));
        assert!(s.contains("> a note"));
    }

    #[test]
    fn renders_json() {
        let mut r = Report::new("Test \"q\"", &["name", "value"]);
        r.row(vec!["a".into(), "1".into()]);
        r.note("line1\nline2");
        r.digest("sys", 0x1234_5678_9abc_def0);
        let j = r.to_json();
        assert!(j.contains("\"title\": \"Test \\\"q\\\"\""));
        assert!(j.contains("[\"a\", \"1\"]"));
        assert!(j.contains("line1\\nline2"));
        assert!(j.contains("\"sys\": \"0x123456789abcdef0\""));
    }

    #[test]
    fn formatters() {
        assert_eq!(us(2_500), "2.50");
        assert_eq!(f2(1.239), "1.24");
        assert_eq!(ms(2_000_000), "2.00");
    }
}
