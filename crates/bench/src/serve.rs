//! The multi-tenant serving experiment: noisy-neighbor isolation under QoS.
//!
//! Three tenants share one memory node: two well-behaved *victims* serving
//! open-loop point lookups, and one *noisy* tenant running a closed-loop
//! full-working-set scanner with zero think time (a wire- and
//! reclaim-saturating neighbor). Three passes:
//!
//! 1. **solo** — the victims alone (no neighbor): the baseline tail.
//! 2. **QoS off** — the neighbor joins; local frames are split by demand
//!    and the wire is first-come-first-served, so the scanner starves the
//!    victims of both.
//! 3. **QoS on** — bandwidth shares + local-memory quotas: the scanner is
//!    shaped to its share and capped at its frame quota; victim tails stay
//!    near solo.
//!
//! The stated isolation bound ([`QOS_P999_BOUND`]): with QoS on, victim
//! p99.9 stays within `QOS_P999_BOUND ×` the solo baseline. The table's
//! notes state the bound and whether each pass held it — with QoS off the
//! bound fails, which is the point.

use dilos_core::{ClusterConfig, ServingCluster, TenantSpec};
use dilos_sim::{CausalTracer, Observability, ServiceClass};

use crate::loadgen::{drive, Arrival, RequestKind, TenantLoad, TenantResult};
use crate::table::{us, Report};

/// Stated isolation bound: QoS-on victim p99.9 ≤ bound × solo p99.9.
pub const QOS_P999_BOUND: u64 = 4;

/// Experiment sizing.
#[derive(Debug, Clone, Copy)]
pub struct ServeScale {
    /// Open-loop requests per victim tenant.
    pub victim_requests: usize,
    /// Mean inter-arrival gap per victim (virtual ns).
    pub victim_mean_ns: u64,
    /// Closed-loop scan requests for the noisy tenant.
    pub noisy_requests: usize,
}

impl Default for ServeScale {
    fn default() -> Self {
        Self {
            victim_requests: 400,
            victim_mean_ns: 50_000,
            noisy_requests: 150,
        }
    }
}

const VICTIM_QUOTA: usize = 256;
const VICTIM_WS_PAGES: usize = 384;
const NOISY_WS_PAGES: usize = 2_048;

fn victim_spec(obs: Observability) -> TenantSpec {
    TenantSpec {
        local_quota: VICTIM_QUOTA,
        local_demand: VICTIM_QUOTA,
        remote_bytes: 1 << 24,
        bandwidth_share: 4,
        cores: 1,
        obs,
    }
}

fn noisy_spec() -> TenantSpec {
    TenantSpec {
        local_quota: VICTIM_QUOTA,
        // Demands 8× its quota: without QoS the demand-proportional split
        // hands it most of the frame pool, starving the victims.
        local_demand: NOISY_WS_PAGES,
        remote_bytes: 1 << 25,
        bandwidth_share: 1,
        cores: 1,
        obs: Observability::none(),
    }
}

fn victim_load(scale: ServeScale, seed: u64) -> TenantLoad {
    TenantLoad {
        seed,
        arrival: Arrival::Open {
            mean_ns: scale.victim_mean_ns,
        },
        requests: scale.victim_requests,
        kind: RequestKind::PointRead { touches: 2 },
        working_pages: VICTIM_WS_PAGES,
    }
}

fn noisy_load(scale: ServeScale) -> TenantLoad {
    TenantLoad {
        seed: 0x5CA7,
        arrival: Arrival::Closed { think_ns: 0 },
        requests: scale.noisy_requests,
        kind: RequestKind::Scan { pages: 256 },
        working_pages: NOISY_WS_PAGES,
    }
}

/// One tenant's metric lane: fault counts from its node's hand counters
/// plus its attributed wire bytes across all service classes. These are the
/// per-tenant numbers the causal tail exemplars are cross-checked against.
#[derive(Debug, Clone, Copy)]
struct TenantLane {
    major: u64,
    minor: u64,
    tx_bytes: u64,
    rx_bytes: u64,
}

struct Pass {
    results: Vec<TenantResult>,
    lanes: Vec<TenantLane>,
    digest: u64,
    audit: Vec<(u8, Vec<String>)>,
}

fn tenant_lanes(cluster: &ServingCluster) -> Vec<TenantLane> {
    (0..cluster.len())
        .map(|i| {
            let stats = cluster.tenant_ref(i).stats();
            let (mut tx_bytes, mut rx_bytes) = (0u64, 0u64);
            let ep = cluster.pool().endpoint();
            for class in ServiceClass::ALL {
                let (tx, rx) = ep.tenant_class_bytes(i as u8, class);
                tx_bytes += tx;
                rx_bytes += rx;
            }
            TenantLane {
                major: stats.major_faults,
                minor: stats.minor_faults,
                tx_bytes,
                rx_bytes,
            }
        })
        .collect()
}

/// Runs one pass: victims (+ optionally the noisy neighbor), QoS on/off.
fn run_pass(scale: ServeScale, with_noisy: bool, qos: bool) -> Pass {
    let mut tenants = vec![
        victim_spec(Observability::audited()),
        victim_spec(Observability::tracing()),
    ];
    let mut loads = vec![victim_load(scale, 0xA0), victim_load(scale, 0xB1)];
    if with_noisy {
        tenants.push(noisy_spec());
        loads.push(noisy_load(scale));
    }
    let mut cluster = ServingCluster::boot(ClusterConfig {
        qos,
        tenants,
        ..ClusterConfig::default()
    });
    let results = drive(&mut cluster, &loads);
    let lanes = tenant_lanes(&cluster);
    let audit = cluster.audit_reports();
    let digest = cluster.tenant(0).trace_digest();
    Pass {
        results,
        lanes,
        digest,
        audit,
    }
}

/// Boots the contended pass (victims + noisy neighbor) with causal tracing
/// armed on every traced tenant and returns one labelled track per tenant:
/// `(label, tracer, trace digest)`. The labels become Perfetto process
/// names, so a cluster timeline reads as one track group per tenant.
pub fn serve_timeline_tracks(scale: ServeScale, qos: bool) -> Vec<(String, CausalTracer, u64)> {
    let obs = [
        Observability::audited().with_timeline(),
        Observability::tracing().with_timeline(),
        Observability::tracing().with_timeline(),
    ];
    let tenants = vec![
        victim_spec(obs[0].clone()),
        victim_spec(obs[1].clone()),
        TenantSpec {
            obs: obs[2].clone(),
            ..noisy_spec()
        },
    ];
    let loads = vec![
        victim_load(scale, 0xA0),
        victim_load(scale, 0xB1),
        noisy_load(scale),
    ];
    let mut cluster = ServingCluster::boot(ClusterConfig {
        qos,
        tenants,
        ..ClusterConfig::default()
    });
    drive(&mut cluster, &loads);
    let roles = ["victim", "victim", "noisy"];
    let mode = if qos { "qos-on" } else { "qos-off" };
    obs.iter()
        .enumerate()
        .map(|(i, o)| {
            (
                format!("tenant{i} ({}, {mode})", roles[i]),
                o.causal().clone(),
                cluster.tenant(i).trace_digest(),
            )
        })
        .collect()
}

/// Cluster-wide census of the contended pass, for `sim_bench`: total trace
/// events across all tenants, total demand faults (major + minor), and the
/// per-tenant trace digests. Tenants run with plain tracing — no causal
/// assembly — so the census measures the bare event loop.
pub fn serve_census(scale: ServeScale, qos: bool) -> (u64, u64, Vec<u64>) {
    let obs = [
        Observability::tracing(),
        Observability::tracing(),
        Observability::tracing(),
    ];
    let tenants = vec![
        victim_spec(obs[0].clone()),
        victim_spec(obs[1].clone()),
        TenantSpec {
            obs: obs[2].clone(),
            ..noisy_spec()
        },
    ];
    let loads = vec![
        victim_load(scale, 0xA0),
        victim_load(scale, 0xB1),
        noisy_load(scale),
    ];
    let mut cluster = ServingCluster::boot(ClusterConfig {
        qos,
        tenants,
        ..ClusterConfig::default()
    });
    drive(&mut cluster, &loads);
    // Digest first: digesting quiesces each tenant, which may flush a few
    // final events into the sinks.
    let digests: Vec<u64> = (0..cluster.len())
        .map(|i| cluster.tenant(i).trace_digest())
        .collect();
    let events = obs.iter().map(|o| o.trace().count()).sum();
    let faults = (0..cluster.len())
        .map(|i| {
            let s = cluster.tenant_ref(i).stats();
            s.major_faults + s.minor_faults
        })
        .sum();
    (events, faults, digests)
}

/// The serving table: per-pass, per-tenant latency percentiles.
pub fn serve_qos(scale: ServeScale) -> Report {
    let mut report = Report::new(
        "Serve — multi-tenant tail latency under a noisy neighbor",
        &[
            "pass", "tenant", "role", "requests", "p50", "p90", "p99", "p99.9", "mean", "major",
            "minor", "rx KiB", "tx KiB",
        ],
    );
    let passes = [
        ("solo", run_pass(scale, false, false)),
        ("qos-off", run_pass(scale, true, false)),
        ("qos-on", run_pass(scale, true, true)),
    ];
    let mut solo_p999 = 0u64;
    for (name, pass) in &passes {
        for (id, r) in pass.results.iter().enumerate() {
            let role = if id < 2 { "victim" } else { "noisy" };
            let lane = pass.lanes.get(id);
            report.row(vec![
                (*name).into(),
                id.to_string(),
                role.into(),
                r.completed.to_string(),
                us(r.latency.p50()),
                us(r.latency.p90()),
                us(r.latency.p99()),
                us(r.latency.p999()),
                us(r.latency.mean()),
                lane.map_or(0, |l| l.major).to_string(),
                lane.map_or(0, |l| l.minor).to_string(),
                (lane.map_or(0, |l| l.rx_bytes) / 1024).to_string(),
                (lane.map_or(0, |l| l.tx_bytes) / 1024).to_string(),
            ]);
        }
        report.digest(format!("{name} (victim 0)"), pass.digest);
        let victim_p999 = pass.results[..2]
            .iter()
            .map(|r| r.latency.p999())
            .max()
            .unwrap_or(0);
        match *name {
            "solo" => solo_p999 = victim_p999.max(1),
            _ => {
                let held = victim_p999 <= QOS_P999_BOUND * solo_p999;
                report.note(format!(
                    "{name}: victim p99.9 {} = {:.2}x solo — bound ({QOS_P999_BOUND}x) {}",
                    us(victim_p999),
                    victim_p999 as f64 / solo_p999 as f64,
                    if held { "HELD" } else { "EXCEEDED" }
                ));
            }
        }
        if !pass.audit.is_empty() {
            report.note(format!("{name}: AUDIT VIOLATIONS {:?}", pass.audit));
        }
    }
    report.note(
        "QoS arbitration = per-tenant bandwidth shares (4:4:1) + local-frame quotas \
         with demand capped at quota; without it frames are split demand-proportionally \
         and the wire is FCFS.",
    );
    report.note("Audited victim (tenant 0) ran clean in every pass unless noted above.");
    report.note(
        "Per-tenant lanes (major/minor faults, attributed wire bytes) cross-check \
         the causal tail exemplars in results/tail.{md,json}: a victim tail blowup \
         with QoS off shows up as transfer-dominated exemplars while the noisy \
         tenant's rx lane saturates.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_report_is_deterministic_and_qos_bounds_the_tail() {
        let scale = ServeScale {
            victim_requests: 120,
            victim_mean_ns: 50_000,
            noisy_requests: 60,
        };
        let a = serve_qos(scale).to_json();
        let b = serve_qos(scale).to_json();
        assert_eq!(a, b, "serve table must be byte-stable");
        assert!(a.contains("HELD"), "QoS-on must hold the stated bound");
        assert!(a.contains("rx KiB"), "per-tenant wire lanes missing");
    }

    #[test]
    fn serve_timeline_tracks_are_per_tenant_and_deterministic() {
        let scale = ServeScale {
            victim_requests: 60,
            victim_mean_ns: 50_000,
            noisy_requests: 30,
        };
        let a = serve_timeline_tracks(scale, true);
        let b = serve_timeline_tracks(scale, true);
        assert_eq!(a.len(), 3);
        assert!(a[0].0.contains("victim") && a[2].0.contains("noisy"));
        for ((_, ta, da), (_, tb, db)) in a.iter().zip(&b) {
            assert_eq!(da, db, "per-tenant digests must be deterministic");
            assert_eq!(ta.request_count(), tb.request_count());
            assert!(ta.request_count() > 0, "tenant saw no requests");
        }
    }
}
