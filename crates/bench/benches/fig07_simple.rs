//! Figure 7 — the simple benchmarks: quicksort, k-means, snappy.

use criterion::{criterion_group, criterion_main, Criterion};
use dilos_bench::apps_exp::{fig07a_quicksort, fig07b_kmeans, fig07cd_snappy, SimpleScale};

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

fn bench(c: &mut Criterion) {
    let scale = SimpleScale {
        sort_elements: 65_536,
        kmeans_points: 32_768,
        snappy_bytes: 256 * 1024,
    };
    println!("{}", fig07a_quicksort(scale).render());
    println!("{}", fig07b_kmeans(scale).render());
    println!("{}", fig07cd_snappy(scale).render());
    c.bench_function("fig07_kmeans_run", |b| {
        let small = SimpleScale {
            sort_elements: 8_192,
            kmeans_points: 8_192,
            snappy_bytes: 65_536,
        };
        b.iter(|| fig07b_kmeans(small).rows.len())
    });
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
