//! Figure 1 — Fastswap's page-fault latency breakdown.
//!
//! Prints the regenerated table once, then Criterion-measures the harness:
//! a full Fastswap sequential-read run (populate + read-back).

use criterion::{criterion_group, criterion_main, Criterion};
use dilos_bench::micro::{fig01_fastswap_breakdown, MicroScale};

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

fn bench(c: &mut Criterion) {
    let scale = MicroScale {
        pages: 1_024,
        ratio: 13,
    };
    println!("{}", fig01_fastswap_breakdown(scale).render());
    c.bench_function("fig01_fastswap_seq_read", |b| {
        b.iter(|| fig01_fastswap_breakdown(scale).rows.len())
    });
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
