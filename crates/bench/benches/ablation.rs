//! Ablation — DiLOS design choices and the scatter/gather vector cap.

use criterion::{criterion_group, criterion_main, Criterion};
use dilos_bench::ablation::{ablation_design_choices, ablation_vector_length};

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

fn bench(c: &mut Criterion) {
    println!("{}", ablation_design_choices(2_048).render());
    println!("{}", ablation_vector_length(256).render());
    c.bench_function("ablation_run", |b| {
        b.iter(|| ablation_design_choices(512).rows.len())
    });
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
