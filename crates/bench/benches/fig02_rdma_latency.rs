//! Figure 2 — RDMA latency vs object size.

use criterion::{criterion_group, criterion_main, Criterion};
use dilos_bench::micro::fig02_rdma_latency;
use dilos_sim::{RdmaEndpoint, ServiceClass, SimConfig};

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

fn bench(c: &mut Criterion) {
    println!("{}", fig02_rdma_latency().render());
    c.bench_function("fig02_4k_read_verb", |b| {
        let mut ep = RdmaEndpoint::connect(SimConfig::default(), 1 << 26);
        let mut buf = vec![0u8; 4096];
        let mut t = 0u64;
        b.iter(|| {
            t = ep
                .read(t, 0, ServiceClass::App, 0, &mut buf)
                .expect("probe read");
            t
        })
    });
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
