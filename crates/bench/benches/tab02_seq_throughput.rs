//! Table 2 — sequential read/write throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use dilos_bench::micro::{tab02_seq_throughput, MicroScale};

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

fn bench(c: &mut Criterion) {
    let scale = MicroScale {
        pages: 1_024,
        ratio: 13,
    };
    println!("{}", tab02_seq_throughput(scale).render());
    c.bench_function("tab02_throughput_run", |b| {
        b.iter(|| tab02_seq_throughput(scale).rows.len())
    });
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
