//! Engine-core micro-benches: the arena-backed `Calendar` and the intrusive
//! LRU chain, measured in isolation.
//!
//! These are the two hot structures behind every simulated fault: the
//! calendar absorbs a schedule/cancel/drain cycle per background completion,
//! and the LRU chain a touch per access plus a coldest/remove pair per
//! eviction. The figure benches measure them only end-to-end; this target
//! pins their standalone costs so a regression is attributable to the
//! structure, not the workload around it.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dilos_sim::{Calendar, LruChain, SchedEvent};

const EVENTS: usize = 4_096;
const PAGES: u64 = 4_096;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

fn bench(c: &mut Criterion) {
    c.bench_function("calendar_schedule_drain_4k", |b| {
        let mut out = Vec::with_capacity(EVENTS);
        b.iter(|| {
            let cal = Calendar::new();
            for i in 0..EVENTS as u64 {
                // Distinct due times: every drain_due pops a singleton
                // group, the worst case for batching.
                cal.schedule(i * 10, SchedEvent::ReclaimTick);
            }
            let mut delivered = 0usize;
            let mut now = 0;
            while let Some(at) = cal.next_due() {
                now = at;
                delivered += cal.drain_due(now, &mut out);
                out.clear();
            }
            black_box((delivered, now))
        })
    });

    c.bench_function("calendar_schedule_cancel_4k", |b| {
        b.iter(|| {
            let cal = Calendar::new();
            let ids: Vec<_> = (0..EVENTS as u64)
                .map(|i| cal.schedule(i * 10, SchedEvent::ReclaimTick))
                .collect();
            // Cancel back-to-front so every cancel hits a pending slot and
            // the heap skims the tombstones lazily.
            let mut cancelled = 0usize;
            for id in ids.into_iter().rev() {
                cancelled += usize::from(cal.cancel(id));
            }
            black_box((cancelled, cal.len()))
        })
    });

    c.bench_function("calendar_mixed_steady_state", |b| {
        // Steady-state shape from the fault path: schedule a landing,
        // cancel half of them (superseded prefetches), drain the rest.
        let mut out = Vec::new();
        b.iter(|| {
            let cal = Calendar::new();
            let mut delivered = 0usize;
            for i in 0..EVENTS as u64 {
                let id = cal.schedule(i * 7 + 100, SchedEvent::PrefetchLand {
                    vpn: i,
                    token: i as u32,
                });
                if i % 2 == 0 {
                    cal.cancel(id);
                }
                delivered += cal.drain_due(i * 7, &mut out);
                out.clear();
            }
            black_box(delivered)
        })
    });

    c.bench_function("lru_touch_hot_4k", |b| {
        let mut lru = LruChain::new();
        for k in 0..PAGES {
            lru.insert(k);
        }
        let mut k = 0u64;
        b.iter(|| {
            // Stride through the resident set; every touch relinks an
            // interior node to the hot end.
            for _ in 0..EVENTS {
                lru.touch(k % PAGES);
                k = k.wrapping_add(1_237);
            }
            black_box(lru.len())
        })
    });

    c.bench_function("lru_insert_evict_churn_4k", |b| {
        b.iter(|| {
            let mut lru = LruChain::new();
            let mut evicted = 0u64;
            for k in 0..(PAGES * 2) {
                if lru.len() >= PAGES as usize {
                    let cold = lru.coldest().expect("non-empty chain");
                    lru.remove(cold);
                    evicted += 1;
                }
                lru.insert(k);
            }
            black_box((evicted, lru.len()))
        })
    });
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
