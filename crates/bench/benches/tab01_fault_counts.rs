//! Table 1 — page-fault counts on Fastswap during sequential read.

use criterion::{criterion_group, criterion_main, Criterion};
use dilos_bench::micro::{tab01_tab03_fault_counts, MicroScale};

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

fn bench(c: &mut Criterion) {
    let scale = MicroScale {
        pages: 1_024,
        ratio: 13,
    };
    println!("{}", tab01_tab03_fault_counts(scale).render());
    c.bench_function("tab01_fault_count_run", |b| {
        b.iter(|| tab01_tab03_fault_counts(scale).rows.len())
    });
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
