//! Table 3 — page-fault counts across systems/prefetchers (shares its
//! machinery with Table 1; the DiLOS rows are the Table 3 payload).

use criterion::{criterion_group, criterion_main, Criterion};
use dilos_apps::farmem::{SystemKind, SystemSpec};
use dilos_apps::seqrw::SeqWorkload;
use dilos_bench::micro::{tab01_tab03_fault_counts, MicroScale};

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

fn bench(c: &mut Criterion) {
    let scale = MicroScale {
        pages: 1_024,
        ratio: 13,
    };
    println!("{}", tab01_tab03_fault_counts(scale).render());
    c.bench_function("tab03_dilos_readahead_seq_read", |b| {
        b.iter(|| {
            let wl = SeqWorkload { pages: 512 };
            let mut mem =
                SystemSpec::for_working_set(SystemKind::DilosReadahead, 512 * 4096, 13).boot();
            let base = wl.populate(mem.as_mut());
            wl.read_pass(mem.as_mut(), base).elapsed
        })
    });
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
