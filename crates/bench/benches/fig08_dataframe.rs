//! Figure 8 — the DataFrame NYC-taxi analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use dilos_bench::apps_exp::fig08_dataframe;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

fn bench(c: &mut Criterion) {
    println!("{}", fig08_dataframe(8_000).render());
    c.bench_function("fig08_taxi_run", |b| {
        b.iter(|| fig08_dataframe(2_000).rows.len())
    });
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
