//! Figure 12 — guided-paging bandwidth during DEL and GET.

use criterion::{criterion_group, criterion_main, Criterion};
use dilos_bench::redis_exp::fig12_bandwidth;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

fn bench(c: &mut Criterion) {
    println!("{}", fig12_bandwidth(2_048, 1_000).render());
    c.bench_function("fig12_bandwidth_run", |b| {
        b.iter(|| fig12_bandwidth(512, 200).rows.len())
    });
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
