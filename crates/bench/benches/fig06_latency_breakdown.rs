//! Figure 6 — DiLOS vs Fastswap fault-latency breakdown.

use criterion::{criterion_group, criterion_main, Criterion};
use dilos_bench::micro::{fig06_latency_breakdown, MicroScale};

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

fn bench(c: &mut Criterion) {
    let scale = MicroScale {
        pages: 1_024,
        ratio: 13,
    };
    println!("{}", fig06_latency_breakdown(scale).render());
    c.bench_function("fig06_breakdown_run", |b| {
        b.iter(|| fig06_latency_breakdown(scale).rows.len())
    });
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
