//! Figure 9 — GAPBS PageRank and betweenness centrality.

use criterion::{criterion_group, criterion_main, Criterion};
use dilos_bench::apps_exp::fig09_gapbs;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

fn bench(c: &mut Criterion) {
    println!("{}", fig09_gapbs(10).render());
    c.bench_function("fig09_gapbs_run", |b| b.iter(|| fig09_gapbs(8).rows.len()));
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
