//! Figure 10 — Redis GET/LRANGE throughput across systems.

use criterion::{criterion_group, criterion_main, Criterion};
use dilos_bench::redis_exp::{fig10_redis, RedisScale};

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

fn small() -> RedisScale {
    RedisScale {
        keys_4k: 192,
        keys_64k: 24,
        keys_mixed: 32,
        lists: 24,
        list_elements: 2_400,
        queries: 300,
    }
}

fn bench(c: &mut Criterion) {
    println!("{}", fig10_redis(small()).render());
    c.bench_function("fig10_redis_run", |b| {
        let tiny = RedisScale {
            keys_4k: 64,
            keys_64k: 16,
            keys_mixed: 16,
            lists: 8,
            list_elements: 400,
            queries: 100,
        };
        b.iter(|| fig10_redis(tiny).rows.len())
    });
}

criterion_group! { name = benches; config = config(); targets = bench }
criterion_main!(benches);
