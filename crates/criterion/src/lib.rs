//! Minimal, dependency-free benchmark-harness shim.
//!
//! The build container has no access to a crates.io mirror, so the real
//! `criterion` crate cannot be fetched. This replacement keeps the
//! workspace's `[[bench]]` targets (all `harness = false`) compiling and
//! running: it implements `Criterion::default()` with the builder methods
//! the benches call, `bench_function`/`Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a simple
//! mean-of-samples over wall-clock time — enough to spot order-of-magnitude
//! regressions and to drive the figure-table printing the benches do.

use std::time::{Duration, Instant};

/// Top-level harness handle.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs `f` through a [`Bencher`] and prints a one-line summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times repeated calls of `routine`: warm-up until `warm_up_time`
    /// elapses, then `sample_size` timed samples (or until
    /// `measurement_time` runs out, whichever comes first).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
        }
        let run_start = Instant::now();
        for i in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if i > 0 && run_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        println!(
            "{name:<40} time: [{} {} {}]  ({} samples)",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max),
            self.samples.len()
        );
    }
}

/// Opaque value barrier: best-effort inhibition of dead-code elimination.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group: both the `name/config/targets` form and the
/// positional `(group, target, ..)` form expand to a runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point for `harness = false` bench binaries.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
