//! `dilos-baselines` — the comparison systems of the DiLOS evaluation.
//!
//! The paper compares DiLOS against two systems, both re-implemented here
//! from scratch on the same `dilos-sim` substrate so the comparison isolates
//! the *data-path design*, not the hardware:
//!
//! - [`fastswap`] — the state-of-the-art kernel paging system: Linux swap
//!   cache, cluster readahead, direct + offloaded reclamation, kernel
//!   crossing costs, TLB shootdowns.
//! - [`aifm`] — the state-of-the-art user-level system: remoteable objects
//!   with per-dereference checks, a user-level miss path over TCP, and a
//!   background streaming prefetcher.

pub mod aifm;
pub mod fastswap;

pub use aifm::{Aifm, AifmConfig, AifmCosts, AifmStats};
pub use fastswap::{Fastswap, FastswapBreakdown, FastswapConfig, FastswapCosts, FastswapStats};
