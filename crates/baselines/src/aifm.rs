//! The AIFM baseline: application-integrated far memory.
//!
//! AIFM (Ruan et al., OSDI '20) avoids page faults entirely: remoteable
//! objects are dereferenced through smart pointers that *check* locality on
//! every access, misses are handled by a user-level runtime over TCP, and a
//! multi-threaded background prefetcher streams sequential data with
//! "almost perfect overlapping of computation and networking" (§6.2 of the
//! DiLOS paper).
//!
//! The model reproduces AIFM's three signatures the DiLOS evaluation leans
//! on:
//!
//! 1. **No exception cost** — a miss or an in-flight wait costs user-level
//!    handling only, so AIFM wins on sequential scans under tight local
//!    memory (Figure 7c/d at 12.5 %).
//! 2. **Per-deref tax** — every access pays the locality check, so AIFM
//!    *loses* when everything is local (Figure 8 at 100 %).
//! 3. **Object-granularity I/O** — fetches move the object (≤ one chunk),
//!    not the page, and ride TCP with the paper's 14,000-cycle handicap.

use std::collections::BTreeMap;

use dilos_sim::{
    Calendar, CoreClock, EventId, FaultKind, MetricsRegistry, Ns, Observability, RdmaEndpoint,
    SchedEvent, ServiceClass, SimConfig, SpanProfiler, TraceEvent, TraceSink, PAGE_SIZE,
};

/// AIFM runtime costs, in virtual nanoseconds.
#[derive(Debug, Clone)]
pub struct AifmCosts {
    /// Smart-pointer locality check per dereference (the "extra
    /// instructions" §6.2 blames for AIFM's 100 %-local slowdown).
    pub deref_check_ns: Ns,
    /// User-level miss handling (runtime dispatch, no kernel crossing).
    pub miss_handling_ns: Ns,
    /// Evacuator software cost per evicted chunk (background).
    pub evict_scan_ns: Ns,
}

impl Default for AifmCosts {
    fn default() -> Self {
        Self {
            deref_check_ns: 6,
            miss_handling_ns: 600,
            evict_scan_ns: 150,
        }
    }
}

/// AIFM configuration.
#[derive(Debug, Clone)]
pub struct AifmConfig {
    /// Local memory budget in 4 KiB chunks (`kCacheGBs` in AIFM).
    pub local_chunks: usize,
    /// Remote pool size in bytes.
    pub remote_bytes: u64,
    /// Simulated cores.
    pub cores: usize,
    /// Fabric calibration.
    pub sim: SimConfig,
    /// Runtime costs.
    pub costs: AifmCosts,
    /// Background prefetcher's maximum stream depth.
    pub prefetch_depth: usize,
    /// Use TCP (AIFM's transport; adds the per-completion handicap).
    pub tcp: bool,
    /// The observability bundle (trace + metrics + profiler) threaded to
    /// every component at boot. Pure observation — trace digests are
    /// identical whether metrics are on or off. Use a fresh bundle per
    /// booted node.
    pub obs: Observability,
}

impl Default for AifmConfig {
    fn default() -> Self {
        Self {
            local_chunks: 1024,
            remote_bytes: 1 << 32,
            cores: 1,
            sim: SimConfig::default(),
            costs: AifmCosts::default(),
            prefetch_depth: 16,
            tcp: true,
            obs: Observability::none(),
        }
    }
}

/// AIFM counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct AifmStats {
    /// Dereferences checked.
    pub derefs: u64,
    /// Chunk misses that issued a demand fetch.
    pub misses: u64,
    /// Accesses that waited on an in-flight prefetched chunk.
    pub inflight_waits: u64,
    /// Chunks prefetched by the background streamer.
    pub prefetched: u64,
    /// Chunks evacuated to the remote pool.
    pub evictions: u64,
    /// Dirty chunks written back.
    pub writebacks: u64,
}

#[derive(Debug, Clone)]
enum ChunkState {
    Local {
        data: Box<[u8]>,
        dirty: bool,
        accessed: bool,
        ready_at: Ns,
        /// Streamed in by the prefetcher and not yet dereferenced — pairs
        /// the traced `PrefetchIssue` with its `Land` (first deref) or
        /// `Cancel` (evacuated or freed untouched).
        prefetched: bool,
    },
    Remote,
}

const BASE_VA: u64 = 0x1000_0000_0000;
const CHUNK: usize = PAGE_SIZE;

/// The AIFM compute node.
pub struct Aifm {
    cfg: AifmConfig,
    rdma: RdmaEndpoint,
    chunks: BTreeMap<u64, ChunkState>,
    /// Allocation sizes (object granularity for the final chunk).
    allocs: Vec<(u64, usize)>,
    local_count: usize,
    lru: Vec<u64>,
    clock_hand: usize,
    clocks: Vec<CoreClock>,
    last_chunk: u64,
    stream_window: usize,
    stats: AifmStats,
    brk: u64,
    /// Event calendar: the background streamer's landings are delivered at
    /// their true completion times, and traced verb completions ride it too.
    cal: Calendar,
    /// Pending `PrefetchLand` event per streamed-but-unlanded chunk, so a
    /// consuming dereference (or a free) can cancel the landing.
    pending_land: BTreeMap<u64, EventId>,
    /// Structured event trace (dark unless the bundle records).
    trace: TraceSink,
    /// Telemetry registry (dark unless the bundle is metered).
    metrics: MetricsRegistry,
    /// Span profiler attached to the trace (dark unless metered).
    profiler: SpanProfiler,
}

impl std::fmt::Debug for Aifm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Aifm")
            .field("local_chunks", &self.cfg.local_chunks)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Aifm {
    /// Boots an AIFM node.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration.
    pub fn new(cfg: AifmConfig) -> Self {
        assert!(cfg.cores > 0, "at least one core");
        assert!(cfg.local_chunks >= 16, "cache too small");
        let mut rdma = RdmaEndpoint::connect(cfg.sim.clone(), cfg.remote_bytes);
        rdma.set_tcp_mode(cfg.tcp);
        let obs = cfg.obs.clone();
        let trace = obs.trace().clone();
        let metrics = obs.metrics().clone();
        let profiler = obs.profiler().clone();
        rdma.observe(&obs);
        let cal = Calendar::new();
        cal.observe(&obs);
        rdma.set_calendar(cal.clone());
        Self {
            rdma,
            trace,
            metrics,
            profiler,
            cal,
            pending_land: BTreeMap::new(),
            chunks: BTreeMap::new(),
            allocs: Vec::new(),
            local_count: 0,
            lru: Vec::new(),
            clock_hand: 0,
            clocks: vec![CoreClock::new(); cfg.cores],
            last_chunk: u64::MAX,
            stream_window: 2,
            stats: AifmStats::default(),
            brk: BASE_VA,
            cfg,
        }
    }

    /// Node statistics.
    pub fn stats(&self) -> &AifmStats {
        &self.stats
    }

    /// The RDMA endpoint.
    pub fn rdma(&self) -> &RdmaEndpoint {
        &self.rdma
    }

    /// The structured event trace (dark unless [`AifmConfig::obs`] records).
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// The telemetry registry (dark unless [`AifmConfig::obs`] is metered).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The span profiler (dark unless [`AifmConfig::obs`] is metered).
    pub fn profiler(&self) -> &SpanProfiler {
        &self.profiler
    }

    /// Order-sensitive digest over every traced event (0 when tracing is
    /// off). Identical seeds and configurations must produce identical
    /// digests.
    ///
    /// Quiesces first: in-flight streamed chunks land and deferred
    /// completion records are delivered, so the digest covers a settled
    /// trace. Idempotent.
    pub fn trace_digest(&mut self) -> u64 {
        while let Some((t, ev)) = self.cal.pop_next() {
            self.dispatch(t, ev);
        }
        let horizon = self.max_now();
        while let Some(t) = self.metrics.next_sample_due(horizon) {
            self.record_gauges(t);
        }
        self.trace.digest()
    }

    /// Delivers every calendar event due at or before `now`.
    fn drain_events(&mut self, now: Ns) {
        while self.cal.has_due(now) {
            let Some((t, ev)) = self.cal.pop_due(now) else {
                break;
            };
            self.dispatch(t, ev);
        }
        // Telemetry rides the registry's private calendar, never this one.
        while let Some(t) = self.metrics.next_sample_due(now) {
            self.record_gauges(t);
        }
    }

    /// Snapshots every sampled gauge at virtual time `t`.
    fn record_gauges(&mut self, t: Ns) {
        self.metrics
            .set_gauge("local_chunks", self.local_count as u64);
        self.metrics.set_gauge("lru_chunks", self.lru.len() as u64);
        self.metrics
            .set_gauge("pending_land", self.pending_land.len() as u64);
        self.metrics
            .set_gauge("busy_qps", self.rdma.busy_qps(t) as u64);
        self.metrics
            .set_gauge("link_busy_ns", self.rdma.fabric().link_busy());
        self.metrics.record_sample(t);
    }

    /// Delivers one calendar event at its scheduled time.
    fn dispatch(&mut self, t: Ns, ev: SchedEvent) {
        match ev {
            SchedEvent::PrefetchLand { vpn, .. } => {
                self.pending_land.remove(&vpn);
                if let Some(ChunkState::Local { prefetched, .. }) = self.chunks.get_mut(&vpn) {
                    if std::mem::take(prefetched) {
                        self.trace.emit(t, TraceEvent::PrefetchLand { vpn });
                    }
                }
            }
            SchedEvent::RdmaCompletion {
                class,
                write,
                node,
                core,
            } => self.rdma.deliver_completion(t, class, write, node, core),
            // Sample ticks never ride the main calendar (the registry owns
            // its own — see `drain_events`).
            SchedEvent::SampleTick => self.record_gauges(t),
            _ => {}
        }
    }

    /// Current virtual time on `core`.
    pub fn now(&self, core: usize) -> Ns {
        self.clocks[core].now()
    }

    /// Charges application compute.
    pub fn compute(&mut self, core: usize, ns: Ns) {
        self.clocks[core].advance(ns);
    }

    /// Joins all core clocks.
    pub fn barrier(&mut self) -> Ns {
        let t = self.clocks.iter().map(CoreClock::now).max().unwrap_or(0);
        for c in &mut self.clocks {
            c.wait_until(t);
        }
        t
    }

    /// Completion time across cores.
    pub fn max_now(&self) -> Ns {
        self.clocks.iter().map(CoreClock::now).max().unwrap_or(0)
    }

    /// Allocates a remoteable object/array of `len` bytes.
    pub fn alloc(&mut self, len: usize) -> u64 {
        let va = self.brk;
        let len_r = (len.max(1) + CHUNK - 1) & !(CHUNK - 1);
        self.brk += len_r as u64;
        assert!(
            self.brk - BASE_VA <= self.cfg.remote_bytes,
            "remote pool exhausted"
        );
        self.allocs.push((va, len));
        va
    }

    /// Frees the object at `va` spanning `len` bytes.
    pub fn free(&mut self, va: u64, len: usize) {
        let t = self.max_now();
        let start = va >> 12;
        let end = (va + len as u64 + CHUNK as u64 - 1) >> 12;
        for c in start..end {
            if let Some(ChunkState::Local { prefetched, .. }) = self.chunks.remove(&c) {
                if prefetched {
                    if let Some(id) = self.pending_land.remove(&c) {
                        self.cal.cancel(id);
                    }
                    self.trace.emit(t, TraceEvent::PrefetchCancel { vpn: c });
                }
                self.local_count -= 1;
                self.lru.retain(|&v| v != c);
            }
        }
        self.allocs.retain(|&(a, _)| a != va);
    }

    /// Reads through a remoteable pointer.
    pub fn read(&mut self, core: usize, va: u64, buf: &mut [u8]) {
        let len = buf.len();
        let mut done = 0usize;
        while done < len {
            let a = va + done as u64;
            let chunk = a >> 12;
            let off = (a & 0xFFF) as usize;
            let n = (CHUNK - off).min(len - done);
            self.deref(core, chunk, false);
            let ChunkState::Local { data, .. } = &self.chunks[&chunk] else {
                unreachable!("deref localizes the chunk");
            };
            buf[done..done + n].copy_from_slice(&data[off..off + n]);
            self.charge_copy(core, n);
            done += n;
        }
    }

    /// Writes through a remoteable pointer.
    pub fn write(&mut self, core: usize, va: u64, buf: &[u8]) {
        let len = buf.len();
        let mut done = 0usize;
        while done < len {
            let a = va + done as u64;
            let chunk = a >> 12;
            let off = (a & 0xFFF) as usize;
            let n = (CHUNK - off).min(len - done);
            self.deref(core, chunk, true);
            let Some(ChunkState::Local { data, dirty, .. }) = self.chunks.get_mut(&chunk) else {
                unreachable!("deref localizes the chunk");
            };
            data[off..off + n].copy_from_slice(&buf[done..done + n]);
            *dirty = true;
            self.charge_copy(core, n);
            done += n;
        }
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self, core: usize, va: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read(core, va, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, core: usize, va: u64, v: u64) {
        self.write(core, va, &v.to_le_bytes());
    }

    fn charge_copy(&mut self, core: usize, bytes: usize) {
        let ns = self.cfg.sim.local_access_ns + (bytes as f64 * 0.05) as Ns;
        self.clocks[core].advance(ns);
    }

    /// The smart-pointer dereference: check, localize if needed.
    fn deref(&mut self, core: usize, chunk: u64, _is_write: bool) {
        self.stats.derefs += 1;
        self.clocks[core].advance(self.cfg.costs.deref_check_ns);
        // Deliver the background streamer's completed landings first: a
        // chunk that finished streaming in the past is simply local by now.
        self.drain_events(self.clocks[core].now());
        match self.chunks.get_mut(&chunk) {
            Some(ChunkState::Local {
                accessed,
                ready_at,
                prefetched,
                ..
            }) => {
                *accessed = true;
                let landed = std::mem::take(prefetched);
                let ready = *ready_at;
                let now = self.clocks[core].now();
                if ready > now {
                    // In-flight prefetch: wait, but no exception — AIFM's
                    // edge over paging on tight sequential scans.
                    self.stats.inflight_waits += 1;
                    self.clocks[core].wait_until(ready);
                }
                if landed {
                    // Dereferenced before the landing delivered: this access
                    // consumes the stream; the scheduled event must not fire
                    // later against a recycled chunk.
                    if let Some(id) = self.pending_land.remove(&chunk) {
                        self.cal.cancel(id);
                    }
                    self.trace
                        .emit(ready.max(now), TraceEvent::PrefetchLand { vpn: chunk });
                }
            }
            Some(ChunkState::Remote) => self.miss(core, chunk),
            None => {
                // First touch: materialize a zeroed local chunk.
                self.make_room(core, 1, Some(chunk));
                self.chunks.insert(
                    chunk,
                    ChunkState::Local {
                        data: vec![0u8; CHUNK].into_boxed_slice(),
                        dirty: false,
                        accessed: true,
                        ready_at: 0,
                        prefetched: false,
                    },
                );
                self.local_count += 1;
                self.lru.push(chunk);
            }
        }
    }

    /// Demand-fetch a chunk and stream ahead.
    fn miss(&mut self, core: usize, chunk: u64) {
        self.stats.misses += 1;
        self.trace.emit(
            self.clocks[core].now(),
            TraceEvent::FaultBegin {
                core: core as u8,
                vpn: chunk,
                kind: FaultKind::Major,
            },
        );
        self.make_room(core, 1, Some(chunk));
        let costs = self.cfg.costs.clone();
        let t = self.clocks[core].now() + costs.miss_handling_ns;
        let remote = (chunk - (BASE_VA >> 12)) << 12;
        let mut data = vec![0u8; CHUNK].into_boxed_slice();
        let done = self
            .rdma
            .read(t, core, ServiceClass::App, remote, &mut data)
            .expect("fetch inside remote pool");
        self.chunks.insert(
            chunk,
            ChunkState::Local {
                data,
                dirty: false,
                accessed: true,
                ready_at: 0,
                prefetched: false,
            },
        );
        self.local_count += 1;
        self.lru.push(chunk);

        // Background streamer: on a sequential miss pattern, pull the next
        // chunks with growing depth. After a stream of depth `w`, the next
        // miss lands `w + 1` chunks ahead — that still counts as sequential.
        if chunk > self.last_chunk && chunk - self.last_chunk <= self.stream_window as u64 + 1 {
            self.stream_window = (self.stream_window * 2).min(self.cfg.prefetch_depth);
        } else {
            self.stream_window = 2;
        }
        self.last_chunk = chunk;
        let window = self.stream_window;
        for i in 1..=window as u64 {
            self.prefetch(core, chunk + i, t, chunk);
        }
        self.clocks[core].wait_until(done);
        self.trace.emit(
            done,
            TraceEvent::FaultEnd {
                core: core as u8,
                vpn: chunk,
            },
        );
    }

    /// Streams one chunk ahead; never evicts `protect` (the chunk the
    /// current dereference is localizing).
    fn prefetch(&mut self, core: usize, chunk: u64, t: Ns, protect: u64) {
        if ((chunk - (BASE_VA >> 12)) << 12) >= self.cfg.remote_bytes {
            return;
        }
        if !matches!(self.chunks.get(&chunk), Some(ChunkState::Remote)) {
            return;
        }
        if self.local_count + 1 >= self.cfg.local_chunks {
            self.make_room(core, 1, Some(protect));
        }
        if self.local_count + 1 > self.cfg.local_chunks {
            return;
        }
        let remote = (chunk - (BASE_VA >> 12)) << 12;
        let mut data = vec![0u8; CHUNK].into_boxed_slice();
        self.trace.emit(t, TraceEvent::PrefetchIssue { vpn: chunk });
        let Ok(done) = self
            .rdma
            .read(t, core, ServiceClass::Prefetch, remote, &mut data)
        else {
            self.trace
                .emit(t, TraceEvent::PrefetchCancel { vpn: chunk });
            return;
        };
        self.chunks.insert(
            chunk,
            ChunkState::Local {
                data,
                dirty: false,
                accessed: false,
                ready_at: done,
                prefetched: true,
            },
        );
        // The landing is a calendar event at the fetch's completion time —
        // the streamer's thread marks the chunk ready then, whether or not
        // the mutator ever looks at it.
        let id = self.cal.schedule(
            done,
            SchedEvent::PrefetchLand {
                vpn: chunk,
                token: 0,
            },
        );
        self.pending_land.insert(chunk, id);
        self.local_count += 1;
        self.lru.push(chunk);
        self.stats.prefetched += 1;
    }

    /// Evacuates cold chunks until `need` fit under the budget.
    ///
    /// Evacuation is the AIFM runtime's job and runs concurrently with the
    /// mutator; writebacks ride the cleaner queue asynchronously. `protect`
    /// names a chunk that must never be chosen as a victim (the one the
    /// current dereference is localizing).
    fn make_room(&mut self, core: usize, need: usize, protect: Option<u64>) {
        let budget = self.cfg.local_chunks;
        let mut guard = 3 * self.lru.len() + 8;
        while self.local_count + need > budget && guard > 0 {
            guard -= 1;
            if self.lru.is_empty() {
                break;
            }
            if self.clock_hand >= self.lru.len() {
                self.clock_hand = 0;
            }
            let victim = self.lru[self.clock_hand];
            if Some(victim) == protect {
                self.clock_hand += 1;
                continue;
            }
            let now = self.clocks[core].now();
            let Some(ChunkState::Local {
                dirty,
                accessed,
                ready_at,
                ..
            }) = self.chunks.get_mut(&victim)
            else {
                self.lru.swap_remove(self.clock_hand);
                continue;
            };
            if *ready_at > now {
                self.clock_hand += 1;
                continue;
            }
            if *accessed {
                *accessed = false;
                self.clock_hand += 1;
                continue;
            }
            let dirty = *dirty;
            let Some(ChunkState::Local {
                data, prefetched, ..
            }) = self.chunks.remove(&victim)
            else {
                unreachable!("checked above");
            };
            if prefetched {
                // Evacuated before the landing delivered or any deref saw it.
                if let Some(id) = self.pending_land.remove(&victim) {
                    self.cal.cancel(id);
                }
                self.trace
                    .emit(now, TraceEvent::PrefetchCancel { vpn: victim });
            }
            self.trace
                .emit(now, TraceEvent::Evict { vpn: victim, dirty });
            if dirty {
                let remote = (victim - (BASE_VA >> 12)) << 12;
                self.rdma
                    .write(now, core, ServiceClass::Cleaner, remote, &data)
                    .expect("writeback inside remote pool");
                self.stats.writebacks += 1;
            }
            self.chunks.insert(victim, ChunkState::Remote);
            self.lru.swap_remove(self.clock_hand);
            self.local_count -= 1;
            self.stats.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(local_chunks: usize) -> Aifm {
        Aifm::new(AifmConfig {
            local_chunks,
            remote_bytes: 1 << 28,
            ..AifmConfig::default()
        })
    }

    #[test]
    fn roundtrip_through_evacuation() {
        let mut n = node(64);
        let va = n.alloc(256 * CHUNK);
        for p in 0..256u64 {
            n.write_u64(0, va + p * CHUNK as u64, p * 11);
        }
        for p in 0..256u64 {
            assert_eq!(n.read_u64(0, va + p * CHUNK as u64), p * 11);
        }
        let s = n.stats();
        assert!(s.misses > 0);
        assert!(s.evictions > 0);
        assert!(s.writebacks > 0);
    }

    #[test]
    fn every_access_pays_the_deref_check() {
        let mut n = node(64);
        let va = n.alloc(CHUNK);
        n.write_u64(0, va, 1);
        let t0 = n.now(0);
        let d0 = n.stats().derefs;
        for _ in 0..1_000 {
            let _ = n.read_u64(0, va);
        }
        assert_eq!(n.stats().derefs - d0, 1_000);
        let per_access = (n.now(0) - t0) / 1_000;
        assert!(
            per_access >= n.cfg.costs.deref_check_ns,
            "deref tax missing: {per_access}"
        );
    }

    #[test]
    fn streaming_prefetch_overlaps_fetches() {
        let run = |depth: usize| {
            let mut n = Aifm::new(AifmConfig {
                local_chunks: 64,
                remote_bytes: 1 << 28,
                prefetch_depth: depth,
                ..AifmConfig::default()
            });
            let va = n.alloc(512 * CHUNK);
            for p in 0..512u64 {
                n.write_u64(0, va + p * CHUNK as u64, p);
            }
            for p in 0..512u64 {
                let _ = n.read_u64(0, va + p * CHUNK as u64);
            }
            (n.now(0), n.stats().prefetched)
        };
        let (t_stream, pf) = run(16);
        let (t_none, _) = run(1);
        assert!(pf > 0);
        assert!(
            t_stream < t_none,
            "streaming must be faster: {t_stream} vs {t_none}"
        );
    }

    #[test]
    fn no_exception_cost_on_inflight_waits() {
        let mut n = node(64);
        let va = n.alloc(256 * CHUNK);
        for p in 0..256u64 {
            n.write_u64(0, va + p * CHUNK as u64, p);
        }
        for p in 0..256u64 {
            let _ = n.read_u64(0, va + p * CHUNK as u64);
        }
        assert!(
            n.stats().inflight_waits > 0,
            "streamer must be caught up to"
        );
    }

    #[test]
    fn deterministic_virtual_time() {
        let run = || {
            let mut n = node(64);
            let va = n.alloc(200 * CHUNK);
            for p in 0..200u64 {
                n.write_u64(0, va + p * CHUNK as u64, p);
            }
            for p in (0..200u64).rev() {
                let _ = n.read_u64(0, va + p * CHUNK as u64);
            }
            n.now(0)
        };
        assert_eq!(run(), run());
    }
}
