//! The Fastswap baseline: Linux kernel paging over remote memory.
//!
//! Fastswap (Amaro et al., EuroSys '20) extends the Linux swap subsystem:
//! the frontswap store is an RDMA memory node, faults go through the kernel
//! swap cache, readahead pulls clusters of pages into the cache (where they
//! cost a **minor fault** on first touch), and reclamation runs partly in
//! the fault path ("not all reclamation work is offloaded", §3.1 of the
//! DiLOS paper).
//!
//! This model implements that data path — swap cache, cluster readahead,
//! direct + offloaded reclamation, per-phase latency accounting — with
//! software costs calibrated to the DiLOS paper's Figure 1 breakdown and
//! Table 1/2 measurements. The *shape* is what matters: every overhead
//! DiLOS removes (swap-cache management, minor-fault storms, in-handler
//! reclaim, TLB shootdowns on unmap) is present here and absent there.


use dilos_sim::{
    Calendar, CoreClock, FaultKind, LruChain, MetricsRegistry, Ns, Observability, RdmaEndpoint,
    SchedEvent, ServiceClass, SimConfig, SpanProfiler, Timeline, TraceEvent, TraceSink, PAGE_SIZE,
};

/// Fastswap software costs, in virtual nanoseconds.
///
/// Calibrated against Figure 1 (average major fault ≈ 6.3 µs: 46 % fetch,
/// 9 % exception, 29 % reclaim, the rest swap-cache bookkeeping) and the
/// sequential-read throughput of Table 2.
#[derive(Debug, Clone)]
pub struct FastswapCosts {
    /// Hardware exception + kernel entry (shared with DiLOS: 0.57 µs).
    pub exception_ns: Ns,
    /// Swap-cache lookup/insertion and swap-entry management.
    pub swap_cache_ns: Ns,
    /// Kernel page allocation (alloc_page + charge + LRU insert).
    pub page_alloc_ns: Ns,
    /// Kernel I/O submission overhead on top of the raw RDMA latency
    /// (frontswap indirection, DMA mapping).
    pub kernel_io_ns: Ns,
    /// Mapping the page (PTE install, rmap, unlock).
    pub map_ns: Ns,
    /// Minor fault service: exception + swap-cache hit + map under LRU/page
    /// lock contention.
    pub minor_fault_ns: Ns,
    /// Direct-reclaim software cost per page scanned in the fault path.
    pub reclaim_scan_ns: Ns,
    /// TLB shootdown (IPI round) when unmapping a victim page.
    pub tlb_shootdown_ns: Ns,
    /// Fraction (0–100) of reclaim batches the dedicated offload thread
    /// absorbs; the rest run in the fault handler (Fastswap's design).
    pub offload_percent: u32,
}

impl Default for FastswapCosts {
    fn default() -> Self {
        Self {
            exception_ns: 570,
            swap_cache_ns: 1_000,
            page_alloc_ns: 400,
            kernel_io_ns: 850,
            map_ns: 300,
            minor_fault_ns: 2_500,
            reclaim_scan_ns: 100,
            tlb_shootdown_ns: 2_000,
            offload_percent: 50,
        }
    }
}

/// Fastswap configuration.
#[derive(Debug, Clone)]
pub struct FastswapConfig {
    /// Local cache size in pages (the cgroup limit the paper sweeps).
    pub local_pages: usize,
    /// Remote swap-device size in bytes.
    pub remote_bytes: u64,
    /// Simulated cores.
    pub cores: usize,
    /// Fabric calibration.
    pub sim: SimConfig,
    /// Kernel-path costs.
    pub costs: FastswapCosts,
    /// Readahead cluster size (Linux `page-cluster` default: 8 pages).
    pub readahead_cluster: usize,
    /// The observability bundle (trace + metrics + profiler) threaded to
    /// every component at boot. Pure observation — trace digests are
    /// identical whether metrics are on or off. Use a fresh bundle per
    /// booted node.
    pub obs: Observability,
}

impl Default for FastswapConfig {
    fn default() -> Self {
        Self {
            local_pages: 1024,
            remote_bytes: 1 << 32,
            cores: 1,
            sim: SimConfig::default(),
            costs: FastswapCosts::default(),
            readahead_cluster: 8,
            obs: Observability::none(),
        }
    }
}

/// Per-phase fault-latency sums (Figure 1's stacked bars).
#[derive(Debug, Clone, Copy, Default)]
pub struct FastswapBreakdown {
    /// Exception delivery + kernel entry.
    pub exception: Ns,
    /// Swap-cache management.
    pub swap_cache: Ns,
    /// Page allocation.
    pub page_alloc: Ns,
    /// Remote fetch (RDMA + kernel I/O submission).
    pub fetch: Ns,
    /// Direct reclamation in the fault path.
    pub reclaim: Ns,
    /// PTE mapping.
    pub map: Ns,
    /// Major faults folded in.
    pub count: u64,
}

impl FastswapBreakdown {
    /// Average total major-fault latency.
    pub fn avg_total(&self) -> Ns {
        if self.count == 0 {
            return 0;
        }
        (self.exception + self.swap_cache + self.page_alloc + self.fetch + self.reclaim + self.map)
            / self.count
    }

    /// Per-phase averages `(label, ns)` in plot order.
    pub fn avg_phases(&self) -> [(&'static str, Ns); 6] {
        let d = self.count.max(1);
        [
            ("exception", self.exception / d),
            ("swap-cache", self.swap_cache / d),
            ("page-alloc", self.page_alloc / d),
            ("fetch", self.fetch / d),
            ("reclaim", self.reclaim / d),
            ("map", self.map / d),
        ]
    }
}

/// Fastswap counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastswapStats {
    /// Faults that went to the remote swap device.
    pub major_faults: u64,
    /// Faults served from the swap cache.
    pub minor_faults: u64,
    /// First-touch zero-fill faults.
    pub zero_fills: u64,
    /// Pages read ahead into the swap cache.
    pub readahead_pages: u64,
    /// Pages evicted.
    pub evictions: u64,
    /// Dirty pages written back.
    pub writebacks: u64,
    /// Reclaim batches run directly in the fault path.
    pub direct_reclaims: u64,
    /// Reclaim batches absorbed by the offload thread.
    pub offloaded_reclaims: u64,
    /// The fault-latency breakdown.
    pub breakdown: FastswapBreakdown,
}

impl FastswapStats {
    /// Total faults.
    pub fn total_faults(&self) -> u64 {
        self.major_faults + self.minor_faults + self.zero_fills
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PageState {
    /// Mapped in the page table; payload in `frame` (recency lives in the
    /// LRU chain).
    Mapped { frame: u32, dirty: bool },
    /// In the swap cache: fetched (or being fetched) but not mapped.
    Cached { frame: u32, ready_at: Ns },
    /// On the remote swap device.
    Swapped,
}

/// The Fastswap compute node.
pub struct Fastswap {
    cfg: FastswapConfig,
    rdma: RdmaEndpoint,
    /// Per-page swap state, dense by VPN offset from `BASE_VA` (the heap
    /// is brk-allocated, so offsets are small and contiguous). `None` means
    /// never touched / unmapped. Grown lazily to the high-water VPN.
    state: Vec<Option<PageState>>,
    frames: Vec<Box<[u8; PAGE_SIZE]>>,
    /// Per-frame upper bound on the non-zero prefix (bytes past it are
    /// zero): fills set it, stores raise it, and the write-back hands it to
    /// the store so mostly-zero pages skip the trailing-zero scan.
    frame_live: Vec<u32>,
    free: Vec<u32>,
    /// Frames whose previous writeback completes at `Ns`.
    pending_free: Vec<(u32, Ns)>,
    /// Resident pages (mapped *and* swap-cached) in LRU order — the Linux
    /// two-list LRU, which tracks swap-cache pages too.
    lru: LruChain,
    clocks: Vec<CoreClock>,
    /// The dedicated reclaim-offload kernel thread.
    offload: Timeline,
    /// Event calendar: offloaded reclaim batches run when the offload
    /// thread's CPU is actually free, and traced verb completions are
    /// delivered at their completion times.
    cal: Calendar,
    reclaim_round: u32,
    stats: FastswapStats,
    brk: u64,
    /// Structured event trace (dark unless the bundle records).
    trace: TraceSink,
    /// Telemetry registry (dark unless the bundle is metered).
    metrics: MetricsRegistry,
    /// Span profiler attached to the trace (dark unless metered).
    profiler: SpanProfiler,
}

impl std::fmt::Debug for Fastswap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fastswap")
            .field("local_pages", &self.cfg.local_pages)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

const BASE_VA: u64 = 0x1000_0000_0000;

impl Fastswap {
    /// Boots a Fastswap node.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration.
    pub fn new(cfg: FastswapConfig) -> Self {
        assert!(cfg.cores > 0, "at least one core");
        assert!(cfg.local_pages >= 16, "cache too small for the cluster");
        let mut rdma = RdmaEndpoint::connect(cfg.sim.clone(), cfg.remote_bytes);
        let obs = cfg.obs.clone();
        let trace = obs.trace().clone();
        let metrics = obs.metrics().clone();
        let profiler = obs.profiler().clone();
        rdma.observe(&obs);
        let cal = Calendar::new();
        cal.observe(&obs);
        rdma.set_calendar(cal.clone());
        let mut lru = LruChain::new();
        lru.observe(&obs);
        Self {
            rdma,
            trace,
            metrics,
            profiler,
            cal,
            state: Vec::new(),
            frames: (0..cfg.local_pages)
                .map(|_| Box::new([0u8; PAGE_SIZE]))
                .collect(),
            frame_live: vec![0; cfg.local_pages],
            free: (0..cfg.local_pages as u32).rev().collect(),
            pending_free: Vec::new(),
            lru,
            clocks: vec![CoreClock::new(); cfg.cores],
            offload: Timeline::new(),
            reclaim_round: 0,
            stats: FastswapStats::default(),
            brk: BASE_VA,
            cfg,
        }
    }

    /// Node statistics.
    pub fn stats(&self) -> &FastswapStats {
        &self.stats
    }

    /// The RDMA endpoint (bandwidth accounting).
    pub fn rdma(&self) -> &RdmaEndpoint {
        &self.rdma
    }

    /// The structured event trace (dark unless [`FastswapConfig::obs`] records).
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// The telemetry registry (dark unless [`FastswapConfig::obs`] is metered).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The span profiler (dark unless [`FastswapConfig::obs`] is metered).
    pub fn profiler(&self) -> &SpanProfiler {
        &self.profiler
    }

    /// Order-sensitive digest over every traced event (0 when tracing is
    /// off). Identical seeds and configurations must produce identical
    /// digests.
    ///
    /// Quiesces first: scheduled offload batches and deferred completion
    /// records are delivered so the digest covers a settled trace.
    /// Idempotent.
    pub fn trace_digest(&mut self) -> u64 {
        while let Some((t, ev)) = self.cal.pop_next() {
            self.dispatch(t, ev);
        }
        let horizon = self.max_now();
        while let Some(t) = self.metrics.next_sample_due(horizon) {
            self.record_gauges(t);
        }
        self.trace.digest()
    }

    /// Delivers every calendar event due at or before `now`.
    fn drain_events(&mut self, now: Ns) {
        while self.cal.has_due(now) {
            let Some((t, ev)) = self.cal.pop_due(now) else {
                break;
            };
            self.dispatch(t, ev);
        }
        // Telemetry rides the registry's private calendar so it cannot
        // perturb `get_frame`'s `next_due`-driven spin loop.
        while let Some(t) = self.metrics.next_sample_due(now) {
            self.record_gauges(t);
        }
    }

    /// Snapshots every sampled gauge at virtual time `t`.
    fn record_gauges(&mut self, t: Ns) {
        self.metrics
            .set_gauge("free_frames", self.free.len() as u64);
        self.metrics.set_gauge("lru_pages", self.lru.len() as u64);
        self.metrics
            .set_gauge("pending_writebacks", self.pending_free.len() as u64);
        self.metrics
            .set_gauge("busy_qps", self.rdma.busy_qps(t) as u64);
        self.metrics
            .set_gauge("link_busy_ns", self.rdma.fabric().link_busy());
        self.metrics.record_sample(t);
    }

    /// Delivers one calendar event at its scheduled time.
    fn dispatch(&mut self, t: Ns, ev: SchedEvent) {
        // Calendar work drained inside a fault's frame-allocation spin must
        // not inherit the fault's causal request id; completions re-attach
        // their own id from the endpoint's pending-request FIFO.
        let drained_req = self.trace.set_request(None);
        match ev {
            SchedEvent::ReclaimTick => {
                // One offloaded reclaim batch, running at the offload
                // thread's true time.
                self.reclaim_batch(0, t, true);
                self.stats.offloaded_reclaims += 1;
            }
            SchedEvent::RdmaCompletion {
                class,
                write,
                node,
                core,
            } => self.rdma.deliver_completion(t, class, write, node, core),
            // Sample ticks never ride the main calendar (the registry owns
            // its own — see `drain_events`).
            SchedEvent::SampleTick => self.record_gauges(t),
            _ => {}
        }
        self.trace.set_request(drained_req);
    }

    /// Current virtual time on `core`.
    pub fn now(&self, core: usize) -> Ns {
        self.clocks[core].now()
    }

    /// Charges application compute.
    pub fn compute(&mut self, core: usize, ns: Ns) {
        self.clocks[core].advance(ns);
    }

    /// Joins all core clocks.
    pub fn barrier(&mut self) -> Ns {
        let t = self.clocks.iter().map(CoreClock::now).max().unwrap_or(0);
        for c in &mut self.clocks {
            c.wait_until(t);
        }
        t
    }

    /// Completion time across cores.
    pub fn max_now(&self) -> Ns {
        self.clocks.iter().map(CoreClock::now).max().unwrap_or(0)
    }

    /// Allocates `len` bytes of (swappable) anonymous memory.
    pub fn alloc(&mut self, len: usize) -> u64 {
        let va = self.brk;
        let len = (len.max(1) + PAGE_SIZE - 1) & !(PAGE_SIZE - 1);
        self.brk += len as u64;
        assert!(
            self.brk - BASE_VA <= self.cfg.remote_bytes,
            "swap device exhausted"
        );
        va
    }

    /// Unmaps `len` bytes at `va`.
    pub fn free(&mut self, va: u64, len: usize) {
        let t = self.max_now();
        let start = va >> 12;
        let end = (va + len as u64 + PAGE_SIZE as u64 - 1) >> 12;
        for vpn in start..end {
            if let Some(state) = self.st_clear(vpn) {
                match state {
                    PageState::Mapped { frame, .. } => {
                        self.trace.emit(t, TraceEvent::LruRemove { vpn });
                        self.lru.remove(vpn);
                        self.trace.emit(t, TraceEvent::FrameFree { frame });
                        self.free.push(frame);
                    }
                    PageState::Cached { frame, ready_at } => {
                        self.trace.emit(t, TraceEvent::LruRemove { vpn });
                        self.lru.remove(vpn);
                        // The readahead that filled this frame will never be
                        // consumed.
                        self.trace.emit(t, TraceEvent::PrefetchCancel { vpn });
                        self.trace.emit(ready_at, TraceEvent::FrameFree { frame });
                        self.pending_free.push((frame, ready_at));
                    }
                    PageState::Swapped => {}
                }
            }
        }
    }

    /// Reads `buf.len()` bytes at `va`.
    ///
    /// # Panics
    ///
    /// Panics on access outside the allocated region.
    pub fn read(&mut self, core: usize, va: u64, buf: &mut [u8]) {
        let len = buf.len();
        let mut done = 0usize;
        while done < len {
            let a = va + done as u64;
            let vpn = a >> 12;
            let off = (a & 0xFFF) as usize;
            let n = (PAGE_SIZE - off).min(len - done);
            let frame = self.touch(core, vpn, false);
            buf[done..done + n].copy_from_slice(&self.frames[frame as usize][off..off + n]);
            self.charge_copy(core, n);
            done += n;
        }
    }

    /// Writes `buf` at `va`.
    ///
    /// # Panics
    ///
    /// Panics on access outside the allocated region.
    pub fn write(&mut self, core: usize, va: u64, buf: &[u8]) {
        let len = buf.len();
        let mut done = 0usize;
        while done < len {
            let a = va + done as u64;
            let vpn = a >> 12;
            let off = (a & 0xFFF) as usize;
            let n = (PAGE_SIZE - off).min(len - done);
            let frame = self.touch(core, vpn, true);
            self.frames[frame as usize][off..off + n].copy_from_slice(&buf[done..done + n]);
            let live = &mut self.frame_live[frame as usize];
            *live = (*live).max((off + n) as u32);
            self.charge_copy(core, n);
            done += n;
        }
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self, core: usize, va: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read(core, va, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, core: usize, va: u64, v: u64) {
        self.write(core, va, &v.to_le_bytes());
    }

    fn charge_copy(&mut self, core: usize, bytes: usize) {
        let ns = self.cfg.sim.local_access_ns + (bytes as f64 * 0.05) as Ns;
        self.clocks[core].advance(ns);
    }

    /// Dense index of `vpn` in the swap-state table.
    #[inline]
    fn st_idx(vpn: u64) -> usize {
        (vpn - (BASE_VA >> 12)) as usize
    }

    #[inline]
    fn st_get(&self, vpn: u64) -> Option<PageState> {
        self.state.get(Self::st_idx(vpn)).copied().flatten()
    }

    #[inline]
    fn st_set(&mut self, vpn: u64, st: PageState) {
        let i = Self::st_idx(vpn);
        if i >= self.state.len() {
            self.state.resize(i + 1, None);
        }
        self.state[i] = Some(st);
    }

    /// Clears and returns the page's state (unmap).
    #[inline]
    fn st_clear(&mut self, vpn: u64) -> Option<PageState> {
        self.state.get_mut(Self::st_idx(vpn)).and_then(Option::take)
    }

    fn touch(&mut self, core: usize, vpn: u64, is_write: bool) -> u32 {
        assert!(
            vpn >= BASE_VA >> 12 && ((vpn - (BASE_VA >> 12)) << 12) < self.cfg.remote_bytes,
            "segmentation fault at {:#x}",
            vpn << 12
        );
        match self.st_get(vpn) {
            Some(PageState::Mapped { frame, dirty }) => {
                self.st_set(
                    vpn,
                    PageState::Mapped {
                        frame,
                        dirty: dirty || is_write,
                    },
                );
                self.lru.touch(vpn);
                frame
            }
            Some(PageState::Cached { frame, ready_at }) => {
                self.minor_fault(core, vpn, frame, ready_at, is_write)
            }
            Some(PageState::Swapped) => self.major_fault(core, vpn, is_write),
            None => self.zero_fill(core, vpn, is_write),
        }
    }

    /// A swap-cache hit: the page is local but unmapped.
    fn minor_fault(
        &mut self,
        core: usize,
        vpn: u64,
        frame: u32,
        ready_at: Ns,
        is_write: bool,
    ) -> u32 {
        let costs = self.cfg.costs.clone();
        self.stats.minor_faults += 1;
        let now = self.clocks[core].now();
        let prev_req = self.trace.begin_request();
        self.trace.emit(
            now,
            TraceEvent::FaultBegin {
                core: core as u8,
                vpn,
                kind: FaultKind::Minor,
            },
        );
        let t = (now + costs.minor_fault_ns).max(ready_at);
        self.clocks[core].wait_until(t);
        // First touch consumes the readahead.
        self.trace.emit(t, TraceEvent::PrefetchLand { vpn });
        self.map(t, vpn, frame, is_write);
        self.trace.emit(
            t,
            TraceEvent::FaultEnd {
                core: core as u8,
                vpn,
            },
        );
        self.trace.set_request(prev_req);
        frame
    }

    fn zero_fill(&mut self, core: usize, vpn: u64, is_write: bool) -> u32 {
        let costs = self.cfg.costs.clone();
        let now = self.clocks[core].now();
        let prev_req = self.trace.begin_request();
        self.trace.emit(
            now,
            TraceEvent::FaultBegin {
                core: core as u8,
                vpn,
                kind: FaultKind::ZeroFill,
            },
        );
        let t = now + costs.exception_ns + costs.page_alloc_ns;
        let (frame, t_frame, _) = self.get_frame(core, t);
        let live = self.frame_live[frame as usize] as usize;
        self.frames[frame as usize][..live].fill(0);
        self.frame_live[frame as usize] = 0;
        let t_end = t_frame + costs.map_ns;
        self.clocks[core].wait_until(t_end);
        self.stats.zero_fills += 1;
        self.map(t_end, vpn, frame, is_write);
        self.trace.emit(
            t_end,
            TraceEvent::FaultEnd {
                core: core as u8,
                vpn,
            },
        );
        self.trace.set_request(prev_req);
        frame
    }

    /// A major fault: swap-in through the swap cache, with readahead.
    fn major_fault(&mut self, core: usize, vpn: u64, is_write: bool) -> u32 {
        let costs = self.cfg.costs.clone();
        let now = self.clocks[core].now();
        let prev_req = self.trace.begin_request();
        self.trace.emit(
            now,
            TraceEvent::FaultBegin {
                core: core as u8,
                vpn,
                kind: FaultKind::Major,
            },
        );
        let mut t = now + costs.exception_ns + costs.swap_cache_ns;
        let (frame, t_frame, reclaim_ns) = self.get_frame(core, t + costs.page_alloc_ns);
        t = t_frame;
        // Demand fetch (synchronous).
        let remote = (vpn - (BASE_VA >> 12)) << 12;
        // The verb fills the whole frame (dead bytes read as zeros), so it
        // can land directly — no bounce buffer, no extra 4 KiB copy.
        let (done, live) = self
            .rdma
            .read_live(
                t + costs.kernel_io_ns,
                core,
                ServiceClass::Fault,
                remote,
                &mut self.frames[frame as usize][..],
            )
            .expect("swap-in inside swap device");
        self.frame_live[frame as usize] = live as u32;
        // Readahead the rest of the cluster into the swap cache
        // (asynchronous; pages cost a minor fault on first touch).
        self.readahead(core, vpn, done);
        let t_end = done + costs.map_ns;
        self.clocks[core].wait_until(t_end);
        self.stats.major_faults += 1;
        let b = &mut self.stats.breakdown;
        b.exception += costs.exception_ns;
        b.swap_cache += costs.swap_cache_ns;
        b.page_alloc += costs.page_alloc_ns;
        b.fetch += costs.kernel_io_ns + (done - (t + costs.kernel_io_ns));
        b.reclaim += reclaim_ns;
        b.map += costs.map_ns;
        b.count += 1;
        self.map(t_end, vpn, frame, is_write);
        self.trace.emit(
            t_end,
            TraceEvent::FaultEnd {
                core: core as u8,
                vpn,
            },
        );
        self.trace.set_request(prev_req);
        frame
    }

    /// Linux-style cluster readahead into the swap cache.
    ///
    /// Readahead allocations are opportunistic: at most two frames per
    /// fault may be produced by extra reclaim, bounding cache pollution
    /// under pressure (the kernel's GFP_NORETRY behaviour for readahead).
    fn readahead(&mut self, core: usize, vpn: u64, t: Ns) {
        let mut reclaim_budget = self.cfg.readahead_cluster as u32;
        for i in 1..self.cfg.readahead_cluster as u64 {
            let target = vpn + i;
            if ((target - (BASE_VA >> 12)) << 12) >= self.cfg.remote_bytes {
                break;
            }
            if !matches!(self.st_get(target), Some(PageState::Swapped)) {
                continue;
            }
            // Readahead never blocks the fault path: claim a frame without
            // direct reclaim, letting the offload thread free pages. A frame
            // whose writeback is still in flight is usable once it lands.
            let Some((frame, avail)) = self.frame_for_readahead(t, &mut reclaim_budget) else {
                break;
            };
            let remote = (target - (BASE_VA >> 12)) << 12;
            // Each readahead page is its own causal request, issued at
            // origin; the faulting request resumes once it lands.
            let prev_req = self.trace.begin_request();
            self.trace
                .emit(t.max(avail), TraceEvent::PrefetchIssue { vpn: target });
            let (done, live) = self
                .rdma
                .read_live(
                    t.max(avail),
                    core,
                    ServiceClass::Prefetch,
                    remote,
                    &mut self.frames[frame as usize][..],
                )
                .expect("readahead inside swap device");
            self.frame_live[frame as usize] = live as u32;
            self.st_set(
                target,
                PageState::Cached {
                    frame,
                    ready_at: done,
                },
            );
            self.trace
                .emit(t.max(avail), TraceEvent::LruInsert { vpn: target });
            self.lru.insert(target);
            self.stats.readahead_pages += 1;
            self.trace.set_request(prev_req);
        }
    }

    /// Claims a frame for readahead without charging the fault path: free
    /// list, then pending writebacks (earliest first), then one offloaded
    /// reclaim batch. Returns `(frame, available_at)`.
    fn frame_for_readahead(&mut self, t: Ns, reclaim_budget: &mut u32) -> Option<(u32, Ns)> {
        if let Some(f) = self.free.pop() {
            self.trace.emit(t, TraceEvent::FrameAlloc { frame: f });
            return Some((f, t));
        }
        if self.pending_free.is_empty() {
            if *reclaim_budget == 0 {
                return None;
            }
            *reclaim_budget -= 1;
            // Gentle reclaim: readahead may only take pages that are
            // already cold — it must not strip accessed bits off the hot
            // working set (that would be self-inflicted thrashing).
            self.reclaim_gentle(t);
        }
        if let Some(f) = self.free.pop() {
            self.trace.emit(t, TraceEvent::FrameAlloc { frame: f });
            return Some((f, t));
        }
        let i = self
            .pending_free
            .iter()
            .enumerate()
            .min_by_key(|(_, &(_, a))| a)
            .map(|(i, _)| i)?;
        let (f, a) = self.pending_free.swap_remove(i);
        self.trace.emit(a, TraceEvent::FrameAlloc { frame: f });
        Some((f, a))
    }

    /// Evicts one already-cold clean-or-dirty page without touching
    /// accessed bits; a no-op when everything is hot.
    /// One offloaded eviction on behalf of readahead. With the LRU chain
    /// the tail is by definition the coldest page, so no extra care is
    /// needed to avoid stripping the hot set.
    fn reclaim_gentle(&mut self, t: Ns) {
        self.reclaim_batch(0, t, true);
        self.stats.offloaded_reclaims += 1;
    }

    fn map(&mut self, t: Ns, vpn: u64, frame: u32, is_write: bool) {
        self.st_set(
            vpn,
            PageState::Mapped {
                frame,
                dirty: is_write,
            },
        );
        // A swap-cached page is already an LRU member; mapping it is a
        // touch, not an insert.
        if !self.lru.contains(vpn) {
            self.trace.emit(t, TraceEvent::LruInsert { vpn });
        }
        self.lru.insert(vpn);
    }

    /// Claims a frame, reclaiming if necessary.
    ///
    /// Returns `(frame, time, direct_reclaim_ns)`. Every other reclaim
    /// round is absorbed by the offload thread; the rest run here, in the
    /// fault path — Fastswap's partial offload (§3.1).
    fn get_frame(&mut self, core: usize, t: Ns) -> (u32, Ns, Ns) {
        let mut now = t;
        let mut direct_ns = 0;
        let mut spins = 0;
        loop {
            self.drain_events(now);
            if let Some(f) = self.free.pop() {
                self.trace.emit(now, TraceEvent::FrameAlloc { frame: f });
                return (f, now, direct_ns);
            }
            // The free list is empty: kernel reclaim runs *now*, before the
            // allocation can be satisfied — even if an earlier writeback is
            // about to complete. This is the cost Figure 1 charges to
            // "reclaim" on the average fault.
            self.reclaim_round += 1;
            let offloaded = (self.reclaim_round * self.cfg.costs.offload_percent / 100) as u64
                != ((self.reclaim_round - 1) * self.cfg.costs.offload_percent / 100) as u64;
            if offloaded {
                // The dedicated thread runs the batch when its CPU is next
                // free — a calendar event, not an instantaneous favour. If
                // the thread is idle that is right now; the drain below
                // delivers it before the handler re-checks the free list.
                self.cal
                    .schedule(self.offload.next_free(now), SchedEvent::ReclaimTick);
                self.drain_events(now);
            } else {
                let spent = self.reclaim_batch(core, now, false);
                self.stats.direct_reclaims += 1;
                direct_ns += spent;
                now += spent;
            }
            if let Some(i) = self
                .pending_free
                .iter()
                .position(|&(_, avail)| avail <= now)
            {
                let (f, _) = self.pending_free.swap_remove(i);
                self.trace.emit(now, TraceEvent::FrameAlloc { frame: f });
                return (f, now, direct_ns);
            }
            if self.free.is_empty() {
                // Wait for whichever comes first: a pending writeback's
                // completion or the next calendar event (a scheduled
                // offload batch, typically).
                let mut next = self.pending_free.iter().map(|&(_, a)| a).min();
                if let Some(due) = self.cal.next_due() {
                    next = Some(next.map_or(due, |n| n.min(due)));
                }
                if let Some(n) = next {
                    now = now.max(n);
                }
            }
            spins += 1;
            assert!(spins < 100_000, "fastswap: local cache thrashing");
        }
    }

    /// Evicts up to a small batch of cold pages; returns software time.
    ///
    /// Offloaded batches model Fastswap's dedicated reclaim thread, whose
    /// work hides under the fault's in-flight RDMA: their software time is
    /// charged to the offload timeline, and clean frames are available
    /// immediately from the handler's perspective.
    fn reclaim_batch(&mut self, _core: usize, t: Ns, offloaded: bool) -> Ns {
        let costs = self.cfg.costs.clone();
        let mut spent = 0;
        // Victim: the LRU tail (Linux's inactive-list tail). Swap-cache
        // pages that were read ahead but never touched are first-class
        // victims — dropping them costs no shootdown and no writeback.
        let mut victim: Option<(u64, PageState)> = None;
        for vpn in self.lru.iter_cold().take(64) {
            spent += costs.reclaim_scan_ns;
            match self.st_get(vpn) {
                Some(st @ PageState::Cached { ready_at, .. }) if ready_at <= t + spent => {
                    victim = Some((vpn, st));
                    break;
                }
                Some(PageState::Cached { .. }) => continue, // Fetch in flight.
                Some(st @ PageState::Mapped { .. }) => {
                    victim = Some((vpn, st));
                    break;
                }
                _ => continue,
            }
        }
        let Some((vpn, st)) = victim else {
            if offloaded {
                self.offload.acquire(t, spent);
                return 0;
            }
            return spent;
        };
        // Each eviction is its own causal request, whether produced by the
        // offload thread or by direct reclaim inside a fault.
        let prev_req = self.trace.begin_request();
        match st {
            PageState::Cached { frame, .. } => {
                // Drop from the swap cache: clean by construction. The
                // readahead that fetched this page goes unconsumed.
                let at = if offloaded { t } else { t + spent };
                self.trace.emit(at, TraceEvent::PrefetchCancel { vpn });
                self.trace.emit(at, TraceEvent::Evict { vpn, dirty: false });
                self.st_set(vpn, PageState::Swapped);
                self.trace.emit(at, TraceEvent::LruRemove { vpn });
                self.lru.remove(vpn);
                self.trace.emit(at, TraceEvent::FrameFree { frame });
                self.pending_free.push((frame, at));
                self.stats.evictions += 1;
            }
            PageState::Mapped { frame, dirty, .. } => {
                // Unmap: TLB shootdown, then write back if dirty.
                spent += costs.tlb_shootdown_ns;
                let mut available_at = if offloaded { t } else { t + spent };
                if dirty {
                    let remote = (vpn - (BASE_VA >> 12)) << 12;
                    let done = self
                        .rdma
                        .write_live(
                            t + spent,
                            0,
                            ServiceClass::Cleaner,
                            remote,
                            &self.frames[frame as usize][..],
                            self.frame_live[frame as usize] as usize,
                        )
                        .expect("swap-out inside swap device");
                    self.stats.writebacks += 1;
                    if offloaded {
                        available_at = done;
                    } else {
                        // Direct reclaim waits for the writeback.
                        spent += done.saturating_sub(t + spent);
                        available_at = t + spent;
                    }
                }
                self.trace
                    .emit(available_at, TraceEvent::Evict { vpn, dirty });
                self.st_set(vpn, PageState::Swapped);
                self.trace.emit(available_at, TraceEvent::LruRemove { vpn });
                self.lru.remove(vpn);
                self.trace
                    .emit(available_at, TraceEvent::FrameFree { frame });
                self.pending_free.push((frame, available_at));
                self.stats.evictions += 1;
            }
            PageState::Swapped => unreachable!("victims are resident"),
        }
        self.trace.set_request(prev_req);
        if offloaded {
            // The offload thread's CPU time rides its own timeline.
            self.offload.acquire(t, spent);
            0
        } else {
            spent
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(local_pages: usize) -> Fastswap {
        Fastswap::new(FastswapConfig {
            local_pages,
            remote_bytes: 1 << 28,
            ..FastswapConfig::default()
        })
    }

    #[test]
    fn roundtrip_through_swap() {
        let mut n = node(64);
        let va = n.alloc(256 * PAGE_SIZE);
        for p in 0..256u64 {
            n.write_u64(0, va + p * PAGE_SIZE as u64, p * 7);
        }
        for p in 0..256u64 {
            assert_eq!(n.read_u64(0, va + p * PAGE_SIZE as u64), p * 7);
        }
        let s = n.stats();
        assert!(s.major_faults > 0);
        assert!(s.evictions > 0);
        assert!(s.writebacks > 0);
    }

    #[test]
    fn readahead_produces_minor_fault_majority() {
        // Table 1: on sequential read, ~87.5 % of faults are minor (swap
        // cache hits from the 8-page readahead cluster).
        let mut n = node(64);
        let pages = 512u64;
        let va = n.alloc(pages as usize * PAGE_SIZE);
        for p in 0..pages {
            n.write_u64(0, va + p * PAGE_SIZE as u64, p);
        }
        for p in 0..pages {
            let _ = n.read_u64(0, va + p * PAGE_SIZE as u64);
        }
        let s = n.stats();
        assert!(
            s.minor_faults > 3 * s.major_faults,
            "minor {} major {}",
            s.minor_faults,
            s.major_faults
        );
        assert!(s.readahead_pages > 0);
    }

    #[test]
    fn direct_reclaim_shows_up_in_the_breakdown() {
        let mut n = node(64);
        let va = n.alloc(512 * PAGE_SIZE);
        for p in 0..512u64 {
            n.write_u64(0, va + p * PAGE_SIZE as u64, p);
        }
        for p in 0..512u64 {
            let _ = n.read_u64(0, va + p * PAGE_SIZE as u64);
        }
        let s = n.stats();
        assert!(s.direct_reclaims > 0, "some reclaim must be direct");
        assert!(s.offloaded_reclaims > 0, "some reclaim must be offloaded");
        assert!(s.breakdown.reclaim > 0);
        // Figure 1: the average Fastswap fault is far costlier than DiLOS's
        // ~3 µs; fetch is its largest phase.
        let avg = s.breakdown.avg_total();
        assert!(avg > 4_500, "avg fault {avg}");
        let phases = s.breakdown.avg_phases();
        let fetch = phases.iter().find(|(l, _)| *l == "fetch").unwrap().1;
        assert!(phases.iter().all(|&(_, v)| v <= fetch), "fetch dominates");
    }

    #[test]
    fn free_releases_pages() {
        let mut n = node(64);
        let va = n.alloc(32 * PAGE_SIZE);
        for p in 0..32u64 {
            n.write_u64(0, va + p * PAGE_SIZE as u64, p);
        }
        n.free(va, 32 * PAGE_SIZE);
        // All frames eventually reusable: a fresh working set fits.
        let vb = n.alloc(48 * PAGE_SIZE);
        for p in 0..48u64 {
            n.write_u64(0, vb + p * PAGE_SIZE as u64, p);
        }
        assert_eq!(n.stats().zero_fills, 32 + 48);
    }

    #[test]
    fn deterministic_virtual_time() {
        let run = || {
            let mut n = node(64);
            let va = n.alloc(300 * PAGE_SIZE);
            for p in 0..300u64 {
                n.write_u64(0, va + p * PAGE_SIZE as u64, p);
            }
            for p in (0..300u64).rev() {
                let _ = n.read_u64(0, va + p * PAGE_SIZE as u64);
            }
            n.now(0)
        };
        assert_eq!(run(), run());
    }
}
