//! Page-manager bookkeeping: the resident ring and eviction policy (§4.4).
//!
//! "The allocator inserts all newly allocated pages into an LRU list. The
//! cleaner periodically scans the LRU list to find dirty pages … When the
//! system is under memory pressure, the reclaimer evicts the least frequently
//! accessed clean pages according to the clock algorithm."
//!
//! [`ResidentRing`] is that list: a ring of resident VPNs in allocation
//! order, with a clock hand for the reclaimer and a second hand for the
//! cleaner. The actual eviction I/O is orchestrated by the node
//! ([`crate::node::Dilos`]); this module owns the policy decisions, which
//! keeps them unit-testable in isolation.

/// The resident-page ring shared by the cleaner and the reclaimer.
#[derive(Debug, Default)]
pub struct ResidentRing {
    slots: Vec<u64>,
    clock: usize,
    cleaner: usize,
}

impl ResidentRing {
    /// Creates an empty ring.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of resident pages tracked.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Inserts a newly mapped page; returns its slot for O(1) removal.
    pub fn push(&mut self, vpn: u64) -> usize {
        self.slots.push(vpn);
        self.slots.len() - 1
    }

    /// Removes the page at `slot`.
    ///
    /// Returns the VPN that was moved into `slot` to fill the hole (the
    /// caller must update that page's stored slot), or `None` if the ring
    /// shrank in place.
    pub fn remove(&mut self, slot: usize) -> Option<u64> {
        let last = self.slots.len() - 1;
        self.slots.swap_remove(slot);
        if self.clock > self.slots.len() {
            self.clock = 0;
        }
        if self.cleaner > self.slots.len() {
            self.cleaner = 0;
        }
        (slot != last).then(|| self.slots[slot])
    }

    /// Advances the reclaimer's clock hand one step, returning the VPN under
    /// it and its slot.
    pub fn clock_next(&mut self) -> Option<(usize, u64)> {
        if self.slots.is_empty() {
            return None;
        }
        if self.clock >= self.slots.len() {
            self.clock = 0;
        }
        let slot = self.clock;
        self.clock = (self.clock + 1) % self.slots.len();
        Some((slot, self.slots[slot]))
    }

    /// Advances the cleaner's scan hand one step.
    pub fn cleaner_next(&mut self) -> Option<(usize, u64)> {
        if self.slots.is_empty() {
            return None;
        }
        if self.cleaner >= self.slots.len() {
            self.cleaner = 0;
        }
        let slot = self.cleaner;
        self.cleaner = (self.cleaner + 1) % self.slots.len();
        Some((slot, self.slots[slot]))
    }

    /// The VPN at `slot` (test/diagnostic use).
    pub fn vpn_at(&self, slot: usize) -> u64 {
        self.slots[slot]
    }
}

/// Free-memory watermarks driving eager background eviction.
///
/// DiLOS "always keeps a few free pages by eagerly evicting the local cache"
/// so reclamation never runs in the fault path. When the free list drops
/// below `low`, the background reclaimer refills it to `high`.
#[derive(Debug, Clone, Copy)]
pub struct Watermarks {
    /// Trigger threshold: refill when free frames drop below this.
    pub low: usize,
    /// Refill target.
    pub high: usize,
}

impl Watermarks {
    /// Derives watermarks from the local cache size: 1/32 of frames low,
    /// 1/16 high, clamped to a sane minimum.
    pub fn for_cache(frames: usize) -> Self {
        let low = (frames / 32).clamp(2, 256);
        let high = (frames / 16).clamp(4, 512).max(low + 2);
        Self { low, high }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_remove_tracks_slots() {
        let mut r = ResidentRing::new();
        let a = r.push(10);
        let b = r.push(20);
        let _c = r.push(30);
        assert_eq!(r.len(), 3);
        // Removing the middle slot moves the last element into it.
        let moved = r.remove(b);
        assert_eq!(moved, Some(30));
        assert_eq!(r.vpn_at(b), 30);
        // Removing the final slot fills nothing.
        assert_eq!(r.remove(1), None);
        assert_eq!(r.remove(a), None);
        assert!(r.is_empty());
    }

    #[test]
    fn clock_cycles_through_all_pages() {
        let mut r = ResidentRing::new();
        for v in [1u64, 2, 3] {
            r.push(v);
        }
        let seen: Vec<u64> = (0..6).map(|_| r.clock_next().unwrap().1).collect();
        assert_eq!(seen, vec![1, 2, 3, 1, 2, 3]);
    }

    #[test]
    fn hands_survive_removals() {
        let mut r = ResidentRing::new();
        for v in 0..5u64 {
            r.push(v);
        }
        r.clock_next();
        r.clock_next();
        r.remove(4);
        r.remove(3);
        // The hand may have been clamped; it must still cycle safely.
        for _ in 0..10 {
            assert!(r.clock_next().is_some());
        }
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn empty_ring_yields_none() {
        let mut r = ResidentRing::new();
        assert!(r.clock_next().is_none());
        assert!(r.cleaner_next().is_none());
    }

    #[test]
    fn watermarks_scale_with_cache() {
        let w = Watermarks::for_cache(64);
        assert!(w.low >= 2 && w.high > w.low);
        let big = Watermarks::for_cache(1 << 20);
        assert_eq!(big.low, 256);
        assert_eq!(big.high, 512);
    }
}
