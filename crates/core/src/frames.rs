//! The local DRAM cache: a fixed arena of 4 KiB frames.
//!
//! The compute node's local memory is a contiguous arena sized at boot (the
//! "local cache" the evaluation sweeps from 12.5 % to 100 % of the working
//! set). Frames carry the metadata the page manager needs: the VPN they back
//! and, for frames filled by an in-flight fetch, the virtual time at which
//! the payload actually arrives.

use dilos_sim::{Ns, Observability, TraceEvent, TraceSink, PAGE_SIZE};

/// Per-frame metadata.
#[derive(Debug, Clone, Copy)]
pub struct FrameMeta {
    /// The virtual page this frame backs (`u64::MAX` when free).
    pub vpn: u64,
    /// When the frame's payload is valid (fetch completion time). Accesses
    /// before this wait on the in-flight fetch.
    pub ready_at: Ns,
    /// Index into the resident ring, for O(1) removal on eviction.
    pub ring_slot: usize,
    /// Virtual time of the most recent access (recency diagnostics; the
    /// eviction order itself lives in the node's exact LRU chain).
    pub last_access: Ns,
}

const NO_VPN: u64 = u64::MAX;

/// A free frame and the time at which it may be reused (its previous
/// content's writeback completion).
#[derive(Debug, Clone, Copy)]
struct FreeFrame {
    frame: u32,
    available_at: Ns,
}

/// The frame arena: backing bytes, metadata, and the free list.
#[derive(Debug)]
pub struct FrameArena {
    data: Vec<u8>,
    meta: Vec<FrameMeta>,
    free: Vec<FreeFrame>,
    /// Per-frame live extent: an upper bound on the frame's non-zero prefix
    /// (every byte at offset `>= live[f]` is zero). Fill paths set it, app
    /// writes raise it, and eviction hands it to the store so write-back
    /// never has to re-scan a mostly-zero page for its content length.
    live: Vec<u32>,
    trace: TraceSink,
}

impl FrameArena {
    /// Creates an arena of `frames` local pages, all free.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is zero.
    pub fn new(frames: usize) -> Self {
        assert!(frames > 0, "local cache needs at least one frame");
        Self {
            data: vec![0; frames * PAGE_SIZE],
            meta: vec![
                FrameMeta {
                    vpn: NO_VPN,
                    ready_at: 0,
                    ring_slot: usize::MAX,
                    last_access: 0,
                };
                frames
            ],
            free: (0..frames as u32)
                .rev()
                .map(|frame| FreeFrame {
                    frame,
                    available_at: 0,
                })
                .collect(),
            live: vec![0; frames],
            trace: TraceSink::disabled(),
        }
    }

    /// Upper bound on the frame's non-zero prefix; bytes past it are zero.
    pub fn live(&self, frame: u32) -> usize {
        self.live[frame as usize] as usize
    }

    /// Declares the frame's non-zero content to end before `n` (a fill path
    /// that wrote the whole frame knows exactly how much of it is non-zero).
    pub fn set_live(&mut self, frame: u32, n: usize) {
        self.live[frame as usize] = n.min(PAGE_SIZE) as u32;
    }

    /// Raises the live extent to cover a write ending at `end`.
    pub fn note_write(&mut self, frame: u32, end: usize) {
        let e = &mut self.live[frame as usize];
        *e = (*e).max(end.min(PAGE_SIZE) as u32);
    }

    /// Zeroes the frame, touching only its live prefix.
    pub fn zero(&mut self, frame: u32) {
        let o = frame as usize * PAGE_SIZE;
        let n = self.live[frame as usize] as usize;
        self.data[o..o + n].fill(0);
        self.live[frame as usize] = 0;
    }

    /// Routes frame alloc/free events into the bundle's trace sink.
    pub fn observe(&mut self, obs: &Observability) {
        self.trace = obs.trace().clone();
    }

    /// Total frames in the arena.
    pub fn total(&self) -> usize {
        self.meta.len()
    }

    /// Frames currently on the free list (including not-yet-available ones).
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Pops a frame whose previous writeback has completed by `now`.
    pub fn pop_free(&mut self, now: Ns) -> Option<u32> {
        let idx = self.free.iter().position(|f| f.available_at <= now)?;
        let frame = self.free.swap_remove(idx).frame;
        self.trace.emit(now, TraceEvent::FrameAlloc { frame });
        Some(frame)
    }

    /// The earliest time any free-list frame becomes available, if the list
    /// is non-empty but nothing is available at `now`.
    pub fn earliest_available(&self) -> Option<Ns> {
        self.free.iter().map(|f| f.available_at).min()
    }

    /// Returns frame `frame` to the free list, reusable from `available_at`.
    pub fn push_free(&mut self, frame: u32, available_at: Ns) {
        self.meta[frame as usize] = FrameMeta {
            vpn: NO_VPN,
            ready_at: 0,
            ring_slot: usize::MAX,
            last_access: 0,
        };
        self.free.push(FreeFrame {
            frame,
            available_at,
        });
        self.trace
            .emit(available_at, TraceEvent::FrameFree { frame });
    }

    /// Frame metadata.
    pub fn meta(&self, frame: u32) -> &FrameMeta {
        &self.meta[frame as usize]
    }

    /// Mutable frame metadata.
    pub fn meta_mut(&mut self, frame: u32) -> &mut FrameMeta {
        &mut self.meta[frame as usize]
    }

    /// The frame's 4 KiB of backing bytes.
    pub fn bytes(&self, frame: u32) -> &[u8] {
        let o = frame as usize * PAGE_SIZE;
        &self.data[o..o + PAGE_SIZE]
    }

    /// Mutable backing bytes. Callers that write non-zero content must pair
    /// the write with [`note_write`](Self::note_write)/[`set_live`](Self::set_live)
    /// to keep the live extent an upper bound.
    pub fn bytes_mut(&mut self, frame: u32) -> &mut [u8] {
        let o = frame as usize * PAGE_SIZE;
        &mut self.data[o..o + PAGE_SIZE]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_starts_fully_free() {
        let a = FrameArena::new(8);
        assert_eq!(a.total(), 8);
        assert_eq!(a.free_count(), 8);
    }

    #[test]
    fn pop_respects_availability_times() {
        let mut a = FrameArena::new(2);
        let f0 = a.pop_free(0).unwrap();
        let f1 = a.pop_free(0).unwrap();
        assert!(a.pop_free(0).is_none());
        a.push_free(f0, 1_000);
        a.push_free(f1, 500);
        assert!(a.pop_free(100).is_none(), "nothing available yet");
        assert_eq!(a.earliest_available(), Some(500));
        assert_eq!(a.pop_free(600), Some(f1));
        assert_eq!(a.pop_free(2_000), Some(f0));
    }

    #[test]
    fn bytes_are_per_frame_and_zeroed() {
        let mut a = FrameArena::new(2);
        a.bytes_mut(0).fill(0xAB);
        assert!(a.bytes(1).iter().all(|&b| b == 0));
        assert!(a.bytes(0).iter().all(|&b| b == 0xAB));
    }

    #[test]
    fn push_free_resets_meta() {
        let mut a = FrameArena::new(1);
        let f = a.pop_free(0).unwrap();
        a.meta_mut(f).vpn = 42;
        a.meta_mut(f).ready_at = 99;
        a.push_free(f, 0);
        assert_eq!(a.meta(f).vpn, u64::MAX);
        assert_eq!(a.meta(f).ready_at, 0);
    }
}
