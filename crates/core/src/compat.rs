//! The compatibility layer (§5): DDC memory APIs and the ELF symbol patcher.
//!
//! DiLOS keeps POSIX/binary compatibility by loading unmodified application
//! binaries and patching their allocation symbols: "the ELF loader patches
//! all malloc and free calls in the application's symbol table with
//! corresponding DDC APIs". The real system rewrites ELF relocations; this
//! reproduction models the same contract with a symbol-routing table — every
//! workload in `dilos-apps` allocates through plain `malloc`-style names and
//! the loader transparently reroutes them to `ddc_malloc`/`ddc_free`.
//!
//! The loader also provides the *hooking interface* guides use to observe
//! application state ("the prefetcher hooks the list traversing code and
//! tracks the position of the current node", §5).

// Ordered maps: `PatchReport` enumerates patched symbols straight out of
// `symbols`, and that order must not depend on a hash seed.
use std::collections::BTreeMap;

/// The `mmap` flag selecting disaggregated backing (§5: `MAP_DDC`).
pub const MAP_DDC: u32 = 0x0100_0000;

/// A symbol exported or imported by a loaded "binary".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymbolKind {
    /// An allocation entry point eligible for DDC patching.
    Alloc,
    /// A function a guide may hook.
    Hookable,
    /// Anything else (left untouched).
    Other,
}

/// A minimal model of an application's dynamic symbol table.
#[derive(Debug, Default)]
pub struct SymbolTable {
    symbols: BTreeMap<String, (SymbolKind, String)>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a symbol; `target` is what the PLT currently resolves to.
    pub fn declare(&mut self, name: &str, kind: SymbolKind) {
        self.symbols
            .insert(name.to_string(), (kind, name.to_string()));
    }

    /// What `name` currently resolves to.
    pub fn resolve(&self, name: &str) -> Option<&str> {
        self.symbols.get(name).map(|(_, t)| t.as_str())
    }

    fn rebind(&mut self, name: &str, target: &str) -> bool {
        if let Some((_, t)) = self.symbols.get_mut(name) {
            *t = target.to_string();
            true
        } else {
            false
        }
    }
}

/// The patch report: which symbols were rerouted and which hooks installed.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PatchReport {
    /// `(original, replacement)` pairs applied.
    pub patched: Vec<(String, String)>,
    /// Hookable symbols a guide attached to.
    pub hooked: Vec<String>,
}

/// The DDC symbol patcher (the ELF-loader stage of §5).
#[derive(Debug)]
pub struct SymbolPatcher {
    routes: BTreeMap<&'static str, &'static str>,
}

impl Default for SymbolPatcher {
    fn default() -> Self {
        Self::new()
    }
}

impl SymbolPatcher {
    /// The standard malloc-family routing table.
    pub fn new() -> Self {
        let mut routes = BTreeMap::new();
        routes.insert("malloc", "ddc_malloc");
        routes.insert("free", "ddc_free");
        routes.insert("calloc", "ddc_calloc");
        routes.insert("realloc", "ddc_realloc");
        routes.insert("posix_memalign", "ddc_posix_memalign");
        Self { routes }
    }

    /// Patches every allocation symbol in `table` to its DDC equivalent and
    /// installs the requested guide hooks. Unknown hook names are ignored
    /// (a guide compiled against a different application version must not
    /// break loading).
    pub fn patch(&self, table: &mut SymbolTable, hooks: &[&str]) -> PatchReport {
        let mut report = PatchReport::default();
        let names: Vec<String> = table.symbols.keys().cloned().collect();
        for name in names {
            let (kind, _) = table.symbols[&name];
            if kind == SymbolKind::Alloc {
                if let Some(&target) = self.routes.get(name.as_str()) {
                    table.rebind(&name, target);
                    report.patched.push((name.clone(), target.to_string()));
                }
            }
        }
        for &h in hooks {
            if matches!(table.symbols.get(h), Some((SymbolKind::Hookable, _))) {
                report.hooked.push(h.to_string());
            }
        }
        report.patched.sort();
        report.hooked.sort();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app_table() -> SymbolTable {
        let mut t = SymbolTable::new();
        t.declare("malloc", SymbolKind::Alloc);
        t.declare("free", SymbolKind::Alloc);
        t.declare("memcpy", SymbolKind::Other);
        t.declare("listTypeNext", SymbolKind::Hookable);
        t
    }

    #[test]
    fn alloc_symbols_are_rerouted() {
        let mut t = app_table();
        let report = SymbolPatcher::new().patch(&mut t, &[]);
        assert_eq!(t.resolve("malloc"), Some("ddc_malloc"));
        assert_eq!(t.resolve("free"), Some("ddc_free"));
        assert_eq!(t.resolve("memcpy"), Some("memcpy"), "non-alloc untouched");
        assert_eq!(report.patched.len(), 2);
    }

    #[test]
    fn hooks_attach_only_to_hookable_symbols() {
        let mut t = app_table();
        let report = SymbolPatcher::new().patch(&mut t, &["listTypeNext", "memcpy", "missing"]);
        assert_eq!(report.hooked, vec!["listTypeNext".to_string()]);
    }

    #[test]
    fn patching_is_idempotent() {
        let mut t = app_table();
        let p = SymbolPatcher::new();
        p.patch(&mut t, &[]);
        let second = p.patch(&mut t, &[]);
        assert_eq!(t.resolve("malloc"), Some("ddc_malloc"));
        // The second pass re-applies the same routes harmlessly.
        assert_eq!(second.patched.len(), 2);
    }
}
