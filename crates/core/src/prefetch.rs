//! Page prefetchers and the PTE hit tracker (§4.3).
//!
//! DiLOS maps fetched *and prefetched* pages straight into the unified page
//! table, so the swap-cache statistics Linux prefetchers feed on do not
//! exist. Instead, a **PTE hit tracker** scans the accessed bits of recently
//! prefetched PTEs to recover the hit ratio, and the prefetchers take that as
//! feedback. Both the tracker sweep and the prefetch decision run inside the
//! 2–3 µs window of the demand fetch, so they add no fault latency.
//!
//! Two general-purpose prefetchers ship by default, as in the paper:
//! Linux-style [`Readahead`] and Leap's majority-trend [`TrendBased`].

use crate::pt::{PageTable, Pte};

/// A general-purpose page prefetcher.
///
/// Implementations are pure policy: they receive fault VPNs, emit candidate
/// VPNs, and adapt to hit-ratio feedback from the [`HitTracker`]. The node
/// filters candidates that are already resident or in flight.
pub trait Prefetcher {
    /// Called on every page fault at `vpn`; pushes prefetch candidates.
    fn on_fault(&mut self, vpn: u64, out: &mut Vec<u64>);

    /// Hit-ratio feedback from the PTE hit tracker.
    fn feedback(&mut self, hits: u32, total: u32);

    /// Display name for tables ("no-prefetch", "readahead", "trend-based").
    fn name(&self) -> &'static str;
}

/// The no-op prefetcher (the paper's *no-prefetch* configuration).
#[derive(Debug, Default)]
pub struct NoPrefetch;

impl Prefetcher for NoPrefetch {
    fn on_fault(&mut self, _vpn: u64, _out: &mut Vec<u64>) {}
    fn feedback(&mut self, _hits: u32, _total: u32) {}
    fn name(&self) -> &'static str {
        "no-prefetch"
    }
}

/// Linux-style readahead (§6: "Linux's readahead prefetcher \[28\]").
///
/// Sequential faults grow the window (up to [`Readahead::MAX_WINDOW`]);
/// non-sequential faults and poor hit ratios shrink it — the VMA-based swap
/// readahead behaviour.
#[derive(Debug)]
pub struct Readahead {
    last_vpn: u64,
    window: u32,
}

impl Readahead {
    /// Smallest window (pages prefetched per fault).
    pub const MIN_WINDOW: u32 = 2;
    /// Largest window, matching Linux's swap readahead cluster of 8.
    pub const MAX_WINDOW: u32 = 8;

    /// Creates a readahead prefetcher with the minimum window.
    pub fn new() -> Self {
        Self {
            last_vpn: u64::MAX,
            window: Self::MIN_WINDOW,
        }
    }

    /// The current window size.
    pub fn window(&self) -> u32 {
        self.window
    }
}

impl Default for Readahead {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for Readahead {
    fn on_fault(&mut self, vpn: u64, out: &mut Vec<u64>) {
        // Sequential means the fault lands within (or adjacent to) the
        // previous readahead window — after a window of size `w` is
        // prefetched, the next demand fault arrives `w` pages ahead.
        let sequential = vpn > self.last_vpn && vpn - self.last_vpn <= self.window.max(1) as u64;
        if sequential {
            self.window = (self.window * 2).min(Self::MAX_WINDOW);
        } else {
            self.window = Self::MIN_WINDOW;
        }
        self.last_vpn = vpn;
        for i in 1..self.window as u64 {
            out.push(vpn + i);
        }
    }

    fn feedback(&mut self, hits: u32, total: u32) {
        if total > 0 && hits * 2 < total {
            self.window = (self.window / 2).max(Self::MIN_WINDOW);
        }
    }

    fn name(&self) -> &'static str {
        "readahead"
    }
}

/// Leap's majority-trend prefetcher (§6: "Leap's majority trend-based
/// prefetcher \[49\]").
///
/// Keeps a short access history and finds the majority stride via
/// Boyer–Moore voting over progressively larger suffixes; if a majority
/// trend exists, it prefetches along that stride.
#[derive(Debug)]
pub struct TrendBased {
    history: Vec<u64>,
    head: usize,
    filled: usize,
    window: u32,
}

impl TrendBased {
    /// History depth (Leap uses a small fixed buffer).
    pub const HISTORY: usize = 32;
    /// Smallest prefetch window.
    pub const MIN_WINDOW: u32 = 2;
    /// Largest prefetch window.
    pub const MAX_WINDOW: u32 = 8;

    /// Creates a trend-based prefetcher.
    pub fn new() -> Self {
        Self {
            history: vec![0; Self::HISTORY],
            head: 0,
            filled: 0,
            window: Self::MIN_WINDOW,
        }
    }

    /// Boyer–Moore majority vote over the last `w` strides; verifies the
    /// candidate actually holds a majority (Leap's two-pass scheme).
    fn majority_stride(&self, w: usize) -> Option<i64> {
        if self.filled < w + 1 {
            return None;
        }
        let at = |i: usize| {
            // i-th most recent entry (i = 0 is the newest).
            self.history[(self.head + Self::HISTORY - 1 - i) % Self::HISTORY]
        };
        let stride = |i: usize| at(i) as i64 - at(i + 1) as i64;
        let mut candidate = 0i64;
        let mut count = 0u32;
        for i in 0..w {
            let s = stride(i);
            if count == 0 {
                candidate = s;
                count = 1;
            } else if s == candidate {
                count += 1;
            } else {
                count -= 1;
            }
        }
        let votes = (0..w).filter(|&i| stride(i) == candidate).count();
        (votes * 2 > w && candidate != 0).then_some(candidate)
    }

    /// The current window size.
    pub fn window(&self) -> u32 {
        self.window
    }
}

impl Default for TrendBased {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for TrendBased {
    fn on_fault(&mut self, vpn: u64, out: &mut Vec<u64>) {
        self.history[self.head] = vpn;
        self.head = (self.head + 1) % Self::HISTORY;
        self.filled = (self.filled + 1).min(Self::HISTORY);
        // Try the smallest window first, then widen (Leap's scheme).
        let stride = [4usize, 8, 16, Self::HISTORY - 1]
            .into_iter()
            .find_map(|w| self.majority_stride(w));
        if let Some(d) = stride {
            self.window = (self.window * 2).min(Self::MAX_WINDOW);
            for i in 1..=self.window as i64 {
                let target = vpn as i64 + d * i;
                if target >= 0 {
                    out.push(target as u64);
                }
            }
        } else {
            self.window = Self::MIN_WINDOW;
        }
    }

    fn feedback(&mut self, hits: u32, total: u32) {
        if total > 0 && hits * 2 < total {
            self.window = (self.window / 2).max(Self::MIN_WINDOW);
        }
    }

    fn name(&self) -> &'static str {
        "trend-based"
    }
}

/// The PTE hit tracker (§4.3).
///
/// "Upon prefetching, the PTE hit tracker scans accessed bits of prefetched
/// PTEs and collects the result to calculate the hit ratio and access
/// history." Tracked VPNs are swept in batches; a prefetched page whose
/// accessed bit is set by sweep time counts as a hit.
#[derive(Debug, Default)]
pub struct HitTracker {
    pending: Vec<u64>,
    hits: u64,
    total: u64,
}

impl HitTracker {
    /// Sweep batch size: the tracker sweeps once this many prefetched pages
    /// accumulate, bounding per-fault work to the fetch window.
    pub const BATCH: usize = 32;

    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a just-issued prefetch for later sweeping.
    pub fn track(&mut self, vpn: u64) {
        self.pending.push(vpn);
    }

    /// Number of pages awaiting a sweep.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Sweeps accessed bits if a batch has accumulated, returning
    /// `(hits, swept)` and the number of PTEs scanned (for time accounting).
    pub fn sweep_if_due(&mut self, pt: &PageTable) -> Option<(u32, u32)> {
        if self.pending.len() < Self::BATCH {
            return None;
        }
        Some(self.sweep(pt))
    }

    /// Unconditionally sweeps all pending PTEs.
    pub fn sweep(&mut self, pt: &PageTable) -> (u32, u32) {
        let mut hits = 0u32;
        let total = self.pending.len() as u32;
        for vpn in self.pending.drain(..) {
            if matches!(pt.get(vpn), Pte::Local { accessed: true, .. }) {
                hits += 1;
            }
        }
        self.hits += hits as u64;
        self.total += total as u64;
        (hits, total)
    }

    /// Lifetime `(hits, prefetched)` counts for reporting.
    pub fn lifetime(&self) -> (u64, u64) {
        (self.hits, self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn faults(p: &mut dyn Prefetcher, vpns: &[u64]) -> Vec<u64> {
        let mut out = Vec::new();
        for &v in vpns {
            out.clear();
            p.on_fault(v, &mut out);
        }
        out
    }

    #[test]
    fn readahead_grows_on_sequential_faults() {
        let mut r = Readahead::new();
        let out = faults(&mut r, &[100, 101, 102, 103]);
        assert_eq!(r.window(), Readahead::MAX_WINDOW);
        assert_eq!(out, vec![104, 105, 106, 107, 108, 109, 110]);
    }

    #[test]
    fn readahead_resets_on_random_faults() {
        let mut r = Readahead::new();
        faults(&mut r, &[100, 101, 102, 103]);
        let out = faults(&mut r, &[5000]);
        assert_eq!(r.window(), Readahead::MIN_WINDOW);
        assert_eq!(out, vec![5001]);
    }

    #[test]
    fn readahead_shrinks_on_bad_feedback() {
        let mut r = Readahead::new();
        faults(&mut r, &[1, 2, 3, 4]);
        assert_eq!(r.window(), 8);
        r.feedback(1, 8);
        assert_eq!(r.window(), 4);
        r.feedback(4, 8);
        assert_eq!(r.window(), 4, "good ratio keeps the window");
    }

    #[test]
    fn trend_finds_forward_stride() {
        let mut t = TrendBased::new();
        let seq: Vec<u64> = (0..8).map(|i| 100 + i * 2).collect();
        let out = faults(&mut t, &seq);
        assert!(!out.is_empty(), "majority stride of +2 must be detected");
        assert_eq!(out[0], 116, "first prediction continues the stride");
        assert!(out.windows(2).all(|w| w[1] - w[0] == 2));
    }

    #[test]
    fn trend_finds_backward_stride() {
        let mut t = TrendBased::new();
        let seq: Vec<u64> = (0..10).map(|i| 1_000 - i * 3).collect();
        let out = faults(&mut t, &seq);
        assert!(!out.is_empty());
        // Last fault was at 973; the stride is −3.
        assert_eq!(out[0], 970);
    }

    #[test]
    fn trend_stays_quiet_on_random_access() {
        let mut t = TrendBased::new();
        let seq = [5u64, 900, 33, 12_000, 7, 4_400, 210, 90_000, 3, 777];
        let out = faults(&mut t, &seq);
        assert!(out.is_empty(), "no majority trend in random access");
    }

    #[test]
    fn trend_survives_interleaved_noise() {
        // Two of eight strides are noise; the majority is still +1.
        let mut t = TrendBased::new();
        let seq = [10u64, 11, 12, 13, 500, 14, 15, 16, 17, 18];
        let mut out = Vec::new();
        for &v in &seq {
            out.clear();
            t.on_fault(v, &mut out);
        }
        assert!(!out.is_empty());
        assert_eq!(out[0], 19);
    }

    #[test]
    fn tracker_counts_accessed_prefetches() {
        let mut pt = PageTable::new();
        let mut tr = HitTracker::new();
        for vpn in 0..4u64 {
            pt.set(
                vpn,
                Pte::Local {
                    frame: vpn as u32,
                    accessed: false,
                    dirty: false,
                },
            );
            tr.track(vpn);
        }
        pt.mark_access(0, false);
        pt.mark_access(2, true);
        let (hits, total) = tr.sweep(&pt);
        assert_eq!((hits, total), (2, 4));
        assert_eq!(tr.pending(), 0);
        assert_eq!(tr.lifetime(), (2, 4));
    }

    #[test]
    fn tracker_batches_sweeps() {
        let pt = PageTable::new();
        let mut tr = HitTracker::new();
        for vpn in 0..(HitTracker::BATCH - 1) as u64 {
            tr.track(vpn);
        }
        assert!(tr.sweep_if_due(&pt).is_none());
        tr.track(99);
        assert!(tr.sweep_if_due(&pt).is_some());
    }
}
