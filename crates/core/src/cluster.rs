//! The multi-tenant serving cluster: N DiLOS nodes on one memory pool.
//!
//! The ROADMAP north-star talks about "serving heavy traffic from millions
//! of users"; every experiment before this module booted exactly one app
//! node. [`ServingCluster`] boots N [`Dilos`] tenants against one shared
//! [`RdmaEndpoint`] — one wire-occupancy model, one memory-node pool —
//! via per-tenant [`RdmaPort`](dilos_sim::RdmaPort)s (protection keys,
//! remote-address slices,
//! disjoint queue-pair lanes).
//!
//! QoS arbitration (the [`ClusterConfig::qos`] switch) has two arms:
//!
//! - **Bandwidth shares** — each tenant's wire traffic is shaped to its
//!   weighted share of the link (see `dilos_sim::fabric`), so a scan-heavy
//!   neighbour cannot monopolize the wire.
//! - **Local-memory quotas** — each tenant's local frame cache is capped at
//!   its quota, so reclaim pressure from an over-subscribed tenant stays in
//!   its own arena (the over-quota tenant evicts its *own* pages first —
//!   admission-time enforcement of reclaim priority). With QoS off, the
//!   frame pool is instead divided proportionally to *demand*, which lets a
//!   greedy tenant starve its neighbours of local memory exactly like an
//!   unpartitioned host.
//!
//! Tenants that boot with an audited [`Observability`] bundle get the
//! per-tenant frame-conservation invariant armed with their quota.
//!
//! Determinism: tenant ids are `u8` and every per-tenant structure is
//! ordered by them; the cluster itself holds no wall-clock or hash-ordered
//! state, so a cluster run is as replayable as a single-node run.

use std::collections::BTreeMap;

use dilos_sim::{Observability, RdmaEndpoint, SharedPool, SimConfig};

use crate::node::{Dilos, DilosConfig};
use crate::prefetch::Readahead;

/// Maximum cores per tenant: tenants get disjoint queue-pair lane ranges
/// of this width, and lane ids must stay within `u8` for trace events.
pub const LANES_PER_TENANT: usize = 8;

/// One tenant's sizing and instrumentation.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Local frame quota under QoS (and this tenant's fair entitlement).
    pub local_quota: usize,
    /// Local frames the tenant *tries* to take. With QoS on, the effective
    /// cache is `min(demand, quota)`; with QoS off, the shared pool is
    /// split proportionally to demand — a greedy demand starves neighbours.
    pub local_demand: usize,
    /// Remote slice size in bytes (page-aligned).
    pub remote_bytes: u64,
    /// Weighted share of the link under QoS.
    pub bandwidth_share: u32,
    /// Simulated cores (must be ≤ [`LANES_PER_TENANT`]).
    pub cores: usize,
    /// The tenant's observability bundle (one per tenant — bundles must
    /// not be shared across tenants or their event streams interleave).
    pub obs: Observability,
}

impl Default for TenantSpec {
    fn default() -> Self {
        Self {
            local_quota: 256,
            local_demand: 256,
            remote_bytes: 1 << 24,
            bandwidth_share: 1,
            cores: 1,
            obs: Observability::none(),
        }
    }
}

/// Cluster-wide configuration.
#[derive(Debug, Clone, Default)]
pub struct ClusterConfig {
    /// Fabric/latency calibration shared by every tenant.
    pub sim: SimConfig,
    /// Enable QoS arbitration (bandwidth shares + local-memory quotas).
    pub qos: bool,
    /// The tenants, in id order (tenant id = index).
    pub tenants: Vec<TenantSpec>,
}

/// N booted DiLOS tenants sharing one memory pool.
pub struct ServingCluster {
    pool: SharedPool,
    nodes: Vec<Dilos>,
    qos: bool,
}

impl ServingCluster {
    /// Boots the cluster: connects one endpoint sized for every tenant's
    /// slice, registers per-tenant protection keys, applies the QoS policy,
    /// and boots each tenant through its port.
    ///
    /// # Panics
    ///
    /// Panics on an empty tenant list, more than 255 tenants, a tenant with
    /// more than [`LANES_PER_TENANT`] cores, or an unaligned slice size.
    pub fn boot(cfg: ClusterConfig) -> Self {
        assert!(!cfg.tenants.is_empty(), "at least one tenant");
        assert!(cfg.tenants.len() <= u8::MAX as usize, "tenant id fits u8");
        let total_remote: u64 = cfg.tenants.iter().map(|t| t.remote_bytes).sum();
        let pool = SharedPool::new(RdmaEndpoint::connect(cfg.sim.clone(), total_remote));

        // Per-tenant protection keys over disjoint slices of the pool.
        let mut base = 0u64;
        let mut bases = Vec::with_capacity(cfg.tenants.len());
        for (id, spec) in cfg.tenants.iter().enumerate() {
            assert!(
                spec.remote_bytes % 4096 == 0,
                "tenant slice must be page-aligned"
            );
            assert!(
                spec.cores <= LANES_PER_TENANT,
                "tenant cores exceed the lane range"
            );
            pool.register_tenant(id as u8, base, spec.remote_bytes);
            bases.push(base);
            base += spec.remote_bytes;
        }

        if cfg.qos {
            let shares: BTreeMap<u8, u32> = cfg
                .tenants
                .iter()
                .enumerate()
                .map(|(id, t)| (id as u8, t.bandwidth_share.max(1)))
                .collect();
            pool.set_qos(shares);
        }

        let frames = Self::frame_split(&cfg);
        let nodes = cfg
            .tenants
            .iter()
            .enumerate()
            .map(|(id, spec)| {
                let port = pool.port(id as u8, bases[id], id * LANES_PER_TENANT);
                let node_cfg = DilosConfig {
                    local_pages: frames[id],
                    remote_bytes: spec.remote_bytes,
                    cores: spec.cores,
                    sim: cfg.sim.clone(),
                    obs: spec.obs.clone(),
                    ..DilosConfig::default()
                };
                let mut node = Dilos::with_port(node_cfg, port);
                node.set_prefetcher(Box::new(Readahead::new()));
                node
            })
            .collect();
        Self {
            pool,
            nodes,
            qos: cfg.qos,
        }
    }

    /// The effective local-frame split: quotas under QoS,
    /// demand-proportional division of the quota pool without it.
    fn frame_split(cfg: &ClusterConfig) -> Vec<usize> {
        if cfg.qos {
            return cfg
                .tenants
                .iter()
                .map(|t| t.local_quota.min(t.local_demand).max(16))
                .collect();
        }
        let pool: usize = cfg.tenants.iter().map(|t| t.local_quota).sum();
        let demand: usize = cfg
            .tenants
            .iter()
            .map(|t| t.local_demand)
            .sum::<usize>()
            .max(1);
        cfg.tenants
            .iter()
            .map(|t| (pool * t.local_demand / demand).max(16))
            .collect()
    }

    /// Whether QoS arbitration is active.
    pub fn qos(&self) -> bool {
        self.qos
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the cluster has no tenants (never, post-boot).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Tenant `id`'s node.
    pub fn tenant(&mut self, id: usize) -> &mut Dilos {
        &mut self.nodes[id]
    }

    /// Immutable view of tenant `id`'s node.
    pub fn tenant_ref(&self, id: usize) -> &Dilos {
        &self.nodes[id]
    }

    /// The shared pool (endpoint-wide reports).
    pub fn pool(&self) -> &SharedPool {
        &self.pool
    }

    /// Runs every tenant's audit cross-checks, returning `(tenant id,
    /// findings)` for tenants that booted with an audited bundle and have
    /// findings. Empty means every audited tenant is clean.
    pub fn audit_reports(&mut self) -> Vec<(u8, Vec<String>)> {
        self.nodes
            .iter_mut()
            .enumerate()
            .filter(|(_, n)| n.config().obs.audit())
            .map(|(id, n)| (id as u8, n.audit_report()))
            .filter(|(_, findings)| !findings.is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tenant_cfg(qos: bool) -> ClusterConfig {
        ClusterConfig {
            sim: SimConfig::default(),
            qos,
            tenants: vec![
                TenantSpec {
                    obs: Observability::audited(),
                    ..TenantSpec::default()
                },
                TenantSpec {
                    local_demand: 512,
                    bandwidth_share: 4,
                    obs: Observability::tracing(),
                    ..TenantSpec::default()
                },
            ],
        }
    }

    fn run_tenant(cluster: &mut ServingCluster, id: usize, pages: u64, stamp: u64) {
        let node = cluster.tenant(id);
        let base = node.ddc_alloc((pages * 4096) as usize);
        for p in 0..pages {
            node.write_u64(0, base + p * 4096, stamp + p);
        }
        for p in 0..pages {
            assert_eq!(node.read_u64(0, base + p * 4096), stamp + p);
        }
    }

    #[test]
    fn tenants_roundtrip_independently() {
        let mut cluster = ServingCluster::boot(two_tenant_cfg(false));
        run_tenant(&mut cluster, 0, 600, 0xAAAA_0000);
        run_tenant(&mut cluster, 1, 600, 0xBBBB_0000);
        // Interleave again to force cross-tenant activation switches.
        run_tenant(&mut cluster, 0, 600, 0xCCCC_0000);
        assert!(
            cluster.audit_reports().is_empty(),
            "audited tenant must stay clean"
        );
    }

    #[test]
    fn qos_quotas_cap_the_greedy_tenant() {
        let mut on = ServingCluster::boot(two_tenant_cfg(true));
        let mut off = ServingCluster::boot(two_tenant_cfg(false));
        // Tenant 1 demands 512 frames against a 256 quota.
        assert_eq!(on.tenant_ref(1).config().local_pages, 256);
        assert!(
            off.tenant_ref(1).config().local_pages > 256,
            "without QoS the greedy tenant grabs more than its quota"
        );
        assert!(
            off.tenant_ref(0).config().local_pages < 256,
            "and its neighbour is starved below its entitlement"
        );
        run_tenant(&mut on, 1, 400, 1);
        run_tenant(&mut off, 1, 400, 1);
    }

    #[test]
    fn same_seed_clusters_produce_identical_digests() {
        let digest = |qos| {
            let mut c = ServingCluster::boot(two_tenant_cfg(qos));
            run_tenant(&mut c, 0, 600, 7);
            run_tenant(&mut c, 1, 600, 9);
            (c.tenant(0).trace_digest(), c.tenant(1).trace_digest())
        };
        assert_eq!(digest(false), digest(false));
        assert_eq!(digest(true), digest(true));
    }
}
