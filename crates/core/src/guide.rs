//! App-aware guides: the pluggable module API (§4.1, §4.3, §4.4).
//!
//! "A guide is a pluggable module implemented in the form of a third-party
//! binary … without modifying the main code of an application." DiLOS
//! exposes two guide surfaces:
//!
//! - [`PrefetchGuide`] — called from the page-fault handler while the demand
//!   fetch is in flight. The guide may issue *subpage* fetches on its own
//!   queue (which arrive ahead of full pages), inspect resident memory, and
//!   enqueue page prefetches: the pointer-chasing pipeline of Figures 5
//!   and 11.
//! - [`PagingGuide`] — consulted by the cleaner/reclaimer at eviction time to
//!   learn which chunks of a page are live, enabling vectored transfers that
//!   skip dead bytes (§4.4). The stock implementation,
//!   [`HeapPagingGuide`], reads the `dilos-alloc` per-page bitmaps.
//!
//! Evictions performed under a guide park their fetch vector in the
//! [`ActionTable`]; the page's PTE becomes an *action* PTE whose payload
//! indexes the table, exactly as §4.4 describes ("the cleaner logs the
//! request's vector, and then the reclaimer evicts the page by updating its
//! PTE to an action PTE").

use std::cell::RefCell;
use std::rc::Rc;

use dilos_alloc::{Heap, PageLiveness};
use dilos_sim::Ns;

/// Operations a [`PrefetchGuide`] may perform from the fault handler.
///
/// Implemented by the node; the indirection keeps guides compilable as
/// separate "binaries" (crates) that know nothing of node internals.
pub trait GuideOps {
    /// Issues a subpage fetch of `len` bytes at `va` on the guide queue.
    ///
    /// Returns the bytes and the virtual time they arrive. Subpages are
    /// small, so they typically arrive *before* the 4 KiB demand fetch that
    /// triggered the guide — the window the quicklist prefetcher exploits.
    fn subpage_read(&mut self, va: u64, len: usize) -> Option<(Vec<u8>, Ns)>;

    /// Enqueues an asynchronous full-page prefetch covering `va`.
    fn prefetch_page(&mut self, va: u64);

    /// Reads memory that is already resident without touching the fault
    /// machinery. Returns `false` (and leaves `buf` untouched) if the page
    /// is not resident.
    fn resident_read(&mut self, va: u64, buf: &mut [u8]) -> bool;

    /// The current virtual time on the faulting core.
    fn now(&self) -> Ns;
}

/// An app-aware prefetch guide (§4.3).
pub trait PrefetchGuide {
    /// Called on each fault at `va` while the demand fetch is in flight.
    fn on_fault(&mut self, va: u64, ops: &mut dyn GuideOps);

    /// Display name for tables ("app-aware").
    fn name(&self) -> &'static str {
        "app-aware"
    }
}

/// An app-aware paging guide supplying per-page liveness (§4.4).
pub trait PagingGuide {
    /// Reports which byte ranges of the page at `page_va` are live.
    fn live_ranges(&self, page_va: u64) -> PageLiveness;
}

/// The stock paging guide: reads liveness straight from a [`Heap`]'s
/// per-page allocation bitmaps ("using only allocator semantics, applicable
/// to all applications", §4.4).
#[derive(Debug, Clone)]
pub struct HeapPagingGuide {
    heap: Rc<RefCell<Heap>>,
    max_segments: usize,
}

impl HeapPagingGuide {
    /// Wraps a shared heap; vectors are capped at `max_segments` (the paper
    /// uses three — vectored RDMA slows down beyond that).
    pub fn new(heap: Rc<RefCell<Heap>>, max_segments: usize) -> Self {
        Self { heap, max_segments }
    }
}

impl PagingGuide for HeapPagingGuide {
    fn live_ranges(&self, page_va: u64) -> PageLiveness {
        self.heap.borrow().live_segments(page_va, self.max_segments)
    }
}

/// A logged fetch vector: `(offset, len)` ranges live within one page.
pub type FetchVector = Vec<(u16, u16)>;

/// Storage for the fetch vectors referenced by action PTEs.
#[derive(Debug, Default)]
pub struct ActionTable {
    entries: Vec<Option<FetchVector>>,
    free: Vec<u32>,
}

impl ActionTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Logs a vector, returning the index to embed in the action PTE.
    pub fn insert(&mut self, v: FetchVector) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.entries[i as usize] = Some(v);
                i
            }
            None => {
                self.entries.push(Some(v));
                (self.entries.len() - 1) as u32
            }
        }
    }

    /// Takes the vector at `i`, freeing the slot (fetch consumed it).
    ///
    /// # Panics
    ///
    /// Panics if `i` does not hold a logged vector — an action PTE pointing
    /// at an empty slot is a paging-subsystem invariant violation.
    #[allow(clippy::expect_used)]
    pub fn take(&mut self, i: u32) -> FetchVector {
        let v = self.entries[i as usize]
            .take()
            // dilos-lint: allow(no-unwrap-in-hot-path, "action PTE <-> table slot is a paging invariant; an empty slot is corruption")
            .expect("action PTE references an empty action-table slot");
        self.free.push(i);
        v
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len() - self.free.len()
    }

    /// True when no vectors are logged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_table_recycles_slots() {
        let mut t = ActionTable::new();
        let a = t.insert(vec![(0, 64)]);
        let b = t.insert(vec![(128, 32)]);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        assert_eq!(t.take(a), vec![(0, 64)]);
        assert_eq!(t.len(), 1);
        let c = t.insert(vec![(256, 16)]);
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(t.take(b), vec![(128, 32)]);
        assert_eq!(t.take(c), vec![(256, 16)]);
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "empty action-table slot")]
    fn double_take_is_an_invariant_violation() {
        let mut t = ActionTable::new();
        let a = t.insert(vec![(0, 8)]);
        t.take(a);
        t.take(a);
    }

    #[test]
    fn heap_guide_reflects_allocator_state() {
        let heap = Rc::new(RefCell::new(Heap::new(0, 1 << 16)));
        let guide = HeapPagingGuide::new(Rc::clone(&heap), 3);
        // An untouched page is empty.
        assert_eq!(guide.live_ranges(0), PageLiveness::Empty);
        let va = heap.borrow_mut().malloc(512).unwrap();
        let page = va & !4095;
        match guide.live_ranges(page) {
            PageLiveness::Partial(segs) => assert_eq!(segs, vec![(0, 512)]),
            other => panic!("expected partial, got {other:?}"),
        }
    }
}
