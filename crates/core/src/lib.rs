//! `dilos-core` — the DiLOS paging subsystem (the paper's contribution).
//!
//! DiLOS ("Do Not Trade Compatibility for Performance in Memory
//! Disaggregation", EuroSys '23) is a library-OS paging subsystem that makes
//! kernel-paging-style memory disaggregation fast without giving up POSIX
//! compatibility. Its pieces, all implemented here:
//!
//! - [`pt`] — the **unified page table** (§4.1): one hardware-format table
//!   encoding local/remote/fetching/action states in PTE tag bits, replacing
//!   the Linux swap cache entirely.
//! - [`node`] — the compute node tying everything together: the short-path
//!   **page fault handler** (§4.2), demand-fetch window scheduling, and the
//!   `ddc_malloc`/`mmap(MAP_DDC)` memory API.
//! - [`prefetch`] — the **page prefetcher** (§4.3): readahead and Leap-style
//!   trend prefetchers plus the PTE **hit tracker** that replaces swap-cache
//!   statistics.
//! - [`pagemgr`] — the **page manager** (§4.4): resident ring, clock
//!   eviction, watermarks for eager background reclamation.
//! - [`guide`] — the **app-aware guide API** (§4.1/§4.3/§4.4): prefetch
//!   guides with subpage fetches, paging guides, action PTE vectors, and the
//!   allocator-bitmap paging guide.
//! - [`compat`] — the **compatibility layer** (§5): DDC API surface and the
//!   ELF symbol patcher model.
//! - [`frames`], [`stats`] — the local frame cache and measurement hooks.
//! - [`cluster`] — the multi-tenant serving cluster: N nodes on one shared
//!   memory pool with QoS arbitration (bandwidth shares + local quotas).
//!
//! The node runs against the `dilos-sim` virtual-time substrate, so every
//! latency it reports is deterministic and calibrated to the paper's
//! testbed. See the workspace DESIGN.md for the substitution ledger.

#![forbid(unsafe_code)]

pub mod audit;
pub mod cluster;
pub mod compat;
pub mod frames;
pub mod guide;
pub mod node;
pub mod pagemgr;
pub mod prefetch;
pub mod pt;
pub mod stats;

pub use audit::{legal_pte_transition, Auditor};
pub use cluster::{ClusterConfig, ServingCluster, TenantSpec, LANES_PER_TENANT};
pub use compat::{PatchReport, SymbolKind, SymbolPatcher, SymbolTable, MAP_DDC};
pub use guide::{ActionTable, FetchVector, GuideOps, HeapPagingGuide, PagingGuide, PrefetchGuide};
pub use node::{Dilos, DilosConfig, SoftCosts, DDC_BASE, LOCAL_BASE};
pub use pagemgr::{ResidentRing, Watermarks};
pub use prefetch::{HitTracker, NoPrefetch, Prefetcher, Readahead, TrendBased};
pub use pt::{PageTable, Pte};
pub use stats::{DilosStats, FaultBreakdown};
