//! The DiLOS compute node: fault handler, page manager, and access path.
//!
//! This is the system §4 describes, assembled: an application address space
//! whose DDC range is backed by a local frame cache plus a remote memory
//! node, with
//!
//! - a **page fault handler** (§4.2) that checks exactly one data structure
//!   (the unified page table) before posting the demand RDMA read,
//! - a **prefetcher** (§4.3) whose decisions and hit-tracker sweeps run
//!   inside the demand fetch's 2–3 µs window,
//! - a **page manager** (§4.4) that keeps free frames above a watermark by
//!   evicting in the background, so reclamation never blocks the handler,
//! - a **communication module** (§4.5) with per-core, per-module queue
//!   pairs (realized as [`ServiceClass`]-keyed QPs in the fabric), and
//! - the **guide API** (§4.1/§4.3/§4.4) with subpage fetches and action
//!   PTEs.
//!
//! Prefetched pages are *not* mapped until their fetch completes: the PTE
//! holds the `fetching` tag, and a touch before completion is DiLOS's minor
//! fault — a hardware exception that only waits, never re-fetches. A touch
//! after completion sees a mapped page and pays nothing, which is exactly
//! why Table 3 shows fewer minor faults than Fastswap's swap cache.

use std::cell::RefCell;
use std::rc::Rc;

use dilos_sim::{
    Calendar, CoreClock, EventId, FaultKind, FaultPhase, MetricsRegistry, Ns, Observability,
    PteClass, RdmaEndpoint, RdmaPort, RecoverConfig, RecoveryStats, ReqId, SchedEvent, Segment,
    ServiceClass, SimConfig, SpanProfiler, TraceEvent, TraceSink, PAGE_SIZE,
};

use crate::audit::Auditor;
use crate::compat::MAP_DDC;
use crate::frames::FrameArena;
use crate::guide::{ActionTable, GuideOps, PagingGuide, PrefetchGuide};
use crate::pagemgr::{ResidentRing, Watermarks};
use crate::prefetch::{HitTracker, NoPrefetch, Prefetcher};
use crate::pt::{PageTable, Pte};
use crate::stats::DilosStats;

use dilos_alloc::PageLiveness;

/// Base virtual address of the disaggregated (DDC) region.
pub const DDC_BASE: u64 = 0x1000_0000_0000;
/// Base virtual address of the local-only region (`mmap` without `MAP_DDC`).
pub const LOCAL_BASE: u64 = 0x2000_0000_0000;

const DDC_BASE_VPN: u64 = DDC_BASE >> 12;

/// Software-path costs of the DiLOS handler, in virtual nanoseconds.
///
/// These are the *short* paths the paper claims: the handler touches one
/// data structure before the RDMA post. Fastswap's far larger equivalents
/// live in `dilos-baselines`.
#[derive(Debug, Clone)]
pub struct SoftCosts {
    /// Unified-page-table check in the fault handler.
    pub pte_check_ns: Ns,
    /// Mapping a fetched page (PTE write + ring insert).
    pub map_ns: Ns,
    /// Zero-filling a first-touch page.
    pub zero_fill_ns: Ns,
    /// Hit-tracker cost per PTE scanned (hidden in the fetch window).
    pub tracker_per_pte_ns: Ns,
    /// Issuing one asynchronous prefetch (hidden in the fetch window).
    pub prefetch_issue_ns: Ns,
    /// Reclaimer cost per page scanned (background thread).
    pub reclaim_scan_ns: Ns,
    /// Hardware page-table walk on a TLB miss to a resident page.
    pub tlb_miss_walk_ns: Ns,
    /// Swap-cache management cost per fault (only in the `swap_cache_mode`
    /// ablation, mirroring the Linux path DiLOS removed).
    pub swapcache_mgmt_ns: Ns,
    /// Minor-fault service from the swap cache (ablation only).
    pub swapcache_minor_ns: Ns,
    /// Local DRAM copy cost per byte.
    pub dram_per_byte_ns: f64,
}

impl Default for SoftCosts {
    fn default() -> Self {
        Self {
            pte_check_ns: 100,
            map_ns: 150,
            zero_fill_ns: 350,
            tracker_per_pte_ns: 15,
            prefetch_issue_ns: 60,
            reclaim_scan_ns: 150,
            tlb_miss_walk_ns: 30,
            swapcache_mgmt_ns: 900,
            swapcache_minor_ns: 800,
            dram_per_byte_ns: 0.05,
        }
    }
}

/// DiLOS node configuration.
#[derive(Debug, Clone)]
pub struct DilosConfig {
    /// Local DRAM cache size in 4 KiB frames.
    pub local_pages: usize,
    /// Registered remote region size in bytes.
    pub remote_bytes: u64,
    /// Simulated CPU cores.
    pub cores: usize,
    /// Fabric/latency calibration.
    pub sim: SimConfig,
    /// Handler software costs.
    pub costs: SoftCosts,
    /// Ablation: route every verb through one shared queue pair.
    pub shared_queue: bool,
    /// Ablation: emulate a Linux-style swap cache in front of the page
    /// table (extra management cost + minor fault per prefetched page).
    pub swap_cache_mode: bool,
    /// Ablation: reclaim synchronously inside the fault handler instead of
    /// in the background (the Fastswap behaviour).
    pub direct_reclaim: bool,
    /// Run the PTE hit tracker (feeds prefetcher feedback).
    pub hit_tracker: bool,
    /// Emulate TCP transport (+14,000 cycles per completion, §6.2).
    pub tcp_mode: bool,
    /// Memory nodes to stripe pages across (§5.1 future work; default 1,
    /// the paper's configuration).
    pub memory_nodes: usize,
    /// Replication factor across the pool (1 = no replication).
    pub replication: usize,
    /// Carbink-style erasure coding `(k, m)` across the pool; overrides
    /// `replication` when set (requires `memory_nodes ≥ k + m`).
    pub erasure: Option<(usize, usize)>,
    /// Memnode crash–recovery: arms durable state (periodic checkpoints +
    /// a write-intent log acknowledged ahead of every remote write) on all
    /// memory nodes and, when `crash_at_event` is set, a calendar-driven
    /// injector that kills the victim mid-run and schedules its repair.
    /// Ignored in a shared-pool boot ([`Dilos::with_port`]) — recovery is
    /// a property of the endpoint, which the pool owns.
    pub recovery: Option<RecoverConfig>,
    /// The observability bundle: trace sink, metrics registry, span
    /// profiler, and audit flag, built once via [`Observability`]'s
    /// constructors and threaded down to every component. Pure observation
    /// — trace digests are identical with metrics on or off.
    pub obs: Observability,
}

impl Default for DilosConfig {
    fn default() -> Self {
        Self {
            local_pages: 1024,
            remote_bytes: 1 << 32,
            cores: 1,
            sim: SimConfig::default(),
            costs: SoftCosts::default(),
            shared_queue: false,
            swap_cache_mode: false,
            direct_reclaim: false,
            hit_tracker: true,
            tcp_mode: false,
            memory_nodes: 1,
            replication: 1,
            erasure: None,
            recovery: None,
            obs: Observability::none(),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct InflightEntry {
    frame: u32,
    ready_at: Ns,
    vpn: u64,
    /// Set in the swap-cache ablation: first access pays a minor fault.
    swap_cached: bool,
    /// The scheduled `PrefetchLand` calendar event that will map this fetch
    /// at its true completion time (cancelled if a fault consumes the entry
    /// first).
    event: EventId,
    /// Causal request id of the prefetch that started this fetch (side-band
    /// only; landing events re-attribute to it).
    req: Option<ReqId>,
}

#[derive(Debug, Clone, Copy, Default)]
struct TlbEntry {
    vpn: u64,
    frame: u32,
    generation: u64,
    valid: bool,
    dirty_marked: bool,
}

const TLB_WAYS: usize = 64;

/// A DiLOS compute node.
pub struct Dilos {
    cfg: DilosConfig,
    /// The node's capability to its (exclusive or shared) RDMA endpoint.
    rdma: RdmaPort,
    pt: PageTable,
    frames: FrameArena,
    ring: ResidentRing,
    wm: Watermarks,
    prefetcher: Box<dyn Prefetcher>,
    tracker: HitTracker,
    actions: ActionTable,
    inflight: Vec<Option<InflightEntry>>,
    inflight_free: Vec<u32>,
    paging_guide: Option<Rc<RefCell<dyn PagingGuide>>>,
    prefetch_guide: Option<Rc<RefCell<dyn PrefetchGuide>>>,
    clocks: Vec<CoreClock>,
    tlb: Vec<[TlbEntry; TLB_WAYS]>,
    /// Background reclaimer/cleaner CPU timeline.
    bg: dilos_sim::Timeline,
    /// The discrete-event calendar shared with the RDMA endpoint: prefetch
    /// landings, reclaim ticks, cleaner writebacks, verb completions, and
    /// node repairs are delivered from here at their true virtual times.
    cal: Calendar,
    /// Reusable scratch for `drain_events` batches (taken/restored around
    /// dispatch so handlers can re-enter the drain safely).
    drain_buf: Vec<(Ns, SchedEvent)>,
    /// A reclaim episode is open (`ReclaimBegin` emitted, no `End` yet).
    /// Invariant: an open episode always has a tick pending, so draining
    /// the calendar always closes it.
    episode_open: bool,
    /// A `ReclaimTick` is scheduled and not yet delivered.
    tick_pending: bool,
    /// Victims evicted in the open episode (for `ReclaimEnd { freed }`).
    episode_freed: u32,
    /// Dirty background evictions whose cleaner writeback is still on the
    /// wire; their frames rejoin the free list when the `CleanerWriteback`
    /// event delivers. Counted toward the reclaim target so an episode does
    /// not over-evict while writebacks are in flight.
    pending_clean: usize,
    /// Exact LRU over resident frames (the §4.4 "LRU list").
    lru: dilos_sim::LruChain,
    stats: DilosStats,
    ddc_brk: u64,
    local_pages_map: std::collections::HashMap<u64, Box<[u8; PAGE_SIZE]>>,
    local_brk: u64,
    prefetch_buf: Vec<u64>,
    /// Scratch for guided-fetch segment vectors (reused across faults).
    seg_buf: Vec<Segment>,
    /// Optional major-fault trace for diagnostics (VPNs, in order).
    fault_log: Option<Vec<u64>>,
    /// Optional eviction trace: `(vpn, last_access, eviction_time)`.
    evict_log: Option<Vec<(u64, Ns, Ns)>>,
    /// Structured event trace (dark unless `cfg.trace`/`cfg.audit`).
    trace: TraceSink,
    /// Online invariant checker attached to the trace.
    audit: Option<Rc<RefCell<Auditor>>>,
    /// Telemetry registry shared with the scheduler, RDMA endpoint, memory
    /// nodes, fabric, and LRU (dark unless `cfg.metrics`).
    metrics: MetricsRegistry,
    /// Span profiler attached to the trace (dark unless `cfg.metrics`).
    profiler: SpanProfiler,
}

impl std::fmt::Debug for Dilos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dilos")
            .field("local_pages", &self.cfg.local_pages)
            .field("resident", &self.pt.resident())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Dilos {
    /// Boots a node: registers the remote region and sizes the local cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no cores, no local pages).
    pub fn new(cfg: DilosConfig) -> Self {
        let mut rdma = match cfg.erasure {
            Some((k, m)) => {
                RdmaEndpoint::connect_ec(cfg.sim.clone(), cfg.remote_bytes, cfg.memory_nodes, k, m)
            }
            None => RdmaEndpoint::connect_cluster(
                cfg.sim.clone(),
                cfg.remote_bytes,
                cfg.memory_nodes,
                cfg.replication,
            ),
        };
        rdma.set_shared_queue(cfg.shared_queue);
        rdma.set_tcp_mode(cfg.tcp_mode);
        if let Some(rc) = cfg.recovery {
            rdma.arm_recovery(rc);
        }
        Self::boot(cfg, RdmaPort::exclusive(rdma))
    }

    /// Boots a node as one tenant of a shared memory pool: the port carries
    /// the tenant's protection keys, remote-address base, and queue-pair
    /// lanes on an endpoint other tenants also use. Transport-level config
    /// knobs (`shared_queue`, `tcp_mode`, `memory_nodes`, `replication`,
    /// `erasure`) are properties of the shared endpoint and are ignored
    /// here; `remote_bytes` must be the tenant's slice size.
    pub fn with_port(cfg: DilosConfig, port: RdmaPort) -> Self {
        Self::boot(cfg, port)
    }

    fn boot(cfg: DilosConfig, mut rdma: RdmaPort) -> Self {
        assert!(cfg.cores > 0, "at least one core");
        assert!(
            cfg.local_pages >= 16,
            "local cache below 16 pages cannot hold the prefetch window"
        );
        let obs = cfg.obs.clone();
        let trace = obs.trace().clone();
        let audit = if obs.audit() {
            let mut auditor = Auditor::new();
            auditor.set_frame_quota(cfg.local_pages);
            let a = Rc::new(RefCell::new(auditor));
            trace.attach(a.clone());
            Some(a)
        } else {
            None
        };
        let metrics = obs.metrics().clone();
        let profiler = obs.profiler().clone();
        let mut lru = dilos_sim::LruChain::new();
        lru.observe(&obs);
        let mut frames = FrameArena::new(cfg.local_pages);
        frames.observe(&obs);
        let wm = Watermarks::for_cache(cfg.local_pages);
        // One calendar for the whole node: the endpoint posts its traced
        // completions onto it, and the node delivers them (plus landings,
        // reclaim ticks, and writebacks) whenever virtual time passes them.
        let cal = Calendar::new();
        cal.observe(&obs);
        rdma.bind(obs, cal.clone());
        Self {
            frames,
            rdma,
            pt: PageTable::new(),
            ring: ResidentRing::new(),
            wm,
            prefetcher: Box::new(NoPrefetch),
            tracker: HitTracker::new(),
            actions: ActionTable::new(),
            inflight: Vec::new(),
            inflight_free: Vec::new(),
            paging_guide: None,
            prefetch_guide: None,
            clocks: vec![CoreClock::new(); cfg.cores],
            tlb: vec![[TlbEntry::default(); TLB_WAYS]; cfg.cores],
            bg: dilos_sim::Timeline::new(),
            cal,
            drain_buf: Vec::new(),
            episode_open: false,
            tick_pending: false,
            episode_freed: 0,
            pending_clean: 0,
            lru,
            stats: DilosStats::default(),
            ddc_brk: DDC_BASE,
            local_pages_map: std::collections::HashMap::new(),
            local_brk: LOCAL_BASE,
            cfg,
            prefetch_buf: Vec::new(),
            seg_buf: Vec::new(),
            fault_log: None,
            evict_log: None,
            trace,
            audit,
            metrics,
            profiler,
        }
    }

    /// Installs a general-purpose prefetcher.
    pub fn set_prefetcher(&mut self, p: Box<dyn Prefetcher>) {
        self.prefetcher = p;
    }

    /// Name of the active prefetcher.
    pub fn prefetcher_name(&self) -> &'static str {
        if self.prefetch_guide.is_some() {
            "app-aware"
        } else {
            self.prefetcher.name()
        }
    }

    /// Installs an app-aware prefetch guide (§4.3).
    pub fn set_prefetch_guide(&mut self, g: Rc<RefCell<dyn PrefetchGuide>>) {
        self.prefetch_guide = Some(g);
    }

    /// Installs an app-aware paging guide (§4.4).
    pub fn set_paging_guide(&mut self, g: Rc<RefCell<dyn PagingGuide>>) {
        self.paging_guide = Some(g);
    }

    /// Enables major-fault tracing (diagnostics).
    pub fn enable_fault_log(&mut self) {
        self.fault_log = Some(Vec::new());
    }

    /// Takes the recorded major-fault VPN trace.
    pub fn take_fault_log(&mut self) -> Vec<u64> {
        self.fault_log.take().unwrap_or_default()
    }

    /// Enables eviction tracing (diagnostics).
    pub fn enable_evict_log(&mut self) {
        self.evict_log = Some(Vec::new());
    }

    /// Takes the recorded eviction trace: `(vpn, last_access, when)`.
    pub fn take_evict_log(&mut self) -> Vec<(u64, Ns, Ns)> {
        self.evict_log.take().unwrap_or_default()
    }

    /// Node statistics.
    pub fn stats(&self) -> &DilosStats {
        &self.stats
    }

    /// The RDMA endpoint (bandwidth series, op counters). In a shared-pool
    /// boot this is the whole shared endpoint, not a tenant-scoped view.
    pub fn rdma(&self) -> std::cell::Ref<'_, RdmaEndpoint> {
        self.rdma.endpoint()
    }

    /// The node's port on the endpoint (tenant-scoped accounting).
    pub fn port(&self) -> &RdmaPort {
        &self.rdma
    }

    /// The node's trace sink (disabled unless booted with
    /// `DilosConfig::trace` or `DilosConfig::audit`).
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// The telemetry registry (disabled unless booted with
    /// `DilosConfig::metrics`).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The span profiler (disabled unless booted with
    /// `DilosConfig::metrics`).
    pub fn profiler(&self) -> &SpanProfiler {
        &self.profiler
    }

    /// Order-sensitive digest over every traced event so far (0 when
    /// tracing is off). Two runs of the same seed and configuration must
    /// produce the same digest.
    ///
    /// Quiesces first: pending calendar work (in-flight landings, open
    /// reclaim episodes, deferred writebacks) is delivered so the digest
    /// covers a settled system. Idempotent — a second call delivers nothing
    /// new and returns the same value.
    pub fn trace_digest(&mut self) -> u64 {
        self.quiesce();
        self.trace.digest()
    }

    /// Delivers every still-pending calendar event at its scheduled time.
    ///
    /// Deliveries may schedule follow-ups (a reclaim tick chains until the
    /// watermark target is met), so this loops until the calendar is empty.
    pub fn quiesce(&mut self) {
        while let Some((t, ev)) = self.cal.pop_next() {
            self.dispatch(t, ev);
        }
        let horizon = self.max_now();
        while let Some(t) = self.metrics.next_sample_due(horizon) {
            self.record_gauges(t);
        }
    }

    /// Runs the auditor's end-of-run checks plus cross-checks of the traced
    /// totals against the node's own state and counters. Returns every
    /// violation found — empty on a healthy run, and always empty when
    /// auditing is off.
    ///
    /// Quiesces first (see [`Dilos::trace_digest`]): the auditor's final
    /// checks require all scheduled background work to have been delivered.
    pub fn audit_report(&mut self) -> Vec<String> {
        self.quiesce();
        let Some(aud) = &self.audit else {
            return Vec::new();
        };
        aud.borrow_mut().final_checks();
        let a = aud.borrow();
        let mut v: Vec<String> = a.violations().to_vec();

        // Frame conservation: allocs − frees must equal the frames in use.
        // Signed: a corrupted free list can exceed the arena's total.
        let in_use = self.frames.total() as i64 - self.frames.free_count() as i64;
        if a.frames_in_use() as i64 != in_use {
            v.push(format!(
                "[cross-check] trace says {} frames in use, the arena says {in_use}",
                a.frames_in_use()
            ));
        }

        // No lost in-flight fetches: the traced outstanding set must equal
        // the node's in-flight table (pending prefetches at shutdown are
        // fine — silently dropped ones are not).
        let actual: std::collections::BTreeSet<u64> =
            self.inflight.iter().flatten().map(|e| e.vpn).collect();
        for vpn in a.outstanding_fetches() {
            if !actual.contains(&vpn) {
                v.push(format!(
                    "[cross-check] lost in-flight fetch: vpn {vpn:#x} was issued but \
                     never landed or cancelled"
                ));
            }
        }
        let traced: std::collections::HashSet<u64> = a.outstanding_fetches().into_iter().collect();
        for &vpn in &actual {
            if !traced.contains(&vpn) {
                v.push(format!(
                    "[cross-check] untraced in-flight fetch for vpn {vpn:#x}"
                ));
            }
        }

        // Ad-hoc counters must be derivable from the trace.
        let (majors, minors, zero_fills) = a.fault_counts();
        for (name, traced, counted) in [
            ("major faults", majors, self.stats.major_faults),
            ("minor faults", minors, self.stats.minor_faults),
            ("zero fills", zero_fills, self.stats.zero_fills),
            (
                "prefetch issues",
                a.prefetch_flow().0,
                self.stats.prefetch_issued,
            ),
            ("evictions", a.evictions(), self.stats.evictions),
        ] {
            if traced != counted {
                v.push(format!(
                    "[cross-check] trace counts {traced} {name}, stats say {counted}"
                ));
            }
        }

        // Fault-phase sums must reproduce the recorded latency breakdown.
        let b = &self.stats.breakdown;
        for (phase, sum) in [
            (FaultPhase::Exception, b.exception),
            (FaultPhase::Check, b.check),
            (FaultPhase::Alloc, b.alloc_wait),
            (FaultPhase::Fetch, b.fetch),
            (FaultPhase::Map, b.map),
            (FaultPhase::Reclaim, b.reclaim),
        ] {
            if a.phase_sum(phase) != sum {
                v.push(format!(
                    "[cross-check] {phase:?} phase sum {} != breakdown's {sum}",
                    a.phase_sum(phase)
                ));
            }
        }

        // LRU membership.
        if a.lru_members() != self.lru.len() {
            v.push(format!(
                "[cross-check] trace says {} LRU members, the chain holds {}",
                a.lru_members(),
                self.lru.len()
            ));
        }

        // Link-bandwidth conservation, per service class.
        for class in ServiceClass::ALL {
            let traced = a.link_bytes(class);
            let fabric = self.rdma.class_bytes(class);
            if traced != fabric {
                v.push(format!(
                    "[cross-check] {} link bytes {traced:?} != fabric accounting {fabric:?}",
                    class.label()
                ));
            }
        }
        v
    }

    /// Kills memory node `i` (failure injection). With replication, reads
    /// transparently fail over; without it, fetches of lost pages panic —
    /// the unikernel's fate on unrecoverable data loss.
    pub fn fail_memory_node(&mut self, i: usize) {
        self.rdma.fail_node(i);
    }

    /// Schedules memory node `i` to come back online at virtual time `at`:
    /// a `NodeRepair` calendar event that, when delivered, resynchronizes
    /// the node's pages from the surviving redundancy (replica copy or
    /// erasure-coded reconstruction).
    pub fn schedule_memory_node_repair(&mut self, at: Ns, node: usize) {
        self.cal.schedule(at, SchedEvent::NodeRepair { node });
    }

    /// Crash–recovery counters: crashes fired, recoveries completed, log
    /// depth at the crash, records replayed, pages reconciled from the
    /// surviving redundancy, and the modeled recovery latency. All zero
    /// unless booted with [`DilosConfig::recovery`].
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.rdma.recovery_stats()
    }

    /// Test hook (invariant proving): drops the most recent acknowledged
    /// intent-log record on memory node `i`, simulating a durability bug.
    /// The auditor must flag the replay gap as an acknowledged write lost.
    #[cfg(test)]
    pub(crate) fn inject_dropped_intent(&mut self, i: usize) -> Option<u64> {
        self.rdma.corrupt_drop_intent(i)
    }

    /// Test hook (invariant proving): re-inserts a freed frame into the
    /// LRU without re-allocating it, simulating a use-after-free in the
    /// page manager. The auditor must flag the resurrection.
    #[cfg(test)]
    pub(crate) fn inject_resurrected_frame(&mut self, t: Ns) -> Option<u32> {
        let frame = self.frames.pop_free(t)?;
        self.frames.push_free(frame, t);
        self.trace.emit(
            t,
            TraceEvent::LruInsert {
                vpn: u64::from(frame),
            },
        );
        self.lru.insert(u64::from(frame));
        Some(frame)
    }

    /// The node configuration.
    pub fn config(&self) -> &DilosConfig {
        &self.cfg
    }

    /// Current virtual time on `core`.
    pub fn now(&self, core: usize) -> Ns {
        self.clocks[core].now()
    }

    /// Charges `ns` of application compute to `core`.
    pub fn compute(&mut self, core: usize, ns: Ns) {
        self.clocks[core].advance(ns);
    }

    /// Synchronizes all cores (fork/join barrier); returns the join time.
    pub fn barrier(&mut self) -> Ns {
        let t = self.clocks.iter().map(CoreClock::now).max().unwrap_or(0);
        for c in &mut self.clocks {
            c.wait_until(t);
        }
        t
    }

    /// Completion time across all cores.
    pub fn max_now(&self) -> Ns {
        self.clocks.iter().map(CoreClock::now).max().unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Memory management API (the compat layer's targets).
    // ------------------------------------------------------------------

    /// Allocates `len` bytes of disaggregated memory (`ddc_malloc`).
    ///
    /// Pages are zero-fill-on-first-touch; nothing is fetched until the
    /// application touches them.
    ///
    /// # Panics
    ///
    /// Panics if the DDC region (the registered remote size) is exhausted.
    pub fn ddc_alloc(&mut self, len: usize) -> u64 {
        let va = self.ddc_brk;
        let len = (len.max(1) + PAGE_SIZE - 1) & !(PAGE_SIZE - 1);
        self.ddc_brk += len as u64;
        assert!(
            self.ddc_brk - DDC_BASE <= self.cfg.remote_bytes,
            "DDC region exhausted: grow DilosConfig::remote_bytes"
        );
        va
    }

    /// Frees `len` bytes at `va` (`ddc_free`): unmaps pages, releasing local
    /// frames and any in-flight or action state.
    pub fn ddc_free(&mut self, va: u64, len: usize) {
        let t = self.max_now();
        self.drain_events(t);
        let start = va >> 12;
        let end = (va + len as u64 + PAGE_SIZE as u64 - 1) >> 12;
        for vpn in start..end {
            match self.pt.get(vpn) {
                Pte::Local { frame, .. } => {
                    let slot = self.frames.meta(frame).ring_slot;
                    self.trace
                        .emit(t, TraceEvent::LruRemove { vpn: frame as u64 });
                    self.lru.remove(frame as u64);
                    self.unlink_ring(slot);
                    self.frames.push_free(frame, 0);
                }
                Pte::Fetching { inflight } => {
                    let e = self.take_inflight(inflight);
                    self.cal.cancel(e.event);
                    self.trace.emit(t, TraceEvent::PrefetchCancel { vpn });
                    // The frame may be reused once the fetch has landed.
                    self.frames.push_free(e.frame, e.ready_at);
                }
                Pte::Action { action } => {
                    let _ = self.actions.take(action);
                }
                Pte::Remote { .. } | Pte::None => {}
            }
            self.set_pte(t, vpn, Pte::None);
        }
    }

    /// `mmap`: with [`MAP_DDC`] the mapping is disaggregated; without it the
    /// mapping is local-only (never migrated to the memory node).
    pub fn mmap(&mut self, len: usize, flags: u32) -> u64 {
        if flags & MAP_DDC != 0 {
            self.ddc_alloc(len)
        } else {
            let va = self.local_brk;
            let len = (len.max(1) + PAGE_SIZE - 1) & !(PAGE_SIZE - 1);
            self.local_brk += len as u64;
            va
        }
    }

    // ------------------------------------------------------------------
    // Access path.
    // ------------------------------------------------------------------

    /// Reads `buf.len()` bytes at `va` on `core`.
    ///
    /// # Panics
    ///
    /// Panics on access outside any mapping (the LibOS equivalent of a
    /// segmentation fault).
    pub fn read(&mut self, core: usize, va: u64, buf: &mut [u8]) {
        if va >= LOCAL_BASE {
            self.local_read(core, va, buf);
            return;
        }
        let len = buf.len();
        let mut done = 0usize;
        while done < len {
            let a = va + done as u64;
            let vpn = a >> 12;
            let off = (a & 0xFFF) as usize;
            let n = (PAGE_SIZE - off).min(len - done);
            let frame = self.touch(core, vpn, false);
            buf[done..done + n].copy_from_slice(&self.frames.bytes(frame)[off..off + n]);
            self.charge_copy(core, n);
            done += n;
        }
    }

    /// Writes `buf` at `va` on `core`.
    ///
    /// # Panics
    ///
    /// Panics on access outside any mapping.
    pub fn write(&mut self, core: usize, va: u64, buf: &[u8]) {
        self.access_write(core, va, buf);
    }

    /// Reads a little-endian `u64` at `va`.
    pub fn read_u64(&mut self, core: usize, va: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read(core, va, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` at `va`.
    pub fn write_u64(&mut self, core: usize, va: u64, v: u64) {
        self.write(core, va, &v.to_le_bytes());
    }

    fn access_write(&mut self, core: usize, va: u64, buf: &[u8]) {
        if va >= LOCAL_BASE {
            self.local_write(core, va, buf);
            return;
        }
        let len = buf.len();
        let mut done = 0usize;
        while done < len {
            let a = va + done as u64;
            let vpn = a >> 12;
            let off = (a & 0xFFF) as usize;
            let n = (PAGE_SIZE - off).min(len - done);
            let frame = self.touch(core, vpn, true);
            self.frames.bytes_mut(frame)[off..off + n].copy_from_slice(&buf[done..done + n]);
            self.frames.note_write(frame, off + n);
            self.charge_copy(core, n);
            done += n;
        }
    }

    fn charge_copy(&mut self, core: usize, bytes: usize) {
        let ns =
            self.cfg.sim.local_access_ns + (bytes as f64 * self.cfg.costs.dram_per_byte_ns) as Ns;
        self.clocks[core].advance(ns);
    }

    fn local_read(&mut self, core: usize, va: u64, buf: &mut [u8]) {
        let len = buf.len();
        let mut done = 0usize;
        while done < len {
            let a = va + done as u64;
            let vpn = a >> 12;
            let off = (a & 0xFFF) as usize;
            let n = (PAGE_SIZE - off).min(len - done);
            let page = self
                .local_pages_map
                .entry(vpn)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            buf[done..done + n].copy_from_slice(&page[off..off + n]);
            done += n;
        }
        self.charge_copy(core, len);
    }

    fn local_write(&mut self, core: usize, va: u64, buf: &[u8]) {
        let len = buf.len();
        let mut done = 0usize;
        while done < len {
            let a = va + done as u64;
            let vpn = a >> 12;
            let off = (a & 0xFFF) as usize;
            let n = (PAGE_SIZE - off).min(len - done);
            let page = self
                .local_pages_map
                .entry(vpn)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            page[off..off + n].copy_from_slice(&buf[done..done + n]);
            done += n;
        }
        self.charge_copy(core, len);
    }

    /// Resolves `vpn` to a resident frame, faulting as needed, and marks the
    /// access (A/D bits) — the software MMU.
    fn touch(&mut self, core: usize, vpn: u64, is_write: bool) -> u32 {
        // Deliver every calendar event whose time has passed before looking
        // anything up: prefetch landings map their pages, reclaim ticks
        // evict, writebacks return frames — all at their true virtual times,
        // so this access observes the state the background work produced.
        self.drain_events(self.clocks[core].now());
        // TLB fast path. The way index is hashed so that arrays laid out at
        // power-of-two strides (columnar tables) don't alias pathologically.
        let way = ((vpn.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 52) as usize % TLB_WAYS;
        let gen = self.pt.generation();
        let e = self.tlb[core][way];
        if e.valid && e.vpn == vpn && e.generation == gen {
            if is_write && !e.dirty_marked {
                self.pt.mark_access(vpn, true);
                self.tlb[core][way].dirty_marked = true;
            }
            self.stats.local_hits += 1;
            self.frames.meta_mut(e.frame).last_access = self.clocks[core].now();
            self.lru.touch(e.frame as u64);
            return e.frame;
        }
        let frame = self.resolve(core, vpn, is_write);
        self.frames.meta_mut(frame).last_access = self.clocks[core].now();
        self.lru.touch(frame as u64);
        let gen = self.pt.generation();
        self.tlb[core][way] = TlbEntry {
            vpn,
            frame,
            generation: gen,
            valid: true,
            dirty_marked: is_write,
        };
        frame
    }

    /// Page-table walk plus fault handling (slow path).
    fn resolve(&mut self, core: usize, vpn: u64, is_write: bool) -> u32 {
        assert!(
            vpn >= DDC_BASE_VPN && ((vpn - DDC_BASE_VPN) << 12) < self.cfg.remote_bytes,
            "segmentation fault: access to unmapped VA {:#x}",
            vpn << 12
        );
        match self.pt.get(vpn) {
            Pte::Local { frame, .. } => {
                // TLB miss to a resident page: hardware walk only.
                self.clocks[core].advance(self.cfg.costs.tlb_miss_walk_ns);
                let ready = self.frames.meta(frame).ready_at;
                let now = self.clocks[core].now();
                if ready > now {
                    // Mapped but the payload is still on the wire: stall.
                    self.clocks[core].wait_until(ready);
                }
                self.pt.mark_access(vpn, is_write);
                self.stats.local_hits += 1;
                frame
            }
            Pte::Fetching { inflight } => self.fault_on_inflight(core, vpn, inflight, is_write),
            Pte::None => self.fault_zero_fill(core, vpn, is_write),
            Pte::Remote { .. } => self.fault_remote(core, vpn, is_write, None),
            Pte::Action { action } => {
                let vector = self.actions.take(action);
                self.fault_remote(core, vpn, is_write, Some(vector))
            }
        }
    }

    /// Consumes the in-flight entry behind a `Pte::Fetching` and recycles
    /// its slot.
    ///
    /// # Panics
    ///
    /// A `Fetching` PTE always names a live slot: the entry is installed
    /// before the PTE and the PTE is rewritten before the entry is taken,
    /// so an empty slot is page-table corruption and unrecoverable.
    #[allow(clippy::expect_used)]
    fn take_inflight(&mut self, idx: u32) -> InflightEntry {
        let entry = self.inflight[idx as usize]
            .take()
            // dilos-lint: allow(no-unwrap-in-hot-path, "Fetching PTE <-> inflight slot is a page-table invariant; an empty slot is corruption")
            .expect("fetching PTE has an in-flight entry");
        self.inflight_free.push(idx);
        entry
    }

    /// A fault on a page whose (pre)fetch is in flight.
    ///
    /// If the fetch already completed, the completion handler has mapped the
    /// page in the past: no fault is charged. Otherwise this is DiLOS's
    /// minor fault — exception, wait, map.
    fn fault_on_inflight(&mut self, core: usize, vpn: u64, idx: u32, is_write: bool) -> u32 {
        let entry = self.take_inflight(idx);
        // This access consumes the fetch; the scheduled landing must not
        // fire later against a reused slot.
        self.cal.cancel(entry.event);
        let now = self.clocks[core].now();
        let costs = self.cfg.costs.clone();
        if entry.ready_at <= now {
            // Completed in the past; mapping it cost the completion path,
            // not this access. The landing closes the *prefetch's* span.
            let prev_req = self.trace.set_request(entry.req);
            self.trace.emit(now, TraceEvent::PrefetchLand { vpn });
            self.map_page(now, vpn, entry.frame, 0);
            self.trace.set_request(prev_req);
            self.pt.mark_access(vpn, is_write);
            self.stats.local_hits += 1;
            self.clocks[core].advance(costs.tlb_miss_walk_ns);
            return entry.frame;
        }
        // Minor fault: pay the exception, wait out the fetch, map. The wait
        // is its own causal request; the landing still closes the prefetch.
        let prev_req = self.trace.begin_request();
        self.trace.emit(
            now,
            TraceEvent::FaultBegin {
                core: core as u8,
                vpn,
                kind: FaultKind::Minor,
            },
        );
        self.stats.minor_faults += 1;
        let mut t = now + self.cfg.sim.hw_exception_ns + costs.pte_check_ns;
        if entry.swap_cached {
            t += costs.swapcache_minor_ns;
        }
        t = t.max(entry.ready_at) + costs.map_ns;
        self.clocks[core].wait_until(t);
        let minor_req = self.trace.set_request(entry.req);
        self.trace.emit(t, TraceEvent::PrefetchLand { vpn });
        self.trace.set_request(minor_req);
        self.map_page(t, vpn, entry.frame, 0);
        self.pt.mark_access(vpn, is_write);
        self.trace.emit(
            t,
            TraceEvent::FaultEnd {
                core: core as u8,
                vpn,
            },
        );
        self.trace.set_request(prev_req);
        entry.frame
    }

    /// First touch of a DDC page: zero-fill, no network.
    fn fault_zero_fill(&mut self, core: usize, vpn: u64, is_write: bool) -> u32 {
        let now = self.clocks[core].now();
        let prev_req = self.trace.begin_request();
        self.trace.emit(
            now,
            TraceEvent::FaultBegin {
                core: core as u8,
                vpn,
                kind: FaultKind::ZeroFill,
            },
        );
        let t = now + self.cfg.sim.hw_exception_ns + self.cfg.costs.pte_check_ns;
        let (frame, t_alloc, reclaim_ns) = self.alloc_frame(core, t);
        self.frames.zero(frame);
        let t_done = t_alloc + self.cfg.costs.zero_fill_ns + self.cfg.costs.map_ns + reclaim_ns;
        self.clocks[core].wait_until(t_done);
        self.stats.zero_fills += 1;
        self.map_page(t_done, vpn, frame, 0);
        self.pt.mark_access(vpn, is_write);
        self.trace.emit(
            t_done,
            TraceEvent::FaultEnd {
                core: core as u8,
                vpn,
            },
        );
        self.trace.set_request(prev_req);
        frame
    }

    /// A major fault: demand-fetch the page (whole or via an action vector).
    fn fault_remote(
        &mut self,
        core: usize,
        vpn: u64,
        is_write: bool,
        vector: Option<Vec<(u16, u16)>>,
    ) -> u32 {
        let now = self.clocks[core].now();
        let prev_req = self.trace.begin_request();
        self.trace.emit(
            now,
            TraceEvent::FaultBegin {
                core: core as u8,
                vpn,
                kind: FaultKind::Major,
            },
        );
        let hw = self.cfg.sim.hw_exception_ns;
        let costs = self.cfg.costs.clone();
        let mut t = now + hw + costs.pte_check_ns;
        if self.cfg.swap_cache_mode {
            t += costs.swapcache_mgmt_ns;
        }
        // Transition through the `fetching` tag, exactly as §4.2 describes
        // (other cores reading the PTE would wait instead of re-fetching).
        self.set_pte(t, vpn, Pte::Fetching { inflight: u32::MAX });
        let (frame, t_alloc, reclaim_ns) = self.alloc_frame(core, t);
        let remote = (vpn - DDC_BASE_VPN) << 12;

        let done = match &vector {
            None => {
                // The verb fills every byte of the frame (absent remote
                // ranges read as zeros), so no pre-zeroing is needed.
                //
                // A demand fault cannot degrade gracefully: the faulting
                // load needs the bytes now, so data loss here is fatal by
                // design (mirrors a real machine taking SIGBUS).
                #[allow(clippy::expect_used)]
                let (done, live) = self
                    .rdma
                    .read_live(
                        t_alloc,
                        core,
                        ServiceClass::Fault,
                        remote,
                        self.frames.bytes_mut(frame),
                    )
                    // dilos-lint: allow(no-unwrap-in-hot-path, "demand fault with all replicas down is unrecoverable data loss")
                    .expect("demand fetch failed: address out of region or all replicas down");
                self.frames.set_live(frame, live);
                done
            }
            Some(v) if v.is_empty() => {
                // Guided fetch of a fully-dead page: nothing on the wire.
                self.frames.zero(frame);
                self.stats.guided_fetches += 1;
                self.stats.fetch_bytes_saved += PAGE_SIZE as u64;
                t_alloc + costs.zero_fill_ns
            }
            Some(v) => {
                let mut segs = std::mem::take(&mut self.seg_buf);
                segs.clear();
                segs.extend(v.iter().map(|&(o, l)| Segment {
                    remote: remote + o as u64,
                    offset: o as usize,
                    len: l as usize,
                }));
                // The vectored verb touches only its segments; the rest of
                // the (possibly recycled) frame must read as dead zeros.
                self.frames.zero(frame);
                // Fatal by design, as in the unguided demand-fetch arm.
                #[allow(clippy::expect_used)]
                let done = self
                    .rdma
                    .read_v(
                        t_alloc,
                        core,
                        ServiceClass::Fault,
                        &segs,
                        self.frames.bytes_mut(frame),
                    )
                    // dilos-lint: allow(no-unwrap-in-hot-path, "demand fault with all replicas down is unrecoverable data loss")
                    .expect("guided fetch failed: address out of region or all replicas down");
                self.frames
                    .set_live(frame, v.iter().map(|&(o, l)| o as usize + l as usize).max().unwrap_or(0));
                self.seg_buf = segs;
                let live: usize = v.iter().map(|&(_, l)| l as usize).sum();
                self.stats.guided_fetches += 1;
                self.stats.fetch_bytes_saved += (PAGE_SIZE - live) as u64;
                done
            }
        };

        // Hidden-window work: hit-tracker sweep + prefetch decision/issue,
        // plus the app-aware guide. All of it runs while the demand fetch is
        // on the wire; only overflow beyond the window costs latency.
        let hidden_done = self.fetch_window_work(core, vpn, t_alloc);

        let t_ready = done.max(hidden_done) + reclaim_ns;
        let t_end = t_ready + costs.map_ns;
        self.clocks[core].wait_until(t_end);
        self.stats.major_faults += 1;
        if let Some(log) = &mut self.fault_log {
            log.push(vpn);
        }
        let check = costs.pte_check_ns
            + if self.cfg.swap_cache_mode {
                costs.swapcache_mgmt_ns
            } else {
                0
            };
        let b = &mut self.stats.breakdown;
        b.exception += hw;
        b.check += check;
        b.alloc_wait += t_alloc - t;
        b.fetch += t_ready - t_alloc;
        b.map += costs.map_ns;
        b.reclaim += reclaim_ns;
        b.count += 1;
        if self.trace.is_enabled() {
            for (phase, dur) in [
                (FaultPhase::Exception, hw),
                (FaultPhase::Check, check),
                (FaultPhase::Alloc, t_alloc - t),
                (FaultPhase::Fetch, t_ready - t_alloc),
                (FaultPhase::Map, costs.map_ns),
                (FaultPhase::Reclaim, reclaim_ns),
            ] {
                self.trace.emit(
                    t_end,
                    TraceEvent::FaultPhase {
                        core: core as u8,
                        phase,
                        dur,
                    },
                );
            }
        }

        self.map_page(t_end, vpn, frame, 0);
        self.pt.mark_access(vpn, is_write);
        self.trace.emit(
            t_end,
            TraceEvent::FaultEnd {
                core: core as u8,
                vpn,
            },
        );
        self.trace.set_request(prev_req);
        frame
    }

    /// Runs the tracker sweep, the prefetcher, and the prefetch guide in the
    /// demand-fetch window starting at `t0`; returns when that software
    /// finishes (usually before the fetch completes).
    fn fetch_window_work(&mut self, core: usize, vpn: u64, t0: Ns) -> Ns {
        let costs = self.cfg.costs.clone();
        let mut sw = t0;
        if self.cfg.hit_tracker {
            if let Some((hits, total)) = self.tracker.sweep_if_due(&self.pt) {
                sw += total as Ns * costs.tracker_per_pte_ns;
                self.prefetcher.feedback(hits, total);
                self.stats.prefetch_hits += hits as u64;
            }
        }
        // General-purpose prefetcher.
        let mut targets = std::mem::take(&mut self.prefetch_buf);
        targets.clear();
        self.prefetcher.on_fault(vpn, &mut targets);
        // `targets` is moved back into `prefetch_buf` below, so iterate by
        // index rather than borrowing across the `prefetch_vpn` call.
        for i in 0..targets.len() {
            if let Some(&target) = targets.get(i) {
                sw += costs.prefetch_issue_ns;
                self.prefetch_vpn(core, target, sw);
            }
        }
        self.prefetch_buf = targets;
        // App-aware guide (its subpage reads ride the guide queue and are
        // pipelined with the demand fetch).
        if let Some(g) = self.prefetch_guide.clone() {
            let va = vpn << 12;
            self.trace
                .emit(sw, TraceEvent::GuideInvoke { vpn, fetch: true });
            let mut ops = NodeGuideOps {
                node: self,
                core,
                now: sw,
            };
            g.borrow_mut().on_fault(va, &mut ops);
            sw = sw.max(ops.now);
        }
        sw
    }

    /// Issues one asynchronous page prefetch at virtual time `t`.
    ///
    /// Skips pages that are resident, already in flight, never touched, or
    /// when free frames are at the reserve watermark (prefetch must not
    /// force eviction stalls).
    fn prefetch_vpn(&mut self, core: usize, vpn: u64, t: Ns) {
        if vpn < DDC_BASE_VPN || ((vpn - DDC_BASE_VPN) << 12) >= self.cfg.remote_bytes {
            return;
        }
        let vector = match self.pt.get(vpn) {
            Pte::Remote { .. } => None,
            Pte::Action { action } => Some(self.actions.take(action)),
            _ => return,
        };
        // The prefetch is its own causal request from here on: verbs and the
        // eventual landing attribute to it, not to the fault whose hidden
        // window issued it.
        let prev_req = self.trace.begin_request();
        let req = self.trace.current_request();
        let Some(frame) = self.try_alloc_prefetch_frame(t) else {
            // Out of reserve: put an action vector back if we took one.
            if let Some(v) = vector {
                let idx = self.actions.insert(v);
                self.set_pte(t, vpn, Pte::Action { action: idx });
            }
            self.trace.set_request(prev_req);
            return;
        };
        let remote = (vpn - DDC_BASE_VPN) << 12;
        let fetched = match &vector {
            None => {
                // Fills the whole frame; no pre-zeroing needed.
                self.rdma
                    .read_live(
                        t,
                        core,
                        ServiceClass::Prefetch,
                        remote,
                        self.frames.bytes_mut(frame),
                    )
                    .map(|(done, live)| {
                        self.frames.set_live(frame, live);
                        done
                    })
            }
            Some(v) if v.is_empty() => {
                self.frames.zero(frame);
                self.stats.guided_fetches += 1;
                self.stats.fetch_bytes_saved += PAGE_SIZE as u64;
                Ok(t)
            }
            Some(v) => {
                let mut segs = std::mem::take(&mut self.seg_buf);
                segs.clear();
                segs.extend(v.iter().map(|&(o, l)| Segment {
                    remote: remote + o as u64,
                    offset: o as usize,
                    len: l as usize,
                }));
                // Only the segments are fetched; the rest must be zeros.
                self.frames.zero(frame);
                let r = self.rdma.read_v(
                    t,
                    core,
                    ServiceClass::Prefetch,
                    &segs,
                    self.frames.bytes_mut(frame),
                );
                if r.is_ok() {
                    self.frames
                        .set_live(frame, v.iter().map(|&(o, l)| o as usize + l as usize).max().unwrap_or(0));
                }
                self.seg_buf = segs;
                if r.is_ok() {
                    let live: usize = v.iter().map(|&(_, l)| l as usize).sum();
                    self.stats.guided_fetches += 1;
                    self.stats.fetch_bytes_saved += (PAGE_SIZE - live) as u64;
                }
                r
            }
        };
        let ready_at = match fetched {
            Ok(done) => done,
            Err(_) => {
                // Prefetch is best-effort: on a degraded fabric (all
                // replicas of this page down) drop the attempt, return the
                // frame, and restore the action vector so the demand path
                // can retry — and surface the failure — if the page is ever
                // actually touched. The failed verb may have landed partial
                // segment payloads, so the frame's content bound is unknown.
                self.frames.set_live(frame, PAGE_SIZE);
                self.frames.push_free(frame, t);
                if let Some(v) = vector {
                    let idx = self.actions.insert(v);
                    self.set_pte(t, vpn, Pte::Action { action: idx });
                }
                self.trace.set_request(prev_req);
                return;
            }
        };
        let idx = match self.inflight_free.pop() {
            Some(i) => i,
            None => {
                self.inflight.push(None);
                (self.inflight.len() - 1) as u32
            }
        };
        // The landing is a first-class calendar event: when virtual time
        // reaches `ready_at` the page is mapped then, not lazily at the next
        // reclaim pass (§4.3: completed prefetches are "mapped into the
        // unified page table immediately").
        let event = self
            .cal
            .schedule(ready_at, SchedEvent::PrefetchLand { vpn, token: idx });
        self.inflight[idx as usize] = Some(InflightEntry {
            frame,
            ready_at,
            vpn,
            swap_cached: self.cfg.swap_cache_mode,
            event,
            req,
        });
        self.trace.emit(t, TraceEvent::PrefetchIssue { vpn });
        self.set_pte(t, vpn, Pte::Fetching { inflight: idx });
        self.stats.prefetch_issued += 1;
        if self.cfg.hit_tracker {
            self.tracker.track(vpn);
        }
        self.trace.set_request(prev_req);
    }

    /// Claims a frame for a prefetch without ever stalling; `None` when the
    /// free reserve is needed for demand faults.
    fn try_alloc_prefetch_frame(&mut self, now: Ns) -> Option<u32> {
        if self.cfg.direct_reclaim {
            // Ablation: no background reclaimer exists; prefetch may only
            // use frames that happen to be free already.
            return self.frames.pop_free(now);
        }
        if self.frames.free_count() <= self.wm.low {
            self.kick_reclaim(now);
            // An idle reclaimer's first tick is due immediately; let it run
            // so the watermark reacts to prefetch pressure, not just faults.
            self.drain_events(now);
        }
        if self.frames.free_count() <= self.wm.low / 2 + 1 {
            return None;
        }
        self.frames.pop_free(now)
    }

    /// Claims a frame for a demand fault at time `t`, waiting if necessary.
    ///
    /// Returns `(frame, time_frame_held, direct_reclaim_ns)`. With eager
    /// background eviction the wait is almost always zero; the
    /// `direct_reclaim` ablation instead charges the reclaim to the handler.
    fn alloc_frame(&mut self, _core: usize, t: Ns) -> (u32, Ns, Ns) {
        if self.cfg.direct_reclaim {
            // Fastswap-style: reclaim inside the handler when low.
            let mut reclaim_ns = 0;
            if self.frames.free_count() == 0 {
                reclaim_ns = self.direct_reclaim_one(t);
            }
            let mut now = t;
            loop {
                if let Some(f) = self.frames.pop_free(now) {
                    return (f, now, reclaim_ns);
                }
                match self.frames.earliest_available() {
                    Some(avail) => now = now.max(avail),
                    None => {
                        reclaim_ns += self.direct_reclaim_one(now);
                    }
                }
            }
        }
        let mut now = t;
        let mut spins = 0u32;
        loop {
            self.drain_events(now);
            if self.frames.free_count() <= self.wm.low {
                self.kick_reclaim(now);
                // The tick may be due at `now` (idle reclaimer): run it.
                self.drain_events(now);
            }
            if let Some(f) = self.frames.pop_free(now) {
                return (f, now, 0);
            }
            // Free list empty at `now`: wait for whichever comes first — a
            // frame already committed to the free list becoming available,
            // or the next calendar event (reclaim tick, cleaner writeback,
            // prefetch landing) that can produce one.
            let mut next: Option<Ns> = None;
            if let Some(avail) = self.frames.earliest_available() {
                if avail > now {
                    next = Some(avail);
                }
            }
            if let Some(due) = self.cal.next_due() {
                if due > now {
                    next = Some(next.map_or(due, |n| n.min(due)));
                }
            }
            now = next.unwrap_or(now + 1);
            spins += 1;
            assert!(
                spins < 100_000,
                "local cache thrashing: no frame became reclaimable \
                 (local_pages={} resident={})",
                self.cfg.local_pages,
                self.pt.resident()
            );
        }
    }

    /// Maps `vpn` to `frame` as a local page and inserts it in the ring.
    fn map_page(&mut self, t: Ns, vpn: u64, frame: u32, ready_at: Ns) {
        self.trace
            .emit(t, TraceEvent::LruInsert { vpn: frame as u64 });
        self.lru.insert(frame as u64);
        let slot = self.ring.push(vpn);
        let m = self.frames.meta_mut(frame);
        m.vpn = vpn;
        m.ready_at = ready_at;
        m.ring_slot = slot;
        self.set_pte(
            t,
            vpn,
            Pte::Local {
                frame,
                accessed: false,
                dirty: false,
            },
        );
    }

    /// Installs `pte` for `vpn`, tracing the state-class transition.
    fn set_pte(&mut self, t: Ns, vpn: u64, pte: Pte) {
        if self.trace.is_enabled() {
            self.trace.emit(
                t,
                TraceEvent::PteTransition {
                    vpn,
                    from: pte_class(&self.pt.get(vpn)),
                    to: pte_class(&pte),
                },
            );
        }
        self.pt.set(vpn, pte);
    }

    /// Removes the ring entry at `slot`, fixing up the moved page's frame.
    fn unlink_ring(&mut self, slot: usize) {
        if let Some(moved_vpn) = self.ring.remove(slot) {
            if let Pte::Local { frame, .. } = self.pt.get(moved_vpn) {
                self.frames.meta_mut(frame).ring_slot = slot;
            }
        }
    }

    // ------------------------------------------------------------------
    // Event calendar: the background half of the node (§4.3/§4.4).
    // ------------------------------------------------------------------

    /// Delivers every calendar event due at or before `now`.
    ///
    /// The common case — nothing due — is a single borrow-free probe
    /// ([`Calendar::has_due`]); when work is pending, whole same-instant
    /// groups are drained per calendar borrow.
    fn drain_events(&mut self, now: Ns) {
        while self.cal.has_due(now) {
            let mut buf = std::mem::take(&mut self.drain_buf);
            let n = self.cal.drain_due(now, &mut buf);
            for (t, ev) in buf.drain(..) {
                self.dispatch(t, ev);
            }
            self.drain_buf = buf;
            if n == 0 {
                // The due bound was a tombstone; the drain skimmed it.
                break;
            }
        }
        // Telemetry rides its own calendar (see `SchedEvent::SampleTick`):
        // gauge snapshots are taken here, at the node's existing drain
        // points, so enabling them cannot perturb the main calendar.
        while let Some(t) = self.metrics.next_sample_due(now) {
            self.record_gauges(t);
        }
    }

    /// Snapshots every sampled gauge at virtual time `t`.
    fn record_gauges(&mut self, t: Ns) {
        self.metrics
            .set_gauge("free_frames", self.frames.free_count() as u64);
        self.metrics.set_gauge("lru_pages", self.lru.len() as u64);
        self.metrics.set_gauge(
            "inflight_fetches",
            self.inflight.iter().flatten().count() as u64,
        );
        self.metrics
            .set_gauge("pending_clean", self.pending_clean as u64);
        self.metrics
            .set_gauge("resident_pages", self.pt.resident() as u64);
        self.metrics
            .set_gauge("busy_qps", self.rdma.busy_qps(t) as u64);
        self.metrics
            .set_gauge("link_busy_ns", self.rdma.link_busy());
        self.metrics.record_sample(t);
    }

    /// Delivers one calendar event at its scheduled time `t`.
    fn dispatch(&mut self, t: Ns, ev: SchedEvent) {
        // Calendar work is background: it must never inherit the request id
        // of whatever handler happened to drain it (e.g. a reclaim tick
        // delivered inside a fault's allocation spin). Handlers that know
        // better (prefetch landings, deferred completions) re-attribute.
        let drained_req = self.trace.set_request(None);
        match ev {
            SchedEvent::PrefetchLand { vpn, token } => self.on_prefetch_land(t, vpn, token),
            SchedEvent::ReclaimTick => self.on_reclaim_tick(t),
            SchedEvent::CleanerWriteback { frame } => {
                self.pending_clean -= 1;
                self.frames.push_free(frame, t);
            }
            SchedEvent::RdmaCompletion {
                class,
                write,
                node,
                core,
            } => self.rdma.deliver_completion(t, class, write, node, core),
            SchedEvent::NodeRepair { node } => self.rdma.repair_node_at(t, node),
            // Sample ticks never ride the main calendar (the registry owns
            // its own — see `drain_events`), but the match must be total.
            SchedEvent::SampleTick => self.record_gauges(t),
        }
        self.trace.set_request(drained_req);
    }

    /// A (pre)fetch completed at `t`: map the page into the unified page
    /// table at its true completion time (§4.3: "mapped immediately").
    ///
    /// The event may be stale — test hooks can drop the in-flight entry
    /// without cancelling, and a stale delivery must not touch a reused
    /// slot — so the entry is validated against the event's vpn first.
    fn on_prefetch_land(&mut self, t: Ns, vpn: u64, token: u32) {
        let Some(entry) = self.inflight.get(token as usize).copied().flatten() else {
            return;
        };
        if entry.vpn != vpn {
            return;
        }
        self.inflight[token as usize] = None;
        self.inflight_free.push(token);
        // The landing closes the span of the prefetch that started the
        // fetch, so the map/PTE events join its request tree.
        let prev_req = self.trace.set_request(entry.req);
        self.trace.emit(t, TraceEvent::PrefetchLand { vpn });
        // The payload is on the frame exactly at `t`; a core whose clock
        // lags behind the landing stalls until then (resolve's Local path).
        self.map_page(t, vpn, entry.frame, t);
        self.trace.set_request(prev_req);
    }

    /// Schedules the next reclaim tick if the watermark asks for one and no
    /// tick is already pending. The tick runs when the background core is
    /// next free — not "now", which is the lie the old single-instant
    /// reclaim episode told.
    fn kick_reclaim(&mut self, now: Ns) {
        if self.cfg.direct_reclaim || self.tick_pending {
            return;
        }
        self.tick_pending = true;
        self.cal
            .schedule(self.bg.next_free(now), SchedEvent::ReclaimTick);
    }

    /// One reclaimer tick: scan for a victim, evict it, and chain the next
    /// tick — one victim per tick, each at the background core's true time,
    /// so an episode's evictions spread across virtual time instead of
    /// collapsing onto a single instant.
    fn on_reclaim_tick(&mut self, t: Ns) {
        self.tick_pending = false;
        // Target met? Frames whose cleaner writeback is in flight count:
        // they are already committed to return.
        if self.frames.free_count() + self.pending_clean >= self.wm.high {
            self.close_episode(t);
            return;
        }
        let Some((slot, vpn, frame, dirty, scan_end)) = self.pick_victim(t) else {
            // Nothing evictable this round (everything cold is in flight).
            self.close_episode(t);
            return;
        };
        if !self.episode_open {
            self.episode_open = true;
            self.episode_freed = 0;
            self.trace.emit(
                t,
                TraceEvent::ReclaimBegin {
                    free: self.frames.free_count() as u32,
                },
            );
        }
        let _ = self.evict(vpn, frame, slot, dirty, scan_end, ServiceClass::Cleaner);
        self.episode_freed += 1;
        self.tick_pending = true;
        self.cal
            .schedule(self.bg.next_free(scan_end), SchedEvent::ReclaimTick);
    }

    /// Emits `ReclaimEnd` for the open episode, if any.
    fn close_episode(&mut self, t: Ns) {
        if !self.episode_open {
            return;
        }
        self.episode_open = false;
        self.trace.emit(
            t,
            TraceEvent::ReclaimEnd {
                freed: self.episode_freed,
            },
        );
        self.episode_freed = 0;
    }

    /// Chooses the eviction victim: the least-recently-used resident frame
    /// whose payload is not in flight (§4.4's LRU list, exactly).
    fn pick_victim(&mut self, now: Ns) -> Option<(usize, u64, u32, bool, Ns)> {
        let mut chosen: Option<u32> = None;
        let mut scan_end = now;
        for (i, key) in self.lru.iter_cold().enumerate() {
            if i >= 64 {
                break; // Everything cold is in flight: give up this round.
            }
            let frame = key as u32;
            let (_, t) = self.bg.acquire(now, self.cfg.costs.reclaim_scan_ns);
            scan_end = t;
            if self.frames.meta(frame).ready_at > scan_end {
                continue; // In-flight payload: not evictable yet.
            }
            chosen = Some(frame);
            break;
        }
        let frame = chosen?;
        let m = self.frames.meta(frame);
        let vpn = m.vpn;
        let slot = m.ring_slot;
        let Pte::Local { dirty, .. } = self.pt.get(vpn) else {
            return None;
        };
        Some((slot, vpn, frame, dirty, scan_end))
    }

    /// Fastswap-ablation direct reclaim: evict one page synchronously,
    /// returning the handler time consumed.
    fn direct_reclaim_one(&mut self, now: Ns) -> Ns {
        let bg0 = self.bg.busy_until().max(now);
        if let Some((slot, vpn, frame, dirty, scan_end)) = self.pick_victim(now) {
            // Direct reclaim runs in the handler: it pays the scan *and*
            // waits for any writeback before the frame is reusable — the
            // cost Fastswap's Figure 1 "reclaim" bar charges.
            let avail = self.evict(vpn, frame, slot, dirty, scan_end, ServiceClass::Cleaner);
            return avail
                .max(scan_end)
                .saturating_sub(bg0)
                .max(self.cfg.costs.reclaim_scan_ns);
        }
        self.cfg.costs.reclaim_scan_ns
    }

    /// Evicts `vpn` (writing back if dirty), freeing its frame. Returns
    /// when the frame becomes reusable (writeback completion).
    fn evict(
        &mut self,
        vpn: u64,
        frame: u32,
        slot: usize,
        dirty: bool,
        t: Ns,
        class: ServiceClass,
    ) -> Ns {
        if let Some(log) = &mut self.evict_log {
            log.push((vpn, self.frames.meta(frame).last_access, t));
        }
        // Each eviction is its own causal request (whether it runs on the
        // background reclaimer or as direct reclaim inside a fault).
        let prev_req = self.trace.begin_request();
        self.trace.emit(t, TraceEvent::Evict { vpn, dirty });
        let remote = (vpn - DDC_BASE_VPN) << 12;
        if self.paging_guide.is_some() {
            self.trace
                .emit(t, TraceEvent::GuideInvoke { vpn, fetch: false });
        }
        let liveness = self
            .paging_guide
            .as_ref()
            .map(|g| g.borrow().live_ranges(vpn << 12));

        let mut available_at = t;
        let mut new_pte = Pte::Remote {
            slot: vpn - DDC_BASE_VPN,
        };

        match liveness {
            None | Some(PageLiveness::Full) => {
                if dirty {
                    // Dropping a dirty writeback would silently lose the
                    // application's stores; fatal by design.
                    #[allow(clippy::expect_used)]
                    let done = self
                        .rdma
                        .write_live(
                            t,
                            0,
                            class,
                            remote,
                            self.frames.bytes(frame),
                            self.frames.live(frame),
                        )
                        // dilos-lint: allow(no-unwrap-in-hot-path, "losing a dirty writeback is silent data corruption")
                        .expect("writeback failed: all replicas of the page are down");
                    available_at = done;
                    self.stats.writebacks += 1;
                }
            }
            Some(PageLiveness::Empty) => {
                // Nothing live: nothing to write, and the later fetch is a
                // zero-fill. Log an empty vector.
                if dirty {
                    self.stats.writeback_bytes_saved += PAGE_SIZE as u64;
                }
                let idx = self.actions.insert(Vec::new());
                new_pte = Pte::Action { action: idx };
                self.stats.guided_evictions += 1;
            }
            Some(PageLiveness::Partial(ranges)) => {
                let vector: Vec<(u16, u16)> =
                    ranges.iter().map(|&(o, l)| (o as u16, l as u16)).collect();
                if dirty {
                    let segs: Vec<Segment> = ranges
                        .iter()
                        .map(|&(o, l)| Segment {
                            remote: remote + o as u64,
                            offset: o,
                            len: l,
                        })
                        .collect();
                    // Fatal by design, as in the full-page writeback arm.
                    #[allow(clippy::expect_used)]
                    let done = self
                        .rdma
                        .write_v(t, 0, class, &segs, self.frames.bytes(frame))
                        // dilos-lint: allow(no-unwrap-in-hot-path, "losing a dirty writeback is silent data corruption")
                        .expect("guided writeback failed: all replicas of the page are down");
                    available_at = done;
                    let live: usize = ranges.iter().map(|&(_, l)| l).sum();
                    self.stats.writebacks += 1;
                    self.stats.writeback_bytes_saved += (PAGE_SIZE - live) as u64;
                }
                let idx = self.actions.insert(vector);
                new_pte = Pte::Action { action: idx };
                self.stats.guided_evictions += 1;
            }
        }

        self.trace
            .emit(t, TraceEvent::LruRemove { vpn: frame as u64 });
        self.lru.remove(frame as u64);
        self.unlink_ring(slot);
        self.set_pte(t, vpn, new_pte);
        if !self.cfg.direct_reclaim && available_at > t {
            // Background eviction with the writeback still on the wire: the
            // frame rejoins the free list when the cleaner's completion
            // event delivers, not before. Direct reclaim stays synchronous —
            // the handler pays for the wait, which is the point of that
            // ablation.
            self.pending_clean += 1;
            self.cal
                .schedule(available_at, SchedEvent::CleanerWriteback { frame });
        } else {
            self.frames.push_free(frame, available_at);
        }
        self.stats.evictions += 1;
        self.trace.set_request(prev_req);
        available_at
    }

    /// Page-table residency (for tests/diagnostics).
    pub fn resident_pages(&self) -> usize {
        self.pt.resident()
    }

    /// Raw PTE inspection (tests/diagnostics).
    pub fn pte_of(&self, va: u64) -> Pte {
        self.pt.get(va >> 12)
    }

    /// Fault injection for auditor tests: returns an allocated frame to the
    /// free list twice. A healthy run can never double-free, so the auditor
    /// must flag the second return.
    #[cfg(test)]
    fn inject_double_frame_free(&mut self) {
        let t = self.max_now();
        let frame = self.frames.pop_free(t).expect("a free frame to corrupt");
        self.frames.push_free(frame, t);
        self.frames.push_free(frame, t);
    }

    /// Fault injection for auditor tests: silently drops one in-flight fetch
    /// so its traced `PrefetchIssue` never lands or cancels. Returns `false`
    /// when nothing was in flight.
    #[cfg(test)]
    fn inject_lost_fetch(&mut self) -> bool {
        for (idx, slot) in self.inflight.iter_mut().enumerate() {
            if slot.take().is_some() {
                self.inflight_free.push(idx as u32);
                return true;
            }
        }
        false
    }
}

/// The trace-visible class of a PTE (drops per-variant payloads).
fn pte_class(p: &Pte) -> PteClass {
    match p {
        Pte::None => PteClass::None,
        Pte::Local { .. } => PteClass::Local,
        Pte::Remote { .. } => PteClass::Remote,
        Pte::Fetching { .. } => PteClass::Fetching,
        Pte::Action { .. } => PteClass::Action,
    }
}

/// [`GuideOps`] implementation bridging guides to the node.
struct NodeGuideOps<'a> {
    node: &'a mut Dilos,
    core: usize,
    now: Ns,
}

impl GuideOps for NodeGuideOps<'_> {
    fn subpage_read(&mut self, va: u64, len: usize) -> Option<(Vec<u8>, Ns)> {
        let vpn = va >> 12;
        if vpn < DDC_BASE_VPN || ((vpn - DDC_BASE_VPN) << 12) >= self.node.cfg.remote_bytes {
            return None;
        }
        // Resident pages are read directly (no wire traffic).
        if let Pte::Local { frame, .. } = self.node.pt.get(vpn) {
            let off = (va & 0xFFF) as usize;
            let n = len.min(PAGE_SIZE - off);
            let data = self.node.frames.bytes(frame)[off..off + n].to_vec();
            return Some((data, self.now));
        }
        // Subpage reads never cross the page boundary: with a sharded pool
        // the next page may live on a different memory node.
        let remote = va - DDC_BASE;
        let off = (va & 0xFFF) as usize;
        let mut data = vec![0u8; len.min(PAGE_SIZE - off)];
        let done = self
            .node
            .rdma
            .read(self.now, self.core, ServiceClass::Guide, remote, &mut data)
            .ok()?;
        self.node.stats.subpage_fetches += 1;
        // The guide's decision logic runs when the subpage lands.
        self.now = self.now.max(done);
        Some((data, done))
    }

    fn prefetch_page(&mut self, va: u64) {
        let t = self.now;
        self.node.prefetch_vpn(self.core, va >> 12, t);
    }

    fn resident_read(&mut self, va: u64, buf: &mut [u8]) -> bool {
        let vpn = va >> 12;
        if let Pte::Local { frame, .. } = self.node.pt.get(vpn) {
            let off = (va & 0xFFF) as usize;
            if off + buf.len() <= PAGE_SIZE {
                buf.copy_from_slice(&self.node.frames.bytes(frame)[off..off + buf.len()]);
                return true;
            }
        }
        false
    }

    fn now(&self) -> Ns {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefetch::Readahead;

    fn audited_node() -> Dilos {
        let mut node = Dilos::new(DilosConfig {
            local_pages: 32,
            remote_bytes: 1 << 24,
            obs: dilos_sim::Observability::audited(),
            ..DilosConfig::default()
        });
        node.set_prefetcher(Box::new(Readahead::new()));
        node
    }

    /// Streams enough pages through a small cache to exercise faults,
    /// prefetch, eviction, and reclaim — then expects a spotless report.
    #[test]
    fn healthy_run_audits_clean() {
        let mut node = audited_node();
        let pages = 128usize;
        let va = node.ddc_alloc(pages * PAGE_SIZE);
        for i in 0..pages {
            node.write_u64(0, va + (i * PAGE_SIZE) as u64, i as u64);
        }
        for i in 0..pages {
            assert_eq!(node.read_u64(0, va + (i * PAGE_SIZE) as u64), i as u64);
        }
        let report = node.audit_report();
        assert!(report.is_empty(), "unexpected violations: {report:#?}");
        assert_ne!(node.trace_digest(), 0, "an audited run records a trace");
    }

    #[test]
    fn auditor_catches_double_frame_free() {
        let mut node = audited_node();
        let va = node.ddc_alloc(8 * PAGE_SIZE);
        for i in 0..8u64 {
            node.write_u64(0, va + i * PAGE_SIZE as u64, i);
        }
        node.inject_double_frame_free();
        let report = node.audit_report();
        assert!(
            report.iter().any(|m| m.contains("double free of frame")),
            "double free not detected: {report:#?}"
        );
    }

    fn recovering_node(crash_at_event: Option<u64>) -> Dilos {
        let mut node = Dilos::new(DilosConfig {
            local_pages: 32,
            remote_bytes: 1 << 24,
            recovery: Some(RecoverConfig {
                crash_at_event,
                victim: 0,
                // A huge interval keeps every ack in the log, so a dropped
                // record cannot hide behind a checkpoint seal.
                checkpoint_every: 1 << 20,
                ..RecoverConfig::default()
            }),
            obs: dilos_sim::Observability::audited(),
            ..DilosConfig::default()
        });
        node.set_prefetcher(Box::new(Readahead::new()));
        node
    }

    /// Streams writes through an armed node, crashes and recovers it, and
    /// expects both new invariants (no acknowledged write lost, no frame
    /// resurrected) to hold alongside every existing check.
    #[test]
    fn crash_and_recovery_audit_clean() {
        let mut node = recovering_node(None);
        let va = node.ddc_alloc(64 * PAGE_SIZE);
        for i in 0..64u64 {
            node.write_u64(0, va + i * PAGE_SIZE as u64, i);
        }
        node.fail_memory_node(0);
        node.schedule_memory_node_repair(node.now(0) + 1_000_000, 0);
        let report = node.audit_report();
        assert!(report.is_empty(), "unexpected violations: {report:#?}");
        let stats = node.recovery_stats();
        assert_eq!(stats.recoveries, 1);
        assert!(stats.replayed > 0, "evictions should have logged intents");
        for i in 0..64u64 {
            assert_eq!(node.read_u64(0, va + i * PAGE_SIZE as u64), i);
        }
    }

    /// Deliberately drops an acknowledged intent-log record: the auditor
    /// must flag exactly an acknowledged-write-lost violation at recovery.
    #[test]
    fn auditor_catches_acknowledged_write_lost() {
        let mut node = recovering_node(None);
        let va = node.ddc_alloc(64 * PAGE_SIZE);
        for i in 0..64u64 {
            node.write_u64(0, va + i * PAGE_SIZE as u64, i);
        }
        let dropped = node.inject_dropped_intent(0);
        assert!(dropped.is_some(), "evictions should have logged intents");
        node.fail_memory_node(0);
        node.schedule_memory_node_repair(node.now(0) + 1_000_000, 0);
        let report = node.audit_report();
        assert!(
            report.iter().any(|m| m.contains("acknowledged write lost")),
            "dropped intent not detected: {report:#?}"
        );
    }

    /// Deliberately re-inserts a freed frame into the LRU without a fresh
    /// allocation: the auditor must flag the resurrection.
    #[test]
    fn auditor_catches_resurrected_frame() {
        let mut node = audited_node();
        let va = node.ddc_alloc(8 * PAGE_SIZE);
        for i in 0..8u64 {
            node.write_u64(0, va + i * PAGE_SIZE as u64, i);
        }
        let frame = node.inject_resurrected_frame(node.now(0));
        assert!(frame.is_some(), "free list should not be empty");
        let report = node.audit_report();
        assert!(
            report.iter().any(|m| m.contains("resurrected in the LRU")),
            "resurrection not detected: {report:#?}"
        );
    }

    #[test]
    fn auditor_catches_lost_inflight_fetch() {
        let mut node = audited_node();
        let va = node.ddc_alloc(64 * PAGE_SIZE);
        // Populate past the cache size so early pages are evicted to the
        // memory node; re-reading them then major-faults, and the sequential
        // pattern makes readahead leave fetches in flight.
        for i in 0..64u64 {
            node.write_u64(0, va + i * PAGE_SIZE as u64, i);
        }
        let mut i = 0u64;
        while !node.inject_lost_fetch() {
            assert!(i < 64, "readahead never left a fetch in flight");
            node.read_u64(0, va + i * PAGE_SIZE as u64);
            i += 1;
        }
        let report = node.audit_report();
        assert!(
            report.iter().any(|m| m.contains("lost in-flight fetch")),
            "lost fetch not detected: {report:#?}"
        );
    }
}
