//! The unified page table (§4.1).
//!
//! "At the heart of DiLOS' paging subsystem lies the unified page table. It
//! has a compact form representing the memory space for both local DRAM and
//! remote memory without using the swap system or the swap cache."
//!
//! The table is a software implementation of the Intel four-level layout:
//! 512-entry tables, 9 bits of index per level, 4 KiB leaves. Each leaf PTE
//! carries one of the four DiLOS tags, identified — exactly as the paper
//! describes — by the three least-significant bits (present, write, user):
//!
//! | tag      | P | W | U | payload (bits 12..52)            |
//! |----------|---|---|---|----------------------------------|
//! | local    | 1 | – | – | physical frame number            |
//! | none     | 0 | 0 | 0 | (zero PTE: unmapped / first-touch)|
//! | remote   | 0 | 1 | 0 | remote page slot                 |
//! | fetching | 0 | 0 | 1 | in-flight table index            |
//! | action   | 0 | 1 | 1 | guide action-table index         |
//!
//! Local PTEs also carry the x86 accessed (bit 5) and dirty (bit 6) flags,
//! which the PTE hit tracker and the cleaner scan.

/// Number of entries per table level.
pub const ENTRIES: usize = 512;
/// Levels in the radix tree (PML4 → PDPT → PD → PT).
pub const LEVELS: usize = 4;

const P: u64 = 1 << 0;
const W: u64 = 1 << 1;
const U: u64 = 1 << 2;
const ACCESSED: u64 = 1 << 5;
const DIRTY: u64 = 1 << 6;
const PAYLOAD_SHIFT: u32 = 12;
const PAYLOAD_MASK: u64 = ((1u64 << 40) - 1) << PAYLOAD_SHIFT;

/// A decoded leaf PTE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pte {
    /// Unmapped (or never-touched DDC page: zero-fill on first access).
    None,
    /// Resident: payload is the local frame number.
    Local {
        /// Local frame number.
        frame: u32,
        /// x86 accessed bit.
        accessed: bool,
        /// x86 dirty bit.
        dirty: bool,
    },
    /// Evicted to the memory node: payload is the remote slot.
    Remote {
        /// Remote page slot (page-granular index into the registered region).
        slot: u64,
    },
    /// A fetch is in flight: payload indexes the in-flight table.
    Fetching {
        /// In-flight table index.
        inflight: u32,
    },
    /// Evicted under a guide: payload indexes the action table (§4.4).
    Action {
        /// Action-table index holding the guide's fetch vector.
        action: u32,
    },
}

impl Pte {
    /// Encodes to the raw 64-bit format.
    pub fn encode(self) -> u64 {
        match self {
            Pte::None => 0,
            Pte::Local {
                frame,
                accessed,
                dirty,
            } => {
                let mut v = P | ((frame as u64) << PAYLOAD_SHIFT);
                if accessed {
                    v |= ACCESSED;
                }
                if dirty {
                    v |= DIRTY;
                }
                v
            }
            Pte::Remote { slot } => W | (slot << PAYLOAD_SHIFT),
            Pte::Fetching { inflight } => U | ((inflight as u64) << PAYLOAD_SHIFT),
            Pte::Action { action } => W | U | ((action as u64) << PAYLOAD_SHIFT),
        }
    }

    /// Decodes from the raw 64-bit format.
    pub fn decode(v: u64) -> Pte {
        let payload = (v & PAYLOAD_MASK) >> PAYLOAD_SHIFT;
        if v & P != 0 {
            Pte::Local {
                frame: payload as u32,
                accessed: v & ACCESSED != 0,
                dirty: v & DIRTY != 0,
            }
        } else {
            match (v & W != 0, v & U != 0) {
                (false, false) => Pte::None,
                (true, false) => Pte::Remote { slot: payload },
                (false, true) => Pte::Fetching {
                    inflight: payload as u32,
                },
                (true, true) => Pte::Action {
                    action: payload as u32,
                },
            }
        }
    }
}

#[derive(Debug)]
struct Table {
    entries: Box<[u64; ENTRIES]>,
}

impl Table {
    fn new() -> Self {
        Self {
            entries: Box::new([0; ENTRIES]),
        }
    }
}

/// The four-level unified page table.
///
/// Interior levels store child-table indices (with bit 0 set as a present
/// marker); leaves store encoded [`Pte`]s. Virtual page numbers (VPNs) are
/// 36-bit (48-bit virtual addresses).
#[derive(Debug)]
pub struct PageTable {
    tables: Vec<Table>,
    /// Monotone generation, bumped on every leaf change; the per-core
    /// software TLB uses it for cheap invalidation.
    generation: u64,
    resident: usize,
    /// Walk cache: `(vpn >> 9, leaf table index)` of the last walk. Interior
    /// tables are never freed or moved once created, so a cached entry can
    /// never go stale — it only short-circuits the three upper levels.
    leaf_cache: std::cell::Cell<(u64, u32)>,
}

impl Default for PageTable {
    fn default() -> Self {
        Self::new()
    }
}

impl PageTable {
    /// Creates an empty table (root preallocated).
    pub fn new() -> Self {
        Self {
            tables: vec![Table::new()],
            generation: 0,
            resident: 0,
            leaf_cache: std::cell::Cell::new((u64::MAX, 0)),
        }
    }

    /// Current generation (bumped on every modification).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of `Local` leaf PTEs.
    pub fn resident(&self) -> usize {
        self.resident
    }

    fn level_index(vpn: u64, level: usize) -> usize {
        // level 0 is the root (top 9 bits of the 36-bit VPN).
        ((vpn >> (9 * (LEVELS - 1 - level))) & 0x1FF) as usize
    }

    fn walk_index(&self, vpn: u64) -> Option<(usize, usize)> {
        let key = vpn >> 9;
        let (ck, ct) = self.leaf_cache.get();
        if ck == key {
            return Some((ct as usize, (vpn & 0x1FF) as usize));
        }
        let mut ti = 0usize;
        for level in 0..LEVELS - 1 {
            let e = self.tables[ti].entries[Self::level_index(vpn, level)];
            if e & P == 0 {
                return None;
            }
            ti = (e >> PAYLOAD_SHIFT) as usize;
        }
        self.leaf_cache.set((key, ti as u32));
        Some((ti, Self::level_index(vpn, LEVELS - 1)))
    }

    fn ensure_index(&mut self, vpn: u64) -> (usize, usize) {
        let key = vpn >> 9;
        let (ck, ct) = self.leaf_cache.get();
        if ck == key {
            return (ct as usize, (vpn & 0x1FF) as usize);
        }
        let mut ti = 0usize;
        for level in 0..LEVELS - 1 {
            let idx = Self::level_index(vpn, level);
            let e = self.tables[ti].entries[idx];
            if e & P == 0 {
                let child = self.tables.len();
                self.tables.push(Table::new());
                self.tables[ti].entries[idx] = P | ((child as u64) << PAYLOAD_SHIFT);
                ti = child;
            } else {
                ti = (e >> PAYLOAD_SHIFT) as usize;
            }
        }
        self.leaf_cache.set((key, ti as u32));
        (ti, Self::level_index(vpn, LEVELS - 1))
    }

    /// Reads the leaf PTE for `vpn` (missing interior levels decode as
    /// [`Pte::None`]).
    pub fn get(&self, vpn: u64) -> Pte {
        match self.walk_index(vpn) {
            Some((t, i)) => Pte::decode(self.tables[t].entries[i]),
            None => Pte::None,
        }
    }

    /// Writes the leaf PTE for `vpn`, creating interior levels as needed.
    pub fn set(&mut self, vpn: u64, pte: Pte) {
        let (t, i) = self.ensure_index(vpn);
        let old = Pte::decode(self.tables[t].entries[i]);
        if matches!(old, Pte::Local { .. }) && !matches!(pte, Pte::Local { .. }) {
            self.resident -= 1;
        } else if !matches!(old, Pte::Local { .. }) && matches!(pte, Pte::Local { .. }) {
            self.resident += 1;
        }
        self.tables[t].entries[i] = pte.encode();
        self.generation += 1;
    }

    /// Sets the accessed (and optionally dirty) flags on a local PTE.
    ///
    /// This is the MMU's job on a real machine, so it does **not** bump the
    /// generation: TLB entries stay valid across flag updates, exactly like
    /// hardware.
    pub fn mark_access(&mut self, vpn: u64, write: bool) {
        if let Some((t, i)) = self.walk_index(vpn) {
            let e = &mut self.tables[t].entries[i];
            if *e & P != 0 {
                *e |= ACCESSED;
                if write {
                    *e |= DIRTY;
                }
            }
        }
    }

    /// Clears the accessed flag (clock algorithm / hit tracker sweep) and
    /// returns whether it was set.
    ///
    /// Clearing bumps the generation: like the TLB flush a kernel issues
    /// when harvesting A-bits, it forces subsequent accesses through the
    /// walk path so they re-set the flag — otherwise hot pages cached in
    /// the TLB would look permanently cold to the reclaimer.
    pub fn clear_accessed(&mut self, vpn: u64) -> bool {
        if let Some((t, i)) = self.walk_index(vpn) {
            let e = &mut self.tables[t].entries[i];
            if *e & P != 0 && *e & ACCESSED != 0 {
                *e &= !ACCESSED;
                self.generation += 1;
                return true;
            }
        }
        false
    }

    /// Returns whether the accessed flag is set on a local PTE.
    pub fn is_accessed(&self, vpn: u64) -> bool {
        matches!(self.get(vpn), Pte::Local { accessed: true, .. })
    }

    /// Clears the dirty flag (cleaner writeback) and returns whether it was
    /// set.
    pub fn clear_dirty(&mut self, vpn: u64) -> bool {
        if let Some((t, i)) = self.walk_index(vpn) {
            let e = &mut self.tables[t].entries[i];
            if *e & P != 0 && *e & DIRTY != 0 {
                *e &= !DIRTY;
                return true;
            }
        }
        false
    }

    /// Bytes of memory consumed by the table structure itself.
    pub fn footprint_bytes(&self) -> usize {
        self.tables.len() * ENTRIES * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pte_encoding_roundtrips() {
        let cases = [
            Pte::None,
            Pte::Local {
                frame: 0,
                accessed: false,
                dirty: false,
            },
            Pte::Local {
                frame: 123_456,
                accessed: true,
                dirty: false,
            },
            Pte::Local {
                frame: u32::MAX >> 4,
                accessed: true,
                dirty: true,
            },
            Pte::Remote { slot: 0 },
            Pte::Remote {
                slot: (1 << 36) - 1,
            },
            Pte::Fetching { inflight: 77 },
            Pte::Action { action: 0xFFFF },
        ];
        for c in cases {
            assert_eq!(Pte::decode(c.encode()), c, "case {c:?}");
        }
    }

    #[test]
    fn tags_use_the_three_low_bits() {
        // The paper's encoding trick: user/write/present distinguish tags.
        assert_eq!(Pte::Remote { slot: 5 }.encode() & 0b111, 0b010);
        assert_eq!(Pte::Fetching { inflight: 5 }.encode() & 0b111, 0b100);
        assert_eq!(Pte::Action { action: 5 }.encode() & 0b111, 0b110);
        assert_eq!(
            Pte::Local {
                frame: 5,
                accessed: false,
                dirty: false
            }
            .encode()
                & 1,
            1
        );
    }

    #[test]
    fn sparse_lookups_default_to_none() {
        let pt = PageTable::new();
        assert_eq!(pt.get(0), Pte::None);
        assert_eq!(pt.get((1 << 36) - 1), Pte::None);
    }

    #[test]
    fn set_get_across_distant_vpns() {
        let mut pt = PageTable::new();
        let vpns = [
            0u64,
            1,
            511,
            512,
            513,
            1 << 18,
            (1 << 27) + 42,
            (1 << 36) - 1,
        ];
        for (i, &v) in vpns.iter().enumerate() {
            pt.set(
                v,
                Pte::Local {
                    frame: i as u32,
                    accessed: false,
                    dirty: false,
                },
            );
        }
        for (i, &v) in vpns.iter().enumerate() {
            assert_eq!(
                pt.get(v),
                Pte::Local {
                    frame: i as u32,
                    accessed: false,
                    dirty: false
                }
            );
        }
        assert_eq!(pt.resident(), vpns.len());
    }

    #[test]
    fn resident_count_tracks_transitions() {
        let mut pt = PageTable::new();
        pt.set(7, Pte::Remote { slot: 7 });
        assert_eq!(pt.resident(), 0);
        pt.set(
            7,
            Pte::Local {
                frame: 1,
                accessed: false,
                dirty: false,
            },
        );
        assert_eq!(pt.resident(), 1);
        pt.set(7, Pte::Fetching { inflight: 0 });
        assert_eq!(pt.resident(), 0);
    }

    #[test]
    fn access_flags_behave_like_hardware() {
        let mut pt = PageTable::new();
        pt.set(
            9,
            Pte::Local {
                frame: 3,
                accessed: false,
                dirty: false,
            },
        );
        let gen = pt.generation();
        pt.mark_access(9, false);
        assert!(pt.is_accessed(9));
        assert_eq!(pt.generation(), gen, "MMU flag updates don't shoot TLBs");
        assert!(!matches!(pt.get(9), Pte::Local { dirty: true, .. }));
        pt.mark_access(9, true);
        assert!(matches!(pt.get(9), Pte::Local { dirty: true, .. }));
        assert!(pt.clear_accessed(9));
        assert!(!pt.clear_accessed(9));
        assert!(pt.clear_dirty(9));
        assert!(!pt.clear_dirty(9));
        // Flags on non-local PTEs are inert.
        pt.set(10, Pte::Remote { slot: 10 });
        pt.mark_access(10, true);
        assert_eq!(pt.get(10), Pte::Remote { slot: 10 });
    }

    #[test]
    fn generation_bumps_on_mapping_changes() {
        let mut pt = PageTable::new();
        let g0 = pt.generation();
        pt.set(1, Pte::Remote { slot: 1 });
        assert!(pt.generation() > g0);
    }
}
