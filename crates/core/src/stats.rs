//! DiLOS node statistics: fault counts and the latency breakdown.
//!
//! The breakdown mirrors the phases Figures 1 and 6 plot, so the benches can
//! print the same stacked bars (as table rows) for DiLOS and Fastswap.

use dilos_sim::Ns;

/// Accumulated per-phase fault-handling time (sums over all major faults).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultBreakdown {
    /// Hardware exception delivery + OS exception entry.
    pub exception: Ns,
    /// Unified-page-table check (the only data structure on the path).
    pub check: Ns,
    /// Waiting for a free local frame (zero when eager eviction keeps up).
    pub alloc_wait: Ns,
    /// Waiting on the remote fetch.
    pub fetch: Ns,
    /// Mapping the fetched page into the page table.
    pub map: Ns,
    /// Direct reclamation performed inside the handler (zero for DiLOS by
    /// design; nonzero under the `direct_reclaim` ablation).
    pub reclaim: Ns,
    /// Number of major faults folded into the sums.
    pub count: u64,
}

impl FaultBreakdown {
    /// Average total fault latency.
    pub fn avg_total(&self) -> Ns {
        if self.count == 0 {
            return 0;
        }
        (self.exception + self.check + self.alloc_wait + self.fetch + self.map + self.reclaim)
            / self.count
    }

    /// Per-phase raw sums `(label, ns)` in plot order. The labels match the
    /// span profiler's phase names, so trace-derived phase totals can be
    /// cross-checked against these hand-maintained counters directly.
    pub fn sums(&self) -> [(&'static str, Ns); 6] {
        [
            ("exception", self.exception),
            ("check", self.check),
            ("alloc", self.alloc_wait),
            ("fetch", self.fetch),
            ("map", self.map),
            ("reclaim", self.reclaim),
        ]
    }

    /// Per-phase averages `(label, ns)` in plot order.
    pub fn avg_phases(&self) -> [(&'static str, Ns); 6] {
        let d = self.count.max(1);
        [
            ("exception", self.exception / d),
            ("pte-check", self.check / d),
            ("alloc-wait", self.alloc_wait / d),
            ("fetch", self.fetch / d),
            ("map", self.map / d),
            ("reclaim", self.reclaim / d),
        ]
    }
}

/// Counters a DiLOS node maintains (reported by every bench).
#[derive(Debug, Clone, Copy, Default)]
pub struct DilosStats {
    /// Faults that issued a demand fetch to the memory node.
    pub major_faults: u64,
    /// Faults that only waited on an in-flight (prefetched) page.
    pub minor_faults: u64,
    /// First-touch zero-fill faults (no network traffic).
    pub zero_fills: u64,
    /// Pages prefetched.
    pub prefetch_issued: u64,
    /// Prefetched pages later observed accessed by the hit tracker.
    pub prefetch_hits: u64,
    /// Pages evicted by the reclaimer.
    pub evictions: u64,
    /// Dirty pages written back by the cleaner.
    pub writebacks: u64,
    /// Evictions that used a guide vector instead of a full page.
    pub guided_evictions: u64,
    /// Fetches served from an action PTE's vector.
    pub guided_fetches: u64,
    /// Eviction bytes *not* sent thanks to guided paging.
    pub writeback_bytes_saved: u64,
    /// Fetch bytes *not* pulled thanks to guided paging.
    pub fetch_bytes_saved: u64,
    /// Subpage fetches issued by prefetch guides.
    pub subpage_fetches: u64,
    /// Accesses served from resident pages.
    pub local_hits: u64,
    /// The fault-latency breakdown.
    pub breakdown: FaultBreakdown,
}

impl DilosStats {
    /// Total page faults (major + minor).
    pub fn total_faults(&self) -> u64 {
        self.major_faults + self.minor_faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_averages() {
        let b = FaultBreakdown {
            exception: 570 * 4,
            check: 100 * 4,
            alloc_wait: 0,
            fetch: 2_000 * 4,
            map: 150 * 4,
            reclaim: 0,
            count: 4,
        };
        assert_eq!(b.avg_total(), 570 + 100 + 2_000 + 150);
        let phases = b.avg_phases();
        assert_eq!(phases[0], ("exception", 570));
        assert_eq!(phases[3], ("fetch", 2_000));
    }

    #[test]
    fn empty_breakdown_is_zero() {
        let b = FaultBreakdown::default();
        assert_eq!(b.avg_total(), 0);
        assert!(b.avg_phases().iter().all(|&(_, v)| v == 0));
    }
}
