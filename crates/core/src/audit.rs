//! Online invariant auditing over the trace stream.
//!
//! The [`Auditor`] attaches to a recording
//! [`TraceSink`](dilos_sim::TraceSink) and checks, event by event, the
//! invariants the paging subsystem must never break:
//!
//! - **Frame conservation** — a frame is allocated at most once at a time;
//!   every free matches a prior alloc; `allocs − frees` equals the number
//!   of frames in use.
//! - **PTE state-machine legality** — every `PteTransition` follows an edge
//!   of the DiLOS unified-page-table automaton (§4.1/§4.2): pages reach
//!   `local` only through zero-fill (`none → local`) or a completed fetch
//!   (`fetching → local`), leave it only by eviction (`local → remote`,
//!   `local → action`), and fetches start only from `remote`/`action`.
//! - **No lost in-flight fetches** — every `PrefetchIssue` is eventually
//!   consumed by exactly one `PrefetchLand` (mapped or promoted by a minor
//!   fault) or `PrefetchCancel` (freed before landing); nothing lands or
//!   cancels twice.
//! - **LRU membership consistency** — inserts are of non-members, removals
//!   of members.
//! - **Fault nesting** — a core never opens a second fault before closing
//!   the first.
//! - **Link-bandwidth conservation** — per-class byte totals accumulated
//!   from `LinkTransfer` events equal the fabric's own accounting (checked
//!   by [`Dilos::audit_report`](crate::Dilos::audit_report)).
//! - **No acknowledged write lost** — every `IntentAppend` (a memnode
//!   acknowledging a write after durably logging its intent) must be
//!   covered by a later `Checkpoint` or redone by a `RecoveryReplay`
//!   before that node's `RecoveryComplete`; an intent still pending at
//!   recovery completion is an acknowledged write the crash lost.
//! - **No frame resurrected** — a freed frame must be re-allocated (a
//!   fresh `FrameAlloc`) before it may re-enter the LRU; an `LruInsert` of
//!   a frame sitting on the free list means recovery or repair revived
//!   stale state.
//!
//! Violations are recorded as human-readable strings, in event order, and
//! capped so a broken run cannot exhaust memory. A clean run reports none.

// Ordered containers: the auditor iterates these into reports, and
// report order must be deterministic run-to-run.
use std::collections::{BTreeMap, BTreeSet};

use dilos_sim::{FaultKind, FaultPhase, Ns, PteClass, ServiceClass, TraceEvent, TraceObserver};

/// Cap on recorded violations (further ones are counted, not stored).
const MAX_VIOLATIONS: usize = 64;

/// Is `from → to` an edge of the DiLOS PTE automaton?
///
/// Self-loops are legal (an aborted prefetch re-inserts its action vector:
/// `action → action`), and any state may drop to `none` via `ddc_free`.
pub fn legal_pte_transition(from: PteClass, to: PteClass) -> bool {
    use PteClass as P;
    from == to
        || matches!(
            (from, to),
            (_, P::None)
                | (P::None, P::Local)
                | (P::Remote, P::Fetching)
                | (P::Action, P::Fetching)
                | (P::Fetching, P::Local)
                | (P::Local, P::Remote)
                | (P::Local, P::Action)
        )
}

/// The online invariant checker. Attach with
/// [`TraceSink::attach`](dilos_sim::TraceSink::attach); it sees every event
/// synchronously and accumulates both violations and cross-checkable
/// totals.
#[derive(Default)]
pub struct Auditor {
    violations: Vec<String>,
    suppressed: u64,

    allocated: BTreeSet<u32>,
    allocs: u64,
    frees: u64,
    /// Per-tenant frame-conservation bound: the node's local-frame quota.
    /// When set, holding more frames than this at any instant is flagged —
    /// in a shared cluster it means one tenant is eating a neighbour's
    /// local memory.
    frame_quota: Option<usize>,

    outstanding: BTreeSet<u64>,
    issues: u64,
    lands: u64,
    cancels: u64,

    lru: BTreeSet<u64>,

    open_fault: BTreeMap<u8, u64>,
    majors: u64,
    minors: u64,
    zero_fills: u64,
    fault_ends: u64,
    phase_sums: [Ns; 6],

    evictions: u64,
    guide_invocations: u64,

    rdma_issued: [u64; 5],
    rdma_completed: [u64; 5],
    link_tx: [u64; 5],
    link_rx: [u64; 5],

    reclaim_open: bool,
    reclaim_episodes: u64,

    /// Per-memnode acknowledged intents not yet covered by a checkpoint
    /// (mirrors each node's durable write-intent log).
    pending_intents: BTreeMap<u8, BTreeSet<u64>>,
    intent_appends: u64,
    checkpoints: u64,
    replays: u64,
    crashes: u64,
    recoveries: u64,

    /// Frames currently on the free list (freed and not re-allocated):
    /// none of these may re-enter the LRU.
    freed_frames: BTreeSet<u32>,
}

impl std::fmt::Debug for Auditor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Auditor")
            .field("violations", &self.violation_count())
            .field("frames_in_use", &self.allocated.len())
            .field("outstanding_fetches", &self.outstanding.len())
            .finish_non_exhaustive()
    }
}

impl Auditor {
    /// A fresh auditor with no recorded history.
    pub fn new() -> Self {
        Self::default()
    }

    fn flag(&mut self, t: Ns, msg: String) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(format!("[t={t}] {msg}"));
        } else {
            self.suppressed += 1;
        }
    }

    /// True when no invariant has been violated so far.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.suppressed == 0
    }

    /// The recorded violations, in event order (capped; see
    /// [`violation_count`](Self::violation_count) for the true total).
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Total violations observed, including any beyond the storage cap.
    pub fn violation_count(&self) -> u64 {
        self.violations.len() as u64 + self.suppressed
    }

    /// Frames currently allocated according to the trace.
    pub fn frames_in_use(&self) -> usize {
        self.allocated.len()
    }

    /// Arms the per-tenant frame-conservation invariant: the set of live
    /// frames must never exceed `quota` (the tenant's local-memory
    /// allotment).
    pub fn set_frame_quota(&mut self, quota: usize) {
        self.frame_quota = Some(quota);
    }

    /// `(allocs, frees)` observed so far.
    pub fn frame_flow(&self) -> (u64, u64) {
        (self.allocs, self.frees)
    }

    /// VPNs with an issued but not yet landed/cancelled fetch, sorted.
    pub fn outstanding_fetches(&self) -> Vec<u64> {
        self.outstanding.iter().copied().collect()
    }

    /// `(issued, landed, cancelled)` prefetch lifecycle counts.
    pub fn prefetch_flow(&self) -> (u64, u64, u64) {
        (self.issues, self.lands, self.cancels)
    }

    /// Current LRU membership count according to the trace.
    pub fn lru_members(&self) -> usize {
        self.lru.len()
    }

    /// `(major, minor, zero_fill)` fault counts from `FaultBegin` events.
    pub fn fault_counts(&self) -> (u64, u64, u64) {
        (self.majors, self.minors, self.zero_fills)
    }

    /// `FaultEnd` events observed (equals the sum of
    /// [`fault_counts`](Self::fault_counts) on a clean run).
    pub fn fault_ends(&self) -> u64 {
        self.fault_ends
    }

    /// Accumulated duration of one fault phase across all faults.
    pub fn phase_sum(&self, phase: FaultPhase) -> Ns {
        self.phase_sums[phase_idx(phase)]
    }

    /// Evictions observed.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Guide invocations observed.
    pub fn guide_invocations(&self) -> u64 {
        self.guide_invocations
    }

    /// Reclaim episodes observed.
    pub fn reclaim_episodes(&self) -> u64 {
        self.reclaim_episodes
    }

    /// `(appends, checkpoints, replays)` write-intent lifecycle counts.
    pub fn intent_flow(&self) -> (u64, u64, u64) {
        (self.intent_appends, self.checkpoints, self.replays)
    }

    /// `(crashes, recoveries)` observed on the trace.
    pub fn crash_flow(&self) -> (u64, u64) {
        (self.crashes, self.recoveries)
    }

    /// Acknowledged intents not yet covered by a checkpoint, summed over
    /// all memory nodes (mirrors the pool's total intent-log depth).
    pub fn pending_intents(&self) -> u64 {
        self.pending_intents.values().map(|s| s.len() as u64).sum()
    }

    /// `(tx, rx)` bytes the trace attributes to `class` on the wire.
    pub fn link_bytes(&self, class: ServiceClass) -> (u64, u64) {
        (self.link_tx[class.idx()], self.link_rx[class.idx()])
    }

    /// `(issued, completed)` RDMA verbs for `class`.
    pub fn rdma_flow(&self, class: ServiceClass) -> (u64, u64) {
        (
            self.rdma_issued[class.idx()],
            self.rdma_completed[class.idx()],
        )
    }

    /// End-of-run checks that only make sense once the system is quiescent:
    /// open faults and verb issue/complete pairing. (Outstanding fetches are
    /// *not* flagged here — the owner cross-checks them against its in-flight
    /// table, since prefetches may legitimately be pending at shutdown.)
    pub fn final_checks(&mut self) {
        let open: Vec<(u8, u64)> = self.open_fault.iter().map(|(&c, &v)| (c, v)).collect();
        for (core, vpn) in open {
            self.flag(
                0,
                format!("fault on core {core} for vpn {vpn:#x} never ended"),
            );
        }
        for class in ServiceClass::ALL {
            let (i, c) = self.rdma_flow(class);
            if i != c {
                self.flag(
                    0,
                    format!("{} verbs: {i} issued but {c} completed", class.label()),
                );
            }
        }
        if self.reclaim_open {
            self.flag(0, "reclaim episode never ended".to_string());
        }
    }
}

fn phase_idx(phase: FaultPhase) -> usize {
    match phase {
        FaultPhase::Exception => 0,
        FaultPhase::Check => 1,
        FaultPhase::Alloc => 2,
        FaultPhase::Fetch => 3,
        FaultPhase::Map => 4,
        FaultPhase::Reclaim => 5,
    }
}

impl TraceObserver for Auditor {
    fn on_event(&mut self, t: Ns, ev: &TraceEvent) {
        match *ev {
            TraceEvent::FaultBegin { core, vpn, kind } => {
                if let Some(&open) = self.open_fault.get(&core) {
                    self.flag(
                        t,
                        format!(
                            "core {core} began a fault on vpn {vpn:#x} while one on \
                             vpn {open:#x} is still open"
                        ),
                    );
                }
                self.open_fault.insert(core, vpn);
                match kind {
                    FaultKind::Major => self.majors += 1,
                    FaultKind::Minor => self.minors += 1,
                    FaultKind::ZeroFill => self.zero_fills += 1,
                }
            }
            TraceEvent::FaultPhase { core, phase, dur } => {
                if !self.open_fault.contains_key(&core) {
                    self.flag(t, format!("fault phase on core {core} with no open fault"));
                }
                self.phase_sums[phase_idx(phase)] += dur;
            }
            TraceEvent::FaultEnd { core, vpn } => {
                if self.open_fault.remove(&core).is_none() {
                    self.flag(
                        t,
                        format!("core {core} ended a fault on vpn {vpn:#x} it never began"),
                    );
                }
                self.fault_ends += 1;
            }
            TraceEvent::RdmaIssue { class, .. } => {
                self.rdma_issued[class.idx()] += 1;
            }
            TraceEvent::RdmaComplete { class, .. } => {
                self.rdma_completed[class.idx()] += 1;
                if self.rdma_completed[class.idx()] > self.rdma_issued[class.idx()] {
                    self.flag(
                        t,
                        format!("{} verb completed without a matching issue", class.label()),
                    );
                }
            }
            TraceEvent::LinkTransfer {
                class,
                bytes,
                inbound,
                ..
            } => {
                if inbound {
                    self.link_rx[class.idx()] += bytes as u64;
                } else {
                    self.link_tx[class.idx()] += bytes as u64;
                }
            }
            TraceEvent::MemAccess { .. } => {}
            TraceEvent::PrefetchIssue { vpn } => {
                self.issues += 1;
                if !self.outstanding.insert(vpn) {
                    self.flag(
                        t,
                        format!("prefetch issued for vpn {vpn:#x} which is already in flight"),
                    );
                }
            }
            TraceEvent::PrefetchLand { vpn } => {
                self.lands += 1;
                if !self.outstanding.remove(&vpn) {
                    self.flag(
                        t,
                        format!("fetch for vpn {vpn:#x} landed without a matching issue"),
                    );
                }
            }
            TraceEvent::PrefetchCancel { vpn } => {
                self.cancels += 1;
                if !self.outstanding.remove(&vpn) {
                    self.flag(
                        t,
                        format!("fetch for vpn {vpn:#x} cancelled without a matching issue"),
                    );
                }
            }
            TraceEvent::FrameAlloc { frame } => {
                self.allocs += 1;
                self.freed_frames.remove(&frame);
                if !self.allocated.insert(frame) {
                    self.flag(
                        t,
                        format!("frame {frame} allocated while already allocated"),
                    );
                }
                if let Some(quota) = self.frame_quota {
                    if self.allocated.len() > quota {
                        self.flag(
                            t,
                            format!(
                                "frame quota exceeded: {} frames live, quota {quota}",
                                self.allocated.len()
                            ),
                        );
                    }
                }
            }
            TraceEvent::FrameFree { frame } => {
                self.frees += 1;
                self.freed_frames.insert(frame);
                if !self.allocated.remove(&frame) {
                    self.flag(t, format!("double free of frame {frame}"));
                }
            }
            TraceEvent::PteTransition { vpn, from, to } => {
                if !legal_pte_transition(from, to) {
                    self.flag(
                        t,
                        format!(
                            "illegal PTE transition {} → {} for vpn {vpn:#x}",
                            from.label(),
                            to.label()
                        ),
                    );
                }
            }
            TraceEvent::LruInsert { vpn } => {
                // No frame resurrected: an LRU key that is a frame sitting
                // on the free list re-entered circulation without a fresh
                // allocation. (Fastswap keys its LRU by vpn, but its vpns
                // are orders of magnitude above any frame id, so the
                // membership test cannot false-positive there.)
                if u32::try_from(vpn).is_ok_and(|f| self.freed_frames.contains(&f)) {
                    self.flag(t, format!("freed frame {vpn} resurrected in the LRU"));
                }
                if !self.lru.insert(vpn) {
                    self.flag(t, format!("LRU insert of member key {vpn:#x}"));
                }
            }
            TraceEvent::LruRemove { vpn } => {
                if !self.lru.remove(&vpn) {
                    self.flag(t, format!("LRU removal of non-member key {vpn:#x}"));
                }
            }
            TraceEvent::ReclaimBegin { .. } => {
                if self.reclaim_open {
                    self.flag(t, "nested reclaim episode".to_string());
                }
                self.reclaim_open = true;
                self.reclaim_episodes += 1;
            }
            TraceEvent::ReclaimEnd { .. } => {
                if !self.reclaim_open {
                    self.flag(t, "reclaim episode ended without beginning".to_string());
                }
                self.reclaim_open = false;
            }
            TraceEvent::Evict { .. } => {
                self.evictions += 1;
            }
            TraceEvent::GuideInvoke { .. } => {
                self.guide_invocations += 1;
            }
            TraceEvent::IntentAppend { node, seq } => {
                self.intent_appends += 1;
                if !self.pending_intents.entry(node).or_default().insert(seq) {
                    self.flag(t, format!("node {node} acknowledged intent {seq} twice"));
                }
            }
            TraceEvent::Checkpoint { node, upto } => {
                self.checkpoints += 1;
                // The checkpoint durably covers every intent up to `upto`:
                // only later acks remain pending.
                if let Some(set) = self.pending_intents.get_mut(&node) {
                    *set = set.split_off(&(upto + 1));
                }
            }
            TraceEvent::NodeCrash { node } => {
                self.crashes += 1;
                // The crash loses only volatile state; the pending set
                // mirrors the durable log, which survives — nothing to do
                // until recovery reports what it replayed.
                let _ = node;
            }
            TraceEvent::RecoveryReplay { node, seq } => {
                self.replays += 1;
                if !self.pending_intents.entry(node).or_default().remove(&seq) {
                    self.flag(
                        t,
                        format!(
                            "node {node} replayed intent {seq} that was never \
                             acknowledged (or already checkpointed)"
                        ),
                    );
                }
            }
            TraceEvent::RecoveryComplete { node, .. } => {
                self.recoveries += 1;
                // No acknowledged write lost: every intent acked before the
                // crash must have been checkpointed or replayed by now.
                if let Some(set) = self.pending_intents.get_mut(&node) {
                    let lost: Vec<u64> = set.iter().copied().collect();
                    set.clear();
                    for seq in lost {
                        self.flag(
                            t,
                            format!(
                                "acknowledged write lost: node {node} intent {seq} \
                                 neither checkpointed nor replayed at recovery"
                            ),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dilos_sim::TraceSink;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn audited_sink() -> (TraceSink, Rc<RefCell<Auditor>>) {
        let s = TraceSink::recording();
        let a = Rc::new(RefCell::new(Auditor::new()));
        s.attach(a.clone());
        (s, a)
    }

    #[test]
    fn clean_stream_stays_clean() {
        let (s, a) = audited_sink();
        s.emit(1, TraceEvent::FrameAlloc { frame: 3 });
        s.emit(
            2,
            TraceEvent::PteTransition {
                vpn: 9,
                from: PteClass::None,
                to: PteClass::Local,
            },
        );
        s.emit(3, TraceEvent::LruInsert { vpn: 3 });
        s.emit(4, TraceEvent::LruRemove { vpn: 3 });
        s.emit(5, TraceEvent::FrameFree { frame: 3 });
        a.borrow_mut().final_checks();
        assert!(a.borrow().is_clean(), "{:?}", a.borrow().violations());
        assert_eq!(a.borrow().frames_in_use(), 0);
        assert_eq!(a.borrow().frame_flow(), (1, 1));
    }

    #[test]
    fn frame_quota_violation_is_flagged() {
        let s = TraceSink::recording();
        let mut auditor = Auditor::new();
        auditor.set_frame_quota(2);
        let a = Rc::new(RefCell::new(auditor));
        s.attach(a.clone());
        s.emit(1, TraceEvent::FrameAlloc { frame: 0 });
        s.emit(2, TraceEvent::FrameAlloc { frame: 1 });
        assert!(a.borrow().is_clean(), "within quota is clean");
        s.emit(3, TraceEvent::FrameAlloc { frame: 2 });
        {
            let a = a.borrow();
            assert_eq!(a.violation_count(), 1);
            assert!(
                a.violations()[0].contains("frame quota exceeded: 3 frames live, quota 2"),
                "{:?}",
                a.violations()
            );
        }
        // Dropping back under quota and re-allocating stays clean.
        s.emit(4, TraceEvent::FrameFree { frame: 2 });
        s.emit(5, TraceEvent::FrameFree { frame: 1 });
        s.emit(6, TraceEvent::FrameAlloc { frame: 1 });
        assert_eq!(a.borrow().violation_count(), 1);
    }

    #[test]
    fn double_free_is_flagged() {
        let (s, a) = audited_sink();
        s.emit(1, TraceEvent::FrameAlloc { frame: 7 });
        s.emit(2, TraceEvent::FrameFree { frame: 7 });
        s.emit(3, TraceEvent::FrameFree { frame: 7 });
        let a = a.borrow();
        assert_eq!(a.violation_count(), 1);
        assert!(a.violations()[0].contains("double free of frame 7"));
    }

    #[test]
    fn illegal_pte_edges_are_flagged() {
        // Fastswap-style swap-in (no fetching hop) is illegal under DiLOS.
        assert!(!legal_pte_transition(PteClass::Remote, PteClass::Local));
        assert!(!legal_pte_transition(PteClass::Fetching, PteClass::Remote));
        assert!(!legal_pte_transition(PteClass::None, PteClass::Fetching));
        assert!(legal_pte_transition(PteClass::Action, PteClass::Action));
        assert!(legal_pte_transition(PteClass::Local, PteClass::None));
        let (s, a) = audited_sink();
        s.emit(
            1,
            TraceEvent::PteTransition {
                vpn: 4,
                from: PteClass::Remote,
                to: PteClass::Local,
            },
        );
        assert!(a.borrow().violations()[0].contains("illegal PTE transition"));
    }

    #[test]
    fn unbalanced_prefetch_lifecycle_is_flagged() {
        let (s, a) = audited_sink();
        s.emit(1, TraceEvent::PrefetchIssue { vpn: 11 });
        s.emit(2, TraceEvent::PrefetchLand { vpn: 11 });
        s.emit(3, TraceEvent::PrefetchLand { vpn: 11 });
        s.emit(4, TraceEvent::PrefetchCancel { vpn: 12 });
        let a = a.borrow();
        assert_eq!(a.violation_count(), 2);
        assert_eq!(a.prefetch_flow(), (1, 2, 1));
    }

    #[test]
    fn fault_nesting_is_flagged() {
        let (s, a) = audited_sink();
        s.emit(
            1,
            TraceEvent::FaultBegin {
                core: 0,
                vpn: 1,
                kind: FaultKind::Major,
            },
        );
        s.emit(
            2,
            TraceEvent::FaultBegin {
                core: 0,
                vpn: 2,
                kind: FaultKind::Major,
            },
        );
        assert_eq!(a.borrow().violation_count(), 1);
    }

    #[test]
    fn final_checks_catch_unpaired_verbs_and_open_faults() {
        let (s, a) = audited_sink();
        s.emit(
            1,
            TraceEvent::RdmaIssue {
                class: ServiceClass::Fault,
                write: false,
                node: 0,
                core: 0,
                bytes: 4096,
            },
        );
        s.emit(
            2,
            TraceEvent::FaultBegin {
                core: 1,
                vpn: 5,
                kind: FaultKind::Minor,
            },
        );
        let mut aud = a.borrow_mut();
        assert!(aud.is_clean());
        aud.final_checks();
        assert_eq!(aud.violation_count(), 2);
    }

    #[test]
    fn clean_crash_recovery_cycle_stays_clean() {
        let (s, a) = audited_sink();
        s.emit(1, TraceEvent::IntentAppend { node: 1, seq: 1 });
        s.emit(2, TraceEvent::IntentAppend { node: 1, seq: 2 });
        s.emit(3, TraceEvent::Checkpoint { node: 1, upto: 1 });
        s.emit(4, TraceEvent::IntentAppend { node: 1, seq: 3 });
        s.emit(5, TraceEvent::NodeCrash { node: 1 });
        // Recovery replays everything the checkpoint did not cover.
        s.emit(6, TraceEvent::RecoveryReplay { node: 1, seq: 2 });
        s.emit(7, TraceEvent::RecoveryReplay { node: 1, seq: 3 });
        s.emit(
            8,
            TraceEvent::RecoveryComplete {
                node: 1,
                replayed: 2,
                reconciled: 0,
            },
        );
        let mut aud = a.borrow_mut();
        aud.final_checks();
        assert!(aud.is_clean(), "{:?}", aud.violations());
        assert_eq!(aud.intent_flow(), (3, 1, 2));
        assert_eq!(aud.crash_flow(), (1, 1));
        assert_eq!(aud.pending_intents(), 0);
    }

    #[test]
    fn acknowledged_write_lost_is_flagged() {
        let (s, a) = audited_sink();
        s.emit(1, TraceEvent::IntentAppend { node: 0, seq: 1 });
        s.emit(2, TraceEvent::IntentAppend { node: 0, seq: 2 });
        s.emit(3, TraceEvent::NodeCrash { node: 0 });
        // Intent 2 was acked but is neither checkpointed nor replayed.
        s.emit(4, TraceEvent::RecoveryReplay { node: 0, seq: 1 });
        s.emit(
            5,
            TraceEvent::RecoveryComplete {
                node: 0,
                replayed: 1,
                reconciled: 0,
            },
        );
        let a = a.borrow();
        assert_eq!(a.violation_count(), 1);
        assert!(
            a.violations()[0].contains("acknowledged write lost: node 0 intent 2"),
            "{:?}",
            a.violations()
        );
    }

    #[test]
    fn checkpoint_covers_acknowledged_intents() {
        let (s, a) = audited_sink();
        s.emit(1, TraceEvent::IntentAppend { node: 2, seq: 1 });
        s.emit(2, TraceEvent::IntentAppend { node: 2, seq: 2 });
        s.emit(3, TraceEvent::Checkpoint { node: 2, upto: 2 });
        s.emit(4, TraceEvent::NodeCrash { node: 2 });
        // Nothing to replay: the checkpoint already covers both acks.
        s.emit(
            5,
            TraceEvent::RecoveryComplete {
                node: 2,
                replayed: 0,
                reconciled: 4,
            },
        );
        assert!(a.borrow().is_clean(), "{:?}", a.borrow().violations());
    }

    #[test]
    fn replay_of_unacknowledged_intent_is_flagged() {
        let (s, a) = audited_sink();
        s.emit(1, TraceEvent::RecoveryReplay { node: 0, seq: 9 });
        let a = a.borrow();
        assert_eq!(a.violation_count(), 1);
        assert!(
            a.violations()[0].contains("replayed intent 9 that was never"),
            "{:?}",
            a.violations()
        );
    }

    #[test]
    fn double_acknowledged_intent_is_flagged() {
        let (s, a) = audited_sink();
        s.emit(1, TraceEvent::IntentAppend { node: 0, seq: 5 });
        s.emit(2, TraceEvent::IntentAppend { node: 0, seq: 5 });
        let a = a.borrow();
        assert_eq!(a.violation_count(), 1);
        assert!(a.violations()[0].contains("acknowledged intent 5 twice"));
    }

    #[test]
    fn resurrected_frame_is_flagged() {
        let (s, a) = audited_sink();
        s.emit(1, TraceEvent::FrameAlloc { frame: 4 });
        s.emit(2, TraceEvent::LruInsert { vpn: 4 });
        s.emit(3, TraceEvent::LruRemove { vpn: 4 });
        s.emit(4, TraceEvent::FrameFree { frame: 4 });
        // The frame re-enters the LRU without a fresh allocation.
        s.emit(5, TraceEvent::LruInsert { vpn: 4 });
        let a = a.borrow();
        assert!(
            a.violations()
                .iter()
                .any(|v| v.contains("freed frame 4 resurrected in the LRU")),
            "{:?}",
            a.violations()
        );
    }

    #[test]
    fn reallocated_frame_is_not_a_resurrection() {
        let (s, a) = audited_sink();
        s.emit(1, TraceEvent::FrameAlloc { frame: 4 });
        s.emit(2, TraceEvent::LruInsert { vpn: 4 });
        s.emit(3, TraceEvent::LruRemove { vpn: 4 });
        s.emit(4, TraceEvent::FrameFree { frame: 4 });
        // A fresh allocation legitimises the frame again.
        s.emit(5, TraceEvent::FrameAlloc { frame: 4 });
        s.emit(6, TraceEvent::LruInsert { vpn: 4 });
        assert!(a.borrow().is_clean(), "{:?}", a.borrow().violations());
    }

    #[test]
    fn violation_storage_is_capped() {
        let (s, a) = audited_sink();
        for i in 0..(MAX_VIOLATIONS as u32 + 50) {
            s.emit(i as u64, TraceEvent::FrameFree { frame: i });
        }
        let a = a.borrow();
        assert_eq!(a.violations().len(), MAX_VIOLATIONS);
        assert_eq!(a.violation_count(), MAX_VIOLATIONS as u64 + 50);
    }
}
