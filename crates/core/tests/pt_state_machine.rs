//! Property test: the PTE state machine never takes an illegal edge.
//!
//! The node runs random access/free scripts under heavy memory pressure
//! with the invariant auditor attached. The auditor watches every traced
//! `PteTransition` against the legal automaton (`legal_pte_transition`) and
//! simultaneously checks frame conservation, prefetch lifecycles, LRU
//! membership, and the fault-phase/breakdown equalities — so a passing case
//! means the whole event stream was self-consistent, not just that the
//! final answer came out right.

use dilos_core::{legal_pte_transition, Dilos, DilosConfig, NoPrefetch, Readahead, TrendBased};
use dilos_sim::PteClass;
use proptest::prelude::*;

const REGION_PAGES: usize = 48;
const REGION: usize = REGION_PAGES * 4096;

#[derive(Debug, Clone)]
enum Op {
    Write {
        at: usize,
        len: usize,
        stamp: u8,
    },
    Read {
        at: usize,
        len: usize,
    },
    /// Free a whole-page span, then immediately touch it again later ops —
    /// exercises the `* → None → Local` edges and prefetch cancellation.
    FreePages {
        page: usize,
        pages: usize,
    },
    Compute(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0usize..REGION, 1usize..6000, any::<u8>()).prop_map(|(at, len, stamp)| {
            Op::Write { at, len, stamp }
        }),
        4 => (0usize..REGION, 1usize..6000).prop_map(|(at, len)| Op::Read { at, len }),
        1 => (0usize..REGION_PAGES, 1usize..8).prop_map(|(page, pages)| {
            Op::FreePages { page, pages }
        }),
        1 => (1u64..10_000).prop_map(Op::Compute),
    ]
}

fn prefetcher(choice: u8) -> Box<dyn dilos_core::Prefetcher> {
    match choice % 3 {
        0 => Box::new(NoPrefetch),
        1 => Box::new(Readahead::new()),
        _ => Box::new(TrendBased::new()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random scripts under 3×-overcommit keep the audited event stream
    /// violation-free: no illegal PTE edge, no frame leak, no lost fetch.
    #[test]
    fn random_ops_never_take_an_illegal_pte_edge(
        ops in prop::collection::vec(op_strategy(), 1..100),
        local_pages in 16usize..32,
        pf in any::<u8>(),
    ) {
        let mut node = Dilos::new(DilosConfig {
            local_pages,
            remote_bytes: (REGION as u64 * 2).next_power_of_two(),
            obs: dilos_sim::Observability::audited(),
            ..DilosConfig::default()
        });
        node.set_prefetcher(prefetcher(pf));
        let base = node.ddc_alloc(REGION);

        for op in &ops {
            match *op {
                Op::Write { at, len, stamp } => {
                    let len = len.min(REGION - at);
                    if len == 0 {
                        continue;
                    }
                    let data: Vec<u8> = (0..len).map(|i| stamp.wrapping_add(i as u8)).collect();
                    node.write(0, base + at as u64, &data);
                }
                Op::Read { at, len } => {
                    let len = len.min(REGION - at);
                    if len == 0 {
                        continue;
                    }
                    let mut buf = vec![0u8; len];
                    node.read(0, base + at as u64, &mut buf);
                }
                Op::FreePages { page, pages } => {
                    let pages = pages.min(REGION_PAGES - page);
                    if pages == 0 {
                        continue;
                    }
                    node.ddc_free(base + (page * 4096) as u64, pages * 4096);
                }
                Op::Compute(ns) => node.compute(0, ns),
            }
        }

        let report = node.audit_report();
        prop_assert!(report.is_empty(), "audit violations: {:#?}", report);
        prop_assert!(node.trace_digest() != 0, "audited runs record a trace");
    }
}

/// The legal-edge table itself: spot-check the automaton the auditor
/// enforces, including the edges the paper's design rules out.
#[test]
fn automaton_matches_the_design() {
    use PteClass::*;
    // The demand-paging cycle.
    for (from, to) in [
        (None, Local),
        (Local, Remote),
        (Remote, Fetching),
        (Fetching, Local),
        (Local, Action),
        (Action, Fetching),
    ] {
        assert!(legal_pte_transition(from, to), "{from:?} -> {to:?}");
    }
    // Fastswap's shortcut and other corruption signatures are illegal.
    for (from, to) in [
        (Remote, Local),
        (None, Remote),
        (Fetching, Remote),
        (Action, Local),
        (Remote, Action),
    ] {
        assert!(!legal_pte_transition(from, to), "{from:?} -> {to:?}");
    }
}
