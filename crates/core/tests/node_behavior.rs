//! End-to-end behaviour of the DiLOS node: faulting, eviction, prefetching,
//! guides, and the virtual-time accounting the evaluation relies on.

use std::cell::RefCell;
use std::rc::Rc;

use dilos_alloc::Heap;
use dilos_core::{
    Dilos, DilosConfig, GuideOps, HeapPagingGuide, PrefetchGuide, Pte, Readahead, MAP_DDC,
};

const PAGE: usize = 4096;

fn node(local_pages: usize) -> Dilos {
    Dilos::new(DilosConfig {
        local_pages,
        remote_bytes: 1 << 28,
        ..DilosConfig::default()
    })
}

#[test]
fn roundtrip_within_cache() {
    let mut n = node(64);
    let va = n.ddc_alloc(16 * PAGE);
    let data: Vec<u8> = (0..16 * PAGE).map(|i| (i % 251) as u8).collect();
    n.write(0, va, &data);
    let mut out = vec![0u8; data.len()];
    n.read(0, va, &mut out);
    assert_eq!(out, data);
    let s = n.stats();
    assert_eq!(s.major_faults, 0, "working set fits: no remote fetches");
    assert_eq!(s.zero_fills, 16, "one first-touch fault per page");
}

#[test]
fn data_survives_eviction() {
    // Working set 4× the local cache: pages must round-trip through the
    // memory node intact.
    let mut n = node(64);
    let pages = 256usize;
    let va = n.ddc_alloc(pages * PAGE);
    for p in 0..pages {
        let payload = [(p % 256) as u8; 64];
        n.write(0, va + (p * PAGE) as u64 + 128, &payload);
    }
    for p in 0..pages {
        let mut buf = [0u8; 64];
        n.read(0, va + (p * PAGE) as u64 + 128, &mut buf);
        assert!(
            buf.iter().all(|&b| b == (p % 256) as u8),
            "page {p} corrupt"
        );
    }
    let s = n.stats();
    assert!(s.evictions > 0, "pressure must evict");
    assert!(s.writebacks > 0, "dirty pages must be written back");
    assert!(s.major_faults > 0, "evicted pages must be re-fetched");
    assert_eq!(s.zero_fills, pages as u64);
}

#[test]
fn reclaim_stays_off_the_critical_path() {
    // DiLOS's claim: background eager eviction keeps direct reclaim at zero.
    let mut n = node(64);
    let va = n.ddc_alloc(256 * PAGE);
    for p in 0..256u64 {
        n.write_u64(0, va + p * PAGE as u64, p);
    }
    for p in 0..256u64 {
        let _ = n.read_u64(0, va + p * PAGE as u64);
    }
    let b = n.stats().breakdown;
    assert!(b.count > 0);
    assert_eq!(b.reclaim, 0, "no reclamation inside the fault handler");
    // The paper's Figure 6: total DiLOS fault latency is ~3 µs.
    let avg = b.avg_total();
    assert!((2_000..4_500).contains(&avg), "avg fault {avg} ns");
}

#[test]
fn direct_reclaim_ablation_moves_reclaim_into_the_handler() {
    let mut n = Dilos::new(DilosConfig {
        local_pages: 64,
        remote_bytes: 1 << 28,
        direct_reclaim: true,
        ..DilosConfig::default()
    });
    let va = n.ddc_alloc(256 * PAGE);
    for p in 0..256u64 {
        n.write_u64(0, va + p * PAGE as u64, p);
    }
    for p in 0..256u64 {
        let _ = n.read_u64(0, va + p * PAGE as u64);
    }
    let b = n.stats().breakdown;
    assert!(b.reclaim > 0, "ablation charges reclaim to the handler");
}

#[test]
fn readahead_cuts_major_faults_on_sequential_scan() {
    let run = |prefetch: bool| {
        let mut n = node(128);
        if prefetch {
            n.set_prefetcher(Box::new(Readahead::new()));
        }
        let pages = 512usize;
        let va = n.ddc_alloc(pages * PAGE);
        // Populate, evict, then scan sequentially.
        for p in 0..pages as u64 {
            n.write_u64(0, va + p * PAGE as u64, p);
        }
        for p in 0..pages as u64 {
            assert_eq!(n.read_u64(0, va + p * PAGE as u64), p);
        }
        (*n.stats(), n.now(0))
    };
    let (no_pf, t_none) = run(false);
    let (with_pf, t_ra) = run(true);
    assert!(with_pf.prefetch_issued > 0);
    assert!(
        with_pf.major_faults < no_pf.major_faults / 3,
        "readahead must absorb most majors: {} vs {}",
        with_pf.major_faults,
        no_pf.major_faults
    );
    assert!(
        t_ra < t_none,
        "prefetching must be faster: {t_ra} vs {t_none}"
    );
    // Faults on in-flight pages are DiLOS minor faults.
    assert!(with_pf.minor_faults > 0);
    assert_eq!(no_pf.minor_faults, 0);
}

#[test]
fn repeated_access_hits_the_tlb_without_faults() {
    let mut n = node(64);
    let va = n.ddc_alloc(PAGE);
    n.write_u64(0, va, 7);
    let majors = n.stats().major_faults;
    let zf = n.stats().zero_fills;
    for _ in 0..100 {
        assert_eq!(n.read_u64(0, va), 7);
    }
    assert_eq!(n.stats().major_faults, majors);
    assert_eq!(n.stats().zero_fills, zf);
    assert!(n.stats().local_hits >= 100);
}

#[test]
fn virtual_time_is_deterministic() {
    let run = || {
        let mut n = node(64);
        n.set_prefetcher(Box::new(Readahead::new()));
        let va = n.ddc_alloc(200 * PAGE);
        for p in 0..200u64 {
            n.write_u64(0, va + p * PAGE as u64, p * 3);
        }
        let mut acc = 0u64;
        for p in 0..200u64 {
            acc = acc.wrapping_add(n.read_u64(0, va + p * PAGE as u64));
        }
        (acc, n.now(0))
    };
    assert_eq!(run(), run());
}

#[test]
fn tcp_mode_is_slower() {
    let run = |tcp: bool| {
        let mut n = Dilos::new(DilosConfig {
            local_pages: 64,
            remote_bytes: 1 << 28,
            tcp_mode: tcp,
            ..DilosConfig::default()
        });
        let va = n.ddc_alloc(256 * PAGE);
        for p in 0..256u64 {
            n.write_u64(0, va + p * PAGE as u64, p);
        }
        for p in 0..256u64 {
            let _ = n.read_u64(0, va + p * PAGE as u64);
        }
        n.now(0)
    };
    assert!(run(true) > run(false));
}

#[test]
fn ddc_free_releases_frames() {
    let mut n = node(64);
    let va = n.ddc_alloc(32 * PAGE);
    for p in 0..32u64 {
        n.write_u64(0, va + p * PAGE as u64, p);
    }
    assert_eq!(n.resident_pages(), 32);
    n.ddc_free(va, 32 * PAGE);
    assert_eq!(n.resident_pages(), 0);
    assert!(matches!(n.pte_of(va), Pte::None));
}

#[test]
fn local_mmap_never_touches_the_network() {
    let mut n = node(64);
    let va = n.mmap(8 * PAGE, 0);
    let data = vec![0x5A; 3 * PAGE];
    n.write(0, va + 100, &data);
    let mut out = vec![0u8; data.len()];
    n.read(0, va + 100, &mut out);
    assert_eq!(out, data);
    assert_eq!(n.stats().major_faults, 0);
    assert_eq!(n.stats().zero_fills, 0);
    // DDC mappings live elsewhere.
    let ddc = n.mmap(PAGE, MAP_DDC);
    assert!(ddc < va);
}

#[test]
fn guided_paging_saves_bandwidth_and_preserves_data() {
    // A heap page with one live 512-byte object; eviction under the guide
    // must transfer only that object, and the refetch must restore it.
    let heap = Rc::new(RefCell::new(Heap::new(dilos_core::DDC_BASE, 1 << 22)));
    let mut n = node(64);
    let region = n.ddc_alloc(1 << 22);
    assert_eq!(region, dilos_core::DDC_BASE);
    n.set_paging_guide(Rc::new(RefCell::new(HeapPagingGuide::new(
        Rc::clone(&heap),
        3,
    ))));

    // One live object on its page, rest of the page dead.
    let obj = heap.borrow_mut().malloc(512).unwrap();
    let dead: Vec<u64> = (0..7)
        .map(|_| heap.borrow_mut().malloc(512).unwrap())
        .collect();
    for d in dead {
        heap.borrow_mut().free(d).unwrap();
    }
    n.write(0, obj, &[0xCD; 512]);

    // Force the page out by cycling a large working set.
    let churn = n.ddc_alloc(512 * PAGE);
    for p in 0..512u64 {
        n.write_u64(0, churn + p * PAGE as u64, p);
    }
    assert!(
        !matches!(n.pte_of(obj), Pte::Local { .. }),
        "object page must have been evicted"
    );
    assert!(n.stats().guided_evictions > 0);
    assert!(n.stats().writeback_bytes_saved > 0);

    // Refetch restores the live object via the action vector.
    let mut buf = [0u8; 512];
    n.read(0, obj, &mut buf);
    assert!(buf.iter().all(|&b| b == 0xCD));
    assert!(n.stats().guided_fetches > 0);
    assert!(n.stats().fetch_bytes_saved > 0);
}

/// A linked-list prefetch guide: follows `next` pointers stored at offset 0
/// of each node (one node per page), exactly the Figure 5 scenario.
struct ListGuide {
    issued: usize,
}

impl PrefetchGuide for ListGuide {
    fn on_fault(&mut self, va: u64, ops: &mut dyn GuideOps) {
        // Subpage-fetch the node header (its `next` pointer) and prefetch
        // the page it points to.
        if let Some((bytes, _ready)) = ops.subpage_read(va & !0xFFF, 8) {
            let next = u64::from_le_bytes(bytes[..8].try_into().expect("8-byte subpage"));
            if next != 0 {
                ops.prefetch_page(next);
                self.issued += 1;
            }
        }
    }
}

#[test]
fn prefetch_guide_chases_pointers() {
    let mut n = node(64);
    let pages = 256usize;
    let va = n.ddc_alloc(pages * PAGE);
    // Build a linked list: node p points at node p+1, one node per page.
    for p in 0..pages as u64 {
        let next = if p + 1 < pages as u64 {
            va + (p + 1) * PAGE as u64
        } else {
            0
        };
        n.write_u64(0, va + p * PAGE as u64, next);
    }
    let guide = Rc::new(RefCell::new(ListGuide { issued: 0 }));
    n.set_prefetch_guide(guide.clone());
    assert_eq!(n.prefetcher_name(), "app-aware");

    // Traverse: each fault triggers the guide, which prefetches the next
    // node before we get there.
    let mut cur = va;
    let mut visited = 0;
    while cur != 0 {
        cur = n.read_u64(0, cur);
        visited += 1;
    }
    assert_eq!(visited, pages);
    assert!(guide.borrow().issued > 0, "guide must have prefetched");
    assert!(n.stats().subpage_fetches > 0);
    let s = n.stats();
    // The second half of the traversal runs against evicted pages; the
    // guide must have converted most of those majors into minors/hits.
    assert!(
        s.prefetch_issued > 0 && s.major_faults < pages as u64,
        "majors {} prefetched {}",
        s.major_faults,
        s.prefetch_issued
    );
}

#[test]
fn multicore_barrier_joins_clocks() {
    let mut n = Dilos::new(DilosConfig {
        local_pages: 64,
        cores: 4,
        remote_bytes: 1 << 26,
        ..DilosConfig::default()
    });
    let va = n.ddc_alloc(64 * PAGE);
    for c in 0..4 {
        for p in 0..8u64 {
            n.write_u64(c, va + (c as u64 * 8 + p) * PAGE as u64, p);
        }
    }
    let t = n.barrier();
    assert!(t > 0);
    for c in 0..4 {
        assert_eq!(n.now(c), t);
    }
}

#[test]
fn per_core_queue_pairs_let_cores_fault_in_parallel() {
    // §4.5: every core gets its own fault QP, so two cores demand-fetching
    // at the same instant do not serialize on a queue — only on the shared
    // wire. Compare two cores fetching N pages each against one core
    // fetching 2N.
    let run = |cores: usize, pages_per_core: u64| {
        let mut n = Dilos::new(DilosConfig {
            local_pages: 512,
            remote_bytes: 1 << 26,
            cores,
            ..DilosConfig::default()
        });
        let total = cores as u64 * pages_per_core;
        let va = n.ddc_alloc((total * 4096) as usize);
        for p in 0..total {
            n.write_u64(0, va + p * 4096, p);
        }
        // Evict everything by churning a second region on core 0.
        let churn = n.ddc_alloc(512 * 4096);
        for p in 0..512u64 {
            n.write_u64(0, churn + p * 4096, p);
        }
        // Now fetch back: each core reads its own slice.
        for c in 0..cores {
            for p in 0..pages_per_core {
                let idx = c as u64 * pages_per_core + p;
                assert_eq!(n.read_u64(c, va + idx * 4096), idx);
            }
        }
        n.max_now()
    };
    let one_core = run(1, 128);
    let two_cores = run(2, 64);
    assert!(
        two_cores < one_core,
        "two cores with private QPs must finish sooner: {two_cores} vs {one_core}"
    );
}

#[test]
fn barrier_free_cores_share_the_fabric_fairly() {
    let mut n = Dilos::new(DilosConfig {
        local_pages: 256,
        remote_bytes: 1 << 26,
        cores: 4,
        ..DilosConfig::default()
    });
    let va = n.ddc_alloc(256 * 4096);
    for p in 0..256u64 {
        n.write_u64(0, va + p * 4096, p);
    }
    let churn = n.ddc_alloc(256 * 4096);
    for p in 0..256u64 {
        n.write_u64(0, churn + p * 4096, p);
    }
    // Interleave reads across cores round-robin.
    for p in 0..256u64 {
        let c = (p % 4) as usize;
        assert_eq!(n.read_u64(c, va + p * 4096), p);
    }
    // No core should lag wildly behind the others (fair wire sharing).
    let times: Vec<u64> = (0..4).map(|c| n.now(c)).collect();
    let max = *times.iter().max().expect("4 cores");
    let min = *times.iter().min().expect("4 cores");
    assert!(
        max < min * 3,
        "core clocks too skewed under fair sharing: {times:?}"
    );
}
