//! Model-based property tests for the DiLOS node.
//!
//! A reference flat memory (a `Vec<u8>`) is driven in lockstep with a DiLOS
//! node through random read/write scripts under heavy memory pressure. The
//! invariant is the compatibility contract itself: the paging subsystem is
//! invisible — every read returns exactly what a flat memory would.

use dilos_core::{Dilos, DilosConfig, NoPrefetch, Readahead, TrendBased};
use proptest::prelude::*;

const REGION_PAGES: usize = 64;
const REGION: usize = REGION_PAGES * 4096;

#[derive(Debug, Clone)]
enum Op {
    Write { at: usize, len: usize, stamp: u8 },
    Read { at: usize, len: usize },
    Compute(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0usize..REGION, 1usize..9000, any::<u8>()).prop_map(|(at, len, stamp)| {
            Op::Write { at, len, stamp }
        }),
        4 => (0usize..REGION, 1usize..9000).prop_map(|(at, len)| Op::Read { at, len }),
        1 => (1u64..10_000).prop_map(Op::Compute),
    ]
}

fn prefetcher(choice: u8) -> Box<dyn dilos_core::Prefetcher> {
    match choice % 3 {
        0 => Box::new(NoPrefetch),
        1 => Box::new(Readahead::new()),
        _ => Box::new(TrendBased::new()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random access scripts under 4×-overcommit must behave exactly like
    /// flat memory, for every prefetcher.
    #[test]
    fn node_matches_flat_memory(
        ops in prop::collection::vec(op_strategy(), 1..120),
        local_pages in 16usize..32,
        pf in any::<u8>(),
    ) {
        let mut node = Dilos::new(DilosConfig {
            local_pages,
            remote_bytes: (REGION as u64 * 2).next_power_of_two(),
            ..DilosConfig::default()
        });
        node.set_prefetcher(prefetcher(pf));
        let base = node.ddc_alloc(REGION);
        let mut model = vec![0u8; REGION];
        let mut last_now = 0;

        for op in &ops {
            match *op {
                Op::Write { at, len, stamp } => {
                    let len = len.min(REGION - at);
                    if len == 0 {
                        continue;
                    }
                    let data: Vec<u8> = (0..len).map(|i| stamp.wrapping_add(i as u8)).collect();
                    node.write(0, base + at as u64, &data);
                    model[at..at + len].copy_from_slice(&data);
                }
                Op::Read { at, len } => {
                    let len = len.min(REGION - at);
                    if len == 0 {
                        continue;
                    }
                    let mut buf = vec![0u8; len];
                    node.read(0, base + at as u64, &mut buf);
                    prop_assert_eq!(&buf[..], &model[at..at + len], "read at {} len {}", at, len);
                }
                Op::Compute(ns) => node.compute(0, ns),
            }
            // Virtual time is monotone.
            prop_assert!(node.now(0) >= last_now);
            last_now = node.now(0);
        }

        // Final full verification: every byte survives the paging churn.
        let mut all = vec![0u8; REGION];
        node.read(0, base, &mut all);
        prop_assert_eq!(all, model);

        // Accounting sanity: resident never exceeds the cache.
        prop_assert!(node.resident_pages() <= local_pages);
    }

    /// The same script with the same seed is bit- and time-identical.
    #[test]
    fn node_is_deterministic(
        ops in prop::collection::vec(op_strategy(), 1..60),
        pf in any::<u8>(),
    ) {
        let run = || {
            let mut node = Dilos::new(DilosConfig {
                local_pages: 24,
                remote_bytes: (REGION as u64 * 2).next_power_of_two(),
                ..DilosConfig::default()
            });
            node.set_prefetcher(prefetcher(pf));
            let base = node.ddc_alloc(REGION);
            let mut digest = 0u64;
            for op in &ops {
                match *op {
                    Op::Write { at, len, stamp } => {
                        let len = len.min(REGION - at).max(1);
                        node.write(0, base + at as u64, &vec![stamp; len]);
                    }
                    Op::Read { at, len } => {
                        let len = len.min(REGION - at).max(1);
                        let mut buf = vec![0u8; len];
                        node.read(0, base + at as u64, &mut buf);
                        for b in buf {
                            digest = digest.wrapping_mul(31).wrapping_add(b as u64);
                        }
                    }
                    Op::Compute(ns) => node.compute(0, ns),
                }
            }
            let s = node.stats();
            (digest, node.now(0), s.major_faults, s.minor_faults, s.evictions)
        };
        prop_assert_eq!(run(), run());
    }

    /// ddc_free releases everything it maps, at any pressure.
    #[test]
    fn alloc_free_cycles_never_leak(rounds in 1usize..8, pages in 1usize..48) {
        let mut node = Dilos::new(DilosConfig {
            local_pages: 24,
            remote_bytes: 1 << 24,
            ..DilosConfig::default()
        });
        for r in 0..rounds {
            let va = node.ddc_alloc(pages * 4096);
            for p in 0..pages as u64 {
                node.write_u64(0, va + p * 4096, r as u64 ^ p);
            }
            for p in 0..pages as u64 {
                prop_assert_eq!(node.read_u64(0, va + p * 4096), r as u64 ^ p);
            }
            node.ddc_free(va, pages * 4096);
            prop_assert_eq!(node.resident_pages(), 0, "round {}", r);
        }
    }
}

/// PTE encode/decode is a bijection over the tag space.
mod pte {
    use dilos_core::Pte;
    use proptest::prelude::*;

    fn pte_strategy() -> impl Strategy<Value = Pte> {
        prop_oneof![
            Just(Pte::None),
            (any::<u32>(), any::<bool>(), any::<bool>()).prop_map(|(frame, accessed, dirty)| {
                Pte::Local {
                    frame: frame >> 4,
                    accessed,
                    dirty,
                }
            }),
            (0u64..(1 << 36)).prop_map(|slot| Pte::Remote { slot }),
            any::<u32>().prop_map(|i| Pte::Fetching { inflight: i >> 4 }),
            any::<u32>().prop_map(|a| Pte::Action { action: a >> 4 }),
        ]
    }

    proptest! {
        #[test]
        fn encode_decode_roundtrips(pte in pte_strategy()) {
            prop_assert_eq!(Pte::decode(pte.encode()), pte);
        }

        /// The tag always lives in the three low bits, as §4.1 specifies.
        #[test]
        fn tags_are_distinguished_by_low_bits(pte in pte_strategy()) {
            let bits = pte.encode() & 0b111;
            match pte {
                Pte::None => prop_assert_eq!(bits, 0),
                Pte::Local { .. } => prop_assert_eq!(bits & 1, 1),
                Pte::Remote { .. } => prop_assert_eq!(bits, 0b010),
                Pte::Fetching { .. } => prop_assert_eq!(bits, 0b100),
                Pte::Action { .. } => prop_assert_eq!(bits, 0b110),
            }
        }
    }
}
