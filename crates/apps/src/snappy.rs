//! Snappy compression/decompression over far memory (Figure 7(c,d)).
//!
//! The paper uses Google's Snappy 1.1.8 on sixteen 1 GB files (compression)
//! and thirty 0.5 GB files (decompression). This module implements the
//! actual Snappy wire format from scratch — varint preamble, literal and
//! copy elements, 64 KiB block compression with a hash-table matcher — and a
//! far-memory driver with the same streaming access pattern: read a block,
//! compress locally, append the output.

use crate::farmem::FarMemory;
use dilos_sim::SplitMix64;

/// Compression block size (Snappy's `kBlockSize`).
const BLOCK: usize = 64 * 1024;
/// Hash-table bits for the matcher.
const HASH_BITS: u32 = 14;

/// Compression compute charge per input byte (ns) — Snappy runs at roughly
/// 1.5 GB/s/core on the paper's hardware.
const COMPRESS_NS_PER_BYTE: f64 = 0.65;
/// Decompression compute charge per output byte (ns).
const DECOMPRESS_NS_PER_BYTE: f64 = 0.35;

/// Decompression errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnappyError {
    /// The stream ended mid-element.
    Truncated,
    /// A copy references data before the output start.
    BadOffset,
    /// The preamble length does not match the decoded output.
    LengthMismatch,
}

impl std::fmt::Display for SnappyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnappyError::Truncated => write!(f, "truncated snappy stream"),
            SnappyError::BadOffset => write!(f, "copy offset before stream start"),
            SnappyError::LengthMismatch => write!(f, "decoded length mismatch"),
        }
    }
}

impl std::error::Error for SnappyError {}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7F) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

fn get_varint(input: &[u8]) -> Result<(u64, usize), SnappyError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    for (i, &b) in input.iter().enumerate() {
        v |= u64::from(b & 0x7F) << shift;
        if b < 0x80 {
            return Ok((v, i + 1));
        }
        shift += 7;
        if shift > 63 {
            break;
        }
    }
    Err(SnappyError::Truncated)
}

fn hash4(b: &[u8]) -> usize {
    let v = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
    (v.wrapping_mul(0x1E35_A7BD) >> (32 - HASH_BITS)) as usize
}

fn emit_literal(out: &mut Vec<u8>, lit: &[u8]) {
    let mut rest = lit;
    while !rest.is_empty() {
        let n = rest.len().min(1 << 16);
        let len = n - 1;
        if len < 60 {
            out.push((len as u8) << 2);
        } else if len < (1 << 8) {
            out.push(60 << 2);
            out.push(len as u8);
        } else {
            out.push(61 << 2);
            out.extend_from_slice(&(len as u16).to_le_bytes());
        }
        out.extend_from_slice(&rest[..n]);
        rest = &rest[n..];
    }
}

fn emit_copy(out: &mut Vec<u8>, offset: usize, mut len: usize) {
    debug_assert!((1..(1 << 16)).contains(&offset));
    // Long matches become 64-byte copies plus a 1–64 byte remainder (the
    // 2-byte-offset form supports any length in 1..=64).
    while len > 64 {
        out.push((63 << 2) | 2);
        out.extend_from_slice(&(offset as u16).to_le_bytes());
        len -= 64;
    }
    if (4..=11).contains(&len) && offset < (1 << 11) {
        out.push((((offset >> 8) as u8) << 5) | (((len - 4) as u8) << 2) | 1);
        out.push(offset as u8);
    } else {
        out.push((((len - 1) as u8) << 2) | 2);
        out.extend_from_slice(&(offset as u16).to_le_bytes());
    }
}

/// Compresses `input` into the Snappy format.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    put_varint(&mut out, input.len() as u64);
    for block in input.chunks(BLOCK) {
        compress_block(block, &mut out);
    }
    out
}

fn compress_block(block: &[u8], out: &mut Vec<u8>) {
    if block.len() < 4 {
        emit_literal(out, block);
        return;
    }
    let mut table = vec![0u32; 1 << HASH_BITS];
    let mut ip = 0usize;
    let mut lit_start = 0usize;
    let limit = block.len() - 4;
    while ip <= limit {
        let h = hash4(&block[ip..]);
        let cand = table[h] as usize;
        table[h] = ip as u32;
        if cand < ip && ip - cand < (1 << 16) && block[cand..cand + 4] == block[ip..ip + 4] {
            // Extend the match.
            let mut len = 4;
            while ip + len < block.len() && block[cand + len] == block[ip + len] {
                len += 1;
            }
            emit_literal(out, &block[lit_start..ip]);
            emit_copy(out, ip - cand, len);
            ip += len;
            lit_start = ip;
        } else {
            ip += 1;
        }
    }
    emit_literal(out, &block[lit_start..]);
}

/// Decompresses a Snappy stream.
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, SnappyError> {
    let (expect, mut ip) = get_varint(input)?;
    // A Snappy element expands to at most 64 output bytes per ~1 input
    // byte, so a preamble claiming more is corrupt — reject it before
    // allocating (a hostile preamble must not be a decompression bomb).
    if expect > 64 * input.len() as u64 + 16 {
        return Err(SnappyError::LengthMismatch);
    }
    let mut out = Vec::with_capacity((expect as usize).min(1 << 20));
    while ip < input.len() {
        let tag = input[ip];
        ip += 1;
        match tag & 0x3 {
            0 => {
                // Literal.
                let mut len = (tag >> 2) as usize;
                if len >= 60 {
                    let extra = len - 59;
                    if ip + extra > input.len() {
                        return Err(SnappyError::Truncated);
                    }
                    let mut v = 0usize;
                    for i in 0..extra {
                        v |= (input[ip + i] as usize) << (8 * i);
                    }
                    len = v;
                    ip += extra;
                }
                len += 1;
                if ip + len > input.len() {
                    return Err(SnappyError::Truncated);
                }
                out.extend_from_slice(&input[ip..ip + len]);
                ip += len;
            }
            1 => {
                // Copy with 1-byte offset.
                if ip >= input.len() {
                    return Err(SnappyError::Truncated);
                }
                let len = 4 + ((tag >> 2) & 0x7) as usize;
                let offset = (((tag >> 5) as usize) << 8) | input[ip] as usize;
                ip += 1;
                copy_back(&mut out, offset, len)?;
            }
            2 => {
                // Copy with 2-byte offset.
                if ip + 2 > input.len() {
                    return Err(SnappyError::Truncated);
                }
                let len = 1 + (tag >> 2) as usize;
                let offset = u16::from_le_bytes([input[ip], input[ip + 1]]) as usize;
                ip += 2;
                copy_back(&mut out, offset, len)?;
            }
            _ => {
                // Copy with 4-byte offset.
                if ip + 4 > input.len() {
                    return Err(SnappyError::Truncated);
                }
                let len = 1 + (tag >> 2) as usize;
                let offset =
                    u32::from_le_bytes([input[ip], input[ip + 1], input[ip + 2], input[ip + 3]])
                        as usize;
                ip += 4;
                copy_back(&mut out, offset, len)?;
            }
        }
    }
    if out.len() as u64 != expect {
        return Err(SnappyError::LengthMismatch);
    }
    Ok(out)
}

fn copy_back(out: &mut Vec<u8>, offset: usize, len: usize) -> Result<(), SnappyError> {
    if offset == 0 || offset > out.len() {
        return Err(SnappyError::BadOffset);
    }
    let start = out.len() - offset;
    // Byte-by-byte: overlapping copies (RLE) are valid Snappy.
    for i in 0..len {
        let b = out[start + i];
        out.push(b);
    }
    Ok(())
}

/// Result of a far-memory (de)compression pass.
#[derive(Debug, Clone, Copy)]
pub struct SnappyResult {
    /// Input bytes processed.
    pub in_bytes: u64,
    /// Output bytes produced.
    pub out_bytes: u64,
    /// Virtual elapsed time.
    pub elapsed: u64,
}

/// The Snappy workload over far memory.
#[derive(Debug, Clone, Copy)]
pub struct SnappyWorkload {
    /// Total input size in bytes (scaled from the paper's 16 GB).
    pub input_bytes: usize,
    /// RNG seed for generating compressible input.
    pub seed: u64,
}

impl SnappyWorkload {
    /// Generates compressible input (text-like: skewed bytes with repeats)
    /// in far memory; returns its base address.
    pub fn populate(&self, mem: &mut dyn FarMemory) -> u64 {
        let base = mem.alloc(self.input_bytes);
        let mut rng = SplitMix64::new(self.seed);
        let words: Vec<&[u8]> = vec![
            b"the ",
            b"quick ",
            b"memory ",
            b"disaggregation ",
            b"page ",
            b"fault ",
            b"remote ",
            b"node ",
            b"prefetch ",
            b"kernel ",
        ];
        let mut buf = Vec::with_capacity(8192);
        let mut off = 0usize;
        while off < self.input_bytes {
            buf.clear();
            while buf.len() < 8192 && off + buf.len() < self.input_bytes {
                buf.extend_from_slice(words[rng.gen_range(words.len() as u64) as usize]);
            }
            let n = buf.len().min(self.input_bytes - off);
            mem.write(0, base + off as u64, &buf[..n]);
            off += n;
        }
        base
    }

    /// Streaming compression: read 64 KiB blocks from far memory, compress,
    /// append output to a far-memory region.
    pub fn compress_far(&self, mem: &mut dyn FarMemory, src: u64) -> SnappyResult {
        let out_region = mem.alloc(self.input_bytes + self.input_bytes / 4 + 64);
        let t0 = mem.now(0);
        let mut out_off = 0u64;
        let mut off = 0usize;
        let mut block = vec![0u8; BLOCK];
        while off < self.input_bytes {
            let n = BLOCK.min(self.input_bytes - off);
            mem.read(0, src + off as u64, &mut block[..n]);
            let compressed = compress(&block[..n]);
            mem.compute(0, (n as f64 * COMPRESS_NS_PER_BYTE) as u64);
            mem.write(0, out_region + out_off, &compressed);
            out_off += compressed.len() as u64;
            off += n;
        }
        SnappyResult {
            in_bytes: self.input_bytes as u64,
            out_bytes: out_off,
            elapsed: mem.now(0) - t0,
        }
    }

    /// Streaming decompression of blocks produced by [`compress_far`]'s
    /// layout: `(len, payload)` framing is reconstructed from block sizes.
    ///
    /// [`compress_far`]: Self::compress_far
    pub fn roundtrip_far(&self, mem: &mut dyn FarMemory, src: u64) -> SnappyResult {
        // Compress block-by-block, then decompress and verify each block.
        let t0 = mem.now(0);
        let mut off = 0usize;
        let mut block = vec![0u8; BLOCK];
        let mut out_bytes = 0u64;
        while off < self.input_bytes {
            let n = BLOCK.min(self.input_bytes - off);
            mem.read(0, src + off as u64, &mut block[..n]);
            let compressed = compress(&block[..n]);
            mem.compute(0, (n as f64 * COMPRESS_NS_PER_BYTE) as u64);
            let back = decompress(&compressed).expect("own output decompresses");
            mem.compute(0, (back.len() as f64 * DECOMPRESS_NS_PER_BYTE) as u64);
            assert_eq!(back, &block[..n], "roundtrip mismatch at offset {off}");
            out_bytes += back.len() as u64;
            off += n;
        }
        SnappyResult {
            in_bytes: self.input_bytes as u64,
            out_bytes,
            elapsed: mem.now(0) - t0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_simple_patterns() {
        for input in [
            &b""[..],
            &b"a"[..],
            &b"abcd"[..],
            &b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"[..],
            &b"abcabcabcabcabcabcabcabcabcabc"[..],
            &b"the quick brown fox jumps over the lazy dog"[..],
        ] {
            let c = compress(input);
            assert_eq!(decompress(&c).unwrap(), input);
        }
    }

    #[test]
    fn compresses_repetitive_data_well() {
        let input = b"memory disaggregation ".repeat(1_000);
        let c = compress(&input);
        assert!(
            c.len() < input.len() / 4,
            "ratio {} / {}",
            c.len(),
            input.len()
        );
        assert_eq!(decompress(&c).unwrap(), input);
    }

    #[test]
    fn roundtrips_incompressible_data() {
        let mut rng = SplitMix64::new(99);
        let input: Vec<u8> = (0..100_000).map(|_| rng.next_u64() as u8).collect();
        let c = compress(&input);
        assert_eq!(decompress(&c).unwrap(), input);
        // Incompressible data grows only by framing overhead.
        assert!(c.len() < input.len() + input.len() / 50 + 16);
    }

    #[test]
    fn roundtrips_multi_block_inputs() {
        let mut input = Vec::new();
        let mut rng = SplitMix64::new(5);
        for _ in 0..3 * BLOCK / 16 {
            if rng.gen_range(3) == 0 {
                input.extend_from_slice(b"0123456789abcdef");
            } else {
                input.extend((0..16).map(|_| rng.next_u64() as u8));
            }
        }
        let c = compress(&input);
        assert_eq!(decompress(&c).unwrap(), input);
    }

    #[test]
    fn rejects_corrupt_streams() {
        assert_eq!(decompress(&[]), Err(SnappyError::Truncated));
        // Length says 100 but no payload.
        assert_eq!(decompress(&[100]), Err(SnappyError::LengthMismatch));
        // Copy before the start of the stream.
        let bad = [4u8, 0b0000_0010, 9, 0]; // len 4, copy len 1 offset 9.
        assert_eq!(decompress(&bad), Err(SnappyError::BadOffset));
        // Truncated literal.
        assert_eq!(decompress(&[10, 36, 1, 2]), Err(SnappyError::Truncated));
    }

    #[test]
    fn far_memory_compression_streams() {
        use crate::farmem::{SystemKind, SystemSpec};
        let wl = SnappyWorkload {
            input_bytes: 256 * 1024,
            seed: 1,
        };
        let mut mem = SystemSpec::for_working_set(SystemKind::DilosReadahead, 1 << 20, 25).boot();
        let src = wl.populate(mem.as_mut());
        let r = wl.compress_far(mem.as_mut(), src);
        assert_eq!(r.in_bytes, 256 * 1024);
        assert!(r.out_bytes < r.in_bytes / 2, "text must compress");
        assert!(r.elapsed > 0);
    }

    #[test]
    fn far_memory_roundtrip_verifies() {
        use crate::farmem::{SystemKind, SystemSpec};
        let wl = SnappyWorkload {
            input_bytes: 128 * 1024,
            seed: 2,
        };
        let mut mem = SystemSpec::for_working_set(SystemKind::Aifm, 1 << 20, 13).boot();
        let src = wl.populate(mem.as_mut());
        let r = wl.roundtrip_far(mem.as_mut(), src);
        assert_eq!(r.in_bytes, r.out_bytes);
    }
}
