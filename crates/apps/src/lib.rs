//! `dilos-apps` — the DiLOS evaluation workloads, portable across systems.
//!
//! Every workload of §6 is implemented here against the [`farmem::FarMemory`]
//! interface, so a single implementation runs unmodified on DiLOS, Fastswap,
//! and AIFM — which is the paper's compatibility claim made executable:
//!
//! - [`seqrw`] — sequential read/write microbenchmark (Tables 1–3).
//! - [`quicksort`] — in-place quicksort of a far-memory vector (Fig. 7a).
//! - [`kmeans`] — Lloyd's k-means over far memory (Fig. 7b).
//! - [`snappy`] — a from-scratch Snappy codec plus streaming far-memory
//!   drivers (Fig. 7c/d).
//! - [`dataframe`] — a columnar engine and the NYC-taxi analysis (Fig. 8).
//! - [`gapbs`] — Kronecker graphs, PageRank, betweenness centrality
//!   (Fig. 9).
//! - [`redis`] — the in-memory KV store, its benchmark drivers, and the
//!   app-aware guides (Figs. 10, 12, Table 4).

pub mod dataframe;
pub mod farmem;
pub mod gapbs;
pub mod kmeans;
pub mod quicksort;
pub mod redis;
pub mod seqrw;
pub mod snappy;

pub use farmem::{FarArray, FarMemory, Introspect, SystemKind, SystemSpec};
