//! Quicksort over a far-memory vector (Figure 7(a)).
//!
//! "The quicksort workload allocates a vector of 2048M random integer
//! numbers (total 8 GB) and sorts them with C++'s `std::sort`." This is an
//! introsort-style in-place quicksort (median-of-three, insertion sort on
//! small runs, explicit stack) operating directly on far memory through the
//! portable interface — the same access pattern `std::sort` produces:
//! partition scans with good locality plus deep random probes.

use crate::farmem::{FarArray, FarMemory};
use dilos_sim::SplitMix64;

/// Per-element comparison compute charge (ns), modelling `std::sort`'s CPU
/// work so completion times are not pure memory time.
const CMP_NS: u64 = 2;

/// Cutoff below which insertion sort finishes a run.
const INSERTION_CUTOFF: usize = 16;

/// The quicksort workload.
#[derive(Debug, Clone, Copy)]
pub struct QuicksortWorkload {
    /// Number of 8-byte integers.
    pub elements: usize,
    /// RNG seed for the input permutation.
    pub seed: u64,
}

impl QuicksortWorkload {
    /// Allocates and fills the vector with seeded random integers.
    pub fn populate(&self, mem: &mut dyn FarMemory) -> FarArray {
        let arr = FarArray::new(mem, self.elements);
        let mut rng = SplitMix64::new(self.seed);
        // Bulk writes: population is a streaming memset-like phase.
        let mut chunk = Vec::with_capacity(512);
        let mut i = 0usize;
        while i < self.elements {
            chunk.clear();
            let n = 512.min(self.elements - i);
            for _ in 0..n {
                chunk.push(rng.next_u64() >> 1);
            }
            arr.write_range(mem, 0, i, &chunk);
            i += n;
        }
        arr
    }

    /// Sorts the vector in place; returns virtual elapsed time.
    pub fn sort(&self, mem: &mut dyn FarMemory, arr: FarArray) -> u64 {
        let t0 = mem.now(0);
        let mut stack: Vec<(usize, usize)> = vec![(0, arr.len())];
        while let Some((lo, hi)) = stack.pop() {
            if hi - lo <= INSERTION_CUTOFF {
                insertion_sort(mem, arr, lo, hi);
                continue;
            }
            let p = partition(mem, arr, lo, hi);
            // The pivot at `p` is final; recurse into both sides, smaller
            // side first so the explicit stack stays logarithmic.
            if p - lo < hi - p - 1 {
                stack.push((p + 1, hi));
                stack.push((lo, p));
            } else {
                stack.push((lo, p));
                stack.push((p + 1, hi));
            }
        }
        mem.now(0) - t0
    }

    /// Verifies the vector is sorted (sampled plus full pass for small n).
    pub fn verify(&self, mem: &mut dyn FarMemory, arr: FarArray) -> bool {
        let mut prev = 0u64;
        for i in 0..arr.len() {
            let v = arr.get(mem, 0, i);
            if v < prev {
                return false;
            }
            prev = v;
        }
        true
    }
}

fn insertion_sort(mem: &mut dyn FarMemory, arr: FarArray, lo: usize, hi: usize) {
    for i in lo + 1..hi {
        let v = arr.get(mem, 0, i);
        let mut j = i;
        while j > lo {
            let w = arr.get(mem, 0, j - 1);
            mem.compute(0, CMP_NS);
            if w <= v {
                break;
            }
            arr.set(mem, 0, j, w);
            j -= 1;
        }
        arr.set(mem, 0, j, v);
    }
}

/// Lomuto partition with a median-of-three pivot moved to `hi - 1`;
/// returns the pivot's final index in `[lo, hi)`.
fn partition(mem: &mut dyn FarMemory, arr: FarArray, lo: usize, hi: usize) -> usize {
    let mid = lo + (hi - lo) / 2;
    let a = arr.get(mem, 0, lo);
    let b = arr.get(mem, 0, mid);
    let c = arr.get(mem, 0, hi - 1);
    let pivot = median3(a, b, c);
    // Move one occurrence of the pivot value to `hi - 1`.
    let pivot_pos = if pivot == a {
        lo
    } else if pivot == b {
        mid
    } else {
        hi - 1
    };
    if pivot_pos != hi - 1 {
        arr.set(mem, 0, pivot_pos, c);
        arr.set(mem, 0, hi - 1, pivot);
    }
    let mut i = lo;
    for j in lo..hi - 1 {
        let v = arr.get(mem, 0, j);
        mem.compute(0, CMP_NS);
        if v < pivot {
            if i != j {
                let w = arr.get(mem, 0, i);
                arr.set(mem, 0, i, v);
                arr.set(mem, 0, j, w);
            }
            i += 1;
        }
    }
    let w = arr.get(mem, 0, i);
    arr.set(mem, 0, i, pivot);
    arr.set(mem, 0, hi - 1, w);
    i
}

fn median3(a: u64, b: u64, c: u64) -> u64 {
    a.max(b).min(a.min(b).max(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::farmem::{SystemKind, SystemSpec};

    #[test]
    fn sorts_correctly_on_far_memory() {
        let wl = QuicksortWorkload {
            elements: 4_000,
            seed: 42,
        };
        let mut mem = SystemSpec::for_working_set(SystemKind::DilosReadahead, 4_000 * 8, 25).boot();
        let arr = wl.populate(mem.as_mut());
        let elapsed = wl.sort(mem.as_mut(), arr);
        assert!(elapsed > 0);
        assert!(wl.verify(mem.as_mut(), arr));
    }

    #[test]
    fn sorts_under_memory_pressure_on_every_system() {
        for kind in [
            SystemKind::Fastswap,
            SystemKind::DilosReadahead,
            SystemKind::Aifm,
        ] {
            let wl = QuicksortWorkload {
                elements: 8_000,
                seed: 7,
            };
            let mut mem = SystemSpec::for_working_set(kind, 8_000 * 8, 13).boot();
            let arr = wl.populate(mem.as_mut());
            wl.sort(mem.as_mut(), arr);
            assert!(wl.verify(mem.as_mut(), arr), "{}", kind.label());
        }
    }

    #[test]
    fn median3_is_a_median() {
        assert_eq!(median3(1, 2, 3), 2);
        assert_eq!(median3(3, 1, 2), 2);
        assert_eq!(median3(2, 3, 1), 2);
        assert_eq!(median3(5, 5, 1), 5);
        assert_eq!(median3(7, 7, 7), 7);
    }

    #[test]
    fn handles_tiny_and_sorted_inputs() {
        let mut mem = SystemSpec::for_working_set(SystemKind::DilosNoPrefetch, 1 << 16, 100).boot();
        // Already sorted.
        let arr = FarArray::new(mem.as_mut(), 32);
        for i in 0..32 {
            arr.set(mem.as_mut(), 0, i, i as u64);
        }
        let wl = QuicksortWorkload {
            elements: 32,
            seed: 0,
        };
        wl.sort(mem.as_mut(), arr);
        assert!(wl.verify(mem.as_mut(), arr));
        // Single element.
        let one = FarArray::new(mem.as_mut(), 1);
        one.set(mem.as_mut(), 0, 0, 9);
        let wl1 = QuicksortWorkload {
            elements: 1,
            seed: 0,
        };
        wl1.sort(mem.as_mut(), one);
        assert_eq!(one.get(mem.as_mut(), 0, 0), 9);
    }
}
